file(REMOVE_RECURSE
  "CMakeFiles/vpcsim.dir/vpcsim.cc.o"
  "CMakeFiles/vpcsim.dir/vpcsim.cc.o.d"
  "vpcsim"
  "vpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
