# Empty dependencies file for vpcsim.
# This may be replaced when dependencies are built.
