file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/system/cmp_system_test.cc.o"
  "CMakeFiles/test_system.dir/system/cmp_system_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/experiment_test.cc.o"
  "CMakeFiles/test_system.dir/system/experiment_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/options_test.cc.o"
  "CMakeFiles/test_system.dir/system/options_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/prefetch_system_test.cc.o"
  "CMakeFiles/test_system.dir/system/prefetch_system_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/qos_property_test.cc.o"
  "CMakeFiles/test_system.dir/system/qos_property_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/stats_report_test.cc.o"
  "CMakeFiles/test_system.dir/system/stats_report_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/table_printer_test.cc.o"
  "CMakeFiles/test_system.dir/system/table_printer_test.cc.o.d"
  "CMakeFiles/test_system.dir/system/vpm_memory_test.cc.o"
  "CMakeFiles/test_system.dir/system/vpm_memory_test.cc.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
