file(REMOVE_RECURSE
  "CMakeFiles/test_arbiter.dir/arbiter/arbiter_property_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/arbiter_property_test.cc.o.d"
  "CMakeFiles/test_arbiter.dir/arbiter/fcfs_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/fcfs_test.cc.o.d"
  "CMakeFiles/test_arbiter.dir/arbiter/round_robin_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/round_robin_test.cc.o.d"
  "CMakeFiles/test_arbiter.dir/arbiter/row_fcfs_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/row_fcfs_test.cc.o.d"
  "CMakeFiles/test_arbiter.dir/arbiter/shared_resource_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/shared_resource_test.cc.o.d"
  "CMakeFiles/test_arbiter.dir/arbiter/vpc_arbiter_test.cc.o"
  "CMakeFiles/test_arbiter.dir/arbiter/vpc_arbiter_test.cc.o.d"
  "test_arbiter"
  "test_arbiter.pdb"
  "test_arbiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
