file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/cache_array_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/cache_array_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/capacity_property_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/capacity_property_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/global_occupancy_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/global_occupancy_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/l1_cache_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/l1_cache_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/l2_bank_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/l2_bank_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/l2_cache_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/l2_cache_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/prefetcher_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/prefetcher_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/replacement_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/replacement_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/store_gather_buffer_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/store_gather_buffer_test.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/vpc_controller_test.cc.o"
  "CMakeFiles/test_cache.dir/cache/vpc_controller_test.cc.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
