file(REMOVE_RECURSE
  "CMakeFiles/malicious_neighbor.dir/malicious_neighbor.cpp.o"
  "CMakeFiles/malicious_neighbor.dir/malicious_neighbor.cpp.o.d"
  "malicious_neighbor"
  "malicious_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
