# Empty compiler generated dependencies file for malicious_neighbor.
# This may be replaced when dependencies are built.
