file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reallocation.dir/dynamic_reallocation.cpp.o"
  "CMakeFiles/dynamic_reallocation.dir/dynamic_reallocation.cpp.o.d"
  "dynamic_reallocation"
  "dynamic_reallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
