# Empty compiler generated dependencies file for dynamic_reallocation.
# This may be replaced when dependencies are built.
