# Empty dependencies file for vpc_mem.
# This may be replaced when dependencies are built.
