file(REMOVE_RECURSE
  "CMakeFiles/vpc_mem.dir/dram_channel.cc.o"
  "CMakeFiles/vpc_mem.dir/dram_channel.cc.o.d"
  "CMakeFiles/vpc_mem.dir/memory_controller.cc.o"
  "CMakeFiles/vpc_mem.dir/memory_controller.cc.o.d"
  "libvpc_mem.a"
  "libvpc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
