
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram_channel.cc" "src/mem/CMakeFiles/vpc_mem.dir/dram_channel.cc.o" "gcc" "src/mem/CMakeFiles/vpc_mem.dir/dram_channel.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/mem/CMakeFiles/vpc_mem.dir/memory_controller.cc.o" "gcc" "src/mem/CMakeFiles/vpc_mem.dir/memory_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arbiter/CMakeFiles/vpc_arbiter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
