file(REMOVE_RECURSE
  "libvpc_mem.a"
)
