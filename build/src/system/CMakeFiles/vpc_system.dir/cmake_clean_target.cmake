file(REMOVE_RECURSE
  "libvpc_system.a"
)
