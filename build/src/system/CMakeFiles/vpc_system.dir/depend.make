# Empty dependencies file for vpc_system.
# This may be replaced when dependencies are built.
