file(REMOVE_RECURSE
  "CMakeFiles/vpc_system.dir/cmp_system.cc.o"
  "CMakeFiles/vpc_system.dir/cmp_system.cc.o.d"
  "CMakeFiles/vpc_system.dir/experiment.cc.o"
  "CMakeFiles/vpc_system.dir/experiment.cc.o.d"
  "CMakeFiles/vpc_system.dir/options.cc.o"
  "CMakeFiles/vpc_system.dir/options.cc.o.d"
  "CMakeFiles/vpc_system.dir/stats_report.cc.o"
  "CMakeFiles/vpc_system.dir/stats_report.cc.o.d"
  "CMakeFiles/vpc_system.dir/table_printer.cc.o"
  "CMakeFiles/vpc_system.dir/table_printer.cc.o.d"
  "libvpc_system.a"
  "libvpc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
