
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/cmp_system.cc" "src/system/CMakeFiles/vpc_system.dir/cmp_system.cc.o" "gcc" "src/system/CMakeFiles/vpc_system.dir/cmp_system.cc.o.d"
  "/root/repo/src/system/experiment.cc" "src/system/CMakeFiles/vpc_system.dir/experiment.cc.o" "gcc" "src/system/CMakeFiles/vpc_system.dir/experiment.cc.o.d"
  "/root/repo/src/system/options.cc" "src/system/CMakeFiles/vpc_system.dir/options.cc.o" "gcc" "src/system/CMakeFiles/vpc_system.dir/options.cc.o.d"
  "/root/repo/src/system/stats_report.cc" "src/system/CMakeFiles/vpc_system.dir/stats_report.cc.o" "gcc" "src/system/CMakeFiles/vpc_system.dir/stats_report.cc.o.d"
  "/root/repo/src/system/table_printer.cc" "src/system/CMakeFiles/vpc_system.dir/table_printer.cc.o" "gcc" "src/system/CMakeFiles/vpc_system.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arbiter/CMakeFiles/vpc_arbiter.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vpc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
