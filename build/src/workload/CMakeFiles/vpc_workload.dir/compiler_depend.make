# Empty compiler generated dependencies file for vpc_workload.
# This may be replaced when dependencies are built.
