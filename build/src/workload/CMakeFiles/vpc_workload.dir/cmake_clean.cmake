file(REMOVE_RECURSE
  "CMakeFiles/vpc_workload.dir/microbench.cc.o"
  "CMakeFiles/vpc_workload.dir/microbench.cc.o.d"
  "CMakeFiles/vpc_workload.dir/spec2000.cc.o"
  "CMakeFiles/vpc_workload.dir/spec2000.cc.o.d"
  "CMakeFiles/vpc_workload.dir/synthetic.cc.o"
  "CMakeFiles/vpc_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/vpc_workload.dir/trace.cc.o"
  "CMakeFiles/vpc_workload.dir/trace.cc.o.d"
  "libvpc_workload.a"
  "libvpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
