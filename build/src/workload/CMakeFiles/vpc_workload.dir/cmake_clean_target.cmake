file(REMOVE_RECURSE
  "libvpc_workload.a"
)
