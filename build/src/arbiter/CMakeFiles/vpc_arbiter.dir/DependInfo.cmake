
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arbiter/arbiter_factory.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/arbiter_factory.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/arbiter_factory.cc.o.d"
  "/root/repo/src/arbiter/fcfs_arbiter.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/fcfs_arbiter.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/fcfs_arbiter.cc.o.d"
  "/root/repo/src/arbiter/round_robin_arbiter.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/round_robin_arbiter.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/round_robin_arbiter.cc.o.d"
  "/root/repo/src/arbiter/row_fcfs_arbiter.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/row_fcfs_arbiter.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/row_fcfs_arbiter.cc.o.d"
  "/root/repo/src/arbiter/shared_resource.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/shared_resource.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/shared_resource.cc.o.d"
  "/root/repo/src/arbiter/vpc_arbiter.cc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/vpc_arbiter.cc.o" "gcc" "src/arbiter/CMakeFiles/vpc_arbiter.dir/vpc_arbiter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
