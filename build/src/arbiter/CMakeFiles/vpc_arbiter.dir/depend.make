# Empty dependencies file for vpc_arbiter.
# This may be replaced when dependencies are built.
