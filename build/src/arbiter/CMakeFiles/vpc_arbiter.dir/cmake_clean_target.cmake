file(REMOVE_RECURSE
  "libvpc_arbiter.a"
)
