file(REMOVE_RECURSE
  "CMakeFiles/vpc_arbiter.dir/arbiter_factory.cc.o"
  "CMakeFiles/vpc_arbiter.dir/arbiter_factory.cc.o.d"
  "CMakeFiles/vpc_arbiter.dir/fcfs_arbiter.cc.o"
  "CMakeFiles/vpc_arbiter.dir/fcfs_arbiter.cc.o.d"
  "CMakeFiles/vpc_arbiter.dir/round_robin_arbiter.cc.o"
  "CMakeFiles/vpc_arbiter.dir/round_robin_arbiter.cc.o.d"
  "CMakeFiles/vpc_arbiter.dir/row_fcfs_arbiter.cc.o"
  "CMakeFiles/vpc_arbiter.dir/row_fcfs_arbiter.cc.o.d"
  "CMakeFiles/vpc_arbiter.dir/shared_resource.cc.o"
  "CMakeFiles/vpc_arbiter.dir/shared_resource.cc.o.d"
  "CMakeFiles/vpc_arbiter.dir/vpc_arbiter.cc.o"
  "CMakeFiles/vpc_arbiter.dir/vpc_arbiter.cc.o.d"
  "libvpc_arbiter.a"
  "libvpc_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
