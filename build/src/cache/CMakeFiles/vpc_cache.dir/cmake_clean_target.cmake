file(REMOVE_RECURSE
  "libvpc_cache.a"
)
