
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/cache/CMakeFiles/vpc_cache.dir/cache_array.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/cache_array.cc.o.d"
  "/root/repo/src/cache/l1_cache.cc" "src/cache/CMakeFiles/vpc_cache.dir/l1_cache.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/l1_cache.cc.o.d"
  "/root/repo/src/cache/l2_bank.cc" "src/cache/CMakeFiles/vpc_cache.dir/l2_bank.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/l2_bank.cc.o.d"
  "/root/repo/src/cache/l2_cache.cc" "src/cache/CMakeFiles/vpc_cache.dir/l2_cache.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/l2_cache.cc.o.d"
  "/root/repo/src/cache/prefetcher.cc" "src/cache/CMakeFiles/vpc_cache.dir/prefetcher.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/prefetcher.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/vpc_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/store_gather_buffer.cc" "src/cache/CMakeFiles/vpc_cache.dir/store_gather_buffer.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/store_gather_buffer.cc.o.d"
  "/root/repo/src/cache/vpc_controller.cc" "src/cache/CMakeFiles/vpc_cache.dir/vpc_controller.cc.o" "gcc" "src/cache/CMakeFiles/vpc_cache.dir/vpc_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arbiter/CMakeFiles/vpc_arbiter.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vpc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
