# Empty compiler generated dependencies file for vpc_cache.
# This may be replaced when dependencies are built.
