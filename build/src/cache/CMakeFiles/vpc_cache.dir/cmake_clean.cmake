file(REMOVE_RECURSE
  "CMakeFiles/vpc_cache.dir/cache_array.cc.o"
  "CMakeFiles/vpc_cache.dir/cache_array.cc.o.d"
  "CMakeFiles/vpc_cache.dir/l1_cache.cc.o"
  "CMakeFiles/vpc_cache.dir/l1_cache.cc.o.d"
  "CMakeFiles/vpc_cache.dir/l2_bank.cc.o"
  "CMakeFiles/vpc_cache.dir/l2_bank.cc.o.d"
  "CMakeFiles/vpc_cache.dir/l2_cache.cc.o"
  "CMakeFiles/vpc_cache.dir/l2_cache.cc.o.d"
  "CMakeFiles/vpc_cache.dir/prefetcher.cc.o"
  "CMakeFiles/vpc_cache.dir/prefetcher.cc.o.d"
  "CMakeFiles/vpc_cache.dir/replacement.cc.o"
  "CMakeFiles/vpc_cache.dir/replacement.cc.o.d"
  "CMakeFiles/vpc_cache.dir/store_gather_buffer.cc.o"
  "CMakeFiles/vpc_cache.dir/store_gather_buffer.cc.o.d"
  "CMakeFiles/vpc_cache.dir/vpc_controller.cc.o"
  "CMakeFiles/vpc_cache.dir/vpc_controller.cc.o.d"
  "libvpc_cache.a"
  "libvpc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
