file(REMOVE_RECURSE
  "CMakeFiles/vpc_sim.dir/debug.cc.o"
  "CMakeFiles/vpc_sim.dir/debug.cc.o.d"
  "CMakeFiles/vpc_sim.dir/logging.cc.o"
  "CMakeFiles/vpc_sim.dir/logging.cc.o.d"
  "libvpc_sim.a"
  "libvpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
