file(REMOVE_RECURSE
  "libvpc_sim.a"
)
