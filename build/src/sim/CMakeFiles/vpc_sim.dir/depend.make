# Empty dependencies file for vpc_sim.
# This may be replaced when dependencies are built.
