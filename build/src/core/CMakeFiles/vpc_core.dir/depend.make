# Empty dependencies file for vpc_core.
# This may be replaced when dependencies are built.
