file(REMOVE_RECURSE
  "libvpc_core.a"
)
