file(REMOVE_RECURSE
  "CMakeFiles/vpc_core.dir/cpu.cc.o"
  "CMakeFiles/vpc_core.dir/cpu.cc.o.d"
  "libvpc_core.a"
  "libvpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
