# Empty dependencies file for bench_ablate_prefetch.
# This may be replaced when dependencies are built.
