file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_arbiter.dir/bench_micro_arbiter.cc.o"
  "CMakeFiles/bench_micro_arbiter.dir/bench_micro_arbiter.cc.o.d"
  "bench_micro_arbiter"
  "bench_micro_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
