# Empty dependencies file for bench_micro_arbiter.
# This may be replaced when dependencies are built.
