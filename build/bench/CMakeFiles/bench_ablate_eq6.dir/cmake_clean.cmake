file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_eq6.dir/bench_ablate_eq6.cc.o"
  "CMakeFiles/bench_ablate_eq6.dir/bench_ablate_eq6.cc.o.d"
  "bench_ablate_eq6"
  "bench_ablate_eq6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_eq6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
