# Empty compiler generated dependencies file for bench_ablate_eq6.
# This may be replaced when dependencies are built.
