# Empty compiler generated dependencies file for bench_ablate_wc.
# This may be replaced when dependencies are built.
