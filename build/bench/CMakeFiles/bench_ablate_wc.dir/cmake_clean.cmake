file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_wc.dir/bench_ablate_wc.cc.o"
  "CMakeFiles/bench_ablate_wc.dir/bench_ablate_wc.cc.o.d"
  "bench_ablate_wc"
  "bench_ablate_wc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_wc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
