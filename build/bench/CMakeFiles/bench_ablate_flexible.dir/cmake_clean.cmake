file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_flexible.dir/bench_ablate_flexible.cc.o"
  "CMakeFiles/bench_ablate_flexible.dir/bench_ablate_flexible.cc.o.d"
  "bench_ablate_flexible"
  "bench_ablate_flexible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_flexible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
