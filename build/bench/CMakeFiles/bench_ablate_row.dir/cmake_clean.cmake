file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_row.dir/bench_ablate_row.cc.o"
  "CMakeFiles/bench_ablate_row.dir/bench_ablate_row.cc.o.d"
  "bench_ablate_row"
  "bench_ablate_row.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_row.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
