# Empty dependencies file for bench_ablate_row.
# This may be replaced when dependencies are built.
