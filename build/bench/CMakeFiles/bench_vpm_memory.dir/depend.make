# Empty dependencies file for bench_vpm_memory.
# This may be replaced when dependencies are built.
