file(REMOVE_RECURSE
  "CMakeFiles/bench_vpm_memory.dir/bench_vpm_memory.cc.o"
  "CMakeFiles/bench_vpm_memory.dir/bench_vpm_memory.cc.o.d"
  "bench_vpm_memory"
  "bench_vpm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vpm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
