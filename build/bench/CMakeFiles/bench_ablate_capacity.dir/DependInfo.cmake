
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablate_capacity.cc" "bench/CMakeFiles/bench_ablate_capacity.dir/bench_ablate_capacity.cc.o" "gcc" "bench/CMakeFiles/bench_ablate_capacity.dir/bench_ablate_capacity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/vpc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vpc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arbiter/CMakeFiles/vpc_arbiter.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
