file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_capacity.dir/bench_ablate_capacity.cc.o"
  "CMakeFiles/bench_ablate_capacity.dir/bench_ablate_capacity.cc.o.d"
  "bench_ablate_capacity"
  "bench_ablate_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
