# Empty dependencies file for bench_ablate_capacity.
# This may be replaced when dependencies are built.
