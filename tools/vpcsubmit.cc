/**
 * @file
 * vpcsubmit: client for the vpcsvc sweep daemon.
 *
 * Takes the same experiment flags as vpcsim plus --spool, submits the
 * job to the daemon serving that spool, waits for it, and prints the
 * identical report vpcsim would have printed.  When no daemon is
 * alive (or it dies mid-wait) the job is computed in-process against
 * the same run cache — same bits either way, so scripts can treat
 * vpcsubmit as a drop-in vpcsim that happens to offload work.
 *
 * Examples:
 *
 *   vpcsubmit --spool=/tmp/sweep --workload=art,mcf --arbiter=vpc
 *   vpcsubmit --spool=/tmp/sweep --workload=loads,stores --no-wait
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "service/client.hh"
#include "system/options.hh"
#include "system/stats_report.hh"

int
main(int argc, char **argv)
{
    using namespace vpc;

    std::string spool_dir, cache_dir;
    bool wait_for_result = true;
    bool use_socket = true;
    std::uint64_t timeout_ms = 0;
    std::vector<std::string> sim_args;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string key = arg, val;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            val = arg.substr(eq + 1);
        }
        if (key == "--spool") {
            spool_dir = val;
        } else if (key == "--no-wait") {
            wait_for_result = false;
        } else if (key == "--no-socket") {
            use_socket = false;
        } else if (key == "--timeout-ms") {
            timeout_ms = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "--help" || key == "-h") {
            std::printf("usage: vpcsubmit --spool=DIR [--no-wait] "
                        "[--no-socket] [--timeout-ms=MS] "
                        "<vpcsim options>\n"
                        "  --run-cache defaults to <spool>/cache and "
                        "must match the daemon's.\n"
                        "  --no-socket skips the daemon's socket "
                        "transport (spool polling).\n\n%s",
                        simUsage().c_str());
            return 0;
        } else {
            if (key == "--run-cache")
                cache_dir = val;
            sim_args.push_back(arg); // a vpcsim flag
        }
    }
    if (spool_dir.empty()) {
        std::fprintf(stderr, "vpcsubmit: --spool is required\n");
        return 1;
    }

    std::string error;
    std::optional<SimOptions> opts = parseSimOptions(sim_args, error);
    if (!opts) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    if (opts->dumpStats) {
        std::fprintf(stderr, "vpcsubmit: --stats needs live component "
                             "state; use vpcsim\n");
        return 1;
    }

    ServiceClient client(spool_dir, cache_dir, 50, use_socket);
    RunJob job = opts->buildRunJob();

    if (!wait_for_result) {
        std::uint64_t digest = client.submit(job);
        std::printf("submitted %s (%s daemon alive)\n",
                    JobSpool::jobName(digest).c_str(),
                    client.daemonAlive() ? "with" : "NO");
        return 0;
    }

    try {
        ServedBy served = ServedBy::Local;
        if (timeout_ms != 0 && client.daemonAlive()) {
            std::uint64_t digest = client.submit(job);
            JobState st = client.wait(digest, timeout_ms);
            if (st != JobState::Done && st != JobState::Failed) {
                std::fprintf(stderr,
                             "vpcsubmit: timed out with %s %s\n",
                             JobSpool::jobName(digest).c_str(),
                             jobStateName(st));
                return 2;
            }
        }
        RunResult r = client.runJob(job, &served);
        printRunReport(*opts, r.record.stats, r.record.kernel);
        const char *how = "locally";
        if (served == ServedBy::Socket)
            how = "over the socket";
        else if (served == ServedBy::Daemon)
            how = "by the daemon";
        std::fprintf(stderr, "vpcsubmit: served %s\n", how);
        printRunCacheLine(client.cache());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "vpcsubmit: fatal: %s\n", e.what());
        return 1;
    }
    return 0;
}
