/**
 * @file
 * vpcsvc: the long-lived sweep daemon over a job spool.
 *
 * Clients (vpcsubmit, or anything that writes job records into
 * <spool>/pending) submit content-addressed jobs; this daemon
 * executes them on a worker pool with per-job deadlines, bounded
 * retry with exponential backoff, poison-job quarantine, crash
 * recovery on restart and graceful SIGTERM/SIGINT drain.  Results
 * land in the shared run cache, bit-identical to direct execution.
 *
 * Examples:
 *
 *   # serve /tmp/sweep with 4 workers and a 30 s per-job deadline:
 *   vpcsvc --spool=/tmp/sweep --threads=4 --deadline-ms=30000
 *
 *   # drain the current backlog and exit:
 *   vpcsvc --spool=/tmp/sweep --once
 *
 *   # deterministic robustness drill (stalls, failures, torn journal):
 *   vpcsvc --spool=/tmp/sweep --inject-service-faults --fault-rate=0.5
 */

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "service/daemon.hh"
#include "sim/logging.hh"

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

void
usage()
{
    std::printf(
        "usage: vpcsvc --spool=DIR [options]\n"
        "\n"
        "  --spool=DIR             job spool root (required)\n"
        "  --run-cache=DIR         result store (default: "
        "<spool>/cache)\n"
        "  --threads=N             worker pool threads (default: "
        "auto --\n"
        "                          VPC_SWEEP_THREADS if set, else all "
        "cores)\n"
        "  --deadline-ms=MS        per-job wall budget; 0 = none "
        "(default 0)\n"
        "  --max-attempts=N        quarantine after N attempts "
        "(default 3)\n"
        "  --backoff-ms=MS         retry backoff base (default 100)\n"
        "  --poll-ms=MS            idle spool poll interval "
        "(default 200)\n"
        "  --socket=PATH           socket transport endpoint "
        "(default:\n"
        "                          <spool>/daemon.sock)\n"
        "  --no-socket             disable the socket transport "
        "(spool-only)\n"
        "  --heartbeat-ms=MS       socket liveness ping interval "
        "(default\n"
        "                          2000; 3 silent intervals = dead "
        "peer)\n"
        "  --journal-rotate-bytes=N  seal the attempt journal past N "
        "bytes\n"
        "                          (default 1 MiB; 0 = never rotate)\n"
        "  --journal-keep=N        sealed segments retained "
        "(default 8;\n"
        "                          0 = keep all)\n"
        "  --once                  drain the pending backlog, then "
        "exit\n"
        "  --inject-service-faults deterministic fault drill "
        "(stall/fail/\n"
        "                          abandon jobs, truncate the "
        "journal)\n"
        "  --fault-rate=R          per-job fault probability "
        "(default 0.5)\n"
        "  --fault-seed=N          fault RNG seed (default 1)\n");
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return errno == 0 && end != v.c_str() && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vpc;

    DaemonConfig cfg;
    cfg.faultRate = 0.5;
    bool once = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string key = arg, val;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            val = arg.substr(eq + 1);
        }
        std::uint64_t n = 0;
        if (key == "--help" || key == "-h") {
            usage();
            return 0;
        } else if (key == "--spool") {
            cfg.spoolDir = val;
        } else if (key == "--run-cache") {
            cfg.cacheDir = val;
        } else if (key == "--threads" && parseU64(val, n)) {
            cfg.workers = static_cast<unsigned>(n);
        } else if (key == "--deadline-ms" && parseU64(val, n)) {
            cfg.deadlineMs = n;
        } else if (key == "--max-attempts" && parseU64(val, n) &&
                   n > 0) {
            cfg.maxAttempts = static_cast<unsigned>(n);
        } else if (key == "--backoff-ms" && parseU64(val, n)) {
            cfg.backoffMs = n;
        } else if (key == "--poll-ms" && parseU64(val, n) && n > 0) {
            cfg.pollMs = n;
        } else if (key == "--socket") {
            cfg.socketPath = val;
        } else if (key == "--no-socket") {
            cfg.socket = false;
        } else if (key == "--heartbeat-ms" && parseU64(val, n) &&
                   n > 0) {
            cfg.heartbeatMs = n;
        } else if (key == "--journal-rotate-bytes" &&
                   parseU64(val, n)) {
            cfg.journalRotateBytes = n;
        } else if (key == "--journal-keep" && parseU64(val, n)) {
            cfg.journalKeepSegments = static_cast<unsigned>(n);
        } else if (key == "--once") {
            once = true;
        } else if (key == "--inject-service-faults") {
            cfg.injectFaults = true;
        } else if (key == "--fault-rate") {
            char *end = nullptr;
            cfg.faultRate = std::strtod(val.c_str(), &end);
            if (end == val.c_str() || cfg.faultRate < 0.0 ||
                cfg.faultRate > 1.0) {
                std::fprintf(stderr,
                             "vpcsvc: bad --fault-rate '%s'\n",
                             val.c_str());
                return 1;
            }
        } else if (key == "--fault-seed" && parseU64(val, n)) {
            cfg.faultSeed = n;
        } else {
            std::fprintf(stderr, "vpcsvc: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        }
    }
    if (cfg.spoolDir.empty()) {
        std::fprintf(stderr, "vpcsvc: --spool is required\n");
        usage();
        return 1;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    SweepDaemon daemon(cfg);
    if (!daemon.start())
        return 1;

    if (once) {
        // Drain: keep passing until a pass completes nothing and the
        // spool has no pending work left (backed-off retries count as
        // pending work).
        while (!g_stop.load()) {
            std::uint64_t done = daemon.runOnce();
            if (done == 0 &&
                daemon.spool().list(JobState::Pending).empty() &&
                daemon.spool().list(JobState::Running).empty())
                break;
            if (done == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(cfg.pollMs));
        }
    } else {
        daemon.run(g_stop);
    }

    const DaemonStats &s = daemon.stats();
    std::fprintf(stderr,
                 "vpcsvc: %llu claimed, %llu completed (%llu cache "
                 "hits), %llu failures (%llu timeouts), %llu retried, "
                 "%llu quarantined, %llu republished, %llu orphans "
                 "recovered, %llu faults injected\n",
                 static_cast<unsigned long long>(s.claimed),
                 static_cast<unsigned long long>(s.completed),
                 static_cast<unsigned long long>(s.cacheHits),
                 static_cast<unsigned long long>(s.failures),
                 static_cast<unsigned long long>(s.timeouts),
                 static_cast<unsigned long long>(s.retried),
                 static_cast<unsigned long long>(s.quarantined),
                 static_cast<unsigned long long>(s.republished),
                 static_cast<unsigned long long>(s.orphansRecovered),
                 static_cast<unsigned long long>(s.faultsInjected));
    if (const TransportServer *t = daemon.transport()) {
        const TransportStats &ts = t->stats();
        std::fprintf(
            stderr,
            "vpcsvc: socket: %llu conns, %llu submits (%llu "
            "rejected), %llu completions pushed, %llu backpressured, "
            "%llu dropped, %llu dead peers\n",
            static_cast<unsigned long long>(ts.accepted.load()),
            static_cast<unsigned long long>(ts.submits.load()),
            static_cast<unsigned long long>(ts.submitRejects.load()),
            static_cast<unsigned long long>(
                ts.completionsPushed.load()),
            static_cast<unsigned long long>(ts.backpressured.load()),
            static_cast<unsigned long long>(ts.dropped.load()),
            static_cast<unsigned long long>(ts.deadPeers.load()));
    }
    return 0;
}
