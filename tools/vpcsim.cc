/**
 * @file
 * vpcsim: command-line driver for the Virtual Private Caches
 * simulator.  See --help (system/options.hh) for the flag reference.
 *
 * Examples:
 *
 *   # the paper's Figure 8, VPC 25% point:
 *   vpcsim --arbiter=vpc --workload=loads,stores \
 *          --phi=0.75,0.25 --beta=0.5,0.5
 *
 *   # four SPEC stand-ins under FCFS with the full stats report:
 *   vpcsim --workload=art,mcf,gzip,sixtrack --stats
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/options.hh"
#include "system/stats_report.hh"
#include "system/table_printer.hh"

int
main(int argc, char **argv)
{
    using namespace vpc;

    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    std::optional<SimOptions> opts = parseSimOptions(args, error);
    if (!opts) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }

    CmpSystem sys(opts->config, opts->buildWorkloads());
    IntervalStats stats = sys.runAndMeasure(opts->warmup,
                                            opts->measure);

    TablePrinter t(format("vpcsim: {} cycles measured after {} "
                          "warmup",
                          opts->measure, opts->warmup),
                   {"Thread", "Workload", "phi", "beta", "IPC",
                    "L2 reads", "L2 writes", "L2 misses"});
    for (unsigned i = 0; i < opts->config.numProcessors; ++i) {
        t.row({std::to_string(i), opts->workloadSpecs[i],
               TablePrinter::num(opts->config.shares[i].phi, 2),
               TablePrinter::num(opts->config.shares[i].beta, 2),
               TablePrinter::num(stats.ipc[i]),
               std::to_string(stats.l2Reads[i]),
               std::to_string(stats.l2Writes[i]),
               std::to_string(stats.l2Misses[i])});
    }
    t.rule();
    std::printf("L2 utilization: tag %.1f%%  data %.1f%%  bus "
                "%.1f%%\n", stats.tagUtil * 100.0,
                stats.dataUtil * 100.0, stats.busUtil * 100.0);
    // Kernel counters live outside the model-stats report: they vary
    // between skipping and --no-skip runs by design, while everything
    // dumpStats() prints must stay bit-identical.
    const KernelStats &k = sys.kernelStats();
    std::printf("kernel: %llu events fired  %llu ticks  "
                "%llu cycles executed  %llu skipped\n",
                static_cast<unsigned long long>(k.eventsFired.value()),
                static_cast<unsigned long long>(k.ticksExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesSkipped.value()));

    // The profile is host-time diagnostics, not model output: stderr,
    // so differential stdout comparisons are unaffected.
    if (sys.profiling()) {
        std::fprintf(stderr, "%s\n",
                     sys.mergedProfile().report().c_str());
    }

    if (opts->dumpStats)
        dumpStats(sys, std::cout, sys.now());
    return 0;
}
