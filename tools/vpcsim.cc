/**
 * @file
 * vpcsim: command-line driver for the Virtual Private Caches
 * simulator.  See --help (system/options.hh) for the flag reference.
 *
 * Examples:
 *
 *   # the paper's Figure 8, VPC 25% point:
 *   vpcsim --arbiter=vpc --workload=loads,stores \
 *          --phi=0.75,0.25 --beta=0.5,0.5
 *
 *   # four SPEC stand-ins under FCFS with the full stats report:
 *   vpcsim --workload=art,mcf,gzip,sixtrack --stats
 *
 *   # memoize: the second run replays the stored record
 *   vpcsim --workload=art,mcf --run-cache=.vpc-run-cache
 *   vpcsim --workload=art,mcf --run-cache=.vpc-run-cache
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/options.hh"
#include "system/run_cache.hh"
#include "system/stats_report.hh"

int
main(int argc, char **argv)
{
    using namespace vpc;

    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    std::optional<SimOptions> opts = parseSimOptions(args, error);
    if (!opts) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }

    if (opts->dumpStats) {
        // The full report walks live component state; this path never
        // consults the cache.
        CmpSystem sys(opts->config, opts->buildWorkloads());
        IntervalStats stats = sys.runAndMeasure(opts->warmup,
                                                opts->measure);
        printRunReport(*opts, stats, sys.kernelStats());
        if (sys.profiling()) {
            std::fprintf(stderr, "%s\n",
                         sys.mergedProfile().report().c_str());
        }
        dumpStats(sys, std::cout, sys.now());
        return 0;
    }

    std::unique_ptr<RunCache> cache;
    if (!opts->runCacheDir.empty())
        cache = std::make_unique<RunCache>(opts->runCacheDir);
    RunResult r;
    try {
        r = runAndMeasureCached(opts->buildRunJob(), cache.get());
    } catch (const std::exception &e) {
        // Unrunnable job (e.g. a bad workload spec): the library
        // throws so supervising callers can survive it; for the CLI
        // that means a clean fatal.
        std::fprintf(stderr, "vpcsim: fatal: %s\n", e.what());
        return 1;
    }
    printRunReport(*opts, r.record.stats, r.record.kernel);

    // The profile is host-time diagnostics, not model output: stderr,
    // so differential stdout comparisons are unaffected.  Replayed
    // runs have no profile to report.
    if (r.hasProfile)
        std::fprintf(stderr, "%s\n", r.profile.report().c_str());
    if (cache)
        printRunCacheLine(*cache);
    return 0;
}
