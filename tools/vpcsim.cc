/**
 * @file
 * vpcsim: command-line driver for the Virtual Private Caches
 * simulator.  See --help (system/options.hh) for the flag reference.
 *
 * Examples:
 *
 *   # the paper's Figure 8, VPC 25% point:
 *   vpcsim --arbiter=vpc --workload=loads,stores \
 *          --phi=0.75,0.25 --beta=0.5,0.5
 *
 *   # four SPEC stand-ins under FCFS with the full stats report:
 *   vpcsim --workload=art,mcf,gzip,sixtrack --stats
 *
 *   # memoize: the second run replays the stored record
 *   vpcsim --workload=art,mcf --run-cache=.vpc-run-cache
 *   vpcsim --workload=art,mcf --run-cache=.vpc-run-cache
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/options.hh"
#include "system/run_cache.hh"
#include "system/stats_report.hh"
#include "system/table_printer.hh"

namespace
{

using namespace vpc;

/**
 * The model-facing report: shared verbatim by the live and cached
 * paths, so --run-cache stdout is byte-identical to a real run.
 */
void
printReport(const SimOptions &opts, const IntervalStats &stats,
            const KernelStats &k)
{
    TablePrinter t(format("vpcsim: {} cycles measured after {} "
                          "warmup",
                          opts.measure, opts.warmup),
                   {"Thread", "Workload", "phi", "beta", "IPC",
                    "L2 reads", "L2 writes", "L2 misses"});
    for (unsigned i = 0; i < opts.config.numProcessors; ++i) {
        t.row({std::to_string(i), opts.workloadSpecs[i],
               TablePrinter::num(opts.config.shares[i].phi, 2),
               TablePrinter::num(opts.config.shares[i].beta, 2),
               TablePrinter::num(stats.ipc[i]),
               std::to_string(stats.l2Reads[i]),
               std::to_string(stats.l2Writes[i]),
               std::to_string(stats.l2Misses[i])});
    }
    t.rule();
    std::printf("L2 utilization: tag %.1f%%  data %.1f%%  bus "
                "%.1f%%\n", stats.tagUtil * 100.0,
                stats.dataUtil * 100.0, stats.busUtil * 100.0);
    // Kernel counters live outside the model-stats report: they vary
    // between skipping and --no-skip runs by design, while everything
    // dumpStats() prints must stay bit-identical.  They are part of
    // the run-cache record, so a replay prints the same line.
    std::printf("kernel: %llu events fired  %llu ticks  "
                "%llu cycles executed  %llu skipped\n",
                static_cast<unsigned long long>(k.eventsFired.value()),
                static_cast<unsigned long long>(k.ticksExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesSkipped.value()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vpc;

    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    std::optional<SimOptions> opts = parseSimOptions(args, error);
    if (!opts) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }

    if (opts->dumpStats) {
        // The full report walks live component state; this path never
        // consults the cache.
        CmpSystem sys(opts->config, opts->buildWorkloads());
        IntervalStats stats = sys.runAndMeasure(opts->warmup,
                                                opts->measure);
        printReport(*opts, stats, sys.kernelStats());
        if (sys.profiling()) {
            std::fprintf(stderr, "%s\n",
                         sys.mergedProfile().report().c_str());
        }
        dumpStats(sys, std::cout, sys.now());
        return 0;
    }

    std::unique_ptr<RunCache> cache;
    if (!opts->runCacheDir.empty())
        cache = std::make_unique<RunCache>(opts->runCacheDir);
    RunResult r = runAndMeasureCached(opts->buildRunJob(),
                                      cache.get());
    printReport(*opts, r.record.stats, r.record.kernel);

    // The profile is host-time diagnostics, not model output: stderr,
    // so differential stdout comparisons are unaffected.  Replayed
    // runs have no profile to report.
    if (r.hasProfile)
        std::fprintf(stderr, "%s\n", r.profile.report().c_str());
    if (cache) {
        std::fprintf(stderr,
                     "run-cache: %llu hits (%llu disk), %llu misses\n",
                     static_cast<unsigned long long>(cache->hits()),
                     static_cast<unsigned long long>(cache->diskHits()),
                     static_cast<unsigned long long>(cache->misses()));
    }
    return 0;
}
