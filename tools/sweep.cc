/**
 * @file
 * sweep: run many independent vpcsim configurations on a thread pool.
 *
 * Each non-flag argument is one complete vpcsim invocation -- a single
 * string whose whitespace-separated tokens are vpcsim flags:
 *
 *   sweep --threads=4 \
 *     "--arbiter=fcfs --workload=art,mcf --cycles=200000" \
 *     "--arbiter=vpc  --workload=art,mcf --cycles=200000"
 *
 * Every job builds its own CmpSystem (own Simulator, own EventQueue,
 * no shared mutable state), so jobs are embarrassingly parallel.
 * Results are buffered per job and printed in job order after the
 * join, so output is identical no matter how many workers ran.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/format.hh"
#include "system/cmp_system.hh"
#include "system/options.hh"
#include "system/sweep.hh"
#include "system/table_printer.hh"

namespace
{

std::vector<std::string>
splitTokens(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < spec.size()) {
        while (i < spec.size() && std::isspace(
                   static_cast<unsigned char>(spec[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < spec.size() && !std::isspace(
                   static_cast<unsigned char>(spec[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(spec.substr(start, i - start));
    }
    return out;
}

const char *kUsage =
    "sweep -- run independent vpcsim configurations in parallel\n"
    "\n"
    "  sweep [--threads=N] \"<vpcsim args>\" [\"<vpcsim args>\" ...]\n"
    "\n"
    "  --threads=N   worker threads (default: VPC_SWEEP_THREADS env\n"
    "                var, else hardware concurrency; 1 = serial)\n"
    "\n"
    "Each quoted job string is parsed exactly like a vpcsim command\n"
    "line.  Jobs run concurrently but results print in job order.\n";

struct JobResult
{
    std::string output;
    std::uint64_t simCycles = 0;
    bool failed = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace vpc;

    unsigned threads = 0;
    std::vector<std::string> jobSpecs;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0) {
            threads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        } else if (arg == "--help") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            jobSpecs.push_back(std::move(arg));
        }
    }
    if (jobSpecs.empty()) {
        std::fputs(kUsage, stderr);
        return 1;
    }

    // Parse every job up front so a typo fails fast, before any
    // simulation has burned time.
    std::vector<SimOptions> jobs;
    for (std::size_t j = 0; j < jobSpecs.size(); ++j) {
        std::string error;
        std::optional<SimOptions> opts =
            parseSimOptions(splitTokens(jobSpecs[j]), error);
        if (!opts) {
            std::fprintf(stderr, "job %zu: %s\n", j, error.c_str());
            return 1;
        }
        jobs.push_back(std::move(*opts));
    }

    unsigned workers = sweepThreads(threads);
    std::vector<JobResult> results(jobs.size());

    auto t0 = std::chrono::steady_clock::now();
    parallelFor(jobs.size(), [&](std::size_t j) {
        const SimOptions &opts = jobs[j];
        JobResult &r = results[j];
        try {
            CmpSystem sys(opts.config, opts.buildWorkloads());
            IntervalStats stats = sys.runAndMeasure(opts.warmup,
                                                    opts.measure);
            r.simCycles = sys.now();
            r.output = format("job {}: {}\n", j, jobSpecs[j]);
            for (unsigned t = 0; t < opts.config.numProcessors; ++t) {
                r.output += format(
                    "  thread {} {:<10} phi {:.2f} beta {:.2f} "
                    "ipc {:.3f} l2 {}r/{}w/{}m\n",
                    t, opts.workloadSpecs[t],
                    opts.config.shares[t].phi,
                    opts.config.shares[t].beta, stats.ipc[t],
                    stats.l2Reads[t], stats.l2Writes[t],
                    stats.l2Misses[t]);
            }
        } catch (const std::exception &e) {
            r.failed = true;
            r.output = format("job {}: FAILED: {}\n", j, e.what());
        }
    }, workers);
    auto t1 = std::chrono::steady_clock::now();

    bool any_failed = false;
    std::uint64_t total_cycles = 0;
    for (const JobResult &r : results) {
        std::fputs(r.output.c_str(), stdout);
        any_failed = any_failed || r.failed;
        total_cycles += r.simCycles;
    }

    double wall_s = std::chrono::duration<double>(t1 - t0).count();
    std::printf("sweep: %zu jobs on %u threads, %.2f s wall, "
                "%.2f Mcycles/s aggregate\n",
                jobs.size(), workers, wall_s,
                wall_s > 0.0
                ? static_cast<double>(total_cycles) / wall_s / 1e6
                : 0.0);
    return any_failed ? 1 : 0;
}
