/**
 * @file
 * Extension experiment: VPC-supported prefetching (the paper's future
 * work, Section 5.1) and the performance-monotonicity caveat
 * (Section 4.3).
 *
 * Three questions:
 *  1. Does stride prefetching help a streaming thread?  (It should:
 *     prefetches hide L2/memory latency.)
 *  2. Does a prefetching thread disturb its neighbor's QoS under VPC?
 *     (It must not: prefetches consume the issuing thread's own
 *     shares, and demand requests go first within the thread.)
 *  3. The monotonicity caveat: giving the prefetching thread *more*
 *     bandwidth increases prefetch volume; for a pointer-chasing
 *     workload with poor stride predictability the extra (useless)
 *     prefetches can pollute the L1 and waste shared-resource time --
 *     performance need not increase monotonically with allocation.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"
#include "workload/synthetic.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

SyntheticParams
streamParams()
{
    SyntheticParams p;
    p.name = "stream";
    p.memFrac = 0.4;
    p.storeFrac = 0.1;
    p.workingSetBytes = 64ull << 20; // far beyond the L2: every
    p.hotFrac = 0.2;                 // working-set load goes to memory
    // Dependent loads serialize the *demand* miss stream (latency
    // bound); prefetches are address-predicted, so they run ahead of
    // the dependence chain -- the case prefetching exists for.
    p.depFrac = 0.8;
    p.streamFrac = 1.0; // perfectly stride-predictable
    return p;
}

IntervalStats
runPair(bool prefetch, double phi0, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    // Only the streaming thread prefetches; its neighbor is the
    // control for QoS interference.
    PrefetchConfig pf;
    pf.enable = prefetch;
    cfg.l1PrefetchPerThread = {pf, PrefetchConfig{}};
    cfg.allowUnallocatedShares = true; // phi0 = 1.0 endpoint
    cfg.shares = {QosShare{phi0, 0.5}, QosShare{1.0 - phi0, 0.5}};
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(streamParams(),
                                                     0, 1));
    wl.push_back(makeSpec2000("twolf", benchThreadBase(1),
                              benchThreadSeed(1)));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());
    return s;
}

} // namespace

int
main()
{
    BenchReporter rep("ablate_prefetch");
    TablePrinter t("Extension: VPC-supported prefetching "
                   "(streaming thread + twolf, phi split 50/50)",
                   {"Config", "stream IPC", "twolf IPC"}, 14);
    IntervalStats off = runPair(false, 0.5, rep);
    IntervalStats on = runPair(true, 0.5, rep);
    t.row({"prefetch off", TablePrinter::num(off.ipc.at(0)),
           TablePrinter::num(off.ipc.at(1))});
    t.row({"prefetch on", TablePrinter::num(on.ipc.at(0)),
           TablePrinter::num(on.ipc.at(1))});
    t.rule();
    std::printf("streaming speedup from prefetching: %+.1f%%; "
                "neighbor impact: %+.1f%% (must stay ~0 under VPC)\n",
                (on.ipc[0] - off.ipc[0]) / off.ipc[0] * 100.0,
                (on.ipc[1] - off.ipc[1]) / off.ipc[1] * 100.0);

    // Monotonicity probe: the same prefetching thread swept across
    // bandwidth allocations.  With prefetching enabled the curve is
    // *mostly* increasing, but pollution can flatten or locally
    // invert it -- the paper's argument for not guaranteeing
    // monotonicity in hardware.
    TablePrinter m("Monotonicity probe: streaming thread IPC vs its "
                   "bandwidth share (prefetch on)",
                   {"phi(stream)", "stream IPC (pf on)",
                    "stream IPC (pf off)"}, 19);
    for (double phi : {0.25, 0.5, 0.75, 1.0}) {
        IntervalStats s_on = runPair(true, phi, rep);
        IntervalStats s_off = runPair(false, phi, rep);
        m.row({TablePrinter::num(phi, 2),
               TablePrinter::num(s_on.ipc.at(0)),
               TablePrinter::num(s_off.ipc.at(0))});
    }
    m.rule();
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
