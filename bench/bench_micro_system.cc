/**
 * @file
 * Google-benchmark microbenchmarks of whole-simulator throughput:
 * simulated cycles per second of host time for representative
 * configurations.  Useful when sizing experiment sweeps.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/options.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"

namespace
{

using namespace vpc;

void
BM_SimulateLoadsStores(benchmark::State &state)
{
    auto policy = static_cast<ArbiterPolicy>(state.range(0));
    SystemConfig cfg = makeBaselineConfig(2, policy);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    for (auto _ : state)
        sys.run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
    state.SetLabel("simulated cycles");
}
BENCHMARK(BM_SimulateLoadsStores)
    ->Arg(static_cast<int>(ArbiterPolicy::Fcfs))
    ->Arg(static_cast<int>(ArbiterPolicy::Vpc));

void
BM_SimulateFourThreadSpec(benchmark::State &state)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    std::vector<std::unique_ptr<Workload>> wl;
    const char *mix[] = {"art", "mcf", "gzip", "sixtrack"};
    for (unsigned t = 0; t < 4; ++t)
        wl.push_back(makeSpec2000(mix[t], threadBaseAddr(t), t + 1));
    CmpSystem sys(cfg, std::move(wl));
    for (auto _ : state)
        sys.run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
    state.SetLabel("simulated cycles");
}
BENCHMARK(BM_SimulateFourThreadSpec);

void
BM_SimulateSharedMemoryChannel(benchmark::State &state)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.mem.sharedChannel = true;
    cfg.mem.schedulerPolicy = ArbiterPolicy::Vpc;
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < 4; ++t)
        wl.push_back(makeSpec2000("swim", threadBaseAddr(t), t + 1));
    CmpSystem sys(cfg, std::move(wl));
    for (auto _ : state)
        sys.run(1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
    state.SetLabel("simulated cycles");
}
BENCHMARK(BM_SimulateSharedMemoryChannel);

} // namespace
