/**
 * @file
 * Ablation: the VPC Capacity Manager (way partitioning) vs
 * unpartitioned global LRU under cache-hungry co-runners
 * (Section 4.2).
 *
 * The subject thread has a working set that fits comfortably in its
 * capacity allocation and reuses it heavily; the co-runners stream
 * through working sets far larger than the whole L2.  Under global LRU
 * the streamers' fills evict the subject's resident set between its
 * reuses (negative capacity interference); the VPC Capacity Manager
 * confines each streamer to its way allocation and preserves the
 * subject's hit rate.
 *
 * The experiment runs on a scaled-down L2 (1MB, 16-way): with the
 * full 16MB cache the streamers' DRAM-bound fill rate cannot turn the
 * cache over within a feasible simulation window, which would make
 * the two policies trivially indistinguishable rather than equally
 * good.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/synthetic.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 500'000;
constexpr Cycle kMeasure = 800'000;

SyntheticParams
subjectParams()
{
    SyntheticParams p;
    p.name = "resident";
    // A low-rate subject with a large reuse distance: its working set
    // fits the 256KB (1/4-of-cache) allocation, but the time between
    // reuses of a line exceeds the interval in which the streamers'
    // fills cycle an unpartitioned set -- the regime where global LRU
    // loses the subject's lines and way partitioning keeps them.
    p.memFrac = 0.12;
    p.storeFrac = 0.1;
    p.workingSetBytes = 192ull << 10;
    p.hotFrac = 0.0;
    p.depFrac = 0.4; // latency sensitive
    p.streamFrac = 0.0;
    return p;
}

SyntheticParams
streamerParams()
{
    SyntheticParams p;
    p.name = "streamer";
    p.memFrac = 0.6;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20; // 64x the L2
    p.hotFrac = 0.0;
    p.depFrac = 0.0;
    p.streamFrac = 1.0;
    return p;
}

struct Result
{
    double subjectIpc;
    double subjectMissRate;
};

Result
run(CapacityPolicy capacity, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    cfg.capacityPolicy = capacity;
    cfg.l2.sizeBytes = 1ull << 20; // scaled-down cache (see above)
    cfg.l2.ways = 16;
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(subjectParams(),
                                                     0, 1));
    for (unsigned t = 1; t < 4; ++t) {
        wl.push_back(std::make_unique<SyntheticWorkload>(
            streamerParams(), benchThreadBase(t),
            benchThreadSeed(t)));
    }
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());
    Result r;
    r.subjectIpc = s.ipc.at(0);
    std::uint64_t accesses = s.l2Reads.at(0) + s.l2Writes.at(0);
    r.subjectMissRate = accesses == 0 ? 0.0
        : static_cast<double>(s.l2Misses.at(0)) /
          static_cast<double>(accesses);
    return r;
}

} // namespace

int
main()
{
    BenchReporter rep("ablate_capacity");
    Result vpc = run(CapacityPolicy::Vpc, rep);
    Result lru = run(CapacityPolicy::Lru, rep);

    TablePrinter t("Ablation: VPC Capacity Manager vs global LRU "
                   "(resident subject + 3 streaming co-runners, "
                   "1MB/16-way L2)",
                   {"Capacity policy", "Subject IPC",
                    "Subject L2 miss rate"}, 22);
    t.row({"VPC (way partition)", TablePrinter::num(vpc.subjectIpc),
           TablePrinter::pct(vpc.subjectMissRate)});
    t.row({"global LRU", TablePrinter::num(lru.subjectIpc),
           TablePrinter::pct(lru.subjectMissRate)});
    t.rule();
    std::printf("capacity QoS benefit: subject IPC %+.1f%% under way "
                "partitioning\n",
                (vpc.subjectIpc - lru.subjectIpc) / lru.subjectIpc *
                100.0);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
