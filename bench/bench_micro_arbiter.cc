/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths: the
 * arbiter decision loops.  These bound the simulator's own throughput
 * (grants per second), not the modeled machine's performance.
 */

#include <benchmark/benchmark.h>

#include "arbiter/fcfs_arbiter.hh"
#include "arbiter/row_fcfs_arbiter.hh"
#include "arbiter/vpc_arbiter.hh"

namespace
{

using namespace vpc;

ArbRequest
makeReq(ThreadId t, SeqNum seq, bool write)
{
    ArbRequest r;
    r.thread = t;
    r.seq = seq;
    r.isWrite = write;
    r.lineAddr = 0x40 * (seq % 64);
    return r;
}

template <typename ArbT>
void
pump(ArbT &arb, benchmark::State &state, unsigned threads)
{
    SeqNum seq = 0;
    Cycle now = 0;
    for (auto _ : state) {
        for (ThreadId t = 0; t < threads; ++t) {
            while (arb.pendingCount(t) < 4)
                arb.enqueue(makeReq(t, seq, seq % 3 == 0), now);
            ++seq;
        }
        auto r = arb.select(now);
        benchmark::DoNotOptimize(r);
        now += 8;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FcfsArbiter(benchmark::State &state)
{
    unsigned threads = static_cast<unsigned>(state.range(0));
    FcfsArbiter arb(threads);
    pump(arb, state, threads);
}
BENCHMARK(BM_FcfsArbiter)->Arg(2)->Arg(4)->Arg(8);

void
BM_RowFcfsArbiter(benchmark::State &state)
{
    unsigned threads = static_cast<unsigned>(state.range(0));
    RowFcfsArbiter arb(threads);
    pump(arb, state, threads);
}
BENCHMARK(BM_RowFcfsArbiter)->Arg(2)->Arg(4)->Arg(8);

void
BM_VpcArbiter(benchmark::State &state)
{
    unsigned threads = static_cast<unsigned>(state.range(0));
    std::vector<double> shares(threads, 1.0 / threads);
    VpcArbiter arb(threads, 8, 2, shares);
    pump(arb, state, threads);
}
BENCHMARK(BM_VpcArbiter)->Arg(2)->Arg(4)->Arg(8);

void
BM_VpcArbiterNoReorder(benchmark::State &state)
{
    unsigned threads = static_cast<unsigned>(state.range(0));
    std::vector<double> shares(threads, 1.0 / threads);
    VpcArbiterOptions opts;
    opts.intraThreadRow = false;
    VpcArbiter arb(threads, 8, 2, shares, opts);
    pump(arb, state, threads);
}
BENCHMARK(BM_VpcArbiterNoReorder)->Arg(4);

} // namespace
