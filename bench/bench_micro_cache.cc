/**
 * @file
 * Microbenchmarks of the SoA hot scans (DESIGN.md 5i): the
 * way-parallel tag match (CacheArray::lookup), the victim scan
 * (CacheArray::insert -> minStampWay / overage masks) and the RoW
 * candidate scan (rowCandidateIndex), each over every PolicyKind the
 * devirtualized fill path dispatches on.
 *
 * Every case runs twice — once with vec::forceScalar set (the scalar
 * reference bodies) and once on the compiled vector path — so the
 * report shows the SIMD speedup directly, and the two passes are
 * cross-checked (hit counts and victim checksums must agree, a cheap
 * standing instance of the SoA oracle differential).  In a
 * -DVPC_SIMD=OFF build both passes run scalar and the ratio is ~1.
 *
 * Flags:
 *   --smoke       reduced iteration counts (the tier-1 ctest entry)
 *   --json=PATH   JSON report path (default BENCH_micro_cache.json)
 *
 * The JSON rides on BenchReporter: "sim_cycles"/"events_fired" carry
 * the total scan operations, and the per-case ns/op table lands in a
 * "micro_cache" section.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arbiter/arb_request.hh"
#include "arbiter/row_scan.hh"
#include "bench_common.hh"
#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "sim/vec.hh"

using namespace vpc;

namespace
{

/** xorshift64*: cheap deterministic address stream. */
std::uint64_t
nextRand(std::uint64_t &s)
{
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
}

/** LRU with the virtual-dispatch tag: exercises PolicyKind::Other. */
class OracleLru : public LruReplacement
{
  public:
    PolicyKind kind() const override { return PolicyKind::Other; }
    std::string name() const override { return "OracleLRU"; }
};

constexpr unsigned kSets = 256;
constexpr unsigned kWays = 16;
constexpr unsigned kLine = 64;
constexpr unsigned kThreads = 4;

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind)
{
    std::vector<double> betas(kThreads, 1.0 / kThreads);
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruReplacement>();
      case PolicyKind::Vpc:
        return std::make_unique<VpcCapacityManager>(betas, kWays);
      case PolicyKind::GlobalOccupancy:
        return std::make_unique<GlobalOccupancyManager>(
            betas, std::uint64_t{kSets} * kWays);
      case PolicyKind::Other:
        return std::make_unique<OracleLru>();
    }
    return nullptr;
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru: return "lru";
      case PolicyKind::Vpc: return "vpc";
      case PolicyKind::GlobalOccupancy: return "global_occ";
      case PolicyKind::Other: return "oracle";
    }
    return "?";
}

struct CaseResult
{
    std::string label;
    double nsPerOpScalar = 0.0;
    double nsPerOpVector = 0.0;
    std::uint64_t ops = 0;
};

/**
 * Time @p ops invocations of @p body (called with the op index) and
 * return ns/op.  @p checksum accumulates body results so the work is
 * observable and the scalar/vector passes can be cross-checked.
 */
template <class Body>
double
timeLoop(std::uint64_t ops, std::uint64_t &checksum, Body &&body)
{
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ops; ++i)
        checksum += body(i);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(ops);
}

/**
 * One scalar-then-vector measurement of @p body on a fresh fixture
 * from @p make.  Panics (exit 1) if the two passes disagree.
 */
template <class Make, class Run>
CaseResult
differential(const std::string &label, std::uint64_t ops,
             Make &&make, Run &&run)
{
    CaseResult r;
    r.label = label;
    r.ops = 2 * ops;
    std::uint64_t sumScalar = 0, sumVector = 0;

    vec::forceScalar = true;
    {
        auto fixture = make();
        r.nsPerOpScalar = timeLoop(ops, sumScalar, [&](std::uint64_t i) {
            return run(*fixture, i);
        });
    }
    vec::forceScalar = false;
    {
        auto fixture = make();
        r.nsPerOpVector = timeLoop(ops, sumVector, [&](std::uint64_t i) {
            return run(*fixture, i);
        });
    }
    if (sumScalar != sumVector) {
        std::fprintf(stderr,
                     "bench_micro_cache: %s: scalar/vector checksum "
                     "mismatch (%llu vs %llu)\n",
                     label.c_str(),
                     static_cast<unsigned long long>(sumScalar),
                     static_cast<unsigned long long>(sumVector));
        std::exit(1);
    }
    return r;
}

/** A filled CacheArray plus the address stream that filled it. */
struct CacheFixture
{
    std::unique_ptr<CacheArray> array;
    std::vector<Addr> addrs;
};

std::unique_ptr<CacheFixture>
makeCacheFixture(PolicyKind kind, std::uint64_t footprint_lines)
{
    auto f = std::make_unique<CacheFixture>();
    f->array = std::make_unique<CacheArray>(kSets, kWays, kLine,
                                            makePolicy(kind));
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
    f->addrs.reserve(footprint_lines);
    for (std::uint64_t i = 0; i < footprint_lines; ++i)
        f->addrs.push_back((nextRand(seed) % footprint_lines) * kLine);
    for (std::uint64_t i = 0; i < footprint_lines; ++i) {
        f->array->insert(f->addrs[i],
                         static_cast<ThreadId>(i % kThreads),
                         (i & 7) == 0);
    }
    return f;
}

/** RoW queues: mixed reads/writes/prefetches with same-line hazards. */
struct RowFixture
{
    std::vector<std::vector<ArbRequest>> queues;
    mutable std::vector<Addr> scratch;
};

std::unique_ptr<RowFixture>
makeRowFixture(std::size_t num_queues, std::size_t depth)
{
    auto f = std::make_unique<RowFixture>();
    std::uint64_t seed = 0xC0FFEE123456789ull;
    f->queues.resize(num_queues);
    SeqNum seq = 0;
    for (auto &q : f->queues) {
        for (std::size_t i = 0; i < depth; ++i) {
            ArbRequest r;
            r.thread = 0;
            r.seq = seq++;
            std::uint64_t x = nextRand(seed);
            r.isWrite = (x & 3) == 0;
            r.isPrefetch = !r.isWrite && (x & 4) == 0;
            // Small address pool so read-over-write hazards actually
            // occur and the exact-membership probe runs.
            r.lineAddr = ((x >> 3) % 24) * kLine;
            q.push_back(r);
        }
    }
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            jsonPath = arg + 7;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            return 1;
        }
    }

    const std::uint64_t lookups = smoke ? 20'000 : 2'000'000;
    const std::uint64_t inserts = smoke ? 10'000 : 1'000'000;
    const std::uint64_t rowScans = smoke ? 5'000 : 500'000;

    BenchReporter rep("micro_cache");
    rep.setQuick(smoke);
    std::vector<CaseResult> results;

    const PolicyKind kinds[] = {PolicyKind::Lru, PolicyKind::Vpc,
                                PolicyKind::GlobalOccupancy,
                                PolicyKind::Other};
    for (PolicyKind kind : kinds) {
        // Tag match: ~2x the cache's line capacity, so the stream
        // mixes hits and misses and every lookup scans a full set.
        const std::uint64_t footprint = 2ull * kSets * kWays;
        results.push_back(differential(
            std::string("tag_match/") + policyName(kind), lookups,
            [&] { return makeCacheFixture(kind, footprint); },
            [](CacheFixture &f, std::uint64_t i) -> std::uint64_t {
                Addr a = f.addrs[i % f.addrs.size()];
                return f.array->lookup(
                    a, true,
                    static_cast<ThreadId>(i % kThreads)) ? 1 : 0;
            }));

        // Victim scan: every insert displaces a line once the array
        // is full, so this times chooseVictim (min-stamp scan under
        // LRU, the overage-mask walk under the capacity managers).
        results.push_back(differential(
            std::string("victim_scan/") + policyName(kind), inserts,
            [&] { return makeCacheFixture(kind, footprint); },
            [](CacheFixture &f, std::uint64_t i) -> std::uint64_t {
                Addr a = f.addrs[(i * 7) % f.addrs.size()] +
                         (i << 24);
                Eviction ev = f.array->insert(
                    a, static_cast<ThreadId>(i % kThreads), false);
                return ev.valid ? (ev.lineAddr & 0xFFFF) : 0;
            }));
    }

    // RoW candidate scan: policy-independent (both the VPC arbiter's
    // intra-thread reorder and the RoW-FCFS baseline run this).
    results.push_back(differential(
        "row_scan/deep32", rowScans,
        [] { return makeRowFixture(64, 32); },
        [](RowFixture &f, std::uint64_t i) -> std::uint64_t {
            const auto &q = f.queues[i % f.queues.size()];
            return rowCandidateIndex(q, f.scratch);
        }));

    std::uint64_t totalOps = 0;
    for (const CaseResult &r : results)
        totalOps += r.ops;
    KernelStats k;
    k.cyclesExecuted.inc(totalOps);
    k.eventsFired.inc(totalOps);
    rep.addRun(totalOps, k);
    rep.finish();

    std::fprintf(stderr, "%-28s %12s %12s %8s\n", "case",
                 "scalar ns/op", "simd ns/op", "speedup");
    std::string json = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        double speedup = r.nsPerOpVector > 0.0
            ? r.nsPerOpScalar / r.nsPerOpVector : 0.0;
        std::fprintf(stderr, "%-28s %12.1f %12.1f %7.2fx\n",
                     r.label.c_str(), r.nsPerOpScalar,
                     r.nsPerOpVector, speedup);
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "%s\n    {\"case\": \"%s\", "
                      "\"ns_per_op_scalar\": %.1f, "
                      "\"ns_per_op_simd\": %.1f}",
                      i == 0 ? "" : ",", r.label.c_str(),
                      r.nsPerOpScalar, r.nsPerOpVector);
        json += buf;
    }
    json += "\n  ]";
    rep.setExtraSection("micro_cache", json);

    rep.printSummary();
    rep.writeJson(jsonPath);
    return 0;
}
