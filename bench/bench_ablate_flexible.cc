/**
 * @file
 * Ablation: way partitioning (VPC Capacity Manager) vs flexible
 * whole-cache occupancy partitioning -- the Section 4.3 trade-off.
 *
 * Note the VPC Capacity Manager provides a per-set *minimum* ("at
 * least beta_i * ways"), not a cap, so a lone thread can still use
 * whole sets under either policy.  The policies differ exactly when a
 * set-hammering antagonist arrives:
 *
 * Scenario A (quiet partner): both policies let the subject hold its
 * full hot-set footprint -- way partitioning costs nothing here.
 *
 * Scenario B (set hammering): the antagonist demands every way of
 * the subject's hot sets while staying within its whole-cache quota.
 * Way partitioning guarantees the subject its beta * ways in every
 * set (its footprint is sized to exactly that quota, so it keeps
 * hitting); occupancy partitioning sees no over-quota thread and
 * falls back to LRU, letting the heavier antagonist strip the
 * subject's lines -- the per-set guarantee, and with it performance
 * monotonicity, is what the paper's restricted design buys.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/synthetic.hh"
#include "workload/workload.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 300'000;
constexpr Cycle kMeasure = 400'000;

/**
 * Loads concentrated in a few cache sets: hot_lines consecutive lines
 * define the set footprint, and depth aliases of each (spaced one
 * whole cache apart) demand that many ways per set.
 */
class HotSetWorkload : public Workload
{
  public:
    HotSetWorkload(Addr base, unsigned hot_lines, unsigned depth,
                   Addr cache_bytes, double mem_frac,
                   std::uint64_t seed)
        : base(base), hotLines(hot_lines), depth(depth),
          cacheBytes(cache_bytes), memFrac(mem_frac),
          rng(seed, 0x1234)
    {}

    MicroOp
    next() override
    {
        MicroOp op;
        if (!rng.chance(memFrac))
            return op;
        op.kind = MicroOp::Kind::Load;
        Addr line = 64ull * rng.below(hotLines);
        Addr alias = cacheBytes *
                     static_cast<Addr>(rng.below(depth));
        op.addr = base + line + alias;
        return op;
    }

    std::string name() const override { return "hotset"; }

    std::unique_ptr<Workload>
    clone(std::uint64_t seed) const override
    {
        return std::make_unique<HotSetWorkload>(base, hotLines, depth,
                                                cacheBytes, memFrac,
                                                seed);
    }

  private:
    Addr base;
    unsigned hotLines;
    unsigned depth;
    Addr cacheBytes;
    double memFrac;
    Rng rng;
};

struct Result
{
    double ipc;
    double missRate;
};

Result
run(CapacityPolicy capacity, unsigned antagonist_depth,
    BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.capacityPolicy = capacity;
    // Scaled-down L2 so the scenario's footprints are exercised in a
    // feasible window (as in bench_ablate_capacity).
    cfg.l2.sizeBytes = 1ull << 20;
    cfg.l2.ways = 16;
    cfg.validate();
    constexpr Addr kCacheBytes = 1ull << 20;

    std::vector<std::unique_ptr<Workload>> wl;
    // Subject: 32 hot lines x 8 ways demanded -- sized exactly at its
    // beta * ways = 8-way per-set quota, so the VPC manager can
    // protect all of it.  The low access rate gives each line a long
    // reuse interval: under plain LRU, lines with long reuse are
    // exactly the ones a churning antagonist strips (a hot subject
    // would defend itself by recency alone).
    wl.push_back(std::make_unique<HotSetWorkload>(
        0, 32, 8, kCacheBytes, 0.002, 1));
    // Antagonist: same 32 sets (same line offsets in its own address
    // space alias to the same sets); depth controls how many ways per
    // set it churns through while staying far under its whole-cache
    // quota (32 * depth <= 2048 lines << 8192).
    wl.push_back(std::make_unique<HotSetWorkload>(
        benchThreadBase(1), 32, antagonist_depth, kCacheBytes, 0.6,
        2));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());
    Result r;
    r.ipc = s.ipc.at(0);
    std::uint64_t acc = s.l2Reads.at(0) + s.l2Writes.at(0);
    r.missRate = acc == 0 ? 0.0
        : static_cast<double>(s.l2Misses.at(0)) /
          static_cast<double>(acc);
    return r;
}

} // namespace

int
main()
{
    BenchReporter rep("ablate_flexible");
    // Scenario A: a nearly-quiet partner (depth 1: one way per set).
    Result way_a = run(CapacityPolicy::Vpc, 1, rep);
    Result flex_a = run(CapacityPolicy::GlobalOccupancy, 1, rep);
    // Scenario B: the antagonist churns through 64 aliases per set
    // (constant misses, constant fills) while staying within its
    // whole-cache global quota.
    Result way_b = run(CapacityPolicy::Vpc, 64, rep);
    Result flex_b = run(CapacityPolicy::GlobalOccupancy, 64, rep);

    TablePrinter t("Ablation: way partitioning vs flexible occupancy "
                   "partitioning (Section 4.3 trade-off, 1MB/16-way "
                   "L2)",
                   {"Scenario", "Policy", "Subject IPC",
                    "Subject miss rate"}, 19);
    t.row({"A: quiet partner", "VPC ways",
           TablePrinter::num(way_a.ipc),
           TablePrinter::pct(way_a.missRate)});
    t.row({"A: quiet partner", "GlobalOccupancy",
           TablePrinter::num(flex_a.ipc),
           TablePrinter::pct(flex_a.missRate)});
    t.row({"B: set hammering", "VPC ways",
           TablePrinter::num(way_b.ipc),
           TablePrinter::pct(way_b.missRate)});
    t.row({"B: set hammering", "GlobalOccupancy",
           TablePrinter::num(flex_b.ipc),
           TablePrinter::pct(flex_b.missRate)});
    t.rule();
    std::printf("with a quiet partner the policies tie (A: %+.1f%%); "
                "under set hammering the whole-cache quota misses the "
                "attack entirely and the subject loses %+.1f%% -- the "
                "per-set guarantee is what the paper's way "
                "partitioning buys\n",
                (flex_a.ipc - way_a.ipc) / way_a.ipc * 100.0,
                (flex_b.ipc - way_b.ipc) / way_b.ipc * 100.0);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
