/**
 * @file
 * Headline result (Sections 1 and 5): on a CMP running heterogeneous
 * workloads, VPC improves throughput over the FCFS baseline by
 * eliminating negative interference -- the paper reports +14% on the
 * harmonic mean of normalized IPCs and +25% on the minimum normalized
 * IPC.
 *
 * Runs a set of heterogeneous 4-benchmark SPEC mixes under FCFS and
 * under VPC with equal shares (phi_i = beta_i = 0.25); each thread's
 * IPC is normalized to its target IPC on the equivalently provisioned
 * private machine (phi = beta = 0.25).
 *
 * Every simulation (4 private targets + FCFS + VPC per mix) is an
 * independent job dispatched through the sweep harness, so the bench
 * scales with cores; results land in per-job slots and the table is
 * printed in mix order afterwards, making stdout identical for any
 * worker count -- and identical between the skipping kernel and
 * --no-skip (the differential check the perf claim rests on).
 *
 * Flags:
 *   --smoke       2 mixes, short runs, --paranoid auditing + watchdog
 *                 (serial: auditors install process-global hooks)
 *   --profile     attach the cycle-attribution profiler to every
 *                 simulation; the merged per-component table goes to
 *                 stderr and into the JSON's "profile" section
 *                 (model results and stdout are unchanged)
 *   --no-skip     run the naive kernel loop in every simulation
 *   --serial      one worker thread
 *   --threads=N   N sweep worker threads (default: auto)
 *   --kernel-threads=N  run every simulation on the shard-parallel
 *                 kernel with N workers (default 1: serial kernel);
 *                 stdout is bit-identical either way (DESIGN.md 5d)
 *   --json=PATH   JSON report path (default BENCH_headline.json)
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/sweep.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

using Mix = std::array<std::string, 4>;

struct BenchOptions
{
    bool smoke = false;
    bool skip = true;
    bool profile = false;
    unsigned threads = 0;
    unsigned kernelThreads = 1;
    std::string jsonPath;
    RunLengths lens{kWarmup, kMeasure};
};

std::vector<double>
runMix(const Mix &mix, ArbiterPolicy policy, const BenchOptions &opt,
       BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(4, policy);
    cfg.kernelSkip = opt.skip;
    cfg.kernelThreads = opt.kernelThreads;
    cfg.profile = opt.profile;
    if (opt.smoke) {
        cfg.verify.paranoid = 1;
        cfg.verify.watchdogCycles = 10'000;
    }
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < 4; ++t)
        wl.push_back(makeSpec2000(mix[t], (1ull << 40) * t, t + 1));
    CmpSystem sys(cfg, std::move(wl));
    std::vector<double> ipc =
        sys.runAndMeasure(opt.lens.warmup, opt.lens.measure).ipc;
    rep.addRun(sys.now(), sys.kernelStats());
    if (sys.profiling())
        rep.addProfile(sys.mergedProfile());
    return ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(arg, "--no-skip") == 0) {
            opt.skip = false;
        } else if (std::strcmp(arg, "--profile") == 0) {
            opt.profile = true;
        } else if (std::strcmp(arg, "--serial") == 0) {
            opt.threads = 1;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            opt.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--kernel-threads=", 17) == 0) {
            opt.kernelThreads = static_cast<unsigned>(
                std::strtoul(arg + 17, nullptr, 10));
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            opt.jsonPath = arg + 7;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            return 1;
        }
    }

    // Heterogeneous mixes.  The paper's throughput claim concerns the
    // contended regime ("on a four thread workload, the cache
    // approaches full utilization"), so the mixes are weighted toward
    // the aggressive top of Figure 6, with moderate and meek partners
    // mixed in.
    std::vector<Mix> mixes = {
        {"art", "vpr", "mesa", "crafty"},
        {"art", "mesa", "gap", "gcc"},
        {"vpr", "crafty", "gzip", "twolf"},
        {"art", "vpr", "gap", "apsi"},
        {"mesa", "crafty", "gcc", "gzip"},
        {"art", "crafty", "twolf", "bzip2"},
        {"vpr", "mesa", "apsi", "wupwise"},
        {"art", "gap", "gcc", "mgrid"},
        {"art", "mcf", "equake", "swim"},
        {"crafty", "gzip", "ammp", "sixtrack"},
    };
    if (opt.smoke) {
        mixes.resize(2);
        opt.lens = RunLengths{2'000, 8'000};
        // Auditors register process-global panic-dump hooks; keep
        // audited jobs off the thread pool (see system/sweep.hh) and
        // on the serial kernel (the sharded kernel excludes them).
        opt.threads = 1;
        opt.kernelThreads = 1;
    }

    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    base.kernelSkip = opt.skip;
    base.kernelThreads = opt.kernelThreads;
    base.profile = opt.profile;
    if (opt.smoke) {
        base.verify.paranoid = 1;
        base.verify.watchdogCycles = 10'000;
    }

    BenchReporter rep(opt.smoke ? "headline_smoke" : "headline");

    // One job per simulation: per mix, 4 private-machine targets plus
    // the FCFS and VPC shared runs.  Results go into per-index slots;
    // nothing is printed until every job joined.
    const std::size_t n = mixes.size();
    std::vector<std::array<double, 4>> targets(n);
    std::vector<std::vector<double>> fcfs(n), vpc_ipc(n);

    struct Job { std::size_t mix; int kind; };  // kind 0-3: target
                                                // thread, 4: FCFS,
                                                // 5: VPC
    std::vector<Job> jobs;
    for (std::size_t m = 0; m < n; ++m) {
        for (int k = 0; k < 6; ++k)
            jobs.push_back({m, k});
    }

    parallelFor(jobs.size(), [&](std::size_t j) {
        const Job &job = jobs[j];
        const Mix &mix = mixes[job.mix];
        if (job.kind < 4) {
            unsigned t = static_cast<unsigned>(job.kind);
            auto wl = makeSpec2000(mix[t], (1ull << 40) * t, t + 1);
            KernelStats k;
            Profiler prof;
            targets[job.mix][t] =
                targetIpc(base, *wl, 0.25, 0.25, opt.lens, &k,
                          opt.profile ? &prof : nullptr);
            rep.addRun(opt.lens.warmup + opt.lens.measure, k);
            if (opt.profile)
                rep.addProfile(prof);
        } else if (job.kind == 4) {
            fcfs[job.mix] = runMix(mix, ArbiterPolicy::Fcfs, opt, rep);
        } else {
            vpc_ipc[job.mix] = runMix(mix, ArbiterPolicy::Vpc, opt,
                                      rep);
        }
    }, opt.threads);
    rep.finish();

    TablePrinter t("Headline: heterogeneous 4-thread mixes, FCFS vs "
                   "VPC (normalized IPC vs the phi=beta=.25 private "
                   "target)",
                   {"Mix", "HM FCFS", "HM VPC", "Min FCFS", "Min VPC"},
                   12);

    double hm_fcfs_sum = 0.0, hm_vpc_sum = 0.0;
    double min_fcfs_sum = 0.0, min_vpc_sum = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        std::vector<double> nf, nv;
        for (unsigned i = 0; i < 4; ++i) {
            double tgt = targets[m][i] > 0 ? targets[m][i] : 1e-9;
            nf.push_back(fcfs[m][i] / tgt);
            nv.push_back(vpc_ipc[m][i] / tgt);
        }
        double hm_f = harmonicMean(nf), hm_v = harmonicMean(nv);
        double mn_f = minimum(nf), mn_v = minimum(nv);
        hm_fcfs_sum += hm_f;
        hm_vpc_sum += hm_v;
        min_fcfs_sum += mn_f;
        min_vpc_sum += mn_v;
        const Mix &mix = mixes[m];
        t.row({mix[0] + "+" + mix[1] + "+" + mix[2] + "+" + mix[3],
               TablePrinter::num(hm_f), TablePrinter::num(hm_v),
               TablePrinter::num(mn_f), TablePrinter::num(mn_v)});
    }
    t.rule();
    double cnt = static_cast<double>(n);
    double hm_gain = (hm_vpc_sum - hm_fcfs_sum) / hm_fcfs_sum * 100.0;
    double min_gain =
        (min_vpc_sum - min_fcfs_sum) / min_fcfs_sum * 100.0;
    t.row({"average", TablePrinter::num(hm_fcfs_sum / cnt),
           TablePrinter::num(hm_vpc_sum / cnt),
           TablePrinter::num(min_fcfs_sum / cnt),
           TablePrinter::num(min_vpc_sum / cnt)});
    t.rule();
    std::printf("VPC vs FCFS: harmonic-mean normalized IPC %+.1f%% "
                "(paper: +14%%), minimum normalized IPC %+.1f%% "
                "(paper: +25%%)\n", hm_gain, min_gain);

    rep.printSummary();
    rep.writeJson(opt.jsonPath);
    return 0;
}
