/**
 * @file
 * Headline result (Sections 1 and 5): on a CMP running heterogeneous
 * workloads, VPC improves throughput over the FCFS baseline by
 * eliminating negative interference -- the paper reports +14% on the
 * harmonic mean of normalized IPCs and +25% on the minimum normalized
 * IPC.
 *
 * Runs a set of heterogeneous 4-benchmark SPEC mixes under FCFS and
 * under VPC with equal shares (phi_i = beta_i = 0.25); each thread's
 * IPC is normalized to its target IPC on the equivalently provisioned
 * private machine (phi = beta = 0.25).
 *
 * Every simulation (4 private targets + FCFS + VPC per mix) is an
 * independent job dispatched through the sweep harness, so the bench
 * scales with cores; results land in per-job slots and the table is
 * printed in mix order afterwards, making stdout identical for any
 * worker count -- and identical between the skipping kernel and
 * --no-skip (the differential check the perf claim rests on).
 *
 * Every job routes through a content-addressed RunCache: the four
 * private targets are keyed by (private config, workload spec/base/
 * seed, run lengths), so a benchmark appearing in the same thread
 * slot across mixes is simulated once and replayed from the in-
 * process map thereafter; --run-cache=DIR adds an on-disk store so a
 * rerun replays everything.  stdout is byte-identical with the cache
 * cold, warm, or absent (the cache differential test enforces it).
 *
 * Flags:
 *   --smoke       2 mixes, short runs, --paranoid auditing + watchdog
 *                 (serial: auditors install process-global hooks;
 *                 rejects explicit --threads/--kernel-threads > 1)
 *   --quick       2 mixes, short runs, no auditors -- the bounded mode
 *                 that still accepts --kernel-threads > 1, so CI can
 *                 smoke the shard-parallel kernel under TSan without
 *                 paying for the full mix set
 *   --profile     attach the cycle-attribution profiler to every
 *                 simulation; the merged per-component table goes to
 *                 stderr and into the JSON's "profile" section
 *                 (model results and stdout are unchanged)
 *   --no-skip     run the naive kernel loop in every simulation
 *   --serial      one worker thread
 *   --threads=N   N sweep worker threads (default: auto)
 *   --kernel-threads=N  run every simulation on the shard-parallel
 *                 kernel with N workers (default 1: serial kernel);
 *                 stdout is bit-identical either way (DESIGN.md 5d)
 *   --run-cache=DIR  persist run records in DIR and replay them on
 *                 reruns (hit/miss counts go to stderr and the JSON)
 *   --json=PATH   JSON report path (default BENCH_headline.json)
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/sweep.hh"
#include "system/table_printer.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

using Mix = std::array<std::string, 4>;

struct BenchOptions
{
    bool smoke = false;
    bool quick = false;
    bool skip = true;
    bool profile = false;
    unsigned threads = 0;
    unsigned kernelThreads = 1;
    std::string jsonPath;
    std::string runCacheDir;
    RunLengths lens{kWarmup, kMeasure};
};

/** Fold one cached-or-executed result into the report. */
void
report(const RunResult &r, BenchReporter &rep)
{
    rep.addRun(r.record.endCycle, r.record.kernel);
    if (r.hasProfile)
        rep.addProfile(r.profile);
}

std::vector<double>
runMix(const Mix &mix, ArbiterPolicy policy, const BenchOptions &opt,
       RunCache &cache, BenchReporter &rep)
{
    RunJob job;
    job.config = makeBaselineConfig(4, policy);
    job.config.kernelSkip = opt.skip;
    job.config.kernelThreads = opt.kernelThreads;
    job.config.profile = opt.profile;
    if (opt.smoke) {
        job.config.verify.paranoid = 1;
        job.config.verify.watchdogCycles = 10'000;
    }
    for (unsigned t = 0; t < 4; ++t)
        job.workloads.push_back(benchWorkloadKey(mix[t], t));
    job.warmup = opt.lens.warmup;
    job.measure = opt.lens.measure;
    RunResult r = runAndMeasureCached(job, &cache);
    report(r, rep);
    return r.record.stats.ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0) {
            opt.smoke = true;
        } else if (std::strcmp(arg, "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(arg, "--no-skip") == 0) {
            opt.skip = false;
        } else if (std::strcmp(arg, "--profile") == 0) {
            opt.profile = true;
        } else if (std::strcmp(arg, "--serial") == 0) {
            opt.threads = 1;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            opt.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--kernel-threads=", 17) == 0) {
            opt.kernelThreads = static_cast<unsigned>(
                std::strtoul(arg + 17, nullptr, 10));
        } else if (std::strncmp(arg, "--run-cache=", 12) == 0) {
            opt.runCacheDir = arg + 12;
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            opt.jsonPath = arg + 7;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            return 1;
        }
    }

    // Heterogeneous mixes.  The paper's throughput claim concerns the
    // contended regime ("on a four thread workload, the cache
    // approaches full utilization"), so the mixes are weighted toward
    // the aggressive top of Figure 6, with moderate and meek partners
    // mixed in.
    std::vector<Mix> mixes = {
        {"art", "vpr", "mesa", "crafty"},
        {"art", "mesa", "gap", "gcc"},
        {"vpr", "crafty", "gzip", "twolf"},
        {"art", "vpr", "gap", "apsi"},
        {"mesa", "crafty", "gcc", "gzip"},
        {"art", "crafty", "twolf", "bzip2"},
        {"vpr", "mesa", "apsi", "wupwise"},
        {"art", "gap", "gcc", "mgrid"},
        {"art", "mcf", "equake", "swim"},
        {"crafty", "gzip", "ammp", "sixtrack"},
    };
    if (opt.smoke) {
        // Auditors register process-global panic-dump hooks; audited
        // jobs must stay off the thread pool (see system/sweep.hh)
        // and on the serial kernel (the sharded kernel excludes
        // them).  Reject an explicit conflicting request instead of
        // silently overriding it.
        if (opt.threads > 1 || opt.kernelThreads > 1) {
            std::fprintf(stderr,
                         "bench_headline: --smoke runs paranoid "
                         "auditors with process-global state and is "
                         "strictly serial; drop --threads/"
                         "--kernel-threads > 1\n");
            return 1;
        }
        mixes.resize(2);
        opt.lens = RunLengths{2'000, 8'000};
        opt.threads = 1;
        opt.kernelThreads = 1;
    } else if (opt.quick) {
        // Same bound as --smoke but without the auditors, so any
        // --threads/--kernel-threads combination is fair game (this
        // is the TSan CI entry point for the shard-parallel kernel).
        mixes.resize(2);
        opt.lens = RunLengths{2'000, 8'000};
    }

    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    base.kernelSkip = opt.skip;
    base.kernelThreads = opt.kernelThreads;
    base.profile = opt.profile;
    if (opt.smoke) {
        base.verify.paranoid = 1;
        base.verify.watchdogCycles = 10'000;
    }

    BenchReporter rep(opt.smoke ? "headline_smoke"
                      : opt.quick ? "headline_quick" : "headline");
    rep.setKernelThreads(opt.kernelThreads);
    // Stamp reduced-scale rows so bench_diff never wall-gates a
    // quick row against a full one (--smoke already writes under a
    // different bench name; --quick shares "headline_quick" but the
    // stamp also guards hand-renamed rows).
    rep.setQuick(opt.smoke || opt.quick);
    // Always-on in-process memoization (repeated private targets
    // collapse); --run-cache adds the cross-invocation disk store.
    RunCache cache(opt.runCacheDir);

    // One job per simulation: per mix, 4 private-machine targets plus
    // the FCFS and VPC shared runs.  Results go into per-index slots;
    // nothing is printed until every job joined.
    const std::size_t n = mixes.size();
    std::vector<std::array<double, 4>> targets(n);
    std::vector<std::vector<double>> fcfs(n), vpc_ipc(n);

    struct Job { std::size_t mix; int kind; };  // kind 0-3: target
                                                // thread, 4: FCFS,
                                                // 5: VPC
    std::vector<Job> jobs;
    for (std::size_t m = 0; m < n; ++m) {
        for (int k = 0; k < 6; ++k)
            jobs.push_back({m, k});
    }

    parallelFor(jobs.size(), [&](std::size_t j) {
        const Job &job = jobs[j];
        const Mix &mix = mixes[job.mix];
        if (job.kind < 4) {
            // Target runs clone the thread's workload with seed 1
            // (see targetIpc), so the content key pins seed 1 too.
            unsigned t = static_cast<unsigned>(job.kind);
            WorkloadKey key{mix[t], benchThreadBase(t), 1};
            RunResult r =
                runTargetIpc(base, key, 0.25, 0.25, &cache, opt.lens);
            targets[job.mix][t] = r.record.stats.ipc.at(0);
            report(r, rep);
        } else if (job.kind == 4) {
            fcfs[job.mix] = runMix(mix, ArbiterPolicy::Fcfs, opt,
                                   cache, rep);
        } else {
            vpc_ipc[job.mix] = runMix(mix, ArbiterPolicy::Vpc, opt,
                                      cache, rep);
        }
    }, opt.threads);
    rep.setRunCacheStats(cache);
    rep.finish();

    TablePrinter t("Headline: heterogeneous 4-thread mixes, FCFS vs "
                   "VPC (normalized IPC vs the phi=beta=.25 private "
                   "target)",
                   {"Mix", "HM FCFS", "HM VPC", "Min FCFS", "Min VPC"},
                   12);

    double hm_fcfs_sum = 0.0, hm_vpc_sum = 0.0;
    double min_fcfs_sum = 0.0, min_vpc_sum = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
        std::vector<double> nf, nv;
        for (unsigned i = 0; i < 4; ++i) {
            double tgt = targets[m][i] > 0 ? targets[m][i] : 1e-9;
            nf.push_back(fcfs[m][i] / tgt);
            nv.push_back(vpc_ipc[m][i] / tgt);
        }
        double hm_f = harmonicMean(nf), hm_v = harmonicMean(nv);
        double mn_f = minimum(nf), mn_v = minimum(nv);
        hm_fcfs_sum += hm_f;
        hm_vpc_sum += hm_v;
        min_fcfs_sum += mn_f;
        min_vpc_sum += mn_v;
        const Mix &mix = mixes[m];
        t.row({mix[0] + "+" + mix[1] + "+" + mix[2] + "+" + mix[3],
               TablePrinter::num(hm_f), TablePrinter::num(hm_v),
               TablePrinter::num(mn_f), TablePrinter::num(mn_v)});
    }
    t.rule();
    double cnt = static_cast<double>(n);
    double hm_gain = (hm_vpc_sum - hm_fcfs_sum) / hm_fcfs_sum * 100.0;
    double min_gain =
        (min_vpc_sum - min_fcfs_sum) / min_fcfs_sum * 100.0;
    t.row({"average", TablePrinter::num(hm_fcfs_sum / cnt),
           TablePrinter::num(hm_vpc_sum / cnt),
           TablePrinter::num(min_fcfs_sum / cnt),
           TablePrinter::num(min_vpc_sum / cnt)});
    t.rule();
    std::printf("VPC vs FCFS: harmonic-mean normalized IPC %+.1f%% "
                "(paper: +14%%), minimum normalized IPC %+.1f%% "
                "(paper: +25%%)\n", hm_gain, min_gain);

    rep.printSummary();
    rep.writeJson(opt.jsonPath);
    return 0;
}
