/**
 * @file
 * Headline result (Sections 1 and 5): on a CMP running heterogeneous
 * workloads, VPC improves throughput over the FCFS baseline by
 * eliminating negative interference -- the paper reports +14% on the
 * harmonic mean of normalized IPCs and +25% on the minimum normalized
 * IPC.
 *
 * Runs a set of heterogeneous 4-benchmark SPEC mixes under FCFS and
 * under VPC with equal shares (phi_i = beta_i = 0.25); each thread's
 * IPC is normalized to its target IPC on the equivalently provisioned
 * private machine (phi = beta = 0.25).
 */

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

using Mix = std::array<std::string, 4>;

std::vector<double>
runMix(const Mix &mix, ArbiterPolicy policy)
{
    SystemConfig cfg = makeBaselineConfig(4, policy);
    std::vector<std::unique_ptr<Workload>> wl;
    for (unsigned t = 0; t < 4; ++t)
        wl.push_back(makeSpec2000(mix[t], (1ull << 40) * t, t + 1));
    CmpSystem sys(cfg, std::move(wl));
    return sys.runAndMeasure(kWarmup, kMeasure).ipc;
}

} // namespace

int
main()
{
    // Heterogeneous mixes.  The paper's throughput claim concerns the
    // contended regime ("on a four thread workload, the cache
    // approaches full utilization"), so the mixes are weighted toward
    // the aggressive top of Figure 6, with moderate and meek partners
    // mixed in.
    const std::vector<Mix> mixes = {
        {"art", "vpr", "mesa", "crafty"},
        {"art", "mesa", "gap", "gcc"},
        {"vpr", "crafty", "gzip", "twolf"},
        {"art", "vpr", "gap", "apsi"},
        {"mesa", "crafty", "gcc", "gzip"},
        {"art", "crafty", "twolf", "bzip2"},
        {"vpr", "mesa", "apsi", "wupwise"},
        {"art", "gap", "gcc", "mgrid"},
        {"art", "mcf", "equake", "swim"},
        {"crafty", "gzip", "ammp", "sixtrack"},
    };

    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};

    TablePrinter t("Headline: heterogeneous 4-thread mixes, FCFS vs "
                   "VPC (normalized IPC vs the phi=beta=.25 private "
                   "target)",
                   {"Mix", "HM FCFS", "HM VPC", "Min FCFS", "Min VPC"},
                   12);

    double hm_fcfs_sum = 0.0, hm_vpc_sum = 0.0;
    double min_fcfs_sum = 0.0, min_vpc_sum = 0.0;
    for (const Mix &mix : mixes) {
        std::vector<double> targets;
        for (unsigned i = 0; i < 4; ++i) {
            auto wl = makeSpec2000(mix[i], (1ull << 40) * i, i + 1);
            targets.push_back(targetIpc(base, *wl, 0.25, 0.25, lens));
        }
        std::vector<double> fcfs = runMix(mix, ArbiterPolicy::Fcfs);
        std::vector<double> vpc = runMix(mix, ArbiterPolicy::Vpc);
        std::vector<double> nf, nv;
        for (unsigned i = 0; i < 4; ++i) {
            double tgt = targets[i] > 0 ? targets[i] : 1e-9;
            nf.push_back(fcfs[i] / tgt);
            nv.push_back(vpc[i] / tgt);
        }
        double hm_f = harmonicMean(nf), hm_v = harmonicMean(nv);
        double mn_f = minimum(nf), mn_v = minimum(nv);
        hm_fcfs_sum += hm_f;
        hm_vpc_sum += hm_v;
        min_fcfs_sum += mn_f;
        min_vpc_sum += mn_v;
        t.row({mix[0] + "+" + mix[1] + "+" + mix[2] + "+" + mix[3],
               TablePrinter::num(hm_f), TablePrinter::num(hm_v),
               TablePrinter::num(mn_f), TablePrinter::num(mn_v)});
    }
    t.rule();
    double n = static_cast<double>(mixes.size());
    double hm_gain = (hm_vpc_sum - hm_fcfs_sum) / hm_fcfs_sum * 100.0;
    double min_gain =
        (min_vpc_sum - min_fcfs_sum) / min_fcfs_sum * 100.0;
    t.row({"average", TablePrinter::num(hm_fcfs_sum / n),
           TablePrinter::num(hm_vpc_sum / n),
           TablePrinter::num(min_fcfs_sum / n),
           TablePrinter::num(min_vpc_sum / n)});
    t.rule();
    std::printf("VPC vs FCFS: harmonic-mean normalized IPC %+.1f%% "
                "(paper: +14%%), minimum normalized IPC %+.1f%% "
                "(paper: +25%%)\n", hm_gain, min_gain);
    return 0;
}
