/**
 * @file
 * Figure 5: L2 cache utilization of the Loads and Stores
 * microbenchmarks with 2, 4, 8 and 16 cache banks (single thread,
 * uniprocessor RoW-FCFS baseline).
 *
 * Expected shape (paper): Loads fully utilizes two banks and reaches
 * ~80% on four (the LSU-reject mechanism makes loads enter the L2 out
 * of order, spoiling ideal bank interleaving); Stores' in-order writes
 * interleave ideally and keep the data array busy through eight banks.
 * Data-array and data-bus utilization are equal for Loads (the design
 * is balanced); stores do not use the data bus.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 50'000;
constexpr Cycle kMeasure = 200'000;

IntervalStats
runMicro(bool stores, unsigned banks, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    cfg.l2.banks = banks;
    cfg.validate();
    std::vector<std::unique_ptr<Workload>> wl;
    if (stores)
        wl.push_back(std::make_unique<StoresBenchmark>(0));
    else
        wl.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());
    return s;
}

} // namespace

int
main()
{
    BenchReporter rep("fig5");
    TablePrinter t("Figure 5: microbenchmark L2 cache utilization vs "
                   "bank count",
                   {"Benchmark", "DataArray", "DataBus", "TagArray",
                    "IPC"});
    for (bool stores : {false, true}) {
        for (unsigned banks : {2u, 4u, 8u, 16u}) {
            IntervalStats s = runMicro(stores, banks, rep);
            t.row({std::string(stores ? "Stores " : "Loads ") +
                       std::to_string(banks) + "B",
                   TablePrinter::pct(s.dataUtil),
                   TablePrinter::pct(s.busUtil),
                   TablePrinter::pct(s.tagUtil),
                   TablePrinter::num(s.ipc.at(0))});
        }
    }
    t.rule();
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
