/**
 * @file
 * Figure 4: cache timing diagram of back-to-back reads to different
 * cache banks.  Instruments one load hit per bank and prints the cycle
 * each pipeline stage occupies, verifying the 16-cycle critical word /
 * 22-cycle full-line timing of the paper.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "cache/l2_bank.hh"
#include "sim/simulator.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"

using namespace vpc;

namespace
{

struct StageTimes
{
    Cycle arrive = 0, tagStart = 0, tagDone = 0;
    Cycle dataStart = 0, dataDone = 0;
    Cycle busStart = 0, critical = 0, busDone = 0;
};

struct BankTicker : Ticking
{
    L2Bank *bank = nullptr;
    void tick(Cycle now) override { bank->tick(now); }
};

} // namespace

int
main()
{
    BenchReporter rep("fig4");
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    Simulator sim;
    MemoryController mc(cfg.mem, 1, 64, sim.events());
    std::vector<std::unique_ptr<L2Bank>> banks;
    std::vector<BankTicker> tickers(2);
    std::vector<StageTimes> times(2);

    for (unsigned b = 0; b < 2; ++b) {
        banks.push_back(std::make_unique<L2Bank>(cfg, b, 2, 1,
                                                 sim.events(), mc));
        tickers[b].bank = banks[b].get();
        sim.addTicking(&tickers[b]);
        banks[b]->setResponseHandler(
            [&times, b, &sim](ThreadId, Addr) {
                times[b].critical = sim.now();
            });
    }
    sim.addTicking(&mc);

    // Warm both lines so the measured accesses are hits.
    banks[0]->loadArrive(0, 0x0, 0);
    banks[1]->loadArrive(0, 0x40, 0);
    while (!(banks[0]->quiesced() && banks[1]->quiesced()))
        sim.step();

    // Instrument the resource grants.
    for (unsigned b = 0; b < 2; ++b) {
        banks[b]->tagArray().setGrantHandlerTap(
            [&times, b](const ArbRequest &, Cycle s, Cycle d) {
                times[b].tagStart = s;
                times[b].tagDone = d;
            });
        banks[b]->dataArray().setGrantHandlerTap(
            [&times, b](const ArbRequest &, Cycle s, Cycle d) {
                times[b].dataStart = s;
                times[b].dataDone = d;
            });
        banks[b]->dataBus().setGrantHandlerTap(
            [&times, b](const ArbRequest &, Cycle s, Cycle d) {
                times[b].busStart = s;
                times[b].busDone = d;
            });
    }

    // Issue the two back-to-back reads (bank 1 one cycle later, as in
    // the figure).
    Cycle t0 = sim.now() + (sim.now() % 2); // align to an L2 cycle
    while (sim.now() < t0)
        sim.step();
    times[0].arrive = sim.now();
    banks[0]->loadArrive(0, 0x0, sim.now());
    sim.step();
    sim.step();
    times[1].arrive = sim.now();
    banks[1]->loadArrive(0, 0x40, sim.now());
    while (!(banks[0]->quiesced() && banks[1]->quiesced()))
        sim.step();

    TablePrinter t("Figure 4: back-to-back reads to different banks "
                   "(cycles relative to first arrival; +2 request "
                   "crossbar cycles precede arrival)",
                   {"Stage", "Bank 1", "Bank 2"}, 14);
    Cycle base = times[0].arrive;
    auto rel = [base](Cycle c) {
        return std::to_string(static_cast<long long>(c - base) + 2);
    };
    t.row({"Tag array", rel(times[0].tagStart) + "-" +
           rel(times[0].tagDone), rel(times[1].tagStart) + "-" +
           rel(times[1].tagDone)});
    t.row({"Data array", rel(times[0].dataStart) + "-" +
           rel(times[0].dataDone), rel(times[1].dataStart) + "-" +
           rel(times[1].dataDone)});
    t.row({"Data bus", rel(times[0].busStart) + "-" +
           rel(times[0].busDone), rel(times[1].busStart) + "-" +
           rel(times[1].busDone)});
    t.row({"Critical word", rel(times[0].critical),
           rel(times[1].critical)});
    t.rule();

    bool ok = (times[0].critical - times[0].arrive) + 2 == 16 &&
              (times[0].busDone - times[0].arrive) + 2 == 22;
    std::printf("critical word at %lld cycles (paper: 16), full line "
                "at %lld (paper: 22): %s\n",
                static_cast<long long>(times[0].critical -
                                       times[0].arrive + 2),
                static_cast<long long>(times[0].busDone -
                                       times[0].arrive + 2),
                ok ? "MATCH" : "MISMATCH");
    rep.addRun(sim.now(), sim.kernelStats());
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return ok ? 0 : 1;
}
