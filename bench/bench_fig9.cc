/**
 * @file
 * Figure 9: each SPEC benchmark stand-in as the subject thread on
 * processor 1 with three aggressive Stores microbenchmarks as
 * background threads, under VPC with the subject allocated phi_1 in
 * {0.25, 0.5, 1.0} (leftover split equally among the background
 * threads), plus the FCFS baseline.  IPCs are normalized to the
 * subject's target IPC at phi_1 = 1 (private cache, full bandwidth,
 * 1/4 of the ways).
 *
 * Expected shape (paper): FCFS lets the background Stores threads
 * degrade the subject severely (up to ~87%); each VPC allocation
 * tracks or exceeds its corresponding target.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

double
runSubject(const std::string &name, ArbiterPolicy policy, double phi1,
           BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(4, policy);
    if (policy == ArbiterPolicy::Vpc) {
        double rest = (1.0 - phi1) / 3.0;
        cfg.allowUnallocatedShares = true; // phi1 = 1.0 endpoint
        cfg.shares = {QosShare{phi1, 0.25}, QosShare{rest, 0.25},
                      QosShare{rest, 0.25}, QosShare{rest, 0.25}};
        cfg.validate();
    }
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(makeSpec2000(name, 0, 1));
    for (unsigned t = 1; t < 4; ++t) {
        wl.push_back(std::make_unique<StoresBenchmark>(
            benchThreadBase(t)));
    }
    CmpSystem sys(cfg, std::move(wl));
    double ipc = sys.runAndMeasure(kWarmup, kMeasure).ipc.at(0);
    rep.addRun(sys.now(), sys.kernelStats());
    return ipc;
}

} // namespace

int
main()
{
    BenchReporter rep("fig9");
    SystemConfig base = makeBaselineConfig(4, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};

    TablePrinter t("Figure 9: SPEC subject + 3 background Stores "
                   "threads (IPC normalized to target at phi=1, "
                   "beta=.25)",
                   {"Benchmark", "FCFS", "VPC .25", "tgt .25",
                    "VPC .5", "tgt .5", "VPC 1", "min/tgt"});
    double worst_fcfs = 1.0;
    for (const std::string &name : spec2000Names()) {
        auto wl = makeSpec2000(name, 0, 1);
        KernelStats ks;
        double norm = targetIpc(base, *wl, 1.0, 0.25, lens, &ks);
        rep.addRun(lens.warmup + lens.measure, ks);
        if (norm <= 0.0)
            norm = 1e-9;
        ks.reset();
        double t25 =
            targetIpc(base, *wl, 0.25, 0.25, lens, &ks) / norm;
        rep.addRun(lens.warmup + lens.measure, ks);
        ks.reset();
        double t50 = targetIpc(base, *wl, 0.5, 0.25, lens, &ks) / norm;
        rep.addRun(lens.warmup + lens.measure, ks);

        double fcfs =
            runSubject(name, ArbiterPolicy::Fcfs, 0.0, rep) / norm;
        double v25 =
            runSubject(name, ArbiterPolicy::Vpc, 0.25, rep) / norm;
        double v50 =
            runSubject(name, ArbiterPolicy::Vpc, 0.5, rep) / norm;
        double v100 =
            runSubject(name, ArbiterPolicy::Vpc, 1.0, rep) / norm;
        worst_fcfs = std::min(worst_fcfs, fcfs);

        double ratio25 = t25 > 0 ? v25 / t25 : 0.0;
        double ratio50 = t50 > 0 ? v50 / t50 : 0.0;
        double min_ratio = std::min({ratio25, ratio50, v100});
        t.row({name, TablePrinter::num(fcfs),
               TablePrinter::num(v25), TablePrinter::num(t25),
               TablePrinter::num(v50), TablePrinter::num(t50),
               TablePrinter::num(v100),
               TablePrinter::num(min_ratio, 2)});
    }
    t.rule();
    std::printf("worst FCFS normalized IPC: %.3f (paper reports "
                "degradation of up to 87%%)\n", worst_fcfs);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
