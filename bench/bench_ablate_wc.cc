/**
 * @file
 * Ablation: work-conserving excess distribution on vs off
 * (Section 3.2).
 *
 * With a 50%/50% allocation and the partner idle, a work-conserving
 * VPC gives the active thread the idle bandwidth (it should approach
 * its phi=1 target); a non-work-conserving arbiter wastes it (the
 * thread is pinned near its phi=0.5 target).
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 50'000;
constexpr Cycle kMeasure = 200'000;

struct IdleWorkload : Workload
{
    MicroOp next() override { return MicroOp{}; }
    std::string name() const override { return "idle"; }
    std::unique_ptr<Workload> clone(std::uint64_t) const override
    {
        return std::make_unique<IdleWorkload>();
    }
};

double
run(bool work_conserving, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.vpcWorkConserving = work_conserving;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<IdleWorkload>());
    CmpSystem sys(cfg, std::move(wl));
    double ipc = sys.runAndMeasure(kWarmup, kMeasure).ipc.at(0);
    rep.addRun(sys.now(), sys.kernelStats());
    return ipc;
}

} // namespace

int
main()
{
    BenchReporter rep("ablate_wc");
    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};
    LoadsBenchmark loads(0);
    KernelStats ks;
    double target_half = targetIpc(base, loads, 0.5, 0.5, lens, &ks);
    rep.addRun(lens.warmup + lens.measure, ks);
    ks.reset();
    double target_full = targetIpc(base, loads, 1.0, 0.5, lens, &ks);
    rep.addRun(lens.warmup + lens.measure, ks);

    double wc = run(true, rep);
    double nwc = run(false, rep);

    TablePrinter t("Ablation: work conservation (Loads at phi=.5, "
                   "partner idle)",
                   {"Config", "Loads IPC", "phi=.5 target",
                    "phi=1 target"}, 15);
    t.row({"work-conserving", TablePrinter::num(wc),
           TablePrinter::num(target_half),
           TablePrinter::num(target_full)});
    t.row({"non-work-conserving", TablePrinter::num(nwc),
           TablePrinter::num(target_half),
           TablePrinter::num(target_full)});
    t.rule();
    std::printf("excess bandwidth recovered by work conservation: "
                "%+.1f%%\n", (wc - nwc) / nwc * 100.0);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
