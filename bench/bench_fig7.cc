/**
 * @file
 * Figure 7: percentage of L2 requests that are writes (after store
 * gathering) and the store gathering rate, per SPEC benchmark
 * stand-in.
 *
 * Expected shape (paper): writes average ~55% of L2 requests after
 * gathering; ~80% of stores gather and need no separate L2 access;
 * equake and swim have almost no L2 writes.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"

using namespace vpc;

int
main()
{
    constexpr Cycle kWarmup = 100'000;
    constexpr Cycle kMeasure = 300'000;

    BenchReporter rep("fig7");
    TablePrinter t("Figure 7: L2 write fraction and store gathering "
                   "rate (single thread, 2 banks)",
                   {"Benchmark", "L2 writes", "Gathering"});
    double mean_writes = 0.0, mean_gather = 0.0;
    const auto &names = spec2000Names();
    for (const std::string &name : names) {
        SystemConfig cfg = makeBaselineConfig(1,
                                              ArbiterPolicy::RowFcfs);
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(makeSpec2000(name, 0, 1));
        CmpSystem sys(cfg, std::move(wl));
        IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
        rep.addRun(sys.now(), sys.kernelStats());
        mean_writes += s.writeFraction(0);
        mean_gather += s.gatherRate(0);
        t.row({name, TablePrinter::pct(s.writeFraction(0)),
               TablePrinter::pct(s.gatherRate(0))});
    }
    t.rule();
    t.row({"mean", TablePrinter::pct(mean_writes / names.size()),
           TablePrinter::pct(mean_gather / names.size())});
    t.rule();
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
