/**
 * @file
 * Ablation: Equation 6 (idle-thread virtual-time reset) on vs off.
 *
 * Without Eq. 6 a thread that idles banks unbounded virtual-time
 * credit; when it wakes it monopolizes the resource until the credit
 * is repaid, starving the steady thread in bursts.  The bench runs a
 * steady Loads thread against a bursty Stores thread (long idle / long
 * burst phases) and reports the steady thread's worst observed IPC
 * over sub-intervals.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"

using namespace vpc;

namespace
{

/** Stores that alternate long idle and long burst phases. */
class BurstyStores : public Workload
{
  public:
    explicit BurstyStores(Addr base) : inner(base) {}

    MicroOp
    next() override
    {
        ++pos;
        // 30k-op idle phase, then 30k-op store burst.
        if ((pos / 30'000) % 2 == 0)
            return MicroOp{}; // compute
        return inner.next();
    }

    std::string name() const override { return "BurstyStores"; }

    std::unique_ptr<Workload>
    clone(std::uint64_t) const override
    {
        auto c = std::make_unique<BurstyStores>(0);
        return c;
    }

  private:
    StoresBenchmark inner;
    std::uint64_t pos = 0;
};

double
worstWindowIpc(bool idle_reset, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.vpcIdleReset = idle_reset;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<BurstyStores>(benchThreadBase(1)));
    CmpSystem sys(cfg, std::move(wl));
    sys.run(50'000);
    double worst = 1e9;
    SystemSnapshot prev = sys.snapshot();
    for (unsigned w = 0; w < 40; ++w) {
        sys.run(10'000);
        SystemSnapshot cur = sys.snapshot();
        IntervalStats s = CmpSystem::interval(prev, cur);
        worst = std::min(worst, s.ipc.at(0));
        prev = cur;
    }
    rep.addRun(sys.now(), sys.kernelStats());
    return worst;
}

} // namespace

int
main()
{
    BenchReporter rep("ablate_eq6");
    double with_eq6 = worstWindowIpc(true, rep);
    double without_eq6 = worstWindowIpc(false, rep);

    TablePrinter t("Ablation: Equation 6 idle-thread virtual-time "
                   "reset (steady Loads vs bursty Stores, equal "
                   "shares)",
                   {"Config", "Loads worst 10k-cycle IPC"}, 18);
    t.row({"Eq. 6 on", TablePrinter::num(with_eq6)});
    t.row({"Eq. 6 off", TablePrinter::num(without_eq6)});
    t.rule();
    std::printf("banked-credit starvation without Eq. 6: worst-window "
                "IPC %.3f -> %.3f\n", with_eq6, without_eq6);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
