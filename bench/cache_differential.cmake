# Run-cache differential: bench_headline's stdout must be
# byte-identical with no cache, a cold on-disk cache, and a warm
# on-disk cache.  Invoked as a tier-1 ctest (see CMakeLists.txt):
#
#   cmake -DBENCH=<bench_headline> -DWORK_DIR=<dir> -P this_file
#
# Exercises the whole memoization path end to end: digesting, disk
# record write-out, and replay on a fresh process.

if(NOT BENCH OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DBENCH=... -DWORK_DIR=... -P "
                        "cache_differential.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(CACHE_DIR "${WORK_DIR}/run-cache")

function(run_smoke label outvar)
    execute_process(
        COMMAND ${BENCH} --smoke ${ARGN}
                --json=${WORK_DIR}/BENCH_${label}.json
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${label} run failed (rc=${rc}):\n${err}")
    endif()
    set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

run_smoke(nocache NOCACHE_OUT)
run_smoke(cold COLD_OUT --run-cache=${CACHE_DIR})
run_smoke(warm WARM_OUT --run-cache=${CACHE_DIR})

if(NOT NOCACHE_OUT STREQUAL COLD_OUT)
    message(FATAL_ERROR "cold-cache stdout differs from cache-off:\n"
                        "--- cache off ---\n${NOCACHE_OUT}\n"
                        "--- cold cache ---\n${COLD_OUT}")
endif()
if(NOT NOCACHE_OUT STREQUAL WARM_OUT)
    message(FATAL_ERROR "warm-cache stdout differs from cache-off:\n"
                        "--- cache off ---\n${NOCACHE_OUT}\n"
                        "--- warm cache ---\n${WARM_OUT}")
endif()

# The warm run must actually have replayed from disk: its JSON
# reports zero misses.
file(READ "${WORK_DIR}/BENCH_warm.json" WARM_JSON)
if(NOT WARM_JSON MATCHES "\"misses\": 0")
    message(FATAL_ERROR "warm run was not served by the cache:\n"
                        "${WARM_JSON}")
endif()
if(WARM_JSON MATCHES "\"hits\": 0")
    message(FATAL_ERROR "warm run reports zero cache hits:\n"
                        "${WARM_JSON}")
endif()

message(STATUS "cache differential: stdout byte-identical "
               "(off / cold / warm), warm run fully cached")
