/**
 * @file
 * Figure 6: L2 cache utilization (data array, data bus, tag array) of
 * each SPEC 2000 benchmark stand-in, single thread on the 2-bank
 * baseline.
 *
 * Expected shape (paper): benchmarks ordered by data-array utilization
 * from art (highest) to sixtrack (lowest); single-thread average
 * data-array utilization around 26%; tag-array utilization approaches
 * (or exceeds) data-array utilization for the miss-dominated,
 * write-poor benchmarks (equake, swim).
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"

using namespace vpc;

int
main()
{
    constexpr Cycle kWarmup = 100'000;
    constexpr Cycle kMeasure = 300'000;

    BenchReporter rep("fig6");
    TablePrinter t("Figure 6: SPEC benchmark L2 cache utilization "
                   "(single thread, 2 banks)",
                   {"Benchmark", "DataArray", "DataBus", "TagArray",
                    "IPC"});
    double mean_data = 0.0;
    const auto &names = spec2000Names();
    for (const std::string &name : names) {
        SystemConfig cfg = makeBaselineConfig(1,
                                              ArbiterPolicy::RowFcfs);
        std::vector<std::unique_ptr<Workload>> wl;
        wl.push_back(makeSpec2000(name, 0, 1));
        CmpSystem sys(cfg, std::move(wl));
        IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
        rep.addRun(sys.now(), sys.kernelStats());
        mean_data += s.dataUtil;
        t.row({name, TablePrinter::pct(s.dataUtil),
               TablePrinter::pct(s.busUtil),
               TablePrinter::pct(s.tagUtil),
               TablePrinter::num(s.ipc.at(0))});
    }
    t.rule();
    t.row({"mean", TablePrinter::pct(mean_data / names.size())});
    t.rule();
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
