/**
 * @file
 * Big-CMP scale-up sweep: kernel threads x machine size.
 *
 * Runs the scaled Table 1 machine (makeScaledCmpConfig: 8/16/32
 * processors, one 8 MB L2 bank per two processors, interconnect
 * deepened with size) under the serial kernel and under the
 * shard-parallel kernel at several worker counts, and checks the
 * determinism contract on every cell: the measured model statistics
 * must be bit-identical to the serial reference for the same machine.
 *
 * stdout carries only model-derived results (the per-size table and
 * the identity verdicts), so it is byte-identical for any kernel
 * thread count and any host.  Wall-clock numbers go to stderr and
 * into BENCH_scaleup.json: the "scaleup" section holds one row per
 * (processors, kernel_threads) cell, and the standard machine block
 * records the host they were measured on (tools/bench_diff refuses to
 * compare wall times across different machines).
 *
 * Flags:
 *   --smoke       2 sizes x 2 kernel-thread counts, short runs
 *                 (bounded enough for tier-1 CI)
 *   --profile     attach the cycle-attribution profiler to every
 *                 simulation; the merged table lands in the JSON
 *   --json=PATH   JSON report path (default BENCH_scaleup.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"

using namespace vpc;

namespace
{

/** One measured sweep cell. */
struct Cell
{
    unsigned procs = 0;
    unsigned kernelThreads = 0;
    double wallMs = 0.0;
    RunRecord record;
};

/** Workload specs cycled across the scaled machine's threads. */
const char *const kSpecs[] = {"art",  "mcf",    "mesa", "crafty",
                              "gzip", "swim",   "vpr",  "gcc"};

RunJob
makeJob(unsigned procs, unsigned kernel_threads, bool profile,
        const RunLengths &lens)
{
    RunJob job;
    job.config = makeScaledCmpConfig(procs, ArbiterPolicy::Vpc);
    job.config.kernelThreads = kernel_threads;
    job.config.profile = profile;
    for (unsigned t = 0; t < procs; ++t) {
        job.workloads.push_back(benchWorkloadKey(
            kSpecs[t % (sizeof(kSpecs) / sizeof(kSpecs[0]))], t));
    }
    job.warmup = lens.warmup;
    job.measure = lens.measure;
    return job;
}

/** @return true when two records carry bit-identical model results. */
bool
sameRecord(const RunRecord &a, const RunRecord &b)
{
    const IntervalStats &x = a.stats;
    const IntervalStats &y = b.stats;
    return a.endCycle == b.endCycle && x.cycles == y.cycles &&
           x.ipc == y.ipc && x.instrs == y.instrs &&
           x.l2Reads == y.l2Reads && x.l2Writes == y.l2Writes &&
           x.l2Misses == y.l2Misses && x.sgbStores == y.sgbStores &&
           x.sgbGathered == y.sgbGathered && x.tagUtil == y.tagUtil &&
           x.dataUtil == y.dataUtil && x.busUtil == y.busUtil;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool profile = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(arg, "--profile") == 0) {
            profile = true;
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            jsonPath = arg + 7;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            return 1;
        }
    }

    std::vector<unsigned> sizes = smoke
        ? std::vector<unsigned>{8, 16}
        : std::vector<unsigned>{8, 16, 32};
    std::vector<unsigned> kts = smoke
        ? std::vector<unsigned>{1, 2}
        : std::vector<unsigned>{1, 2, 4, 8};
    const RunLengths lens = smoke ? RunLengths{2'000, 6'000}
                                  : RunLengths{20'000, 80'000};

    BenchReporter rep(smoke ? "scaleup_smoke" : "scaleup");
    rep.setKernelThreads(kts.back());

    std::vector<Cell> cells;
    bool allIdentical = true;
    for (unsigned procs : sizes) {
        const std::size_t refIdx = cells.size();
        for (unsigned kt : kts) {
            RunJob job = makeJob(procs, kt, profile, lens);
            auto t0 = std::chrono::steady_clock::now();
            RunResult r = runAndMeasureCached(job, nullptr);
            auto t1 = std::chrono::steady_clock::now();
            Cell cell;
            cell.procs = procs;
            cell.kernelThreads = kt;
            cell.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            cell.record = r.record;
            rep.addRun(r.record.endCycle, r.record.kernel);
            if (r.hasProfile)
                rep.addProfile(r.profile);
            cells.push_back(std::move(cell));
            if (cells.size() - 1 != refIdx &&
                !sameRecord(cells[refIdx].record,
                            cells.back().record)) {
                allIdentical = false;
                std::printf("DETERMINISM VIOLATION: %u processors, "
                            "%u kernel threads diverged from the "
                            "serial reference\n", procs, kt);
            }
        }
    }
    rep.finish();

    // stdout: model results only (identical for every kernel-thread
    // count and every host).  One row per machine size, from the
    // serial reference cell.
    TablePrinter t("Scale-up: big-CMP machines under VPC (equal "
                   "shares), model results",
                   {"Procs", "Banks", "Agg IPC", "L2 misses",
                    "Bus util", "Kernel-thread identity"},
                   12);
    std::size_t idx = 0;
    for (unsigned procs : sizes) {
        const Cell &ref = cells[idx];
        double aggIpc = 0.0;
        std::uint64_t misses = 0;
        for (double v : ref.record.stats.ipc)
            aggIpc += v;
        for (std::uint64_t v : ref.record.stats.l2Misses)
            misses += v;
        bool sizeIdentical = true;
        for (std::size_t k = 1; k < kts.size(); ++k) {
            if (!sameRecord(ref.record, cells[idx + k].record))
                sizeIdentical = false;
        }
        t.row({std::to_string(procs), std::to_string(procs / 2),
               TablePrinter::num(aggIpc),
               std::to_string(misses),
               TablePrinter::num(ref.record.stats.busUtil),
               sizeIdentical ? "identical" : "DIVERGED"});
        idx += kts.size();
    }
    t.rule();
    std::printf("model statistics %s across kernel threads {",
                allIdentical ? "bit-identical" : "DIVERGED");
    for (std::size_t k = 0; k < kts.size(); ++k)
        std::printf("%s%u", k ? ", " : "", kts[k]);
    std::printf("}\n");

    // stderr + JSON: the wall-time matrix (host-dependent).
    std::string rows = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s\n    {\"procs\": %u, \"kernel_threads\": %u, "
                      "\"wall_ms\": %.1f, \"sim_cycles\": %llu}",
                      i ? "," : "", c.procs, c.kernelThreads, c.wallMs,
                      static_cast<unsigned long long>(
                          c.record.endCycle));
        rows += buf;
        std::fprintf(stderr,
                     "scaleup: %2u procs, %u kernel threads: %7.1f ms "
                     "wall\n",
                     c.procs, c.kernelThreads, c.wallMs);
    }
    rows += "\n  ]";
    rep.setExtraSection("scaleup", rows);

    rep.printSummary();
    rep.writeJson(jsonPath);
    return allIdentical ? 0 : 1;
}
