#include "bench_common.hh"

#include <cstdio>
#include <fstream>
#include <thread>

#include "sim/config.hh"
#include "sim/format.hh"
#include "sim/logging.hh"
#include "sim/vec.hh"

namespace vpc
{

BenchReporter::BenchReporter(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
}

void
BenchReporter::addRun(std::uint64_t sim_cycles, const KernelStats &k)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        vpc_panic("BenchReporter::addRun after finish");
    runs_ += 1;
    simCycles_ += sim_cycles;
    cyclesExecuted_ += k.cyclesExecuted.value();
    cyclesSkipped_ += k.cyclesSkipped.value();
    ticksExecuted_ += k.ticksExecuted.value();
    eventsFired_ += k.eventsFired.value();
}

void
BenchReporter::addProfile(const Profiler &p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    profile_.mergeByName(p);
    haveProfile_ = true;
}

void
BenchReporter::setRunCacheStats(std::uint64_t hits,
                                std::uint64_t misses,
                                std::uint64_t disk_hits,
                                std::uint64_t store_errors)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cacheHits_ = hits;
    cacheMisses_ = misses;
    cacheDiskHits_ = disk_hits;
    cacheStoreErrors_ = store_errors;
}

void
BenchReporter::setRunCacheStats(const RunCache &cache)
{
    setRunCacheStats(cache.hits(), cache.misses(), cache.diskHits(),
                     cache.storeErrors());
}

void
BenchReporter::setKernelThreads(unsigned kt)
{
    std::lock_guard<std::mutex> lock(mutex_);
    kernelThreads_ = kt < 1 ? 1 : kt;
}

void
BenchReporter::setQuick(bool quick)
{
    std::lock_guard<std::mutex> lock(mutex_);
    quick_ = quick;
}

void
BenchReporter::setExtraSection(std::string key, std::string raw_json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    extraKey_ = std::move(key);
    extraJson_ = std::move(raw_json);
}

const BenchReporter::MachineInfo &
BenchReporter::machineInfo()
{
    static const MachineInfo info = [] {
        MachineInfo m;
        m.nproc = std::thread::hardware_concurrency();
        std::ifstream cpuinfo("/proc/cpuinfo");
        std::string line;
        while (std::getline(cpuinfo, line)) {
            if (line.rfind("model name", 0) == 0) {
                std::size_t colon = line.find(':');
                if (colon != std::string::npos) {
                    std::size_t v = line.find_first_not_of(
                        " \t", colon + 1);
                    if (v != std::string::npos)
                        m.cpuModel = line.substr(v);
                }
                break;
            }
        }
        std::ifstream loadavg("/proc/loadavg");
        double l1 = -1.0;
        if (loadavg >> l1)
            m.loadavg1m = l1;
#if defined(__clang__)
        m.compiler = format("clang {}.{}.{}", __clang_major__,
                            __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
        m.compiler = format("gcc {}.{}.{}", __GNUC__, __GNUC_MINOR__,
                            __GNUC_PATCHLEVEL__);
#else
        m.compiler = "unknown";
#endif
        m.simd = vec::kIsaName;
        m.fuse = defaultKernelFuse();
        return m;
    }();
    return info;
}

void
BenchReporter::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!finished_) {
        end_ = std::chrono::steady_clock::now();
        finished_ = true;
    }
}

double
BenchReporter::wallMs() const
{
    auto end = finished_ ? end_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_)
        .count();
}

double
BenchReporter::mcyclesPerSec() const
{
    double ms = wallMs();
    if (ms <= 0.0)
        return 0.0;
    return static_cast<double>(simCycles_) / (ms / 1e3) / 1e6;
}

double
BenchReporter::eventsPerCycle() const
{
    if (cyclesExecuted_ == 0)
        return 0.0;
    return static_cast<double>(eventsFired_) /
           static_cast<double>(cyclesExecuted_);
}

void
BenchReporter::printSummary() const
{
    // stderr, so stdout stays bit-identical between skipping and
    // --no-skip runs (wall time and skip counts legitimately differ).
    std::fprintf(
        stderr,
        "bench %s: %.0f ms wall, %llu runs, %llu Msim-cycles, "
        "%.2f Mcycles/s, %.2f events/cycle, %llu cycles skipped, "
        "run-cache %llu/%llu hit/miss (%llu disk, %llu store "
        "errors)\n",
        name_.c_str(), wallMs(),
        static_cast<unsigned long long>(runs_),
        static_cast<unsigned long long>(simCycles_ / 1'000'000),
        mcyclesPerSec(), eventsPerCycle(),
        static_cast<unsigned long long>(cyclesSkipped_),
        static_cast<unsigned long long>(cacheHits_),
        static_cast<unsigned long long>(cacheMisses_),
        static_cast<unsigned long long>(cacheDiskHits_),
        static_cast<unsigned long long>(cacheStoreErrors_));
    if (haveProfile_)
        std::fprintf(stderr, "%s\n", profile_.report().c_str());
}

namespace
{

/** Minimal JSON string escape (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

void
BenchReporter::writeJson(const std::string &path) const
{
    std::string file =
        path.empty() ? format("BENCH_{}.json", name_) : path;
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        vpc_warn("cannot write {}", file);
        return;
    }
    const MachineInfo &m = machineInfo();
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"wall_ms\": %.1f,\n"
                 "  \"runs\": %llu,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"kernel_threads\": %u,\n"
                 "  \"mcycles_per_sec\": %.3f,\n"
                 "  \"cycles_executed\": %llu,\n"
                 "  \"cycles_skipped\": %llu,\n"
                 "  \"ticks_executed\": %llu,\n"
                 "  \"events_fired\": %llu,\n"
                 "  \"events_per_cycle\": %.4f,\n"
                 "  \"quick\": %s,\n"
                 "  \"run_cache\": {\n"
                 "    \"hits\": %llu,\n"
                 "    \"misses\": %llu,\n"
                 "    \"disk_hits\": %llu,\n"
                 "    \"store_errors\": %llu\n"
                 "  },\n"
                 "  \"machine\": {\n"
                 "    \"nproc\": %u,\n"
                 "    \"cpu_model\": \"%s\",\n"
                 "    \"loadavg_1m\": %.2f,\n"
                 "    \"compiler\": \"%s\",\n"
                 "    \"simd\": \"%s\",\n"
                 "    \"fuse\": %s\n"
                 "  }",
                 name_.c_str(), wallMs(),
                 static_cast<unsigned long long>(runs_),
                 static_cast<unsigned long long>(simCycles_),
                 kernelThreads_,
                 mcyclesPerSec(),
                 static_cast<unsigned long long>(cyclesExecuted_),
                 static_cast<unsigned long long>(cyclesSkipped_),
                 static_cast<unsigned long long>(ticksExecuted_),
                 static_cast<unsigned long long>(eventsFired_),
                 eventsPerCycle(),
                 quick_ ? "true" : "false",
                 static_cast<unsigned long long>(cacheHits_),
                 static_cast<unsigned long long>(cacheMisses_),
                 static_cast<unsigned long long>(cacheDiskHits_),
                 static_cast<unsigned long long>(cacheStoreErrors_),
                 m.nproc,
                 jsonEscape(m.cpuModel).c_str(), m.loadavg1m,
                 jsonEscape(m.compiler).c_str(),
                 jsonEscape(m.simd).c_str(),
                 m.fuse ? "true" : "false");
    if (haveProfile_) {
        std::uint64_t ev_total = profile_.totalEventNs();
        double attributed = ev_total == 0
            ? 100.0
            : 100.0 * static_cast<double>(profile_.attributedEventNs())
                / static_cast<double>(ev_total);
        std::fprintf(f,
                     ",\n  \"profile\": {\n"
                     "    \"attributed_event_pct\": %.1f,\n"
                     "    \"components\": [",
                     attributed);
        bool first = true;
        for (const Profiler::Entry &e : profile_.entries()) {
            if (e.tickCount == 0 && e.eventCount == 0)
                continue;
            std::fprintf(
                f,
                "%s\n      {\"name\": \"%s\", \"tick_ns\": %llu, "
                "\"tick_count\": %llu, \"event_ns\": %llu, "
                "\"event_count\": %llu}",
                first ? "" : ",", jsonEscape(e.name).c_str(),
                static_cast<unsigned long long>(e.tickNs),
                static_cast<unsigned long long>(e.tickCount),
                static_cast<unsigned long long>(e.eventNs),
                static_cast<unsigned long long>(e.eventCount));
            first = false;
        }
        std::fprintf(f, "\n    ]\n  }");
    }
    if (!extraKey_.empty() && !extraJson_.empty()) {
        std::fprintf(f, ",\n  \"%s\": %s",
                     jsonEscape(extraKey_).c_str(), extraJson_.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
}

} // namespace vpc
