#include "bench_common.hh"

#include <cstdio>

#include "sim/format.hh"
#include "sim/logging.hh"

namespace vpc
{

BenchReporter::BenchReporter(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now())
{
}

void
BenchReporter::addRun(std::uint64_t sim_cycles, const KernelStats &k)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        vpc_panic("BenchReporter::addRun after finish");
    runs_ += 1;
    simCycles_ += sim_cycles;
    cyclesExecuted_ += k.cyclesExecuted.value();
    cyclesSkipped_ += k.cyclesSkipped.value();
    ticksExecuted_ += k.ticksExecuted.value();
    eventsFired_ += k.eventsFired.value();
}

void
BenchReporter::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!finished_) {
        end_ = std::chrono::steady_clock::now();
        finished_ = true;
    }
}

double
BenchReporter::wallMs() const
{
    auto end = finished_ ? end_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_)
        .count();
}

double
BenchReporter::mcyclesPerSec() const
{
    double ms = wallMs();
    if (ms <= 0.0)
        return 0.0;
    return static_cast<double>(simCycles_) / (ms / 1e3) / 1e6;
}

double
BenchReporter::eventsPerCycle() const
{
    if (cyclesExecuted_ == 0)
        return 0.0;
    return static_cast<double>(eventsFired_) /
           static_cast<double>(cyclesExecuted_);
}

void
BenchReporter::printSummary() const
{
    // stderr, so stdout stays bit-identical between skipping and
    // --no-skip runs (wall time and skip counts legitimately differ).
    std::fprintf(
        stderr,
        "bench %s: %.0f ms wall, %llu runs, %llu Msim-cycles, "
        "%.2f Mcycles/s, %.2f events/cycle, %llu cycles skipped\n",
        name_.c_str(), wallMs(),
        static_cast<unsigned long long>(runs_),
        static_cast<unsigned long long>(simCycles_ / 1'000'000),
        mcyclesPerSec(), eventsPerCycle(),
        static_cast<unsigned long long>(cyclesSkipped_));
}

void
BenchReporter::writeJson(const std::string &path) const
{
    std::string file =
        path.empty() ? format("BENCH_{}.json", name_) : path;
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        vpc_warn("cannot write {}", file);
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"wall_ms\": %.1f,\n"
                 "  \"runs\": %llu,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"mcycles_per_sec\": %.3f,\n"
                 "  \"cycles_executed\": %llu,\n"
                 "  \"cycles_skipped\": %llu,\n"
                 "  \"ticks_executed\": %llu,\n"
                 "  \"events_fired\": %llu,\n"
                 "  \"events_per_cycle\": %.4f\n"
                 "}\n",
                 name_.c_str(), wallMs(),
                 static_cast<unsigned long long>(runs_),
                 static_cast<unsigned long long>(simCycles_),
                 mcyclesPerSec(),
                 static_cast<unsigned long long>(cyclesExecuted_),
                 static_cast<unsigned long long>(cyclesSkipped_),
                 static_cast<unsigned long long>(ticksExecuted_),
                 static_cast<unsigned long long>(eventsFired_),
                 eventsPerCycle());
    std::fclose(f);
}

} // namespace vpc
