/**
 * @file
 * Ablation: intra-thread Read-over-Write reordering inside the VPC
 * arbiters (Section 4.1.1) on vs off.
 *
 * A mixed load/store workload benefits from reads bypassing older
 * same-thread writes in arbitration; crucially, the *other* thread's
 * bandwidth share must be unaffected either way (the reordering
 * invariant of the optimized implementation).
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/sweep.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

IntervalStats
run(bool row, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    cfg.vpcIntraThreadRow = row;
    std::vector<std::unique_ptr<Workload>> wl;
    // Mixed read/write benchmark vs a read-mostly latency-sensitive
    // benchmark.
    wl.push_back(makeSpec2000("mesa", 0, 1));
    wl.push_back(makeSpec2000("mcf", benchThreadBase(1),
                              benchThreadSeed(1)));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats stats = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());
    return stats;
}

} // namespace

int
main()
{
    // The two configurations are independent simulations; dispatch
    // them through the sweep harness (results land in fixed slots, so
    // output is identical for any worker count).
    BenchReporter rep("ablate_row");
    std::vector<IntervalStats> results(2);
    parallelFor(2, [&](std::size_t i) {
        results[i] = run(i == 0, rep);
    });
    rep.finish();
    const IntervalStats &with_row = results[0];
    const IntervalStats &without_row = results[1];

    TablePrinter t("Ablation: VPC intra-thread RoW reordering "
                   "(mesa + mcf, equal shares)",
                   {"Config", "mesa IPC", "mcf IPC", "DataUtil"});
    t.row({"RoW on", TablePrinter::num(with_row.ipc.at(0)),
           TablePrinter::num(with_row.ipc.at(1)),
           TablePrinter::pct(with_row.dataUtil)});
    t.row({"RoW off", TablePrinter::num(without_row.ipc.at(0)),
           TablePrinter::num(without_row.ipc.at(1)),
           TablePrinter::pct(without_row.dataUtil)});
    t.rule();
    double iso = (without_row.ipc.at(1) - with_row.ipc.at(1)) /
                 with_row.ipc.at(1) * 100.0;
    std::printf("mcf IPC change when partner reorders: %+.2f%% "
                "(reordering must not shift inter-thread "
                "bandwidth)\n", -iso);
    rep.printSummary();
    rep.writeJson();
    return 0;
}
