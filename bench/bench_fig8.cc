/**
 * @file
 * Figure 8: Loads and Stores microbenchmarks -- IPC and data-array
 * utilization under RoW-FCFS, FCFS, and VPC with the Stores thread
 * allocated {0, 25, 50, 75, 100}% of the cache bandwidths.
 *
 * Expected shape (paper):
 *  - RoW starves Stores completely (IPC ~= 0);
 *  - FCFS interleaves uniformly: Stores gets ~67% / Loads ~33% of the
 *    data array (writes occupy it twice as long as reads);
 *  - each VPC configuration provides each benchmark its allocated
 *    share, and both meet their target IPCs.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/sweep.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 50'000;
constexpr Cycle kMeasure = 200'000;

struct Row
{
    std::string label;
    double ipcLoads, ipcStores;
    double targetLoads, targetStores;
    double dataUtil;
};

Row
runConfig(ArbiterPolicy policy, double phi_stores,
          const std::string &label, BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(2, policy);
    if (policy == ArbiterPolicy::Vpc) {
        cfg.allowUnallocatedShares = true; // sweep endpoints
        cfg.shares = {QosShare{1.0 - phi_stores, 0.5},
                      QosShare{phi_stores, 0.5}};
        cfg.validate();
    }
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);
    rep.addRun(sys.now(), sys.kernelStats());

    Row r;
    r.label = label;
    r.ipcLoads = s.ipc.at(0);
    r.ipcStores = s.ipc.at(1);
    r.dataUtil = s.dataUtil;
    r.targetLoads = 0.0;
    r.targetStores = 0.0;
    return r;
}

} // namespace

int
main()
{
    // Seven arbiter configurations plus the per-point private-machine
    // targets, all independent: dispatch through the sweep harness and
    // assemble rows in fixed order afterwards.
    BenchReporter rep("fig8");
    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};
    const std::vector<double> phis = {0.0, 0.25, 0.5, 0.75, 1.0};
    std::vector<Row> rows(2 + phis.size());
    parallelFor(rows.size() + 2 * phis.size(), [&](std::size_t j) {
        if (j == 0) {
            rows[0] = runConfig(ArbiterPolicy::RowFcfs, 0.0, "RoW",
                                rep);
        } else if (j == 1) {
            rows[1] = runConfig(ArbiterPolicy::Fcfs, 0.0, "FCFS",
                                rep);
        } else if (j < rows.size()) {
            double phi = phis[j - 2];
            Row r = runConfig(ArbiterPolicy::Vpc, phi,
                              "VPC " + TablePrinter::pct(phi), rep);
            // The target fields of this slot belong to the targetIpc
            // jobs below (distinct members, so no data race); copy
            // only the measured fields.
            rows[j].label = r.label;
            rows[j].ipcLoads = r.ipcLoads;
            rows[j].ipcStores = r.ipcStores;
            rows[j].dataUtil = r.dataUtil;
        } else {
            std::size_t k = j - rows.size();
            double phi = phis[k / 2];
            KernelStats ks;
            if (k % 2 == 0) {
                LoadsBenchmark loads(0);
                rows[2 + k / 2].targetLoads =
                    targetIpc(base, loads, 1.0 - phi, 0.5, lens, &ks);
            } else {
                StoresBenchmark stores(1ull << 32);
                rows[2 + k / 2].targetStores =
                    targetIpc(base, stores, phi, 0.5, lens, &ks);
            }
            rep.addRun(lens.warmup + lens.measure, ks);
        }
    });
    rep.finish();

    TablePrinter table(
        "Figure 8: Loads + Stores microbenchmarks "
        "(x-axis: arbiter / Stores bandwidth share)",
        {"Config", "Loads IPC", "Loads tgt", "Stores IPC",
         "Stores tgt", "DataUtil"});
    for (const Row &r : rows) {
        table.row({r.label, TablePrinter::num(r.ipcLoads),
                   TablePrinter::num(r.targetLoads),
                   TablePrinter::num(r.ipcStores),
                   TablePrinter::num(r.targetStores),
                   TablePrinter::pct(r.dataUtil)});
    }
    table.rule();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
