/**
 * @file
 * Figure 8: Loads and Stores microbenchmarks -- IPC and data-array
 * utilization under RoW-FCFS, FCFS, and VPC with the Stores thread
 * allocated {0, 25, 50, 75, 100}% of the cache bandwidths.
 *
 * Expected shape (paper):
 *  - RoW starves Stores completely (IPC ~= 0);
 *  - FCFS interleaves uniformly: Stores gets ~67% / Loads ~33% of the
 *    data array (writes occupy it twice as long as reads);
 *  - each VPC configuration provides each benchmark its allocated
 *    share, and both meet their target IPCs.
 */

#include <memory>
#include <vector>

#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/microbench.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 50'000;
constexpr Cycle kMeasure = 200'000;

struct Row
{
    std::string label;
    double ipcLoads, ipcStores;
    double targetLoads, targetStores;
    double dataUtil;
};

Row
runConfig(ArbiterPolicy policy, double phi_stores,
          const std::string &label)
{
    SystemConfig cfg = makeBaselineConfig(2, policy);
    if (policy == ArbiterPolicy::Vpc) {
        cfg.allowUnallocatedShares = true; // sweep endpoints
        cfg.shares = {QosShare{1.0 - phi_stores, 0.5},
                      QosShare{phi_stores, 0.5}};
        cfg.validate();
    }
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<LoadsBenchmark>(0));
    wl.push_back(std::make_unique<StoresBenchmark>(1ull << 32));
    CmpSystem sys(cfg, std::move(wl));
    IntervalStats s = sys.runAndMeasure(kWarmup, kMeasure);

    Row r;
    r.label = label;
    r.ipcLoads = s.ipc.at(0);
    r.ipcStores = s.ipc.at(1);
    r.dataUtil = s.dataUtil;
    r.targetLoads = 0.0;
    r.targetStores = 0.0;
    return r;
}

} // namespace

int
main()
{
    std::vector<Row> rows;
    rows.push_back(runConfig(ArbiterPolicy::RowFcfs, 0.0, "RoW"));
    rows.push_back(runConfig(ArbiterPolicy::Fcfs, 0.0, "FCFS"));

    SystemConfig base = makeBaselineConfig(2, ArbiterPolicy::Vpc);
    RunLengths lens{kWarmup, kMeasure};
    LoadsBenchmark loads(0);
    StoresBenchmark stores(1ull << 32);
    for (double phi : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        Row r = runConfig(ArbiterPolicy::Vpc, phi,
                          "VPC " + TablePrinter::pct(phi));
        r.targetLoads = targetIpc(base, loads, 1.0 - phi, 0.5, lens);
        r.targetStores = targetIpc(base, stores, phi, 0.5, lens);
        rows.push_back(r);
    }

    TablePrinter table(
        "Figure 8: Loads + Stores microbenchmarks "
        "(x-axis: arbiter / Stores bandwidth share)",
        {"Config", "Loads IPC", "Loads tgt", "Stores IPC",
         "Stores tgt", "DataUtil"});
    for (const Row &r : rows) {
        table.row({r.label, TablePrinter::num(r.ipcLoads),
                   TablePrinter::num(r.targetLoads),
                   TablePrinter::num(r.ipcStores),
                   TablePrinter::num(r.targetStores),
                   TablePrinter::pct(r.dataUtil)});
    }
    table.rule();
    return 0;
}
