/**
 * @file
 * Table 1: the 2 GHz CMP system configuration.  Prints the simulated
 * machine's parameters (the SystemConfig defaults) in the paper's
 * format so they can be checked against the original table.
 */

#include "bench_common.hh"
#include "sim/config.hh"
#include "system/table_printer.hh"

using namespace vpc;

int
main()
{
    // No simulation runs here — the report still carries wall time so
    // bench_diff sees a complete BENCH_*.json set.
    BenchReporter rep("table1");
    SystemConfig cfg;
    cfg.validate();

    TablePrinter t("Table 1: 2 GHz CMP system configuration "
                   "(latencies in processor cycles)",
                   {"Parameter", "Value"}, 44);
    t.row({"Processors",
           std::to_string(cfg.numProcessors) + " processors"});
    t.row({"Dispatch group",
           std::to_string(cfg.core.dispatchWidth) +
           " instructions per dispatch group"});
    t.row({"Reorder buffer",
           std::to_string(cfg.core.robEntries / cfg.core.dispatchWidth)
           + " dispatch groups (" +
           std::to_string(cfg.core.robEntries) + " entries)"});
    t.row({"Load / store queues",
           std::to_string(cfg.core.loadQueueEntries) +
           " entry load reorder queue, " +
           std::to_string(cfg.core.storeQueueEntries) +
           " entry store reorder queue"});
    t.row({"LSU ports", std::to_string(cfg.core.lsuPorts)});
    t.row({"D-Cache",
           std::to_string(cfg.l1.sizeBytes / 1024) + "KB private, " +
           std::to_string(cfg.l1.ways) + "-ways, " +
           std::to_string(cfg.l1.lineBytes) + " byte lines, " +
           std::to_string(cfg.l1.hitLatency) + " cycle latency, " +
           std::to_string(cfg.l1.mshrs) + " MSHRs"});
    t.row({"L1-to-L2 interconnect",
           "1/2 core frequency, " +
           std::to_string(cfg.l2.interconnectLatency) +
           " cycle latency, " + std::to_string(cfg.l2.busBytes) +
           " byte data bus per bank"});
    t.row({"L2 store gathering buffer",
           std::to_string(cfg.l2.sgbEntriesPerThread) +
           " entries per thread, read bypassing, retire-at-" +
           std::to_string(cfg.l2.sgbHighWater) +
           " policy, partial-flush on read conflict"});
    t.row({"L2 cache",
           "1/2 core frequency, " + std::to_string(cfg.l2.banks) +
           " banks, " +
           std::to_string(cfg.l2.sizeBytes / (1024 * 1024)) + "MB, " +
           std::to_string(cfg.l2.ways) + "-ways, " +
           std::to_string(cfg.l2.lineBytes) + " byte lines, " +
           std::to_string(cfg.l2.stateMachinesPerThread) +
           " controller state machines per thread, " +
           std::to_string(cfg.l2.tagLatency) +
           " cycle tag array latency, " +
           std::to_string(cfg.l2.dataLatency) +
           " cycle data array latency"});
    t.row({"Memory controller",
           std::to_string(cfg.mem.transactionEntries) +
           " transaction buffer entries per thread, " +
           std::to_string(cfg.mem.writeEntries) +
           " write buffer entries per thread, closed page policy"});
    t.row({"SDRAM channels", "1 channel per thread"});
    t.row({"SDRAM ranks",
           std::to_string(cfg.mem.ranksPerChannel) +
           " ranks per channel"});
    t.row({"SDRAM banks",
           std::to_string(cfg.mem.banksPerRank) + " banks per rank"});
    t.rule();
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
