/**
 * @file
 * Extension experiment: the full Virtual Private *Machine* story.
 *
 * The paper's evaluation isolates the cache by giving every thread a
 * private SDRAM channel.  Real CMPs share memory channels too, and the
 * VPM framework (Figure 1b) says the same minimum-service mechanisms
 * should manage them -- that is the companion FQ memory system of
 * Nesbit et al. (Section 2.1).  This bench runs a latency-sensitive
 * subject against three bandwidth hogs with ONE shared memory channel
 * and sweeps the four combinations of {FCFS, VPC} x {cache arbiters,
 * memory scheduler}.
 *
 * Expected shape: QoS must be enforced in the subsystem where the
 * contention actually lives.  This workload's interference is almost
 * entirely in the memory channel, so cache-only VPC barely moves the
 * victim while the FQ memory scheduler recovers it by several times
 * -- the reason the VPM framework spans subsystems instead of
 * stopping at the cache.
 */

#include <memory>
#include <vector>

#include "bench_common.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "system/table_printer.hh"
#include "workload/spec2000.hh"
#include "workload/synthetic.hh"

using namespace vpc;

namespace
{

constexpr Cycle kWarmup = 80'000;
constexpr Cycle kMeasure = 200'000;

/** Memory-hungry streamer: misses the L2 continuously. */
SyntheticParams
hogParams()
{
    SyntheticParams p;
    p.name = "memhog";
    p.memFrac = 0.6;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20;
    p.hotFrac = 0.0;
    p.depFrac = 0.0;
    p.streamFrac = 1.0;
    return p;
}

/**
 * The worst-case victim for memory interference: a pure pointer
 * chaser with one outstanding miss at a time.  Every miss's latency
 * is fully exposed, so queueing behind the hogs' deep transaction
 * backlogs translates directly into lost IPC.  (A high-MLP victim is
 * insensitive to scheduling: its own burst self-queues at its share
 * either way.)
 */
SyntheticParams
chaserParams()
{
    SyntheticParams p;
    p.name = "chaser";
    p.memFrac = 0.25;
    p.storeFrac = 0.0;
    p.workingSetBytes = 64ull << 20;
    p.hotFrac = 0.5;
    p.depFrac = 1.0;
    p.streamFrac = 0.0;
    return p;
}

double
run(ArbiterPolicy cache_policy, ArbiterPolicy mem_policy,
    BenchReporter &rep)
{
    SystemConfig cfg = makeBaselineConfig(4, cache_policy);
    cfg.mem.sharedChannel = true;
    cfg.mem.schedulerPolicy = mem_policy;
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(std::make_unique<SyntheticWorkload>(chaserParams(),
                                                     0, 1));
    for (unsigned t = 1; t < 4; ++t) {
        wl.push_back(std::make_unique<SyntheticWorkload>(
            hogParams(), benchThreadBase(t), benchThreadSeed(t)));
    }
    CmpSystem sys(cfg, std::move(wl));
    double ipc = sys.runAndMeasure(kWarmup, kMeasure).ipc.at(0);
    rep.addRun(sys.now(), sys.kernelStats());
    return ipc;
}

} // namespace

int
main()
{
    BenchReporter rep("vpm_memory");
    double ff = run(ArbiterPolicy::Fcfs, ArbiterPolicy::Fcfs, rep);
    double fv = run(ArbiterPolicy::Fcfs, ArbiterPolicy::Vpc, rep);
    double vf = run(ArbiterPolicy::Vpc, ArbiterPolicy::Fcfs, rep);
    double vv = run(ArbiterPolicy::Vpc, ArbiterPolicy::Vpc, rep);

    TablePrinter t("Extension: end-to-end VPM -- pointer chaser vs 3 "
                   "memory hogs, ONE shared DDR2 channel (equal "
                   "shares)",
                   {"Cache arbiters", "Memory scheduler",
                    "chaser IPC", "vs worst"}, 17);
    double worst = std::min(std::min(ff, fv), std::min(vf, vv));
    auto row = [&](const char *c, const char *m, double v) {
        t.row({c, m, TablePrinter::num(v),
               TablePrinter::num(v / worst, 2) + "x"});
    };
    row("FCFS", "FCFS", ff);
    row("FCFS", "FQ (VPC)", fv);
    row("VPC", "FCFS", vf);
    row("VPC", "FQ (VPC)", vv);
    t.rule();
    std::printf("QoS must live where the contention lives: this "
                "workload's interference is in the memory channel, so "
                "cache-only VPC changes nothing (%+.0f%%) while the "
                "FQ memory scheduler recovers the victim (%+.0f%%; "
                "both: %+.0f%%) -- the VPM framework spans "
                "subsystems for exactly this reason\n",
                (vf - ff) / ff * 100.0, (fv - ff) / ff * 100.0,
                (vv - ff) / ff * 100.0);
    rep.finish();
    rep.printSummary();
    rep.writeJson();
    return 0;
}
