/**
 * @file
 * Sweep-service saturation bench: socket transport vs spool polling.
 *
 * Floods an in-process daemon with thousands of near-trivial jobs and
 * measures the two transports the service offers:
 *
 *  - throughput: all jobs submitted up front (batched frames over the
 *    socket; atomic renames into the spool), wall time until the last
 *    settles -> jobs/sec under saturation;
 *  - latency: serial submit-to-result round trips (window of one), so
 *    the percentiles measure dispatch + execution + notification and
 *    not queueing.  The socket path is push-driven; the spool path
 *    pays the client's poll quantum by construction.
 *
 * Both phases run the *same* job set in separate spool directories,
 * so every digest executes once per transport and the stored records
 * can be compared bit-for-bit against each other and against fresh
 * daemon-less execution.  The bench fails (exit 1) on any identity
 * mismatch or any exactly-once violation (a digest with != 1 journal
 * start, a quarantine, a leftover pending/running job).  The full run
 * additionally enforces the headline contract: >= 1000 jobs completed
 * over the socket and a median socket round trip at least 5x faster
 * than the spool-polling tier.
 *
 * stdout carries the verdicts; wall-clock numbers go to stderr and
 * into the JSON's "service" section (tools/bench_diff gates on the
 * jobs/sec fields).
 *
 * Flags:
 *   --smoke       reduced scale, contract checks only (tier-1 CI)
 *   --json=PATH   JSON report path (default
 *                 BENCH_service_saturation.json)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/job_codec.hh"
#include "service/journal.hh"
#include "service/spool.hh"
#include "service/transport.hh"
#include "system/experiment.hh"

using namespace vpc;

namespace
{

using Clock = std::chrono::steady_clock;

/** A near-trivial one-processor job; @p seed varies the identity. */
RunJob
tinyJob(std::uint64_t seed)
{
    RunJob job;
    job.config = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    job.workloads = {WorkloadKey{seed % 2 == 0 ? "loads" : "stores",
                                 threadBaseAddr(0), seed}};
    job.warmup = 100;
    job.measure = 400;
    return job;
}

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** One transport phase's measurements. */
struct PhaseResult
{
    std::size_t jobs = 0;         //!< throughput jobs settled
    double throughputMs = 0.0;    //!< wall time to settle them all
    double jobsPerSec = 0.0;
    std::vector<double> latencyMs; //!< serial round trips
    bool ok = true;               //!< contract checks passed
};

/** An in-process daemon serving @p dir on a background thread. */
struct LiveDaemon
{
    LiveDaemon(const std::string &dir, bool socket)
    {
        cfg.spoolDir = dir;
        cfg.workers = 2;
        cfg.pollMs = 1;
        cfg.socket = socket;
        daemon = std::make_unique<SweepDaemon>(cfg);
        if (!daemon->start()) {
            std::fprintf(stderr, "saturation: daemon failed to start "
                                 "in %s\n", dir.c_str());
            return;
        }
        running = true;
        runner = std::thread([this] { daemon->run(stop); });
    }

    ~LiveDaemon()
    {
        if (running) {
            stop.store(true);
            runner.join();
        }
    }

    DaemonConfig cfg;
    std::unique_ptr<SweepDaemon> daemon;
    std::atomic<bool> stop{false};
    std::thread runner;
    bool running = false;
};

/**
 * Post-phase audit: every digest settled in done/ exactly once (one
 * journal "start", no quarantine, nothing still queued or claimed).
 */
bool
exactlyOnce(const std::string &dir,
            const std::vector<std::uint64_t> &digests,
            const char *transport)
{
    JobSpool spool(dir);
    bool ok = true;
    if (!spool.list(JobState::Pending).empty() ||
        !spool.list(JobState::Running).empty()) {
        std::printf("EXACTLY-ONCE VIOLATION (%s): jobs left "
                    "pending/running\n", transport);
        ok = false;
    }
    std::size_t failed = spool.list(JobState::Failed).size();
    if (failed != 0) {
        std::printf("EXACTLY-ONCE VIOLATION (%s): %zu job(s) "
                    "quarantined\n", transport, failed);
        ok = false;
    }
    JobJournal journal(dir + "/journal.log");
    auto attempts = journal.replayAttempts();
    std::size_t wrong = 0;
    for (std::uint64_t d : digests) {
        if (spool.state(d) != JobState::Done || attempts[d] != 1)
            ++wrong;
    }
    if (wrong != 0) {
        std::printf("EXACTLY-ONCE VIOLATION (%s): %zu digest(s) not "
                    "settled with exactly one attempt\n", transport,
                    wrong);
        ok = false;
    }
    return ok;
}

/**
 * Socket phase: batched frame submits, pushed completions.
 * @p jobs are the throughput set, @p lat_jobs the serial-latency set.
 */
PhaseResult
runSocketPhase(const std::string &dir,
               const std::vector<RunJob> &jobs,
               const std::vector<RunJob> &lat_jobs)
{
    PhaseResult res;
    LiveDaemon live(dir, /*socket=*/true);
    if (!live.running) {
        res.ok = false;
        return res;
    }

    TransportConfig tc;
    tc.socketPath = defaultSocketPath(dir);
    TransportClient client(tc);
    if (!client.connect()) {
        std::fprintf(stderr, "saturation: socket connect failed\n");
        res.ok = false;
        return res;
    }

    // Throughput: everything in flight at once, batched 64 per frame.
    Clock::time_point t0 = Clock::now();
    constexpr std::size_t kBatch = 64;
    std::size_t settled = 0;
    for (std::size_t i = 0; i < jobs.size(); i += kBatch) {
        std::vector<std::string> encoded;
        for (std::size_t j = i; j < std::min(i + kBatch, jobs.size());
             ++j)
            encoded.push_back(encodeJob(jobs[j]));
        std::vector<TransportClient::Ack> acks;
        if (!client.submitBatch(encoded, acks)) {
            res.ok = false;
            return res;
        }
        // A duplicate collapse acks terminal immediately and pushes
        // no completion; count it settled here.
        for (const auto &ack : acks)
            if (ack.state == JobState::Done)
                ++settled;
    }
    while (settled < jobs.size()) {
        TransportClient::Completion comp;
        if (!client.nextCompletion(comp, 240'000)) {
            std::fprintf(stderr, "saturation: completion stream "
                                 "stalled (%zu/%zu)\n", settled,
                         jobs.size());
            res.ok = false;
            return res;
        }
        ++settled;
    }
    Clock::time_point t1 = Clock::now();
    res.jobs = settled;
    res.throughputMs = msBetween(t0, t1);
    res.jobsPerSec = static_cast<double>(settled) /
                     (res.throughputMs / 1'000.0);

    // Latency: one job in flight at a time, submit-to-push measured.
    for (const RunJob &job : lat_jobs) {
        Clock::time_point s0 = Clock::now();
        std::vector<TransportClient::Ack> acks;
        if (!client.submitBatch({encodeJob(job)}, acks)) {
            res.ok = false;
            return res;
        }
        TransportClient::Completion comp;
        if (!client.nextCompletion(comp, 240'000) ||
            comp.state != JobState::Done) {
            res.ok = false;
            return res;
        }
        res.latencyMs.push_back(msBetween(s0, Clock::now()));
    }
    return res;
}

/**
 * Spool phase: rename-based submits, state polled from the
 * directories.  Same daemon scheduling, no socket anywhere.
 */
PhaseResult
runSpoolPhase(const std::string &dir,
              const std::vector<RunJob> &jobs,
              const std::vector<RunJob> &lat_jobs,
              std::uint64_t poll_ms)
{
    PhaseResult res;
    LiveDaemon live(dir, /*socket=*/false);
    if (!live.running) {
        res.ok = false;
        return res;
    }

    ServiceClient client(dir, "", poll_ms, /*use_socket=*/false);
    Clock::time_point t0 = Clock::now();
    std::vector<std::uint64_t> digests;
    for (const RunJob &job : jobs)
        digests.push_back(client.submit(job));
    for (std::uint64_t d : digests) {
        if (client.wait(d, 240'000) != JobState::Done) {
            std::fprintf(stderr, "saturation: spool job %#llx did "
                                 "not settle\n",
                         static_cast<unsigned long long>(d));
            res.ok = false;
            return res;
        }
    }
    Clock::time_point t1 = Clock::now();
    res.jobs = jobs.size();
    res.throughputMs = msBetween(t0, t1);
    res.jobsPerSec = static_cast<double>(res.jobs) /
                     (res.throughputMs / 1'000.0);

    for (const RunJob &job : lat_jobs) {
        Clock::time_point s0 = Clock::now();
        ServedBy served = ServedBy::Local;
        client.runJob(job, &served);
        if (served != ServedBy::Daemon) {
            std::fprintf(stderr, "saturation: spool round trip was "
                                 "not daemon-served\n");
            res.ok = false;
            return res;
        }
        res.latencyMs.push_back(msBetween(s0, Clock::now()));
    }
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            jsonPath = arg + 7;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg);
            return 1;
        }
    }

    const std::size_t kThroughputJobs = smoke ? 1'000 : 1'500;
    const std::size_t kLatencyJobs = smoke ? 30 : 100;
    const std::uint64_t kSpoolPollMs = 20;
    // The spool throughput leg re-runs a slice, not the full set: it
    // is O(files) in the spool either way, and the socket leg is the
    // one the >=1000-jobs contract binds.
    const std::size_t kSpoolThroughputJobs = smoke ? 200 : 1'500;

    std::string base = std::filesystem::temp_directory_path() /
                       "vpc_bench_saturation";
    std::filesystem::remove_all(base);
    std::string socketDir = base + "/socket";
    std::string spoolDir = base + "/spool";

    // Identical job sets for both transports (seeds 1..N for the
    // throughput set, 100000+ for the serial-latency set).
    std::vector<RunJob> jobs, latJobs;
    std::vector<std::uint64_t> digests, latDigests;
    for (std::size_t s = 1; s <= kThroughputJobs; ++s) {
        jobs.push_back(tinyJob(s));
        digests.push_back(runDigest(jobs.back()));
    }
    for (std::size_t s = 0; s < kLatencyJobs; ++s) {
        latJobs.push_back(tinyJob(100'000 + s));
        latDigests.push_back(runDigest(latJobs.back()));
    }
    std::vector<RunJob> spoolJobs(
        jobs.begin(),
        jobs.begin() + static_cast<std::ptrdiff_t>(
                           std::min(kSpoolThroughputJobs,
                                    jobs.size())));

    BenchReporter rep(smoke ? "service_saturation_smoke"
                            : "service_saturation");
    rep.setQuick(smoke);

    PhaseResult sock = runSocketPhase(socketDir, jobs, latJobs);
    PhaseResult spool =
        runSpoolPhase(spoolDir, spoolJobs, latJobs, kSpoolPollMs);
    rep.finish();

    bool ok = sock.ok && spool.ok;

    // Exactly-once audits over both spools.
    std::vector<std::uint64_t> socketAll = digests;
    socketAll.insert(socketAll.end(), latDigests.begin(),
                     latDigests.end());
    std::vector<std::uint64_t> spoolAll(
        digests.begin(),
        digests.begin() + static_cast<std::ptrdiff_t>(
                              spoolJobs.size()));
    spoolAll.insert(spoolAll.end(), latDigests.begin(),
                    latDigests.end());
    ok = exactlyOnce(socketDir, socketAll, "socket") && ok;
    ok = exactlyOnce(spoolDir, spoolAll, "spool") && ok;

    // Identity: spread spot checks, socket store vs spool store vs
    // fresh daemon-less execution — bit-identical everywhere.
    {
        RunCache socketStore(socketDir + "/cache");
        RunCache spoolStore(spoolDir + "/cache");
        std::size_t mismatches = 0;
        const std::size_t kChecks = 8;
        for (std::size_t i = 0; i < kChecks; ++i) {
            std::size_t idx = i * (spoolJobs.size() - 1) /
                              (kChecks - 1);
            std::uint64_t d = digests[idx];
            RunRecord a, b;
            if (!socketStore.probe(d, a) ||
                !spoolStore.probe(d, b)) {
                ++mismatches;
                continue;
            }
            RunCache scratch("");
            RunResult fresh =
                runAndMeasureCached(jobs[idx], &scratch);
            const RunRecord &c = fresh.record;
            bool same =
                a.endCycle == b.endCycle && a.endCycle == c.endCycle &&
                a.stats.cycles == b.stats.cycles &&
                a.stats.cycles == c.stats.cycles &&
                a.stats.ipc == b.stats.ipc &&
                a.stats.ipc == c.stats.ipc &&
                a.stats.instrs == b.stats.instrs &&
                a.stats.instrs == c.stats.instrs &&
                a.stats.l2Misses == b.stats.l2Misses &&
                a.stats.l2Misses == c.stats.l2Misses;
            if (!same)
                ++mismatches;
        }
        if (mismatches != 0) {
            std::printf("IDENTITY VIOLATION: %zu/%zu spot checks "
                        "diverged across socket/spool/local\n",
                        mismatches, kChecks);
            ok = false;
        } else {
            std::printf("results bit-identical across socket, spool "
                        "and local execution (%zu spot checks)\n",
                        kChecks);
        }
    }

    double sockP50 = percentile(sock.latencyMs, 0.50);
    double sockP90 = percentile(sock.latencyMs, 0.90);
    double sockP99 = percentile(sock.latencyMs, 0.99);
    double spoolP50 = percentile(spool.latencyMs, 0.50);
    double spoolP90 = percentile(spool.latencyMs, 0.90);
    double spoolP99 = percentile(spool.latencyMs, 0.99);
    double speedup = sockP50 > 0.0 ? spoolP50 / sockP50 : 0.0;

    std::printf("socket: %zu jobs settled exactly once\n", sock.jobs);
    std::printf("spool:  %zu jobs settled exactly once\n", spool.jobs);
    std::printf("median submit-to-result: socket %.1fx faster than "
                "spool polling\n", speedup);

    std::fprintf(stderr,
                 "saturation: socket  %5zu jobs  %8.1f ms  "
                 "%7.0f jobs/s  lat p50/p90/p99 %.2f/%.2f/%.2f ms\n",
                 sock.jobs, sock.throughputMs, sock.jobsPerSec,
                 sockP50, sockP90, sockP99);
    std::fprintf(stderr,
                 "saturation: spool   %5zu jobs  %8.1f ms  "
                 "%7.0f jobs/s  lat p50/p90/p99 %.2f/%.2f/%.2f ms\n",
                 spool.jobs, spool.throughputMs, spool.jobsPerSec,
                 spoolP50, spoolP90, spoolP99);

    if (!smoke) {
        if (sock.jobs < 1'000) {
            std::printf("CONTRACT VIOLATION: only %zu jobs over the "
                        "socket (need >= 1000)\n", sock.jobs);
            ok = false;
        }
        if (speedup < 5.0) {
            std::printf("CONTRACT VIOLATION: socket median only "
                        "%.1fx faster than spool (need >= 5x)\n",
                        speedup);
            ok = false;
        }
    }

    char extra[640];
    std::snprintf(
        extra, sizeof extra,
        "{\n"
        "    \"socket_jobs\": %zu,\n"
        "    \"spool_jobs\": %zu,\n"
        "    \"socket_jobs_per_sec\": %.1f,\n"
        "    \"spool_jobs_per_sec\": %.1f,\n"
        "    \"socket_submit_ms_p50\": %.3f,\n"
        "    \"socket_submit_ms_p90\": %.3f,\n"
        "    \"socket_submit_ms_p99\": %.3f,\n"
        "    \"spool_submit_ms_p50\": %.3f,\n"
        "    \"spool_submit_ms_p90\": %.3f,\n"
        "    \"spool_submit_ms_p99\": %.3f,\n"
        "    \"median_speedup\": %.2f\n"
        "  }",
        sock.jobs, spool.jobs, sock.jobsPerSec, spool.jobsPerSec,
        sockP50, sockP90, sockP99, spoolP50, spoolP90, spoolP99,
        speedup);
    rep.setExtraSection("service", extra);

    rep.printSummary();
    rep.writeJson(jsonPath);
    std::filesystem::remove_all(base);
    return ok ? 0 : 1;
}
