/**
 * @file
 * Shared bench instrumentation: wall-clock timing, kernel-counter
 * aggregation and a machine-readable JSON report.
 *
 * Every bench binary prints a human-readable table; BenchReporter adds
 * the numbers a perf regression harness needs -- wall time, simulated
 * cycles, simulation rate (Mcycles/s) and event density (events per
 * executed cycle) -- and can write them as BENCH_<name>.json so
 * before/after comparisons are a diff, not a copy-paste exercise.
 *
 * Usage:
 *
 *   BenchReporter rep("headline");       // clock starts here
 *   ... run simulations, after each one:
 *   rep.addRun(sys.now(), sys.kernelStats());
 *   rep.finish();                        // clock stops here
 *   rep.printSummary();
 *   rep.writeJson();                     // BENCH_headline.json
 *
 * addRun() is thread-safe so sweep-driven benches can report from
 * parallelFor jobs.
 */

#ifndef VPC_BENCH_BENCH_COMMON_HH
#define VPC_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "system/options.hh"
#include "system/run_cache.hh"

namespace vpc
{

/**
 * @name Canonical bench workload identity
 *
 * Every bench places thread t's workload at threadBaseAddr(t) with
 * seed t + 1.  Deriving bases and seeds from these helpers (instead
 * of re-spelling the magic constants per bench) keeps run-cache keys
 * in agreement across benches, examples and the vpcsim driver.
 */
/// @{

/** @return thread @p t's address-space base (t << 40). */
constexpr Addr benchThreadBase(unsigned t) { return threadBaseAddr(t); }

/** @return thread @p t's canonical workload seed (t + 1). */
constexpr std::uint64_t benchThreadSeed(unsigned t) { return t + 1; }

/** @return the run-cache key for @p spec running on thread @p t. */
inline WorkloadKey
benchWorkloadKey(const std::string &spec, unsigned t)
{
    return WorkloadKey{spec, benchThreadBase(t), benchThreadSeed(t)};
}

/// @}

/** Wall-time + kernel-counter reporter for bench binaries. */
class BenchReporter
{
  public:
    /** Start the wall clock; @p name keys the default JSON filename. */
    explicit BenchReporter(std::string name);

    /**
     * Record one finished simulation.  Thread-safe.
     *
     * @param sim_cycles the simulation's final cycle count
     * @param k its kernel counters
     */
    void addRun(std::uint64_t sim_cycles, const KernelStats &k);

    /**
     * Fold one simulation's cycle-attribution profile (--profile)
     * into the report.  Thread-safe; accounts merge by component
     * name across runs.  The JSON gains a "profile" section and
     * printSummary() appends the merged per-component table.
     */
    void addProfile(const Profiler &p);

    /**
     * Record the bench's run-cache totals (typically once, just
     * before finish()).  They appear in the stderr summary and as
     * the JSON's "run_cache" section; benches that never consult a
     * cache report zeros.  A non-zero @p store_errors means the disk
     * store silently degraded (full disk, bad permissions) — CI can
     * alert on the JSON field instead of scraping warn lines.
     */
    void setRunCacheStats(std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t disk_hits = 0,
                          std::uint64_t store_errors = 0);

    /** Convenience: record all four counters from @p cache. */
    void setRunCacheStats(const RunCache &cache);

    /**
     * Record the kernel thread count the bench ran with.  Written as
     * the JSON's "kernel_threads" field so before/after comparisons
     * (tools/bench_diff) can tell a kernel-configuration change from
     * a simulator speed change.  Defaults to 1 (the serial kernel).
     */
    void setKernelThreads(unsigned kt);

    /**
     * Attach a bench-specific JSON section.  @p raw_json must be a
     * complete JSON value (object or array); it is emitted verbatim
     * under @p key at the top level of the report.  bench_scaleup
     * uses this for its per-cell wall-time matrix.
     */
    void setExtraSection(std::string key, std::string raw_json);

    /** Stop the wall clock (idempotent; addRun() after is an error). */
    void finish();

    /** @return wall time from construction to finish(), milliseconds. */
    double wallMs() const;

    /** @return total simulated cycles across all runs. */
    std::uint64_t simCycles() const { return simCycles_; }

    /** @return simulation rate in Mcycles per wall-clock second. */
    double mcyclesPerSec() const;

    /** @return events fired per *executed* cycle (event density). */
    double eventsPerCycle() const;

    /**
     * Print the one-line kernel performance summary to stderr (stderr
     * so redirected stdout stays identical between skip / --no-skip).
     */
    void printSummary() const;

    /**
     * Write the JSON report.
     *
     * @param path output file; empty = "BENCH_<name>.json" in the
     *             current directory
     */
    void writeJson(const std::string &path = "") const;

    /**
     * Mark this report as a reduced-scale run (--quick).  Written as
     * the JSON's "quick" field; tools/bench_diff refuses to gate a
     * quick row against a full one (or vice versa) — their wall
     * times are not comparable by construction.
     */
    void setQuick(bool quick);

    /**
     * Host machine and toolchain description, captured once per
     * process: processor count, CPU model string (from /proc/cpuinfo
     * when available), the 1-minute load average, the compiler
     * id/version this binary was built with, the SoA-scan instruction
     * set compiled in (src/sim/vec.hh) and whether fixed-latency
     * event fusion is active (VPC_NO_FUSE).  Written into every bench
     * JSON so cross-machine *and* cross-toolchain/flag comparisons
     * are detectable (see tools/bench_diff).
     */
    struct MachineInfo
    {
        unsigned nproc = 0;
        std::string cpuModel; //!< empty when undeterminable
        double loadavg1m = -1.0; //!< negative when undeterminable
        std::string compiler; //!< e.g. "gcc 12.2.0"
        std::string simd;     //!< vec::kIsaName ("avx2", "scalar", ...)
        bool fuse = true;     //!< defaultKernelFuse() at probe time
    };

    /** @return the host description (probed on first call). */
    static const MachineInfo &machineInfo();

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point end_;
    bool finished_ = false;
    mutable std::mutex mutex_;
    std::uint64_t runs_ = 0;
    std::uint64_t simCycles_ = 0;
    std::uint64_t cyclesExecuted_ = 0;
    std::uint64_t cyclesSkipped_ = 0;
    std::uint64_t ticksExecuted_ = 0;
    std::uint64_t eventsFired_ = 0;
    Profiler profile_;       //!< merged across addProfile() calls
    bool haveProfile_ = false;
    unsigned kernelThreads_ = 1;
    bool quick_ = false;
    std::string extraKey_;   //!< see setExtraSection()
    std::string extraJson_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
    std::uint64_t cacheDiskHits_ = 0;
    std::uint64_t cacheStoreErrors_ = 0;
};

} // namespace vpc

#endif // VPC_BENCH_BENCH_COMMON_HH
