/**
 * @file
 * Command-line options for the vpcsim driver.
 *
 * Parses an argv-style option list into a SystemConfig plus one
 * workload specification per processor, so experiments can be run
 * without writing C++:
 *
 *   vpcsim --arbiter=vpc --phi=0.5,0.5 --beta=0.5,0.5 \
 *          --workload=loads,stores --cycles=200000
 *
 * Workload specs: "loads", "stores", "idle", any SPEC 2000 stand-in
 * name (e.g. "mcf"), or "trace:<path>".
 */

#ifndef VPC_SYSTEM_OPTIONS_HH
#define VPC_SYSTEM_OPTIONS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "system/run_cache.hh"
#include "workload/workload.hh"

namespace vpc
{

/**
 * Canonical per-thread address-space base: thread @p t owns the 1 TiB
 * region starting at t << 40.  Every driver and bench derives workload
 * bases from this so run-cache keys agree across entry points.
 */
constexpr Addr
threadBaseAddr(unsigned t)
{
    return (1ull << 40) * t;
}

/** Parsed vpcsim invocation. */
struct SimOptions
{
    SystemConfig config;
    std::vector<std::string> workloadSpecs;
    Cycle warmup = 100'000;
    Cycle measure = 400'000;
    bool dumpStats = false;
    std::uint64_t seed = 1;
    std::string runCacheDir; //!< --run-cache store ("" = no cache)

    /** Build the workload objects described by workloadSpecs. */
    std::vector<std::unique_ptr<Workload>> buildWorkloads() const;

    /**
     * The invocation as a content-addressable job: the same config,
     * workload keys (spec, threadBaseAddr(t), seed + t) and run
     * lengths buildWorkloads()+runAndMeasure would execute.
     */
    RunJob buildRunJob() const;
};

/**
 * Parse @p args (without argv[0]).
 *
 * @param args option strings
 * @param error_out on failure, receives a human-readable message
 * @return the parsed options, or std::nullopt on error
 */
std::optional<SimOptions>
parseSimOptions(const std::vector<std::string> &args,
                std::string &error_out);

/** @return the --help text. */
std::string simUsage();

/**
 * Build one workload from a spec string.
 *
 * @param spec "loads" | "stores" | "idle" | a SPEC name | "trace:path"
 * @param base_addr thread address-space base
 * @param seed generator seed
 * @param error_out receives a message when the spec is unknown
 * @return the workload, or nullptr on error
 */
std::unique_ptr<Workload>
makeWorkloadFromSpec(const std::string &spec, Addr base_addr,
                     std::uint64_t seed, std::string &error_out);

} // namespace vpc

#endif // VPC_SYSTEM_OPTIONS_HH
