#include "system/stats_report.hh"

#include <iomanip>

#include "sim/format.hh"

namespace vpc
{

namespace
{

void
line(std::ostream &os, const std::string &name, double value,
     const char *desc)
{
    os << std::left << std::setw(44) << name << std::setw(16)
       << value << "# " << desc << "\n";
}

void
line(std::ostream &os, const std::string &name, std::uint64_t value,
     const char *desc)
{
    os << std::left << std::setw(44) << name << std::setw(16)
       << value << "# " << desc << "\n";
}

} // namespace

void
dumpStats(CmpSystem &sys, std::ostream &os, Cycle window)
{
    const SystemConfig &cfg = sys.config();
    os << "---------- Begin Simulation Statistics ----------\n";
    line(os, "sim.cycles", static_cast<std::uint64_t>(sys.now()),
         "simulated core cycles");

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        std::string p = format("cpu{}.", t);
        Cpu &cpu = sys.cpu(t);
        line(os, p + "instrs", cpu.instrsRetired(),
             "instructions retired");
        line(os, p + "ipc", cpu.ipc(window), "instructions per cycle");
        line(os, p + "loads", cpu.loadsRetired(), "loads retired");
        line(os, p + "stores", cpu.storesRetired(), "stores retired");
        line(os, p + "storeStallCycles", cpu.storeStallCycles(),
             "retire stalls on full store gathering buffer");

        std::string l = format("l1d{}.", t);
        L1DCache &l1 = sys.l1(t);
        line(os, l + "hits", l1.hitCount(), "L1 load hits");
        line(os, l + "misses", l1.missCount(), "L1 primary misses");
        line(os, l + "mergedMisses", l1.mergedMissCount(),
             "secondary misses merged into an MSHR");
        line(os, l + "blocked", l1.blockedCount(),
             "loads blocked on full MSHRs");
        line(os, l + "prefetches", l1.prefetchesIssued(),
             "prefetch lines requested");
        line(os, l + "prefetchLateUseful", l1.prefetchesLateUseful(),
             "demand misses merged into in-flight prefetches");
    }

    L2Cache &l2 = sys.l2();
    for (unsigned b = 0; b < l2.numBanks(); ++b) {
        std::string p = format("l2.bank{}.", b);
        L2Bank &bank = l2.bank(b);
        line(os, p + "tag.util",
             bank.tagArray().util().utilization(window),
             "tag array busy fraction");
        line(os, p + "data.util",
             bank.dataArray().util().utilization(window),
             "data array busy fraction");
        line(os, p + "bus.util",
             bank.dataBus().util().utilization(window),
             "data bus busy fraction");
        line(os, p + "tag.accesses", bank.tagArray().accessCount(),
             "tag array accesses");
        line(os, p + "data.accesses", bank.dataArray().accessCount(),
             "data array accesses");
        line(os, p + "bus.transfers", bank.dataBus().accessCount(),
             "data bus line transfers");
        line(os, p + "rcqHighWater",
             static_cast<std::uint64_t>(bank.readClaimHighWater()),
             "read-claim queue peak occupancy");
        for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
            std::string q = format("l2.bank{}.thread{}.", b, t);
            line(os, q + "reads", bank.readCount(t),
                 "L2 read requests admitted");
            line(os, q + "writes", bank.writeCount(t),
                 "L2 write requests admitted");
            line(os, q + "misses", bank.threadMissCount(t),
                 "L2 misses");
            line(os, q + "dataGrants",
                 bank.dataArray().arbiter().grantCount(t),
                 "data array grants");
            line(os, q + "sgbGathered", bank.sgb(t).storesGathered(),
                 "stores gathered into existing entries");
            line(os, q + "sgbStores", bank.sgb(t).storesTotal(),
                 "stores delivered to the gathering buffer");
        }
        line(os, p + "arbiter.queueDelayMean",
             bank.dataArray().arbiter().queueDelay().mean(),
             "mean data-array arbitration delay, cycles");
    }

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        std::string p = format("mem.thread{}.", t);
        MemoryController &mc = sys.mem();
        line(os, p + "reads", mc.readCount(t), "line reads serviced");
        line(os, p + "writes", mc.writeCount(t),
             "line writebacks serviced");
        line(os, p + "readLatencyMean", mc.readLatency(t).mean(),
             "mean read latency, cycles");
        line(os, p + "readLatencyMax", mc.readLatency(t).max(),
             "max read latency, cycles");
    }
    os << "---------- End Simulation Statistics   ----------\n";
}

} // namespace vpc
