#include "system/stats_report.hh"

#include <cstdio>
#include <iomanip>

#include "sim/format.hh"
#include "system/table_printer.hh"

namespace vpc
{

namespace
{

void
line(std::ostream &os, const std::string &name, double value,
     const char *desc)
{
    os << std::left << std::setw(44) << name << std::setw(16)
       << value << "# " << desc << "\n";
}

void
line(std::ostream &os, const std::string &name, std::uint64_t value,
     const char *desc)
{
    os << std::left << std::setw(44) << name << std::setw(16)
       << value << "# " << desc << "\n";
}

} // namespace

void
dumpStats(CmpSystem &sys, std::ostream &os, Cycle window)
{
    const SystemConfig &cfg = sys.config();
    os << "---------- Begin Simulation Statistics ----------\n";
    line(os, "sim.cycles", static_cast<std::uint64_t>(sys.now()),
         "simulated core cycles");

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        std::string p = format("cpu{}.", t);
        Cpu &cpu = sys.cpu(t);
        line(os, p + "instrs", cpu.instrsRetired(),
             "instructions retired");
        line(os, p + "ipc", cpu.ipc(window), "instructions per cycle");
        line(os, p + "loads", cpu.loadsRetired(), "loads retired");
        line(os, p + "stores", cpu.storesRetired(), "stores retired");
        line(os, p + "storeStallCycles", cpu.storeStallCycles(),
             "retire stalls on full store gathering buffer");

        std::string l = format("l1d{}.", t);
        L1DCache &l1 = sys.l1(t);
        line(os, l + "hits", l1.hitCount(), "L1 load hits");
        line(os, l + "misses", l1.missCount(), "L1 primary misses");
        line(os, l + "mergedMisses", l1.mergedMissCount(),
             "secondary misses merged into an MSHR");
        line(os, l + "blocked", l1.blockedCount(),
             "loads blocked on full MSHRs");
        line(os, l + "prefetches", l1.prefetchesIssued(),
             "prefetch lines requested");
        line(os, l + "prefetchLateUseful", l1.prefetchesLateUseful(),
             "demand misses merged into in-flight prefetches");
    }

    L2Cache &l2 = sys.l2();
    for (unsigned b = 0; b < l2.numBanks(); ++b) {
        std::string p = format("l2.bank{}.", b);
        L2Bank &bank = l2.bank(b);
        line(os, p + "tag.util",
             bank.tagArray().util().utilization(window),
             "tag array busy fraction");
        line(os, p + "data.util",
             bank.dataArray().util().utilization(window),
             "data array busy fraction");
        line(os, p + "bus.util",
             bank.dataBus().util().utilization(window),
             "data bus busy fraction");
        line(os, p + "tag.accesses", bank.tagArray().accessCount(),
             "tag array accesses");
        line(os, p + "data.accesses", bank.dataArray().accessCount(),
             "data array accesses");
        line(os, p + "bus.transfers", bank.dataBus().accessCount(),
             "data bus line transfers");
        line(os, p + "rcqHighWater",
             static_cast<std::uint64_t>(bank.readClaimHighWater()),
             "read-claim queue peak occupancy");
        for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
            std::string q = format("l2.bank{}.thread{}.", b, t);
            line(os, q + "reads", bank.readCount(t),
                 "L2 read requests admitted");
            line(os, q + "writes", bank.writeCount(t),
                 "L2 write requests admitted");
            line(os, q + "misses", bank.threadMissCount(t),
                 "L2 misses");
            line(os, q + "dataGrants",
                 bank.dataArray().arbiter().grantCount(t),
                 "data array grants");
            line(os, q + "sgbGathered", bank.sgb(t).storesGathered(),
                 "stores gathered into existing entries");
            line(os, q + "sgbStores", bank.sgb(t).storesTotal(),
                 "stores delivered to the gathering buffer");
        }
        line(os, p + "arbiter.queueDelayMean",
             bank.dataArray().arbiter().queueDelay().mean(),
             "mean data-array arbitration delay, cycles");
    }

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        std::string p = format("mem.thread{}.", t);
        MemoryController &mc = sys.mem();
        line(os, p + "reads", mc.readCount(t), "line reads serviced");
        line(os, p + "writes", mc.writeCount(t),
             "line writebacks serviced");
        line(os, p + "readLatencyMean", mc.readLatency(t).mean(),
             "mean read latency, cycles");
        line(os, p + "readLatencyMax", mc.readLatency(t).max(),
             "max read latency, cycles");
    }
    os << "---------- End Simulation Statistics   ----------\n";
}

void
printRunReport(const SimOptions &opts, const IntervalStats &stats,
               const KernelStats &k)
{
    TablePrinter t(format("vpcsim: {} cycles measured after {} "
                          "warmup",
                          opts.measure, opts.warmup),
                   {"Thread", "Workload", "phi", "beta", "IPC",
                    "L2 reads", "L2 writes", "L2 misses"});
    for (unsigned i = 0; i < opts.config.numProcessors; ++i) {
        t.row({std::to_string(i), opts.workloadSpecs[i],
               TablePrinter::num(opts.config.shares[i].phi, 2),
               TablePrinter::num(opts.config.shares[i].beta, 2),
               TablePrinter::num(stats.ipc[i]),
               std::to_string(stats.l2Reads[i]),
               std::to_string(stats.l2Writes[i]),
               std::to_string(stats.l2Misses[i])});
    }
    t.rule();
    std::printf("L2 utilization: tag %.1f%%  data %.1f%%  bus "
                "%.1f%%\n", stats.tagUtil * 100.0,
                stats.dataUtil * 100.0, stats.busUtil * 100.0);
    // Kernel counters live outside the model-stats report: they vary
    // between skipping and --no-skip runs by design, while everything
    // dumpStats() prints must stay bit-identical.  They are part of
    // the run-cache record, so a replay prints the same line.
    std::printf("kernel: %llu events fired  %llu ticks  "
                "%llu cycles executed  %llu skipped\n",
                static_cast<unsigned long long>(k.eventsFired.value()),
                static_cast<unsigned long long>(k.ticksExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesExecuted.value()),
                static_cast<unsigned long long>(
                    k.cyclesSkipped.value()));
}

void
printRunCacheLine(const RunCache &cache)
{
    std::string suffix;
    if (cache.storeErrors() != 0)
        suffix = format(", {} store error(s)", cache.storeErrors());
    std::fprintf(stderr,
                 "run-cache: %llu hits (%llu disk), %llu misses%s\n",
                 static_cast<unsigned long long>(cache.hits()),
                 static_cast<unsigned long long>(cache.diskHits()),
                 static_cast<unsigned long long>(cache.misses()),
                 suffix.c_str());
}

} // namespace vpc
