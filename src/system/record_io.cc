#include "system/record_io.hh"

#include <bit>
#include <cctype>
#include <utility>

namespace vpc
{

void
Fnv1a::bytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        hash_ ^= p[i];
        hash_ *= 0x100000001b3ULL;
    }
}

void
Fnv1a::u64(std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, sizeof(b));
}

void
Fnv1a::dbl(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Fnv1a::str(const std::string &s)
{
    u64(s.size());
    bytes(s.data(), s.size());
}

RecordParser::RecordParser(std::string text) : s_(std::move(text)) {}

bool
RecordParser::parse()
{
    skipWs();
    if (!eat('{'))
        return false;
    skipWs();
    if (eat('}'))
        return posAtEnd();
    for (;;) {
        std::string key;
        if (!parseString(key))
            return false;
        skipWs();
        if (!eat(':'))
            return false;
        skipWs();
        if (peek() == '"') {
            std::string v;
            if (!parseString(v))
                return false;
            strings_[key] = v;
        } else if (peek() == '[') {
            std::vector<std::uint64_t> v;
            if (!parseArray(v))
                return false;
            arrays_[key] = std::move(v);
        } else {
            std::uint64_t v;
            if (!parseUint(v))
                return false;
            ints_[key] = v;
        }
        skipWs();
        if (eat(',')) {
            skipWs();
            continue;
        }
        if (eat('}'))
            return posAtEnd();
        return false;
    }
}

bool
RecordParser::getInt(const std::string &k, std::uint64_t &out) const
{
    auto it = ints_.find(k);
    if (it == ints_.end())
        return false;
    out = it->second;
    return true;
}

bool
RecordParser::getString(const std::string &k, std::string &out) const
{
    auto it = strings_.find(k);
    if (it == strings_.end())
        return false;
    out = it->second;
    return true;
}

bool
RecordParser::getArray(const std::string &k,
                       std::vector<std::uint64_t> &out) const
{
    auto it = arrays_.find(k);
    if (it == arrays_.end())
        return false;
    out = it->second;
    return true;
}

bool
RecordParser::eat(char c)
{
    if (peek() != c)
        return false;
    ++pos_;
    return true;
}

void
RecordParser::skipWs()
{
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
    }
}

bool
RecordParser::posAtEnd()
{
    skipWs();
    return pos_ == s_.size();
}

bool
RecordParser::parseString(std::string &out)
{
    if (!eat('"'))
        return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
        // The writers never emit escapes; reject anything that would
        // need them.
        if (s_[pos_] == '\\')
            return false;
        out += s_[pos_++];
    }
    return eat('"');
}

bool
RecordParser::parseUint(std::uint64_t &out)
{
    if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
    out = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
        std::uint64_t digit = static_cast<std::uint64_t>(s_[pos_] - '0');
        if (out > (UINT64_MAX - digit) / 10)
            return false;
        out = out * 10 + digit;
        ++pos_;
    }
    return true;
}

bool
RecordParser::parseArray(std::vector<std::uint64_t> &out)
{
    if (!eat('['))
        return false;
    skipWs();
    if (eat(']'))
        return true;
    for (;;) {
        std::uint64_t v;
        if (!parseUint(v))
            return false;
        out.push_back(v);
        skipWs();
        if (eat(',')) {
            skipWs();
            continue;
        }
        return eat(']');
    }
}

void
writeRecordVec(std::FILE *f, const char *k,
               const std::vector<std::uint64_t> &v, bool last)
{
    std::fprintf(f, "  \"%s\": [", k);
    for (std::size_t i = 0; i < v.size(); ++i) {
        std::fprintf(f, "%s%llu", i ? ", " : "",
                     static_cast<unsigned long long>(v[i]));
    }
    std::fprintf(f, "]%s\n", last ? "" : ",");
}

std::vector<std::uint64_t>
recordBits(const std::vector<double> &v)
{
    std::vector<std::uint64_t> out;
    out.reserve(v.size());
    for (double d : v)
        out.push_back(std::bit_cast<std::uint64_t>(d));
    return out;
}

std::vector<double>
recordDoubles(const std::vector<std::uint64_t> &v)
{
    std::vector<double> out;
    out.reserve(v.size());
    for (std::uint64_t u : v)
        out.push_back(std::bit_cast<double>(u));
    return out;
}

bool
recordStringSafe(const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\' ||
            static_cast<unsigned char>(c) < 0x20) {
            return false;
        }
    }
    return true;
}

} // namespace vpc
