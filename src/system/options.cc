#include "system/options.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "sim/format.hh"
#include "workload/microbench.hh"
#include "workload/spec2000.hh"
#include "workload/trace.hh"

namespace vpc
{

namespace
{

/** Idle filler: pure compute. */
struct IdleWorkload : Workload
{
    MicroOp next() override { return MicroOp{}; }
    void
    nextBlock(std::span<MicroOp> out) override
    {
        std::fill(out.begin(), out.end(), MicroOp{});
    }
    std::string name() const override { return "idle"; }
    std::unique_ptr<Workload> clone(std::uint64_t) const override
    {
        return std::make_unique<IdleWorkload>();
    }
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

bool
parseDoubles(const std::string &s, std::vector<double> &out,
             std::string &err)
{
    for (const std::string &item : splitCommas(s)) {
        try {
            out.push_back(std::stod(item));
        } catch (const std::exception &) {
            err = format("bad number '{}'", item);
            return false;
        }
    }
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t &out, std::string &err)
{
    try {
        out = std::stoull(s);
        return true;
    } catch (const std::exception &) {
        err = format("bad integer '{}'", s);
        return false;
    }
}

} // namespace

std::unique_ptr<Workload>
makeWorkloadFromSpec(const std::string &spec, Addr base_addr,
                     std::uint64_t seed, std::string &error_out)
{
    if (spec == "loads")
        return std::make_unique<LoadsBenchmark>(base_addr);
    if (spec == "stores")
        return std::make_unique<StoresBenchmark>(base_addr);
    if (spec == "idle")
        return std::make_unique<IdleWorkload>();
    if (spec.rfind("trace:", 0) == 0)
        return std::make_unique<TraceWorkload>(spec.substr(6),
                                               base_addr);
    const auto &names = spec2000Names();
    if (std::find(names.begin(), names.end(), spec) != names.end())
        return makeSpec2000(spec, base_addr, seed);
    error_out = format("unknown workload '{}' (try loads, stores, "
                       "idle, trace:<path>, or a SPEC name)", spec);
    return nullptr;
}

std::vector<std::unique_ptr<Workload>>
SimOptions::buildWorkloads() const
{
    std::vector<std::unique_ptr<Workload>> out;
    for (std::size_t t = 0; t < workloadSpecs.size(); ++t) {
        std::string err;
        auto wl = makeWorkloadFromSpec(workloadSpecs[t],
                                       threadBaseAddr(
                                           static_cast<unsigned>(t)),
                                       seed + t, err);
        if (!wl)
            vpc_fatal("{}", err);
        out.push_back(std::move(wl));
    }
    return out;
}

RunJob
SimOptions::buildRunJob() const
{
    RunJob job;
    job.config = config;
    for (std::size_t t = 0; t < workloadSpecs.size(); ++t) {
        job.workloads.push_back(
            WorkloadKey{workloadSpecs[t],
                        threadBaseAddr(static_cast<unsigned>(t)),
                        seed + t});
    }
    job.warmup = warmup;
    job.measure = measure;
    return job;
}

std::string
simUsage()
{
    return
        "vpcsim -- Virtual Private Caches simulator driver\n"
        "\n"
        "  --workload=a,b,...   one spec per processor: loads, stores,\n"
        "                       idle, trace:<path>, or a SPEC 2000 name\n"
        "                       (art, mcf, swim, ...)\n"
        "  --arbiter=POLICY     vpc | fcfs | row | rr   (default fcfs)\n"
        "  --capacity=POLICY    vpc | lru | occupancy   (default vpc)\n"
        "  --phi=p0,p1,...      bandwidth shares (default: equal)\n"
        "  --beta=b0,b1,...     capacity shares  (default: equal)\n"
        "  --banks=N            L2 banks (default 2)\n"
        "  --warmup=N           warmup cycles (default 100000)\n"
        "  --cycles=N           measured cycles (default 400000)\n"
        "  --seed=N             workload seed (default 1)\n"
        "  --prefetch           enable the L1 stride prefetchers\n"
        "  --shared-memory      one shared DDR2 channel (FQ when\n"
        "                       --arbiter=vpc, else FCFS)\n"
        "  --stats              dump the full statistics report\n"
        "                       (bypasses --run-cache: the report\n"
        "                       needs a live system)\n"
        "  --run-cache=DIR      memoize results on disk: identical\n"
        "                       invocations replay the stored record\n"
        "                       instead of simulating, byte-identical\n"
        "                       stdout either way.  Keys cover config,\n"
        "                       workloads, seeds and run lengths;\n"
        "                       trace workloads key by path, so stale\n"
        "                       records must be cleared when a trace\n"
        "                       file is rewritten in place\n"
        "  --threads=N          kernel worker threads (default 1).\n"
        "                       N > 1 runs the deterministic\n"
        "                       shard-parallel kernel: one shard per\n"
        "                       core plus the uncore, bit-identical\n"
        "                       model results at any N\n"
        "  --profile            attribute host time to components:\n"
        "                       per-component tick/event time and\n"
        "                       counts, reported to stderr after the\n"
        "                       run (observe-only; model results are\n"
        "                       unchanged)\n"
        "  --no-skip            disable kernel quiescence skipping and\n"
        "                       run the naive cycle loop (results are\n"
        "                       identical; useful for differential\n"
        "                       testing and kernel debugging)\n"
        "  --paranoid[=L]       runtime invariant auditing: level 1\n"
        "                       audits every 64 cycles, level >= 2\n"
        "                       every cycle (default off)\n"
        "  --watchdog=N         panic with a state dump when a thread\n"
        "                       with outstanding requests retires\n"
        "                       nothing for N cycles (default off)\n"
        "  --inject-faults=R[,S]  deterministically inject faults at\n"
        "                       expected rate R per cycle with seed S\n"
        "                       (proves the auditors fire)\n"
        "  --help               this text\n";
}

std::optional<SimOptions>
parseSimOptions(const std::vector<std::string> &args,
                std::string &error_out)
{
    SimOptions opts;
    std::vector<double> phis, betas;

    for (const std::string &arg : args) {
        std::string key = arg, value;
        std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }

        if (key == "--workload") {
            opts.workloadSpecs = splitCommas(value);
        } else if (key == "--arbiter") {
            if (value == "vpc") {
                opts.config.arbiterPolicy = ArbiterPolicy::Vpc;
            } else if (value == "fcfs") {
                opts.config.arbiterPolicy = ArbiterPolicy::Fcfs;
            } else if (value == "row") {
                opts.config.arbiterPolicy = ArbiterPolicy::RowFcfs;
            } else if (value == "rr") {
                opts.config.arbiterPolicy = ArbiterPolicy::RoundRobin;
            } else {
                error_out = format("unknown arbiter '{}'", value);
                return std::nullopt;
            }
        } else if (key == "--capacity") {
            if (value == "vpc") {
                opts.config.capacityPolicy = CapacityPolicy::Vpc;
            } else if (value == "lru") {
                opts.config.capacityPolicy = CapacityPolicy::Lru;
            } else if (value == "occupancy") {
                opts.config.capacityPolicy =
                    CapacityPolicy::GlobalOccupancy;
            } else {
                error_out = format("unknown capacity policy '{}'",
                                   value);
                return std::nullopt;
            }
        } else if (key == "--phi") {
            if (!parseDoubles(value, phis, error_out))
                return std::nullopt;
        } else if (key == "--beta") {
            if (!parseDoubles(value, betas, error_out))
                return std::nullopt;
        } else if (key == "--banks") {
            std::uint64_t n;
            if (!parseU64(value, n, error_out))
                return std::nullopt;
            opts.config.l2.banks = static_cast<unsigned>(n);
        } else if (key == "--warmup") {
            if (!parseU64(value, opts.warmup, error_out))
                return std::nullopt;
        } else if (key == "--cycles") {
            if (!parseU64(value, opts.measure, error_out))
                return std::nullopt;
        } else if (key == "--seed") {
            if (!parseU64(value, opts.seed, error_out))
                return std::nullopt;
        } else if (key == "--prefetch") {
            opts.config.l1.prefetch.enable = true;
        } else if (key == "--shared-memory") {
            opts.config.mem.sharedChannel = true;
        } else if (key == "--stats") {
            opts.dumpStats = true;
        } else if (key == "--run-cache") {
            if (value.empty()) {
                error_out = "--run-cache needs a directory";
                return std::nullopt;
            }
            opts.runCacheDir = value;
        } else if (key == "--threads") {
            std::uint64_t n;
            if (!parseU64(value, n, error_out))
                return std::nullopt;
            opts.config.kernelThreads = static_cast<unsigned>(n);
        } else if (key == "--profile") {
            opts.config.profile = true;
        } else if (key == "--no-skip") {
            opts.config.kernelSkip = false;
        } else if (key == "--paranoid") {
            if (value.empty()) {
                opts.config.verify.paranoid = 1;
            } else {
                std::uint64_t level;
                if (!parseU64(value, level, error_out))
                    return std::nullopt;
                opts.config.verify.paranoid =
                    static_cast<unsigned>(level);
            }
        } else if (key == "--watchdog") {
            if (!parseU64(value, opts.config.verify.watchdogCycles,
                          error_out)) {
                return std::nullopt;
            }
        } else if (key == "--inject-faults") {
            std::vector<std::string> parts = splitCommas(value);
            if (parts.empty() || parts.size() > 2) {
                error_out = "--inject-faults takes rate[,seed]";
                return std::nullopt;
            }
            try {
                opts.config.verify.faultRate = std::stod(parts[0]);
            } catch (const std::exception &) {
                error_out = format("bad fault rate '{}'", parts[0]);
                return std::nullopt;
            }
            if (opts.config.verify.faultRate < 0.0 ||
                opts.config.verify.faultRate > 1.0) {
                error_out = format("fault rate {} out of [0, 1]",
                                   parts[0]);
                return std::nullopt;
            }
            if (parts.size() == 2 &&
                !parseU64(parts[1], opts.config.verify.faultSeed,
                          error_out)) {
                return std::nullopt;
            }
        } else if (key == "--help") {
            error_out = simUsage();
            return std::nullopt;
        } else {
            error_out = format("unknown option '{}'\n\n{}", arg,
                               simUsage());
            return std::nullopt;
        }
    }

    if (opts.workloadSpecs.empty()) {
        error_out = "at least one --workload spec is required\n\n" +
                    simUsage();
        return std::nullopt;
    }
    opts.config.numProcessors =
        static_cast<unsigned>(opts.workloadSpecs.size());

    // Shares: explicit lists must match the processor count;
    // otherwise equal shares.
    unsigned n = opts.config.numProcessors;
    if (phis.empty())
        phis.assign(n, 1.0 / n);
    if (betas.empty())
        betas.assign(n, 1.0 / n);
    if (phis.size() != n || betas.size() != n) {
        error_out = format("--phi/--beta need {} entries", n);
        return std::nullopt;
    }
    opts.config.shares.clear();
    for (unsigned t = 0; t < n; ++t)
        opts.config.shares.push_back(QosShare{phis[t], betas[t]});

    // The shared-memory scheduler follows the cache arbiter choice.
    if (opts.config.mem.sharedChannel) {
        opts.config.mem.schedulerPolicy =
            opts.config.arbiterPolicy == ArbiterPolicy::Vpc
                ? ArbiterPolicy::Vpc
                : ArbiterPolicy::Fcfs;
    }

    double phi_sum = 0.0, beta_sum = 0.0;
    for (const QosShare &s : opts.config.shares) {
        phi_sum += s.phi;
        beta_sum += s.beta;
    }
    if (phi_sum > 1.0 + 1e-9 || beta_sum > 1.0 + 1e-9) {
        error_out = format("over-allocated: sum(phi)={}, sum(beta)={}",
                           phi_sum, beta_sum);
        return std::nullopt;
    }
    return opts;
}

} // namespace vpc
