/**
 * @file
 * Full-system assembly: cores + L1s + shared L2 + memory controller.
 *
 * Builds the Figure 1a machine from a SystemConfig and a workload per
 * processor, wires the miss/response paths, and provides snapshot-based
 * measurement (warm up, snapshot, run, diff) so benches report
 * steady-state numbers.
 */

#ifndef VPC_SYSTEM_CMP_SYSTEM_HH
#define VPC_SYSTEM_CMP_SYSTEM_HH

#include <chrono>
#include <memory>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "core/cpu.hh"
#include "mem/memory_controller.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/sharded_simulator.hh"
#include "sim/simulator.hh"
#include "verify/verifier.hh"
#include "workload/workload.hh"

namespace vpc
{

/** Raw counter values at one instant. */
struct SystemSnapshot
{
    Cycle cycle = 0;
    std::vector<std::uint64_t> instrs;
    std::vector<std::uint64_t> loads;
    std::vector<std::uint64_t> stores;
    std::vector<std::uint64_t> l2Reads;
    std::vector<std::uint64_t> l2Writes;
    std::vector<std::uint64_t> l2Misses;
    std::vector<std::uint64_t> sgbStores;
    std::vector<std::uint64_t> sgbGathered;
    double tagBusy = 0.0;  //!< mean busy cycles per bank
    double dataBusy = 0.0;
    double busBusy = 0.0;
};

/** Steady-state metrics over a measurement interval. */
struct IntervalStats
{
    Cycle cycles = 0;
    std::vector<double> ipc;
    std::vector<std::uint64_t> instrs;
    std::vector<std::uint64_t> l2Reads;
    std::vector<std::uint64_t> l2Writes;
    std::vector<std::uint64_t> l2Misses;
    double tagUtil = 0.0;
    double dataUtil = 0.0;
    double busUtil = 0.0;

    /** Fraction of thread @p t's L2 requests that are writes. */
    double
    writeFraction(ThreadId t) const
    {
        std::uint64_t total = l2Reads.at(t) + l2Writes.at(t);
        return total == 0 ? 0.0
            : static_cast<double>(l2Writes[t]) /
              static_cast<double>(total);
    }

    std::vector<std::uint64_t> sgbStores;
    std::vector<std::uint64_t> sgbGathered;

    /** Fraction of thread @p t's stores gathered in the SGB. */
    double
    gatherRate(ThreadId t) const
    {
        return sgbStores.at(t) == 0 ? 0.0
            : static_cast<double>(sgbGathered.at(t)) /
              static_cast<double>(sgbStores.at(t));
    }
};

/** The simulated CMP (Figure 1a). */
class CmpSystem
{
  public:
    /**
     * @param cfg validated system configuration (validate() is called)
     * @param workloads one instruction stream per processor; takes
     *        ownership
     */
    CmpSystem(SystemConfig cfg,
              std::vector<std::unique_ptr<Workload>> workloads);

    /** Advance the simulation by @p cycles. */
    void run(Cycle cycles);

    /** @return the current cycle. */
    Cycle now() const { return psim_ ? psim_->now() : sim.now(); }

    /** @return kernel work/skip counters (see KernelStats). */
    const KernelStats &
    kernelStats() const
    {
        return psim_ ? psim_->kernelStats() : sim.kernelStats();
    }

    /** Capture all measurement counters. */
    SystemSnapshot snapshot() const;

    /** Metrics between two snapshots (@p a taken before @p b). */
    static IntervalStats interval(const SystemSnapshot &a,
                                  const SystemSnapshot &b);

    /** Convenience: run @p warmup, then measure over @p measure. */
    IntervalStats runAndMeasure(Cycle warmup, Cycle measure);

    /** @name Component access (tests and detailed stats) */
    /// @{
    Cpu &cpu(ThreadId t) { return *cpus.at(t); }
    L1DCache &l1(ThreadId t) { return *l1s.at(t); }
    L2Cache &l2() { return *l2_; }
    const L2Cache &l2() const { return *l2_; }
    MemoryController &mem() { return *mem_; }
    const SystemConfig &config() const { return cfg; }

    /** @return the sharded kernel, or nullptr when running serially. */
    ShardedSimulator *shardedKernel() { return psim_.get(); }
    /// @}

    /**
     * @return the verify layer, or nullptr when cfg.verify is fully
     *         disabled (no audit hook installed, zero per-cycle cost
     *         beyond the simulator's null-auditor branch).
     */
    Verifier *verifier() { return verifier_.get(); }

    /**
     * @name Supervision (the sweep daemon's per-job robustness hooks)
     *
     * setCancelToken() installs a cooperative cancel flag on the
     * active kernel (and the Watchdog when one is configured): when
     * the owner sets it, run() unwinds with JobCancelled and the
     * system must be discarded.  armWallDeadline() bounds the run's
     * host time through the Watchdog; it requires
     * cfg.verify.watchdogCycles > 0 and is a silent no-op otherwise
     * (deadlines for watchdog-less jobs come from the supervisor's
     * own monitor via the cancel token).  Both are observe-only for
     * runs that complete — results and kernel counters are unchanged.
     */
    /// @{
    void setCancelToken(const CancelToken *token);
    void armWallDeadline(std::chrono::milliseconds budget);
    /// @}

    /** Render the machine state for the panic dump (also tests). */
    std::string dumpState() const;

    /** @return true when the cycle-attribution profiler is attached. */
    bool profiling() const { return !profilers_.empty(); }

    /**
     * @return every kernel's profiler accounts folded into one, merged
     *         by component name (the shard-parallel kernel keeps one
     *         Profiler per shard).  Meaningful only when profiling().
     */
    Profiler mergedProfile() const;

  private:
    /** Build the verify layer from cfg.verify and install it. */
    void buildVerifier();

    /** Wire components onto the shard-parallel kernel (threads > 1). */
    void buildSharded();

    SystemConfig cfg;
    Simulator sim;
    /** Shard-parallel kernel; non-null iff cfg.kernelThreads > 1. */
    std::unique_ptr<ShardedSimulator> psim_;
    /** Per-thread core-side L2 ports (shard-parallel only). */
    std::vector<std::unique_ptr<L2CorePort>> corePorts_;
    /** Fused fixed-latency chains (cfg.kernelFuse, serial kernel):
     *  the crossbar-transit and critical-word response lanes.  The
     *  per-core L1 hit lanes live inside the Cpus (both kernels). */
    std::unique_ptr<L2Cache::TransitLane> transitLane_;
    std::unique_ptr<L2Bank::ResponseLane> respLane_;
    std::vector<std::unique_ptr<Workload>> workloads;
    std::unique_ptr<MemoryController> mem_;
    std::unique_ptr<L2Cache> l2_;
    std::vector<std::unique_ptr<L1DCache>> l1s;
    std::vector<std::unique_ptr<Cpu>> cpus;
    /** One per kernel (serial: 1; sharded: cores + 1); see --profile. */
    std::vector<std::unique_ptr<Profiler>> profilers_;
    /** Last L2Bank::sgbOccVersion() seen by the uncore phase hook. */
    std::vector<std::uint64_t> sgbVerSeen_;

    // Declared after the components so they are destroyed first:
    // the checkers and the dump callback hold references into them.
    std::unique_ptr<Verifier> verifier_;
    std::unique_ptr<ScopedPanicDump> panicDump_;
};

} // namespace vpc

#endif // VPC_SYSTEM_CMP_SYSTEM_HH
