/**
 * @file
 * Parallel sweep harness: run independent simulations on all cores.
 *
 * Every paper figure is a sweep over (arbiter, phi/beta, workload)
 * configurations, and each configuration is a completely independent
 * simulation — one CmpSystem, one Simulator, one EventQueue, no state
 * shared with any other run.  parallelFor() exploits that: it executes
 * n self-contained jobs on a small thread pool and leaves result
 * placement to the caller, who writes into a pre-sized slot per job
 * index.  Merge order is therefore deterministic by construction: the
 * caller iterates its result vector in index order after the join, so
 * output is bit-identical no matter how many workers ran or how the
 * jobs interleaved.
 *
 * Thread-safety ground rules for jobs (all satisfied by CmpSystem):
 * build every simulator object inside the job, share only immutable
 * inputs (configs, spec strings), and never touch global mutable state.
 * Jobs must not install ScopedPanicDump hooks or fault injectors —
 * those are per-process debugging aids; run them single-threaded.
 */

#ifndef VPC_SYSTEM_SWEEP_HH
#define VPC_SYSTEM_SWEEP_HH

#include <cstddef>
#include <functional>

namespace vpc
{

/**
 * Resolve the worker-thread count for a sweep.
 *
 * @param requested explicit count; 0 means auto
 * @return @p requested if non-zero, else the VPC_SWEEP_THREADS
 *         environment variable if set and positive, else the
 *         hardware concurrency (at least 1)
 */
unsigned sweepThreads(unsigned requested = 0);

/**
 * Run @p fn(0) .. @p fn(n-1) across up to @p threads OS threads.
 *
 * Jobs are handed out from an atomic counter, so scheduling is
 * dynamic; determinism comes from jobs writing only to their own
 * index's slot.  Blocks until every job finished.  If any job throws,
 * the remaining jobs still run to completion and the first exception
 * (by completion order, not index) is rethrown on the caller's thread.
 *
 * With @p threads resolved to 1 (or n <= 1) the jobs run inline on the
 * calling thread in index order — useful for debugging and for exact
 * serial baselines.
 *
 * @param n number of jobs
 * @param fn job body, called with the job index
 * @param threads worker count; 0 = sweepThreads() auto detection
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0);

} // namespace vpc

#endif // VPC_SYSTEM_SWEEP_HH
