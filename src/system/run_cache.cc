#include "system/run_cache.hh"

#include <bit>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <signal.h>
#include <unistd.h>

#include "sim/format.hh"
#include "sim/logging.hh"
#include "system/options.hh"
#include "system/record_io.hh"

namespace vpc
{

namespace
{

void
digestPrefetch(Fnv1a &h, const PrefetchConfig &p)
{
    h.u64(p.enable ? 1 : 0);
    h.u64(p.streams);
    h.u64(p.degree);
    h.u64(p.confidence);
}

/**
 * Hash every field of the normalized config that can influence either
 * the model statistics or the kernel counters.  `profile` is the one
 * deliberate omission (observe-only; see run_cache.hh).
 */
void
digestConfig(Fnv1a &h, const SystemConfig &cfg)
{
    h.u64(cfg.numProcessors);

    const CoreConfig &c = cfg.core;
    h.u64(c.dispatchWidth);
    h.u64(c.robEntries);
    h.u64(c.retireWidth);
    h.u64(c.loadQueueEntries);
    h.u64(c.storeQueueEntries);
    h.u64(c.lsuPorts);
    h.u64(c.storeCommitWidth);
    h.dbl(c.lsuRejectProb);

    const L1Config &l1 = cfg.l1;
    h.u64(l1.sizeBytes);
    h.u64(l1.ways);
    h.u64(l1.lineBytes);
    h.u64(l1.hitLatency);
    h.u64(l1.mshrs);
    digestPrefetch(h, l1.prefetch);

    const L2Config &l2 = cfg.l2;
    h.u64(l2.banks);
    h.u64(l2.sizeBytes);
    h.u64(l2.ways);
    h.u64(l2.lineBytes);
    h.u64(l2.tagLatency);
    h.u64(l2.tagWriteAccesses);
    h.u64(l2.dataLatency);
    h.u64(l2.dataWriteAccesses);
    h.u64(l2.busBeatCycles);
    h.u64(l2.busBytes);
    h.u64(l2.busOccupancyOverride);
    h.u64(l2.interconnectLatency);
    h.u64(l2.stateMachinesPerThread);
    h.u64(l2.sgbEntriesPerThread);
    h.u64(l2.sgbHighWater);
    h.u64(l2.readClaimEntries);

    const MemConfig &m = cfg.mem;
    h.u64(m.ranksPerChannel);
    h.u64(m.banksPerRank);
    h.u64(m.transactionEntries);
    h.u64(m.writeEntries);
    h.u64(m.tRcd);
    h.u64(m.tCl);
    h.u64(m.tRp);
    h.u64(m.tBurst);
    h.u64(m.tWr);
    h.u64(m.ctrlLatency);
    h.u64(m.sharedChannel ? 1 : 0);
    h.u64(static_cast<std::uint64_t>(m.schedulerPolicy));

    h.u64(static_cast<std::uint64_t>(cfg.arbiterPolicy));
    h.u64(static_cast<std::uint64_t>(cfg.capacityPolicy));

    const VerifyConfig &v = cfg.verify;
    h.u64(v.paranoid);
    h.u64(v.auditInterval);
    h.u64(v.watchdogCycles);
    h.dbl(v.faultRate);
    h.u64(v.faultSeed);

    h.u64(cfg.kernelSkip ? 1 : 0);
    h.u64(cfg.kernelThreads);
    h.u64(cfg.kernelFuse ? 1 : 0);
    h.u64(cfg.allowUnallocatedShares ? 1 : 0);
    h.u64(cfg.vpcIntraThreadRow ? 1 : 0);
    h.u64(cfg.vpcIdleReset ? 1 : 0);
    h.u64(cfg.vpcWorkConserving ? 1 : 0);

    h.u64(cfg.shares.size());
    for (const QosShare &s : cfg.shares) {
        h.dbl(s.phi);
        h.dbl(s.beta);
    }
    h.u64(cfg.l1PrefetchPerThread.size());
    for (const PrefetchConfig &p : cfg.l1PrefetchPerThread)
        digestPrefetch(h, p);
}

/** @return whether a process with pid @p pid is still alive. */
bool
pidAlive(std::uint64_t pid)
{
    if (pid == 0 || pid > static_cast<std::uint64_t>(INT32_MAX))
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    // EPERM means the pid exists but belongs to someone else.
    return errno == EPERM;
}

} // namespace

std::uint64_t
runDigest(const RunJob &job)
{
    // Normalize first so "empty shares" and "explicit equal shares"
    // digest identically (validate() fills the defaults).
    SystemConfig cfg = job.config;
    cfg.validate();

    Fnv1a h;
    h.u64(kRunCacheSchema);
    digestConfig(h, cfg);
    h.u64(job.workloads.size());
    for (const WorkloadKey &w : job.workloads) {
        h.str(w.spec);
        h.u64(w.base);
        h.u64(w.seed);
    }
    h.u64(job.warmup);
    h.u64(job.measure);
    return h.value();
}

RunCache::RunCache(std::string disk_dir) : dir_(std::move(disk_dir))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        if (ec) {
            vpc_warn("run-cache: cannot create '{}': {}; disk store "
                     "disabled", dir_, ec.message());
            dir_.clear();
            storeErrors_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Janitor: a writer that crashed between temp create and
        // rename leaks its temp forever; reclaim such orphans on
        // every store open.
        gcStaleTemps(dir_);
    }
}

std::size_t
RunCache::gcStaleTemps(const std::string &dir,
                       std::chrono::seconds max_age)
{
    namespace fs = std::filesystem;
    std::size_t removed = 0;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    const auto now = fs::file_time_type::clock::now();
    auto is_shard_dir = [](const std::string &n) {
        return n.size() == 2 &&
               std::isxdigit(static_cast<unsigned char>(n[0])) &&
               std::isxdigit(static_cast<unsigned char>(n[1]));
    };
    for (const fs::directory_entry &e : it) {
        const std::string name = e.path().filename().string();
        // Descend into the 256-way shard fanout (one level only).
        if (e.is_directory(ec) && is_shard_dir(name)) {
            removed += gcStaleTemps(e.path().string(), max_age);
            continue;
        }
        // Temp names are "<record>.tmp.<pid>.<seq>"; anything else in
        // the store (records, foreign files) is not ours to clean.
        std::size_t tag = name.find(".tmp.");
        if (tag == std::string::npos || !e.is_regular_file(ec))
            continue;
        std::uint64_t pid = 0;
        bool have_pid = false;
        {
            const char *p = name.c_str() + tag + 5;
            char *end = nullptr;
            pid = std::strtoull(p, &end, 10);
            have_pid = end != p && end != nullptr && *end == '.';
        }
        bool stale;
        if (have_pid) {
            stale = !pidAlive(pid);
        } else {
            // Legacy/foreign temp: age is the only signal.
            auto mtime = fs::last_write_time(e.path(), ec);
            stale = !ec && now - mtime > max_age;
        }
        if (stale && fs::remove(e.path(), ec) && !ec)
            ++removed;
    }
    if (removed > 0)
        vpc_inform("run-cache: reclaimed {} stale temp file(s) in '{}'",
                   removed, dir);
    return removed;
}

std::string
RunCache::recordPath(std::uint64_t key) const
{
    if (dir_.empty())
        return "";
    // 256-way fanout by the first digest byte: "ab/ab12...ef.json".
    char name[40];
    std::snprintf(name, sizeof(name), "%02llx/%016llx.json",
                  static_cast<unsigned long long>(key >> 56),
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

std::string
RunCache::legacyRecordPath(std::uint64_t key) const
{
    if (dir_.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

bool
RunCache::loadFromDisk(std::uint64_t key, RunRecord &out) const
{
    std::string path = recordPath(key);
    if (path.empty())
        return false;
    std::ifstream in(path);
    if (!in) {
        // Pre-shard stores published records flat in the store root;
        // keep serving them.
        in.open(legacyRecordPath(key));
    }
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    RecordParser p(ss.str());
    if (!p.parse())
        return false;

    std::uint64_t schema = 0, stored_key = 0, end_cycle = 0,
                  cycles = 0, threads = 0;
    std::string key_hex;
    if (!p.getInt("schema", schema) || schema != kRunCacheSchema)
        return false;
    if (!p.getString("key", key_hex) || key_hex.empty())
        return false;
    char *end = nullptr;
    stored_key = std::strtoull(key_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || stored_key != key)
        return false;
    if (!p.getInt("end_cycle", end_cycle) ||
        !p.getInt("cycles", cycles) || !p.getInt("threads", threads)) {
        return false;
    }

    std::vector<std::uint64_t> kernel, ipc, instrs, l2r, l2w, l2m,
        sgbs, sgbg, utils;
    if (!p.getArray("kernel", kernel) || kernel.size() != 8 ||
        !p.getArray("ipc_bits", ipc) || !p.getArray("instrs", instrs) ||
        !p.getArray("l2_reads", l2r) || !p.getArray("l2_writes", l2w) ||
        !p.getArray("l2_misses", l2m) ||
        !p.getArray("sgb_stores", sgbs) ||
        !p.getArray("sgb_gathered", sgbg) ||
        !p.getArray("util_bits", utils) || utils.size() != 3) {
        return false;
    }
    if (ipc.size() != threads || instrs.size() != threads ||
        l2r.size() != threads || l2w.size() != threads ||
        l2m.size() != threads || sgbs.size() != threads ||
        sgbg.size() != threads) {
        return false;
    }

    out = RunRecord{};
    out.endCycle = end_cycle;
    out.stats.cycles = cycles;
    out.stats.ipc = recordDoubles(ipc);
    out.stats.instrs = instrs;
    out.stats.l2Reads = l2r;
    out.stats.l2Writes = l2w;
    out.stats.l2Misses = l2m;
    out.stats.sgbStores = sgbs;
    out.stats.sgbGathered = sgbg;
    out.stats.tagUtil = std::bit_cast<double>(utils[0]);
    out.stats.dataUtil = std::bit_cast<double>(utils[1]);
    out.stats.busUtil = std::bit_cast<double>(utils[2]);
    out.kernel.cyclesExecuted.inc(kernel[0]);
    out.kernel.cyclesSkipped.inc(kernel[1]);
    out.kernel.ticksExecuted.inc(kernel[2]);
    out.kernel.eventsFired.inc(kernel[3]);
    out.kernel.messagesSent.inc(kernel[4]);
    out.kernel.wheelCascades.inc(kernel[5]);
    out.kernel.epochs.inc(kernel[6]);
    out.kernel.barrierStalls.inc(kernel[7]);
    return true;
}

void
RunCache::storeToDisk(std::uint64_t key, const RunRecord &r) const
{
    std::string path = recordPath(key);
    if (path.empty())
        return;
    // Write-to-temp + rename so concurrent processes sharing the
    // store never observe a torn record.  The temp name embeds our
    // pid (for the janitor) and a per-call discriminator so two
    // threads of one process publishing the same key never collide.
    static std::atomic<std::uint64_t> seq{0};
    std::string tmp = format("{}.tmp.{}.{}", path,
                             static_cast<unsigned long long>(::getpid()),
                             seq.fetch_add(1,
                                           std::memory_order_relaxed));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        // First write into this shard: create the fanout directory
        // lazily and retry once.
        std::error_code dir_ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), dir_ec);
        f = std::fopen(tmp.c_str(), "w");
    }
    if (!f) {
        vpc_warn("run-cache: cannot write '{}'", tmp);
        storeErrors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const IntervalStats &s = r.stats;
    std::fprintf(f, "{\n  \"schema\": %llu,\n  \"key\": \"%016llx\",\n",
                 static_cast<unsigned long long>(kRunCacheSchema),
                 static_cast<unsigned long long>(key));
    std::fprintf(f, "  \"end_cycle\": %llu,\n  \"cycles\": %llu,\n"
                 "  \"threads\": %llu,\n",
                 static_cast<unsigned long long>(r.endCycle),
                 static_cast<unsigned long long>(s.cycles),
                 static_cast<unsigned long long>(s.ipc.size()));
    writeRecordVec(f, "kernel",
             {r.kernel.cyclesExecuted.value(),
              r.kernel.cyclesSkipped.value(),
              r.kernel.ticksExecuted.value(),
              r.kernel.eventsFired.value(),
              r.kernel.messagesSent.value(),
              r.kernel.wheelCascades.value(),
              r.kernel.epochs.value(),
              r.kernel.barrierStalls.value()});
    writeRecordVec(f, "ipc_bits", recordBits(s.ipc));
    writeRecordVec(f, "instrs", s.instrs);
    writeRecordVec(f, "l2_reads", s.l2Reads);
    writeRecordVec(f, "l2_writes", s.l2Writes);
    writeRecordVec(f, "l2_misses", s.l2Misses);
    writeRecordVec(f, "sgb_stores", s.sgbStores);
    writeRecordVec(f, "sgb_gathered", s.sgbGathered);
    writeRecordVec(f, "util_bits",
             recordBits({s.tagUtil, s.dataUtil, s.busUtil}), true);
    std::fprintf(f, "}\n");
    // A full disk shows up here, not in the fprintfs: check the
    // stream error state before trusting the temp enough to publish.
    bool ok = std::ferror(f) == 0;
    ok = std::fclose(f) == 0 && ok;
    std::error_code ec;
    if (!ok) {
        vpc_warn("run-cache: short write on '{}'", tmp);
        storeErrors_.fetch_add(1, std::memory_order_relaxed);
        std::filesystem::remove(tmp, ec);
        return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        vpc_warn("run-cache: cannot publish '{}': {}", path,
                 ec.message());
        storeErrors_.fetch_add(1, std::memory_order_relaxed);
        std::filesystem::remove(tmp, ec);
    }
}

bool
RunCache::probe(std::uint64_t key, RunRecord &out)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.ready) {
            out = it->second.record;
            ++hits_;
            return true;
        }
    }
    if (loadFromDisk(key, out)) {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = map_[key];
        if (!e.ready) {
            e.ready = true;
            e.record = out;
        }
        ++hits_;
        ++diskHits_;
        return true;
    }
    return false;
}

RunRecord
RunCache::lookupOrCompute(std::uint64_t key,
                          const std::function<RunRecord()> &compute,
                          bool *hit_out)
{
    bool must_compute = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            Entry &e = map_[key];
            if (e.ready) {
                ++hits_;
                if (hit_out)
                    *hit_out = true;
                return e.record;
            }
            if (!e.computing) {
                e.computing = true;
                must_compute = true;
                break;
            }
            // Another job is computing this key; share its record.
            cv_.wait(lock);
        }
    }

    RunRecord rec;
    if (!must_compute)
        vpc_panic("run-cache in-flight bookkeeping broke");
    bool from_disk = loadFromDisk(key, rec);
    if (!from_disk) {
        try {
            rec = compute();
        } catch (...) {
            // A failed compute (cancelled job, deadline, workload
            // error) must not strand the waiters: drop the in-flight
            // claim so the next caller retries, then let the failure
            // propagate.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                map_.erase(key);
            }
            cv_.notify_all();
            throw;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = map_[key];
        e.record = rec;
        e.ready = true;
        e.computing = false;
        if (from_disk) {
            ++hits_;
            ++diskHits_;
        } else {
            ++misses_;
        }
    }
    cv_.notify_all();
    if (!from_disk)
        storeToDisk(key, rec);
    if (hit_out)
        *hit_out = from_disk;
    return rec;
}

std::uint64_t
RunCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
RunCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
RunCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskHits_;
}

std::uint64_t
RunCache::storeErrors() const
{
    return storeErrors_.load(std::memory_order_relaxed);
}

RunResult
runAndMeasureCached(const RunJob &job, RunCache *cache,
                    const RunSupervision *sup)
{
    RunResult out;
    auto compute = [&job, &out, sup]() -> RunRecord {
        std::vector<std::unique_ptr<Workload>> wl;
        wl.reserve(job.workloads.size());
        for (std::size_t t = 0; t < job.workloads.size(); ++t) {
            const WorkloadKey &k = job.workloads[t];
            std::string err;
            auto w = makeWorkloadFromSpec(k.spec, k.base, k.seed, err);
            // Catchable (not vpc_fatal): a daemon must be able to
            // quarantine a poison job instead of dying with it.
            if (!w)
                throw std::runtime_error(
                    format("run-cache job: {}", err));
            wl.push_back(std::move(w));
        }
        CmpSystem sys(job.config, std::move(wl));
        if (sup != nullptr) {
            sys.setCancelToken(sup->cancel);
            if (sup->deadlineMs > 0) {
                sys.armWallDeadline(
                    std::chrono::milliseconds(sup->deadlineMs));
            }
        }
        RunRecord rec;
        rec.stats = sys.runAndMeasure(job.warmup, job.measure);
        rec.endCycle = sys.now();
        rec.kernel = sys.kernelStats();
        if (sys.profiling()) {
            out.hasProfile = true;
            out.profile = sys.mergedProfile();
        }
        return rec;
    };

    if (cache) {
        out.record = cache->lookupOrCompute(runDigest(job), compute,
                                            &out.cacheHit);
    } else {
        out.record = compute();
    }
    return out;
}

} // namespace vpc
