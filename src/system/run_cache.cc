#include "system/run_cache.hh"

#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/format.hh"
#include "sim/logging.hh"
#include "system/options.hh"

namespace vpc
{

namespace
{

/** Incremental 64-bit FNV-1a over explicitly enumerated fields. */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
    }

    void
    u64(std::uint64_t v)
    {
        // Fixed-width little-endian serialization, independent of the
        // host's integer widths and struct padding.
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(b, sizeof(b));
    }

    void dbl(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void
digestPrefetch(Fnv1a &h, const PrefetchConfig &p)
{
    h.u64(p.enable ? 1 : 0);
    h.u64(p.streams);
    h.u64(p.degree);
    h.u64(p.confidence);
}

/**
 * Hash every field of the normalized config that can influence either
 * the model statistics or the kernel counters.  `profile` is the one
 * deliberate omission (observe-only; see run_cache.hh).
 */
void
digestConfig(Fnv1a &h, const SystemConfig &cfg)
{
    h.u64(cfg.numProcessors);

    const CoreConfig &c = cfg.core;
    h.u64(c.dispatchWidth);
    h.u64(c.robEntries);
    h.u64(c.retireWidth);
    h.u64(c.loadQueueEntries);
    h.u64(c.storeQueueEntries);
    h.u64(c.lsuPorts);
    h.u64(c.storeCommitWidth);
    h.dbl(c.lsuRejectProb);

    const L1Config &l1 = cfg.l1;
    h.u64(l1.sizeBytes);
    h.u64(l1.ways);
    h.u64(l1.lineBytes);
    h.u64(l1.hitLatency);
    h.u64(l1.mshrs);
    digestPrefetch(h, l1.prefetch);

    const L2Config &l2 = cfg.l2;
    h.u64(l2.banks);
    h.u64(l2.sizeBytes);
    h.u64(l2.ways);
    h.u64(l2.lineBytes);
    h.u64(l2.tagLatency);
    h.u64(l2.tagWriteAccesses);
    h.u64(l2.dataLatency);
    h.u64(l2.dataWriteAccesses);
    h.u64(l2.busBeatCycles);
    h.u64(l2.busBytes);
    h.u64(l2.busOccupancyOverride);
    h.u64(l2.interconnectLatency);
    h.u64(l2.stateMachinesPerThread);
    h.u64(l2.sgbEntriesPerThread);
    h.u64(l2.sgbHighWater);
    h.u64(l2.readClaimEntries);

    const MemConfig &m = cfg.mem;
    h.u64(m.ranksPerChannel);
    h.u64(m.banksPerRank);
    h.u64(m.transactionEntries);
    h.u64(m.writeEntries);
    h.u64(m.tRcd);
    h.u64(m.tCl);
    h.u64(m.tRp);
    h.u64(m.tBurst);
    h.u64(m.tWr);
    h.u64(m.ctrlLatency);
    h.u64(m.sharedChannel ? 1 : 0);
    h.u64(static_cast<std::uint64_t>(m.schedulerPolicy));

    h.u64(static_cast<std::uint64_t>(cfg.arbiterPolicy));
    h.u64(static_cast<std::uint64_t>(cfg.capacityPolicy));

    const VerifyConfig &v = cfg.verify;
    h.u64(v.paranoid);
    h.u64(v.auditInterval);
    h.u64(v.watchdogCycles);
    h.dbl(v.faultRate);
    h.u64(v.faultSeed);

    h.u64(cfg.kernelSkip ? 1 : 0);
    h.u64(cfg.kernelThreads);
    h.u64(cfg.allowUnallocatedShares ? 1 : 0);
    h.u64(cfg.vpcIntraThreadRow ? 1 : 0);
    h.u64(cfg.vpcIdleReset ? 1 : 0);
    h.u64(cfg.vpcWorkConserving ? 1 : 0);

    h.u64(cfg.shares.size());
    for (const QosShare &s : cfg.shares) {
        h.dbl(s.phi);
        h.dbl(s.beta);
    }
    h.u64(cfg.l1PrefetchPerThread.size());
    for (const PrefetchConfig &p : cfg.l1PrefetchPerThread)
        digestPrefetch(h, p);
}

/** Append ["k": [v...],] with each element as a decimal uint64. */
void
writeVec(std::FILE *f, const char *k,
         const std::vector<std::uint64_t> &v, bool last = false)
{
    std::fprintf(f, "  \"%s\": [", k);
    for (std::size_t i = 0; i < v.size(); ++i) {
        std::fprintf(f, "%s%llu", i ? ", " : "",
                     static_cast<unsigned long long>(v[i]));
    }
    std::fprintf(f, "]%s\n", last ? "" : ",");
}

std::vector<std::uint64_t>
bitsOf(const std::vector<double> &v)
{
    std::vector<std::uint64_t> out;
    out.reserve(v.size());
    for (double d : v)
        out.push_back(std::bit_cast<std::uint64_t>(d));
    return out;
}

std::vector<double>
doublesOf(const std::vector<std::uint64_t> &v)
{
    std::vector<double> out;
    out.reserve(v.size());
    for (std::uint64_t u : v)
        out.push_back(std::bit_cast<double>(u));
    return out;
}

/**
 * Minimal parser for the subset of JSON the writer emits: one flat
 * object whose values are decimal unsigned integers, double-quoted
 * strings, or arrays of decimal unsigned integers.  Any deviation
 * (truncation, corruption, foreign writer) fails the parse and the
 * record is treated as a cache miss.
 */
class RecordParser
{
  public:
    explicit RecordParser(std::string text) : s_(std::move(text)) {}

    bool
    parse()
    {
        skipWs();
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return posAtEnd();
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                std::string v;
                if (!parseString(v))
                    return false;
                strings_[key] = v;
            } else if (peek() == '[') {
                std::vector<std::uint64_t> v;
                if (!parseArray(v))
                    return false;
                arrays_[key] = std::move(v);
            } else {
                std::uint64_t v;
                if (!parseUint(v))
                    return false;
                ints_[key] = v;
            }
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            if (eat('}'))
                return posAtEnd();
            return false;
        }
    }

    bool
    getInt(const std::string &k, std::uint64_t &out) const
    {
        auto it = ints_.find(k);
        if (it == ints_.end())
            return false;
        out = it->second;
        return true;
    }

    bool
    getString(const std::string &k, std::string &out) const
    {
        auto it = strings_.find(k);
        if (it == strings_.end())
            return false;
        out = it->second;
        return true;
    }

    bool
    getArray(const std::string &k,
             std::vector<std::uint64_t> &out) const
    {
        auto it = arrays_.find(k);
        if (it == arrays_.end())
            return false;
        out = it->second;
        return true;
    }

  private:
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool
    posAtEnd()
    {
        skipWs();
        return pos_ == s_.size();
    }

    bool
    parseString(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            // The writer never emits escapes (keys and hex digests
            // only); reject anything that would need them.
            if (s_[pos_] == '\\')
                return false;
            out += s_[pos_++];
        }
        return eat('"');
    }

    bool
    parseUint(std::uint64_t &out)
    {
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        out = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            std::uint64_t digit =
                static_cast<std::uint64_t>(s_[pos_] - '0');
            if (out > (UINT64_MAX - digit) / 10)
                return false;
            out = out * 10 + digit;
            ++pos_;
        }
        return true;
    }

    bool
    parseArray(std::vector<std::uint64_t> &out)
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            std::uint64_t v;
            if (!parseUint(v))
                return false;
            out.push_back(v);
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            return eat(']');
        }
    }

    std::string s_;
    std::size_t pos_ = 0;
    std::unordered_map<std::string, std::uint64_t> ints_;
    std::unordered_map<std::string, std::string> strings_;
    std::unordered_map<std::string, std::vector<std::uint64_t>> arrays_;
};

} // namespace

std::uint64_t
runDigest(const RunJob &job)
{
    // Normalize first so "empty shares" and "explicit equal shares"
    // digest identically (validate() fills the defaults).
    SystemConfig cfg = job.config;
    cfg.validate();

    Fnv1a h;
    h.u64(kRunCacheSchema);
    digestConfig(h, cfg);
    h.u64(job.workloads.size());
    for (const WorkloadKey &w : job.workloads) {
        h.str(w.spec);
        h.u64(w.base);
        h.u64(w.seed);
    }
    h.u64(job.warmup);
    h.u64(job.measure);
    return h.value();
}

RunCache::RunCache(std::string disk_dir) : dir_(std::move(disk_dir))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        if (ec) {
            vpc_warn("run-cache: cannot create '{}': {}; disk store "
                     "disabled", dir_, ec.message());
            dir_.clear();
        }
    }
}

std::string
RunCache::recordPath(std::uint64_t key) const
{
    if (dir_.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

bool
RunCache::loadFromDisk(std::uint64_t key, RunRecord &out) const
{
    std::string path = recordPath(key);
    if (path.empty())
        return false;
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    RecordParser p(ss.str());
    if (!p.parse())
        return false;

    std::uint64_t schema = 0, stored_key = 0, end_cycle = 0,
                  cycles = 0, threads = 0;
    std::string key_hex;
    if (!p.getInt("schema", schema) || schema != kRunCacheSchema)
        return false;
    if (!p.getString("key", key_hex) || key_hex.empty())
        return false;
    char *end = nullptr;
    stored_key = std::strtoull(key_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || stored_key != key)
        return false;
    if (!p.getInt("end_cycle", end_cycle) ||
        !p.getInt("cycles", cycles) || !p.getInt("threads", threads)) {
        return false;
    }

    std::vector<std::uint64_t> kernel, ipc, instrs, l2r, l2w, l2m,
        sgbs, sgbg, utils;
    if (!p.getArray("kernel", kernel) || kernel.size() != 8 ||
        !p.getArray("ipc_bits", ipc) || !p.getArray("instrs", instrs) ||
        !p.getArray("l2_reads", l2r) || !p.getArray("l2_writes", l2w) ||
        !p.getArray("l2_misses", l2m) ||
        !p.getArray("sgb_stores", sgbs) ||
        !p.getArray("sgb_gathered", sgbg) ||
        !p.getArray("util_bits", utils) || utils.size() != 3) {
        return false;
    }
    if (ipc.size() != threads || instrs.size() != threads ||
        l2r.size() != threads || l2w.size() != threads ||
        l2m.size() != threads || sgbs.size() != threads ||
        sgbg.size() != threads) {
        return false;
    }

    out = RunRecord{};
    out.endCycle = end_cycle;
    out.stats.cycles = cycles;
    out.stats.ipc = doublesOf(ipc);
    out.stats.instrs = instrs;
    out.stats.l2Reads = l2r;
    out.stats.l2Writes = l2w;
    out.stats.l2Misses = l2m;
    out.stats.sgbStores = sgbs;
    out.stats.sgbGathered = sgbg;
    out.stats.tagUtil = std::bit_cast<double>(utils[0]);
    out.stats.dataUtil = std::bit_cast<double>(utils[1]);
    out.stats.busUtil = std::bit_cast<double>(utils[2]);
    out.kernel.cyclesExecuted.inc(kernel[0]);
    out.kernel.cyclesSkipped.inc(kernel[1]);
    out.kernel.ticksExecuted.inc(kernel[2]);
    out.kernel.eventsFired.inc(kernel[3]);
    out.kernel.messagesSent.inc(kernel[4]);
    out.kernel.wheelCascades.inc(kernel[5]);
    out.kernel.epochs.inc(kernel[6]);
    out.kernel.barrierStalls.inc(kernel[7]);
    return true;
}

void
RunCache::storeToDisk(std::uint64_t key, const RunRecord &r) const
{
    std::string path = recordPath(key);
    if (path.empty())
        return;
    // Write-to-temp + rename so concurrent processes sharing the
    // store never observe a torn record.
    std::string tmp = format("{}.tmp.{}", path,
                             static_cast<unsigned long long>(
                                 reinterpret_cast<std::uintptr_t>(&r)));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        vpc_warn("run-cache: cannot write '{}'", tmp);
        return;
    }
    const IntervalStats &s = r.stats;
    std::fprintf(f, "{\n  \"schema\": %llu,\n  \"key\": \"%016llx\",\n",
                 static_cast<unsigned long long>(kRunCacheSchema),
                 static_cast<unsigned long long>(key));
    std::fprintf(f, "  \"end_cycle\": %llu,\n  \"cycles\": %llu,\n"
                 "  \"threads\": %llu,\n",
                 static_cast<unsigned long long>(r.endCycle),
                 static_cast<unsigned long long>(s.cycles),
                 static_cast<unsigned long long>(s.ipc.size()));
    writeVec(f, "kernel",
             {r.kernel.cyclesExecuted.value(),
              r.kernel.cyclesSkipped.value(),
              r.kernel.ticksExecuted.value(),
              r.kernel.eventsFired.value(),
              r.kernel.messagesSent.value(),
              r.kernel.wheelCascades.value(),
              r.kernel.epochs.value(),
              r.kernel.barrierStalls.value()});
    writeVec(f, "ipc_bits", bitsOf(s.ipc));
    writeVec(f, "instrs", s.instrs);
    writeVec(f, "l2_reads", s.l2Reads);
    writeVec(f, "l2_writes", s.l2Writes);
    writeVec(f, "l2_misses", s.l2Misses);
    writeVec(f, "sgb_stores", s.sgbStores);
    writeVec(f, "sgb_gathered", s.sgbGathered);
    writeVec(f, "util_bits",
             bitsOf({s.tagUtil, s.dataUtil, s.busUtil}), true);
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        vpc_warn("run-cache: cannot publish '{}': {}", path,
                 ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

bool
RunCache::probe(std::uint64_t key, RunRecord &out)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.ready) {
            out = it->second.record;
            ++hits_;
            return true;
        }
    }
    if (loadFromDisk(key, out)) {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = map_[key];
        if (!e.ready) {
            e.ready = true;
            e.record = out;
        }
        ++hits_;
        ++diskHits_;
        return true;
    }
    return false;
}

RunRecord
RunCache::lookupOrCompute(std::uint64_t key,
                          const std::function<RunRecord()> &compute,
                          bool *hit_out)
{
    bool must_compute = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            Entry &e = map_[key];
            if (e.ready) {
                ++hits_;
                if (hit_out)
                    *hit_out = true;
                return e.record;
            }
            if (!e.computing) {
                e.computing = true;
                must_compute = true;
                break;
            }
            // Another job is computing this key; share its record.
            cv_.wait(lock);
        }
    }

    RunRecord rec;
    if (!must_compute)
        vpc_panic("run-cache in-flight bookkeeping broke");
    bool from_disk = loadFromDisk(key, rec);
    if (!from_disk)
        rec = compute();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = map_[key];
        e.record = rec;
        e.ready = true;
        e.computing = false;
        if (from_disk) {
            ++hits_;
            ++diskHits_;
        } else {
            ++misses_;
        }
    }
    cv_.notify_all();
    if (!from_disk)
        storeToDisk(key, rec);
    if (hit_out)
        *hit_out = from_disk;
    return rec;
}

std::uint64_t
RunCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
RunCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
RunCache::diskHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskHits_;
}

RunResult
runAndMeasureCached(const RunJob &job, RunCache *cache)
{
    RunResult out;
    auto compute = [&job, &out]() -> RunRecord {
        std::vector<std::unique_ptr<Workload>> wl;
        wl.reserve(job.workloads.size());
        for (std::size_t t = 0; t < job.workloads.size(); ++t) {
            const WorkloadKey &k = job.workloads[t];
            std::string err;
            auto w = makeWorkloadFromSpec(k.spec, k.base, k.seed, err);
            if (!w)
                vpc_fatal("run-cache job: {}", err);
            wl.push_back(std::move(w));
        }
        CmpSystem sys(job.config, std::move(wl));
        RunRecord rec;
        rec.stats = sys.runAndMeasure(job.warmup, job.measure);
        rec.endCycle = sys.now();
        rec.kernel = sys.kernelStats();
        if (sys.profiling()) {
            out.hasProfile = true;
            out.profile = sys.mergedProfile();
        }
        return rec;
    };

    if (cache) {
        out.record = cache->lookupOrCompute(runDigest(job), compute,
                                            &out.cacheHit);
    } else {
        out.record = compute();
    }
    return out;
}

} // namespace vpc
