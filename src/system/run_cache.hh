/**
 * @file
 * Content-addressed simulation result cache.
 *
 * Every measured run of the simulator is a pure function of its
 * inputs: the kernels are deterministic (DESIGN.md 5c/5d) and produce
 * byte-identical statistics for a given (SystemConfig, workload
 * streams, run lengths) triple.  That contract makes exact result
 * memoization sound: a run is keyed by a stable FNV-1a digest of its
 * normalized configuration, its workload (spec, base address, seed)
 * tuples, its warmup/measure lengths and a stats-schema version, and
 * a cache hit returns the stored IntervalStats / end cycle / kernel
 * counters bit-for-bit.
 *
 * Two layers:
 *
 *  - an in-process map, always available, deduplicating identical jobs
 *    within one bench invocation (the headline bench re-simulates the
 *    same private-target run for every mix a benchmark appears in);
 *    concurrent jobs computing the same key are collapsed — the first
 *    computes, the rest block and reuse its record;
 *  - an optional on-disk store (--run-cache=DIR), one versioned JSON
 *    record per key, deduplicating runs *across* invocations.  Doubles
 *    are stored as IEEE-754 bit patterns so disk round-trips are
 *    exact; malformed, truncated or version-mismatched records are
 *    treated as misses and overwritten.
 *
 * Anything that can alter either the model statistics or the kernel
 * counters is part of the digest (config, shares, verify layer,
 * kernel mode, run lengths, workload identity).  The only excluded
 * field is `profile`, which is strictly observe-only and contributes
 * nothing to a cached record; profiles are therefore only reported
 * for runs that actually executed.
 */

#ifndef VPC_SYSTEM_RUN_CACHE_HH
#define VPC_SYSTEM_RUN_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/profiler.hh"
#include "system/cmp_system.hh"

namespace vpc
{

/** Bump when the digested inputs or the record layout change. */
constexpr std::uint64_t kRunCacheSchema = 1;

/**
 * Content identity of one workload stream: a vpcsim-style spec string
 * ("art", "loads", "trace:<path>", ...), the thread's address-space
 * base and the generator seed.  Building a workload from the same key
 * yields a bit-identical op stream (workload_block_test asserts it).
 */
struct WorkloadKey
{
    std::string spec;
    Addr base = 0;
    std::uint64_t seed = 0;
};

/** One fully specified, cacheable simulation job. */
struct RunJob
{
    SystemConfig config; //!< normalized by digest/run (validate())
    std::vector<WorkloadKey> workloads; //!< one per processor
    Cycle warmup = 0;
    Cycle measure = 0;
};

/** The memoized outcome of a job (everything a bench consumes). */
struct RunRecord
{
    Cycle endCycle = 0;    //!< CmpSystem::now() after the run
    IntervalStats stats;   //!< the measured interval
    KernelStats kernel;    //!< kernel work/skip counters
};

/** RunRecord plus provenance for the caller. */
struct RunResult
{
    RunRecord record;
    bool cacheHit = false;  //!< served from memory or disk
    bool hasProfile = false;//!< profile below is meaningful
    Profiler profile;       //!< merged profile (executed runs only)
};

/**
 * @return the job's content digest (64-bit FNV-1a over the normalized
 *         config, workload keys, run lengths and kRunCacheSchema)
 */
std::uint64_t runDigest(const RunJob &job);

/** In-process + optional on-disk memoization of RunRecords. */
class RunCache
{
  public:
    /**
     * @param disk_dir on-disk store directory (created if missing);
     *        empty = in-process map only
     */
    explicit RunCache(std::string disk_dir = "");

    /**
     * Return the record for @p key, computing it at most once.
     *
     * Looks up the in-process map, then the disk store; on a miss runs
     * @p compute, publishes the record to both layers and returns it.
     * Concurrent callers with the same key block until the first
     * finishes and share its record (counted as hits).
     */
    RunRecord lookupOrCompute(std::uint64_t key,
                              const std::function<RunRecord()> &compute,
                              bool *hit_out = nullptr);

    /** Probe without computing. @return true and fill @p out on hit. */
    bool probe(std::uint64_t key, RunRecord &out);

    /** @return hits served (memory, disk, or wait-for-in-flight). */
    std::uint64_t hits() const;

    /** @return jobs that had to execute. */
    std::uint64_t misses() const;

    /** @return hits served specifically from the on-disk store. */
    std::uint64_t diskHits() const;

    /** @return the record path for @p key ("" without a disk store). */
    std::string recordPath(std::uint64_t key) const;

  private:
    struct Entry
    {
        bool ready = false;
        bool computing = false;
        RunRecord record;
    };

    bool loadFromDisk(std::uint64_t key, RunRecord &out) const;
    void storeToDisk(std::uint64_t key, const RunRecord &r) const;

    std::string dir_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<std::uint64_t, Entry> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t diskHits_ = 0;
};

/**
 * Run @p job through @p cache (nullptr = always execute).
 *
 * On a miss, builds the workloads from their keys
 * (makeWorkloadFromSpec), constructs a CmpSystem and measures it; on a
 * hit, returns the memoized record without simulating.  Results are
 * bit-identical either way — the run-cache differential tests and the
 * bench_headline cache differential enforce it.
 */
RunResult runAndMeasureCached(const RunJob &job, RunCache *cache);

} // namespace vpc

#endif // VPC_SYSTEM_RUN_CACHE_HH
