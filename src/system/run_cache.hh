/**
 * @file
 * Content-addressed simulation result cache.
 *
 * Every measured run of the simulator is a pure function of its
 * inputs: the kernels are deterministic (DESIGN.md 5c/5d) and produce
 * byte-identical statistics for a given (SystemConfig, workload
 * streams, run lengths) triple.  That contract makes exact result
 * memoization sound: a run is keyed by a stable FNV-1a digest of its
 * normalized configuration, its workload (spec, base address, seed)
 * tuples, its warmup/measure lengths and a stats-schema version, and
 * a cache hit returns the stored IntervalStats / end cycle / kernel
 * counters bit-for-bit.
 *
 * Two layers:
 *
 *  - an in-process map, always available, deduplicating identical jobs
 *    within one bench invocation (the headline bench re-simulates the
 *    same private-target run for every mix a benchmark appears in);
 *    concurrent jobs computing the same key are collapsed — the first
 *    computes, the rest block and reuse its record;
 *  - an optional on-disk store (--run-cache=DIR), one versioned JSON
 *    record per key, deduplicating runs *across* invocations.  Doubles
 *    are stored as IEEE-754 bit patterns so disk round-trips are
 *    exact; malformed, truncated or version-mismatched records are
 *    treated as misses and overwritten.
 *
 * The disk store is built for many concurrent writer processes (the
 * sweep daemon, its clients' local fallbacks, parallel benches):
 * records are published by write-to-temp + rename so readers never see
 * a torn record, temp names carry the writer's pid so a janitor pass
 * on store open can reclaim temps orphaned by crashed writers
 * (gcStaleTemps), and every failed write or publish is counted in
 * storeErrors() so silent degradation (full disk, bad permissions)
 * is visible in bench output instead of vanishing into a warn line.
 *
 * Layout: records are sharded 256 ways by the first digest byte —
 * `<dir>/<2-hex>/<16-hex>.json` — so directory operations (record
 * opens, janitor scans) stay O(1)-ish under tens of thousands of
 * cached runs instead of degrading with one giant flat directory.
 * The read path also accepts the pre-shard flat layout
 * (`<dir>/<16-hex>.json`), so an old store keeps serving hits; new
 * records are always published sharded.
 *
 * Anything that can alter either the model statistics or the kernel
 * counters is part of the digest (config, shares, verify layer,
 * kernel mode, run lengths, workload identity).  The only excluded
 * field is `profile`, which is strictly observe-only and contributes
 * nothing to a cached record; profiles are therefore only reported
 * for runs that actually executed.
 */

#ifndef VPC_SYSTEM_RUN_CACHE_HH
#define VPC_SYSTEM_RUN_CACHE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/profiler.hh"
#include "system/cmp_system.hh"

namespace vpc
{

/** Bump when the digested inputs or the record layout change. */
constexpr std::uint64_t kRunCacheSchema = 2;

/**
 * Content identity of one workload stream: a vpcsim-style spec string
 * ("art", "loads", "trace:<path>", ...), the thread's address-space
 * base and the generator seed.  Building a workload from the same key
 * yields a bit-identical op stream (workload_block_test asserts it).
 */
struct WorkloadKey
{
    std::string spec;
    Addr base = 0;
    std::uint64_t seed = 0;
};

/** One fully specified, cacheable simulation job. */
struct RunJob
{
    SystemConfig config; //!< normalized by digest/run (validate())
    std::vector<WorkloadKey> workloads; //!< one per processor
    Cycle warmup = 0;
    Cycle measure = 0;
};

/** The memoized outcome of a job (everything a bench consumes). */
struct RunRecord
{
    Cycle endCycle = 0;    //!< CmpSystem::now() after the run
    IntervalStats stats;   //!< the measured interval
    KernelStats kernel;    //!< kernel work/skip counters
};

/** RunRecord plus provenance for the caller. */
struct RunResult
{
    RunRecord record;
    bool cacheHit = false;  //!< served from memory or disk
    bool hasProfile = false;//!< profile below is meaningful
    Profiler profile;       //!< merged profile (executed runs only)
};

/**
 * @return the job's content digest (64-bit FNV-1a over the normalized
 *         config, workload keys, run lengths and kRunCacheSchema)
 */
std::uint64_t runDigest(const RunJob &job);

/** In-process + optional on-disk memoization of RunRecords. */
class RunCache
{
  public:
    /**
     * @param disk_dir on-disk store directory (created if missing);
     *        empty = in-process map only
     */
    explicit RunCache(std::string disk_dir = "");

    /**
     * Return the record for @p key, computing it at most once.
     *
     * Looks up the in-process map, then the disk store; on a miss runs
     * @p compute, publishes the record to both layers and returns it.
     * Concurrent callers with the same key block until the first
     * finishes and share its record (counted as hits).
     */
    RunRecord lookupOrCompute(std::uint64_t key,
                              const std::function<RunRecord()> &compute,
                              bool *hit_out = nullptr);

    /** Probe without computing. @return true and fill @p out on hit. */
    bool probe(std::uint64_t key, RunRecord &out);

    /** @return hits served (memory, disk, or wait-for-in-flight). */
    std::uint64_t hits() const;

    /** @return jobs that had to execute. */
    std::uint64_t misses() const;

    /** @return hits served specifically from the on-disk store. */
    std::uint64_t diskHits() const;

    /**
     * @return disk-store write failures (temp create/write, publish
     *         rename, store-dir create).  A non-zero count means the
     *         cache silently degraded to compute-only for some runs.
     */
    std::uint64_t storeErrors() const;

    /** @return the sharded record path for @p key ("" without a disk
     *          store).  This is where new records are published. */
    std::string recordPath(std::uint64_t key) const;

    /** @return the pre-shard flat path for @p key (read fallback). */
    std::string legacyRecordPath(std::uint64_t key) const;

    /**
     * Janitor: remove `*.tmp.*` files in @p dir — and its 2-hex-named
     * shard subdirectories — left behind by crashed writers.  A temp
     * is stale when its embedded writer pid is no longer alive, or —
     * when the pid cannot be determined — when the file is older than
     * @p max_age.  Fresh temps of live writers are never touched.
     * Runs automatically on store open.
     *
     * @return the number of temps removed
     */
    static std::size_t gcStaleTemps(
        const std::string &dir,
        std::chrono::seconds max_age = std::chrono::minutes(15));

  private:
    struct Entry
    {
        bool ready = false;
        bool computing = false;
        RunRecord record;
    };

    bool loadFromDisk(std::uint64_t key, RunRecord &out) const;
    void storeToDisk(std::uint64_t key, const RunRecord &r) const;

    std::string dir_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::unordered_map<std::uint64_t, Entry> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t diskHits_ = 0;
    /** Atomic: bumped from storeToDisk() outside mutex_. */
    mutable std::atomic<std::uint64_t> storeErrors_{0};
};

/**
 * Supervision hooks for a cached run (the sweep daemon's robustness
 * layer).  Observe-only for runs that complete: neither field enters
 * the job digest and neither perturbs results — they only decide
 * whether a run is *allowed* to finish.
 */
struct RunSupervision
{
    /**
     * Cooperative cancel token, polled by the kernels (and the
     * Watchdog when one is configured); when set, the run throws
     * JobCancelled.  nullptr = unsupervised.
     */
    const CancelToken *cancel = nullptr;
    /**
     * Wall-clock budget armed on the Watchdog (DeadlineExceeded on
     * expiry).  Takes effect only when the job's own config enables
     * a watchdog (verify.watchdogCycles > 0): the deadline must not
     * alter the kernel counters of an unsupervised run, and
     * installing an auditor disables quiescence skipping.  Jobs
     * without a watchdog are bounded by the supervisor's deadline
     * monitor through @ref cancel instead.  0 = no deadline.
     */
    std::uint64_t deadlineMs = 0;
};

/**
 * Run @p job through @p cache (nullptr = always execute).
 *
 * On a miss, builds the workloads from their keys
 * (makeWorkloadFromSpec), constructs a CmpSystem and measures it; on a
 * hit, returns the memoized record without simulating.  Results are
 * bit-identical either way — the run-cache differential tests and the
 * bench_headline cache differential enforce it.
 *
 * With @p sup, executed runs are supervised: they can be cancelled or
 * deadline-bounded, in which case JobCancelled escapes here (the
 * in-flight dedup entry is released so a retry recomputes).
 */
RunResult runAndMeasureCached(const RunJob &job, RunCache *cache,
                              const RunSupervision *sup = nullptr);

} // namespace vpc

#endif // VPC_SYSTEM_RUN_CACHE_HH
