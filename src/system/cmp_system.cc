#include "system/cmp_system.hh"

#include <memory>
#include <string>
#include <utility>

#include "arbiter/vpc_arbiter.hh"
#include "cache/replacement.hh"
#include "sim/format.hh"
#include "sim/logging.hh"
#include "verify/auditors.hh"

namespace vpc
{

namespace
{

/**
 * Core-side L2 admission for the shard-parallel kernel.
 *
 * Reproduces the serial reserve-and-send path from shard-local state
 * only: the last occupancy snapshot the uncore published per bank,
 * plus this core's own sends still in crossbar flight.  A store sent
 * at cycle s holds a serial-kernel reservation until its arrival
 * event at s + L fires, and the core reads fullness *after* cycle
 * now's events — so exactly the sends with s in (now - L, now] are
 * outstanding, and
 *
 *     occupancy(latest eff <= now) + ownSends(now - L, now]
 *
 * equals the serial buffer.size() + reservations at the same read
 * point (remote arrivals reserve-and-deliver atomically, so the
 * uncore-side reservation count is always zero at publish time).
 */
class ParallelL2Port : public L2CorePort
{
  public:
    ParallelL2Port(ShardedSimulator &ps, ThreadId core,
                   const SystemConfig &cfg)
        : ps_(ps), core_(core), lat_(cfg.l2.interconnectLatency),
          entries_(cfg.l2.sgbEntriesPerThread),
          occ_(cfg.l2.banks, 0),
          window_(static_cast<std::size_t>(cfg.l2.banks) * lat_)
    {
    }

    bool
    store(Addr line, unsigned bank, Cycle now) override
    {
        if (occ_[bank] + pending(bank, now) >= entries_)
            return false;
        Slot &s = slot(bank, now);
        if (s.cycle == now) {
            ++s.count;
        } else {
            s.cycle = now;
            s.count = 1;
        }
        send(line, bank, now, true, false);
        return true;
    }

    void
    load(Addr line, unsigned bank, Cycle now, bool prefetch) override
    {
        send(line, bank, now, false, prefetch);
    }

    /** Apply an occupancy snapshot delivered by the kernel. */
    void applyOcc(unsigned bank, unsigned occ) { occ_[bank] = occ; }

  private:
    struct Slot
    {
        Cycle cycle = kCycleMax; //!< kCycleMax: never written
        unsigned count = 0;
    };

    Slot &
    slot(unsigned bank, Cycle now)
    {
        return window_[bank * lat_ + now % lat_];
    }

    /** Own stores still in crossbar flight: sent in (now - L, now]. */
    unsigned
    pending(unsigned bank, Cycle now) const
    {
        unsigned n = 0;
        for (Cycle i = 0; i < lat_; ++i) {
            const Slot &s = window_[bank * lat_ + i];
            if (s.cycle <= now && s.cycle + lat_ > now)
                n += s.count;
        }
        return n;
    }

    void
    send(Addr line, unsigned bank, Cycle now, bool is_store,
         bool prefetch)
    {
        CrossMsg m;
        m.key = ps_.coreEvents(core_).makeKey(now + lat_);
        m.thread = core_;
        m.line = line;
        m.bank = static_cast<std::uint8_t>(bank);
        m.isStore = is_store;
        m.prefetch = prefetch;
        ps_.sendCross(core_, m);
    }

    ShardedSimulator &ps_;
    ThreadId core_;
    Cycle lat_;
    unsigned entries_;
    std::vector<unsigned> occ_;
    std::vector<Slot> window_;
};

} // namespace

CmpSystem::CmpSystem(SystemConfig cfg_,
                     std::vector<std::unique_ptr<Workload>> workloads_)
    : cfg(std::move(cfg_)), workloads(std::move(workloads_))
{
    cfg.validate();
    if (workloads.size() != cfg.numProcessors)
        vpc_fatal("{} workloads for {} processors", workloads.size(),
                  cfg.numProcessors);

    if (cfg.kernelThreads > 1) {
        psim_ = std::make_unique<ShardedSimulator>(
            cfg.numProcessors, cfg.kernelThreads,
            ShardLookahead::fromConfig(cfg));
    }
    // With the sharded kernel, uncore components live on the uncore
    // shard's queue and each L1 on its core's queue; serially there
    // is only the one queue.
    EventQueue &uncore_events =
        psim_ ? psim_->uncoreEvents() : sim.events();

    std::vector<double> mem_shares;
    mem_shares.reserve(cfg.shares.size());
    for (const QosShare &s : cfg.shares)
        mem_shares.push_back(s.phi);
    mem_ = std::make_unique<MemoryController>(cfg.mem,
                                              cfg.numProcessors,
                                              cfg.l2.lineBytes,
                                              uncore_events,
                                              mem_shares);
    l2_ = std::make_unique<L2Cache>(cfg, uncore_events, *mem_);

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        EventQueue &core_events =
            psim_ ? psim_->coreEvents(t) : sim.events();
        l1s.push_back(std::make_unique<L1DCache>(cfg.l1ConfigFor(t),
                                                 t, core_events));
        L1DCache &l1 = *l1s.back();
        L2Cache &l2 = *l2_;
        l1.setMissHandler([&l2, t](Addr line_addr, Cycle now,
                                   bool prefetch) {
            l2.load(t, line_addr, now, prefetch);
        });
        cpus.push_back(std::make_unique<Cpu>(cfg.core, t,
                                             *workloads[t], l1, *l2_));
    }

    if (psim_) {
        buildSharded();
        return;
    }

    l2_->setResponseHandler([this](ThreadId t, Addr line_addr) {
        l1s.at(t)->fill(line_addr, sim.now());
    });

    // Registration order defines intra-cycle evaluation order:
    // cores produce requests, the L2 moves them, memory follows.
    for (ThreadId t = 0; t < cfg.numProcessors; ++t)
        sim.addTicking(cpus[t].get(), "cpu" + std::to_string(t));
    sim.addTicking(l2_.get(), "l2");
    sim.addTicking(mem_.get(), "mem");

    // Fused fixed-latency chains.  Lane drain order must replay the
    // event queue's insertion order for same-cycle entries: every
    // fused hop has the minimum modeled latency, so all other events
    // due the same cycle were inserted earlier and fire first
    // (runDue precedes the drains), and within the fused set the
    // producing cycle schedules hits/transits from the CPU ticks
    // before the L2 tick issues bus grants — hence L1 lanes, then
    // the transit lane, then the response lane.
    if (cfg.kernelFuse) {
        for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
            cpus[t]->setHitFused(true);
            sim.addFusedChain(cpus[t]->hitChain());
        }
        transitLane_ =
            std::make_unique<L2Cache::TransitLane>(/*counted=*/true);
        l2_->setTransitLane(transitLane_.get());
        sim.addFusedChain(transitLane_.get());
        respLane_ =
            std::make_unique<L2Bank::ResponseLane>(/*counted=*/true);
        for (unsigned b = 0; b < l2_->numBanks(); ++b)
            l2_->bank(b).setResponseLane(respLane_.get());
        sim.addFusedChain(respLane_.get());
    }

    if (cfg.profile) {
        profilers_.push_back(std::make_unique<Profiler>());
        sim.setProfiler(profilers_.back().get());
    }

    // The simulator additionally forces the naive loop whenever an
    // auditor is installed, so verify runs never skip a cycle.
    sim.setSkipping(cfg.kernelSkip);

    if (cfg.verify.enabled())
        buildVerifier();
}

void
CmpSystem::buildSharded()
{
    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        auto port = std::make_unique<ParallelL2Port>(*psim_, t, cfg);
        l2_->setCorePort(t, port.get());
        corePorts_.push_back(std::move(port));
    }

    // Uncore -> core: critical-word fills, delivered as keyed events
    // on the requesting core's queue (the serial response event).
    l2_->setFillPort([this](ThreadId t, Addr line_addr,
                            Cycle critical) {
        psim_->sendFill(t, line_addr, critical);
    });
    psim_->setFillHandler([this](unsigned core, Addr line_addr,
                                 Cycle when) {
        l1s.at(core)->fill(line_addr, when);
    });

    // Core -> uncore: stores and loads crossing the interconnect
    // (the serial storeArrive / loadArrive events).
    psim_->setArriveHandler([this](const CrossMsg &m) {
        L2Bank &bank = l2_->bank(m.bank);
        if (m.isStore)
            bank.remoteStoreArrive(m.thread, m.line, m.key.when);
        else
            bank.loadArrive(m.thread, m.line, m.key.when, m.prefetch);
    });

    // Store-buffer occupancy snapshots for the core-side admission
    // checks; the kernel dedups unchanged values per (core, bank).
    psim_->setOccHandler([this](unsigned core, unsigned bank,
                                unsigned occ) {
        static_cast<ParallelL2Port &>(*corePorts_[core])
            .applyOcc(bank, occ);
    });
    // Version gate: occupancy can only differ from the last publish
    // when some SGB in the bank changed size, so an unchanged version
    // skips the whole per-thread probe pass (it runs twice per uncore
    // cycle).  publishOcc still dedups per (core, bank), so the
    // message stream is identical to the ungated probe.
    sgbVerSeen_.assign(l2_->numBanks(), 0);
    psim_->setUncorePhaseHook([this](Cycle eff) {
        for (unsigned b = 0; b < l2_->numBanks(); ++b) {
            const L2Bank &bank = l2_->bank(b);
            const std::uint64_t v = bank.sgbOccVersion();
            if (v == sgbVerSeen_[b])
                continue;
            sgbVerSeen_[b] = v;
            for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
                psim_->publishOcc(
                    t, b, eff,
                    static_cast<unsigned>(bank.sgb(t).occupancy()));
            }
        }
    });

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        psim_->addCoreTicking(t, cpus[t].get(),
                              "cpu" + std::to_string(t));
    }
    psim_->addUncoreTicking(l2_.get(), "l2");
    psim_->addUncoreTicking(mem_.get(), "mem");

    // L1 hit completions are CPU -> private L1 -> CPU, entirely
    // intra-shard, so they fuse under the sharded kernel too — the
    // same lane type the serial kernel drains, one per core shard.
    // Crossbar transits and responses cross the shard boundary and
    // must remain real (counted) events here; the serial kernel's
    // counted lanes mirror them so eventsFired agrees across kernels.
    if (cfg.kernelFuse) {
        for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
            cpus[t]->setHitFused(true);
            psim_->addCoreChain(t, cpus[t]->hitChain());
        }
    }

    if (cfg.profile) {
        // One Profiler per shard: workers never share counters; the
        // accounts are merged by name in mergedProfile().
        for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
            profilers_.push_back(std::make_unique<Profiler>());
            psim_->setCoreProfiler(t, profilers_.back().get());
        }
        profilers_.push_back(std::make_unique<Profiler>());
        psim_->setUncoreProfiler(profilers_.back().get());
    }
}

Profiler
CmpSystem::mergedProfile() const
{
    Profiler merged;
    for (const auto &p : profilers_)
        merged.mergeByName(*p);
    return merged;
}

void
CmpSystem::buildVerifier()
{
    verifier_ = std::make_unique<Verifier>(cfg.verify);
    unsigned n = cfg.numProcessors;

    // Invariant checkers over every arbitrated resource and every
    // bank's line-ownership state.  They are registered even when
    // paranoid == 0 (the Verifier gates their execution) so a
    // fault-injection or watchdog run can be upgraded to a paranoid
    // one purely through VerifyConfig.
    for (unsigned b = 0; b < l2_->numBanks(); ++b) {
        L2Bank &bank = l2_->bank(b);
        struct NamedRes { const char *tag; SharedResource *res; };
        const NamedRes resources[] = {
            {"tag", &bank.tagArray()},
            {"data", &bank.dataArray()},
            {"bus", &bank.dataBus()},
        };
        for (const NamedRes &r : resources) {
            std::string label = format("bank{}.{}", b, r.tag);
            verifier_->addChecker(
                std::make_unique<ArbiterConservationAuditor>(
                    r.res->arbiter(), label));
            if (const auto *vpc_arb = dynamic_cast<const VpcArbiter *>(
                    &r.res->arbiter())) {
                verifier_->addChecker(
                    std::make_unique<VpcArbiterAuditor>(*vpc_arb,
                                                        label));
            }
        }
        verifier_->addChecker(std::make_unique<CapacityAuditor>(
            bank.array(), n, format("bank{}", b)));
        if (const auto *mgr = dynamic_cast<const VpcCapacityManager *>(
                &bank.array().policy())) {
            bank.array().setVictimAudit(
                makeVpcVictimAudit(*mgr, format("bank{}", b)));
        }
    }
    if (mem_->sharedChannel()) {
        verifier_->addChecker(
            std::make_unique<ArbiterConservationAuditor>(
                mem_->scheduler(), "mem.sched"));
        if (const auto *vpc_arb = dynamic_cast<const VpcArbiter *>(
                &mem_->scheduler())) {
            verifier_->addChecker(std::make_unique<VpcArbiterAuditor>(
                *vpc_arb, "mem.sched"));
        }
    }
    verifier_->addChecker(
        std::make_unique<EventQueueAuditor>(sim.events()));

    if (cfg.verify.watchdogCycles > 0) {
        auto wd = std::make_unique<Watchdog>(cfg.verify.watchdogCycles);
        for (ThreadId t = 0; t < n; ++t) {
            Cpu *cpu = cpus[t].get();
            L1DCache *l1 = l1s[t].get();
            L2Cache *l2 = l2_.get();
            wd->addThread(Watchdog::Source{
                [cpu] { return cpu->instrsRetired(); },
                [l1, l2, t] {
                    return l1->mshrsInUse() > 0 || l2->threadHasWork(t);
                }});
        }
        verifier_->setWatchdog(std::move(wd));
    }

    if (FaultInjector *inj = verifier_->injector()) {
        // All faults target bank 0: one bank suffices to prove every
        // auditor live, and keeping the blast radius small makes the
        // injected-vs-detected correspondence easy to read in logs.
        L2Bank &bank = l2_->bank(0);
        Arbiter *tag_arb = &bank.tagArray().arbiter();
        inj->addFault("drop-oldest-request", [tag_arb, n, t = 0u]()
                      mutable {
            bool dropped = tag_arb->faultDropOldest(t);
            t = (t + 1) % n;
            return dropped;
        });
        if (auto *vpc_arb = dynamic_cast<VpcArbiter *>(tag_arb)) {
            inj->addFault("corrupt-virtual-time", [vpc_arb, n, t = 0u]()
                          mutable {
                vpc_arb->faultCorruptVirtualTime(t, 1e6);
                t = (t + 1) % n;
                return true;
            });
        }
        SharedResource *tag_res = &bank.tagArray();
        inj->addFault("drop-grant", [tag_res] {
            tag_res->faultDropNextGrant();
            return true;
        });
        CacheArray *array = &bank.array();
        inj->addFault("flip-line-owner", [array, n, t = 0u]() mutable {
            bool flipped = array->faultFlipOwner(t);
            t = (t + 1) % n;
            return flipped;
        });
        if (dynamic_cast<const VpcCapacityManager *>(&array->policy())) {
            inj->addFault("force-victim-way",
                          [array, w = 0u, ways = array->numWays()]()
                          mutable {
                array->faultForceNextVictim(w);
                w = (w + 1) % ways;
                return true;
            });
        }
    }

    panicDump_ = std::make_unique<ScopedPanicDump>(
        "cmp-system", [this] { return dumpState(); });
    sim.setAuditor(verifier_.get());
}

std::string
CmpSystem::dumpState() const
{
    std::string out = format("cycle {}\n", now());
    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        out += format(
            "thread {}: instrs {} l1-mshrs {} l2-work {}\n", t,
            cpus[t]->instrsRetired(), l1s[t]->mshrsInUse(),
            l2_->threadHasWork(t) ? "yes" : "no");
    }
    for (unsigned b = 0; b < l2_->numBanks(); ++b) {
        const L2Bank &bank = l2_->bank(b);
        struct NamedRes { const char *tag; const SharedResource *res; };
        const NamedRes resources[] = {
            {"tag", &bank.tagArray()},
            {"data", &bank.dataArray()},
            {"bus", &bank.dataBus()},
        };
        for (const NamedRes &r : resources) {
            const Arbiter &arb = r.res->arbiter();
            out += format("bank{}.{} [{}]:", b, r.tag, arb.name());
            for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
                out += format(" t{}={}q/{}g", t, arb.pendingCount(t),
                              arb.grantCount(t));
            }
            if (const auto *vpc_arb =
                    dynamic_cast<const VpcArbiter *>(&arb)) {
                out += format(" vclock={:.1f}",
                              vpc_arb->systemVirtualTime());
                for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
                    out += format(" rs{}={:.1f}", t,
                                  vpc_arb->virtualTime(t));
                }
            }
            out += "\n";
        }
        out += format("bank{} occupancy:", b);
        for (ThreadId t = 0; t < cfg.numProcessors; ++t)
            out += format(" t{}={}", t,
                          bank.array().trackedOccupancy(t));
        out += format("  sgb:");
        for (ThreadId t = 0; t < cfg.numProcessors; ++t)
            out += format(" t{}={}", t, bank.sgb(t).occupancy());
        out += "\n";
    }
    // Both counts include undrained fused-lane entries, so serial and
    // sharded dumps stay comparable (lanes hold what the other
    // kernel's queue holds as events).
    out += format("event queue: {} pending\n",
                  psim_ ? psim_->queuedEvents() : sim.pendingEvents());
    return out;
}

void
CmpSystem::run(Cycle cycles)
{
    if (psim_)
        psim_->run(cycles);
    else
        sim.run(cycles);
}

void
CmpSystem::setCancelToken(const CancelToken *token)
{
    if (psim_)
        psim_->setCancelToken(token);
    sim.setCancelToken(token);
    if (verifier_ && verifier_->watchdog())
        verifier_->watchdog()->setCancelToken(token);
}

void
CmpSystem::armWallDeadline(std::chrono::milliseconds budget)
{
    if (verifier_ && verifier_->watchdog())
        verifier_->watchdog()->armWallDeadline(budget);
}

SystemSnapshot
CmpSystem::snapshot() const
{
    SystemSnapshot s;
    s.cycle = now();
    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        s.instrs.push_back(cpus[t]->instrsRetired());
        s.loads.push_back(cpus[t]->loadsRetired());
        s.stores.push_back(cpus[t]->storesRetired());
        s.l2Reads.push_back(l2_->readCount(t));
        s.l2Writes.push_back(l2_->writeCount(t));
        s.l2Misses.push_back(l2_->missCount(t));
        s.sgbStores.push_back(l2_->storesTotal(t));
        s.sgbGathered.push_back(l2_->storesGathered(t));
    }
    s.tagBusy = l2_->tagBusyMean();
    s.dataBusy = l2_->dataBusyMean();
    s.busBusy = l2_->busBusyMean();
    return s;
}

IntervalStats
CmpSystem::interval(const SystemSnapshot &a, const SystemSnapshot &b)
{
    if (b.cycle < a.cycle)
        vpc_panic("interval endpoints out of order");
    IntervalStats out;
    out.cycles = b.cycle - a.cycle;
    double window = static_cast<double>(out.cycles);
    for (std::size_t t = 0; t < a.instrs.size(); ++t) {
        std::uint64_t di = b.instrs[t] - a.instrs[t];
        out.instrs.push_back(di);
        out.ipc.push_back(window > 0.0
                          ? static_cast<double>(di) / window : 0.0);
        out.l2Reads.push_back(b.l2Reads[t] - a.l2Reads[t]);
        out.l2Writes.push_back(b.l2Writes[t] - a.l2Writes[t]);
        out.l2Misses.push_back(b.l2Misses[t] - a.l2Misses[t]);
        out.sgbStores.push_back(b.sgbStores[t] - a.sgbStores[t]);
        out.sgbGathered.push_back(b.sgbGathered[t] - a.sgbGathered[t]);
    }
    if (window > 0.0) {
        // A grant accrues its full occupancy immediately, so a window
        // boundary can land inside an access; clamp the spill-over.
        auto clamp01 = [](double v) {
            return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
        };
        out.tagUtil = clamp01((b.tagBusy - a.tagBusy) / window);
        out.dataUtil = clamp01((b.dataBusy - a.dataBusy) / window);
        out.busUtil = clamp01((b.busBusy - a.busBusy) / window);
    }
    return out;
}

IntervalStats
CmpSystem::runAndMeasure(Cycle warmup, Cycle measure)
{
    run(warmup);
    SystemSnapshot before = snapshot();
    run(measure);
    return interval(before, snapshot());
}

} // namespace vpc
