#include "system/cmp_system.hh"

#include "sim/logging.hh"

namespace vpc
{

CmpSystem::CmpSystem(SystemConfig cfg_,
                     std::vector<std::unique_ptr<Workload>> workloads_)
    : cfg(std::move(cfg_)), workloads(std::move(workloads_))
{
    cfg.validate();
    if (workloads.size() != cfg.numProcessors)
        vpc_fatal("{} workloads for {} processors", workloads.size(),
                  cfg.numProcessors);

    std::vector<double> mem_shares;
    mem_shares.reserve(cfg.shares.size());
    for (const QosShare &s : cfg.shares)
        mem_shares.push_back(s.phi);
    mem_ = std::make_unique<MemoryController>(cfg.mem,
                                              cfg.numProcessors,
                                              cfg.l2.lineBytes,
                                              sim.events(),
                                              mem_shares);
    l2_ = std::make_unique<L2Cache>(cfg, sim.events(), *mem_);

    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        l1s.push_back(std::make_unique<L1DCache>(cfg.l1ConfigFor(t),
                                                 t, sim.events()));
        L1DCache &l1 = *l1s.back();
        L2Cache &l2 = *l2_;
        l1.setMissHandler([&l2, t](Addr line_addr, Cycle now,
                                   bool prefetch) {
            l2.load(t, line_addr, now, prefetch);
        });
        cpus.push_back(std::make_unique<Cpu>(cfg.core, t,
                                             *workloads[t], l1, *l2_));
    }

    l2_->setResponseHandler([this](ThreadId t, Addr line_addr) {
        l1s.at(t)->fill(line_addr, sim.now());
    });

    // Registration order defines intra-cycle evaluation order:
    // cores produce requests, the L2 moves them, memory follows.
    for (auto &cpu : cpus)
        sim.addTicking(cpu.get());
    sim.addTicking(l2_.get());
    sim.addTicking(mem_.get());
}

void
CmpSystem::run(Cycle cycles)
{
    sim.run(cycles);
}

SystemSnapshot
CmpSystem::snapshot() const
{
    SystemSnapshot s;
    s.cycle = sim.now();
    for (ThreadId t = 0; t < cfg.numProcessors; ++t) {
        s.instrs.push_back(cpus[t]->instrsRetired());
        s.loads.push_back(cpus[t]->loadsRetired());
        s.stores.push_back(cpus[t]->storesRetired());
        s.l2Reads.push_back(l2_->readCount(t));
        s.l2Writes.push_back(l2_->writeCount(t));
        s.l2Misses.push_back(l2_->missCount(t));
        s.sgbStores.push_back(l2_->storesTotal(t));
        s.sgbGathered.push_back(l2_->storesGathered(t));
    }
    s.tagBusy = l2_->tagBusyMean();
    s.dataBusy = l2_->dataBusyMean();
    s.busBusy = l2_->busBusyMean();
    return s;
}

IntervalStats
CmpSystem::interval(const SystemSnapshot &a, const SystemSnapshot &b)
{
    if (b.cycle < a.cycle)
        vpc_panic("interval endpoints out of order");
    IntervalStats out;
    out.cycles = b.cycle - a.cycle;
    double window = static_cast<double>(out.cycles);
    for (std::size_t t = 0; t < a.instrs.size(); ++t) {
        std::uint64_t di = b.instrs[t] - a.instrs[t];
        out.instrs.push_back(di);
        out.ipc.push_back(window > 0.0
                          ? static_cast<double>(di) / window : 0.0);
        out.l2Reads.push_back(b.l2Reads[t] - a.l2Reads[t]);
        out.l2Writes.push_back(b.l2Writes[t] - a.l2Writes[t]);
        out.l2Misses.push_back(b.l2Misses[t] - a.l2Misses[t]);
        out.sgbStores.push_back(b.sgbStores[t] - a.sgbStores[t]);
        out.sgbGathered.push_back(b.sgbGathered[t] - a.sgbGathered[t]);
    }
    if (window > 0.0) {
        // A grant accrues its full occupancy immediately, so a window
        // boundary can land inside an access; clamp the spill-over.
        auto clamp01 = [](double v) {
            return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
        };
        out.tagUtil = clamp01((b.tagBusy - a.tagBusy) / window);
        out.dataUtil = clamp01((b.dataBusy - a.dataBusy) / window);
        out.busUtil = clamp01((b.busBusy - a.busBusy) / window);
    }
    return out;
}

IntervalStats
CmpSystem::runAndMeasure(Cycle warmup, Cycle measure)
{
    run(warmup);
    SystemSnapshot before = snapshot();
    run(measure);
    return interval(before, snapshot());
}

} // namespace vpc
