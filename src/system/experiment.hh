/**
 * @file
 * Experiment harness shared by the benches and examples.
 *
 * Provides the paper's methodology as reusable pieces:
 *
 *  - target IPC: a thread's performance on a standalone private machine
 *    provisioned exactly like its VPC (same sets, beta_i of the ways,
 *    resource latencies scaled by 1/phi_i) -- Section 5.3;
 *  - normalized IPC and the aggregate metrics the paper reports
 *    (harmonic mean of normalized IPCs, minimum normalized IPC);
 *  - convenience constructors for the Table 1 baseline configuration.
 */

#ifndef VPC_SYSTEM_EXPERIMENT_HH
#define VPC_SYSTEM_EXPERIMENT_HH

#include <vector>

#include "system/cmp_system.hh"
#include "system/run_cache.hh"
#include "workload/workload.hh"

namespace vpc
{

/** Default measurement interval lengths (core cycles). */
struct RunLengths
{
    Cycle warmup = 100'000;
    Cycle measure = 400'000;
};

/**
 * @return the Table 1 baseline configuration for @p num_processors
 *         processors with @p policy arbiters and equal QoS shares
 */
SystemConfig makeBaselineConfig(unsigned num_processors,
                                ArbiterPolicy policy);

/**
 * @return a big-CMP scale-up of the Table 1 machine: @p num_processors
 *         processors (8, 16 or 32), one L2 bank per two processors
 *         (8 MB per bank, so per-bank capacity and set count match the
 *         baseline), equal QoS shares, and an interconnect deepened
 *         with machine size (3/4/5 cycles at 8/16/32 processors — a
 *         crossbar serving more agents takes longer per hop).  The
 *         deeper interconnect also widens the shard-parallel kernel's
 *         conservative lookahead window (see ShardLookahead), so the
 *         big configs synchronize shards less often per simulated
 *         cycle than the 4-processor baseline.
 *
 * @pre num_processors is a power of 2 in [2, 32] (banks must be a
 *      power of 2, and beta * ways must stay >= 1 way per thread
 *      under equal shares)
 */
SystemConfig makeScaledCmpConfig(unsigned num_processors,
                                 ArbiterPolicy policy);

/**
 * Round @p cycles up to an even number of core cycles (the L2 runs at
 * half the core frequency, so occupancies are even).
 */
Cycle ceilEven(double cycles);

/**
 * Build the private-machine configuration equivalent to a VPC with
 * bandwidth share @p phi and capacity share @p beta: a uniprocessor
 * whose L2 keeps the shared cache's sets but has beta * ways ways, and
 * whose tag/data/bus latencies are scaled by 1/phi (Section 5.3).
 *
 * @pre phi > 0
 */
SystemConfig makePrivateConfig(const SystemConfig &base, double phi,
                               double beta);

/**
 * Measure a workload's target IPC: its IPC on the equivalent private
 * machine.  Returns 0 for phi == 0 by definition.
 *
 * @param base the shared-machine configuration being studied
 * @param workload the benchmark (cloned; the original is untouched)
 * @param phi bandwidth share of the VPC
 * @param beta capacity share of the VPC
 * @param lens run lengths
 * @param kernel_out if non-null, receives the private run's kernel
 *        work/skip counters (for bench reporting)
 */
double targetIpc(const SystemConfig &base, const Workload &workload,
                 double phi, double beta, const RunLengths &lens = {},
                 KernelStats *kernel_out = nullptr,
                 Profiler *profile_out = nullptr);

/**
 * The private-machine run that defines a thread's target IPC, as a
 * cacheable job: the same configuration targetIpc() builds, with the
 * workload identified by content key instead of a live object.  For
 * equivalence with targetIpc() the key's seed must be the clone seed
 * it uses (1); workload_block_test asserts that rebuilding from spec
 * replays the cloned stream bit-identically.
 *
 * @pre phi > 0
 */
RunJob makeTargetJob(const SystemConfig &base,
                     const WorkloadKey &workload, double phi,
                     double beta, const RunLengths &lens = {});

/**
 * Keyed, memoizable variant of targetIpc(): runs makeTargetJob()
 * through @p cache (nullptr = always execute).  The target IPC is
 * result.record.stats.ipc.at(0); kernel counters and (for executed
 * runs) the merged profile ride along in the RunResult.
 */
RunResult runTargetIpc(const SystemConfig &base,
                       const WorkloadKey &workload, double phi,
                       double beta, RunCache *cache,
                       const RunLengths &lens = {});

/** @return the harmonic mean of @p values (0 if any value is 0). */
double harmonicMean(const std::vector<double> &values);

/** @return the smallest element of @p values. */
double minimum(const std::vector<double> &values);

} // namespace vpc

#endif // VPC_SYSTEM_EXPERIMENT_HH
