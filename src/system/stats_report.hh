/**
 * @file
 * Hierarchical statistics dump in the gem5 stats.txt idiom.
 *
 * Walks a CmpSystem and writes one `name value # description` line per
 * statistic: per-core retirement and stall counters, per-L1 hit/miss
 * and prefetch counters, per-bank shared-resource utilizations and
 * per-thread grant counts, store-gathering effectiveness, and memory
 * channel statistics.  Benches print focused tables; this report is
 * the "everything" view for debugging and for users building their
 * own experiments.
 */

#ifndef VPC_SYSTEM_STATS_REPORT_HH
#define VPC_SYSTEM_STATS_REPORT_HH

#include <ostream>

#include "system/cmp_system.hh"
#include "system/options.hh"
#include "system/run_cache.hh"

namespace vpc
{

/**
 * Write every model statistic of @p sys to @p os.
 *
 * @param sys the simulated system
 * @param os output stream
 * @param window cycles elapsed (for utilization fractions); pass
 *        sys.now() for whole-run statistics
 */
void dumpStats(CmpSystem &sys, std::ostream &os, Cycle window);

/**
 * The model-facing per-thread report vpcsim prints: shared verbatim
 * by the live, cached and service-client paths, so their stdout is
 * byte-identical for the same job.
 */
void printRunReport(const SimOptions &opts, const IntervalStats &stats,
                    const KernelStats &k);

/**
 * The stderr run-cache provenance line ("run-cache: N hits ...").
 * Store errors are appended only when non-zero, so healthy runs keep
 * the historical format.
 */
void printRunCacheLine(const RunCache &cache);

} // namespace vpc

#endif // VPC_SYSTEM_STATS_REPORT_HH
