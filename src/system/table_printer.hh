/**
 * @file
 * Fixed-width table output used by the benches to print the rows and
 * series of each reproduced table/figure.
 */

#ifndef VPC_SYSTEM_TABLE_PRINTER_HH
#define VPC_SYSTEM_TABLE_PRINTER_HH

#include <cstdio>
#include <string>
#include <vector>

namespace vpc
{

/** Streams rows of a fixed-width text table to stdout. */
class TablePrinter
{
  public:
    /**
     * @param title caption printed above the table
     * @param columns column headings; widths adapt to the headings
     *        with a minimum of @p min_width characters
     */
    TablePrinter(std::string title, std::vector<std::string> columns,
                 std::size_t min_width = 10);

    /** Print one row; cells beyond the column count are ignored. */
    void row(const std::vector<std::string> &cells);

    /** Print a horizontal rule. */
    void rule();

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string num(double v, int digits = 3);

    /** Format helper: percentage with one decimal. */
    static std::string pct(double v);

  private:
    std::vector<std::size_t> widths;
    std::size_t totalWidth = 0;
};

} // namespace vpc

#endif // VPC_SYSTEM_TABLE_PRINTER_HH
