#include "system/table_printer.hh"

#include <algorithm>

namespace vpc
{

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns,
                           std::size_t min_width)
{
    widths.reserve(columns.size());
    for (const std::string &c : columns)
        widths.push_back(std::max(min_width, c.size() + 2));
    for (std::size_t w : widths)
        totalWidth += w;

    std::printf("\n%s\n", title.c_str());
    rule();
    row(columns);
    rule();
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < widths.size(); ++i) {
        std::string cell = i < cells.size() ? cells[i] : "";
        std::printf("%-*s", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

void
TablePrinter::rule()
{
    std::printf("%s\n", std::string(totalWidth, '-').c_str());
}

std::string
TablePrinter::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TablePrinter::pct(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
    return buf;
}

} // namespace vpc
