/**
 * @file
 * Shared helpers for the flat on-disk record format.
 *
 * The run cache (system/run_cache.cc) and the service-layer job spool
 * (service/job_codec.cc) both persist small structured records as a
 * single flat JSON object whose values are decimal unsigned integers,
 * double-quoted strings, or arrays of decimal unsigned integers —
 * doubles travel as IEEE-754 bit patterns so round-trips are exact.
 * This header is the one implementation of that format:
 *
 *  - Fnv1a: incremental 64-bit FNV-1a over explicitly enumerated
 *    fields, with fixed-width little-endian integer serialization so
 *    digests are host-independent;
 *  - RecordParser: a strict parser for exactly the subset the writers
 *    emit.  Any deviation (truncation, corruption, foreign writer)
 *    fails the parse, so damaged records degrade to "absent", never to
 *    wrong values;
 *  - writeRecordVec / recordBits / recordDoubles: writer-side helpers.
 */

#ifndef VPC_SYSTEM_RECORD_IO_HH
#define VPC_SYSTEM_RECORD_IO_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace vpc
{

/** Incremental 64-bit FNV-1a over explicitly enumerated fields. */
class Fnv1a
{
  public:
    void bytes(const void *data, std::size_t n);

    /**
     * Hash @p v as fixed-width little-endian bytes, independent of the
     * host's integer widths and struct padding.
     */
    void u64(std::uint64_t v);

    /** Hash the IEEE-754 bit pattern of @p v. */
    void dbl(double v);

    /** Hash length-prefixed string contents. */
    void str(const std::string &s);

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/**
 * Strict parser for the flat record subset of JSON: one object whose
 * values are decimal unsigned integers, double-quoted strings (no
 * escapes), or arrays of decimal unsigned integers.
 */
class RecordParser
{
  public:
    explicit RecordParser(std::string text);

    /** @return true iff the whole input is one well-formed record. */
    bool parse();

    bool getInt(const std::string &k, std::uint64_t &out) const;
    bool getString(const std::string &k, std::string &out) const;
    bool getArray(const std::string &k,
                  std::vector<std::uint64_t> &out) const;

  private:
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    bool eat(char c);
    void skipWs();
    bool posAtEnd();
    bool parseString(std::string &out);
    bool parseUint(std::uint64_t &out);
    bool parseArray(std::vector<std::uint64_t> &out);

    std::string s_;
    std::size_t pos_ = 0;
    std::unordered_map<std::string, std::uint64_t> ints_;
    std::unordered_map<std::string, std::string> strings_;
    std::unordered_map<std::string, std::vector<std::uint64_t>> arrays_;
};

/** Append ["k": [v...],] with each element as a decimal uint64. */
void writeRecordVec(std::FILE *f, const char *k,
                    const std::vector<std::uint64_t> &v,
                    bool last = false);

/** @return the IEEE-754 bit patterns of @p v, element-wise. */
std::vector<std::uint64_t> recordBits(const std::vector<double> &v);

/** Inverse of recordBits(). */
std::vector<double> recordDoubles(const std::vector<std::uint64_t> &v);

/**
 * @return true when @p s can travel through the record format as a
 *         string value unchanged (no quotes, backslashes, control
 *         characters — the parser rejects anything needing escapes)
 */
bool recordStringSafe(const std::string &s);

} // namespace vpc

#endif // VPC_SYSTEM_RECORD_IO_HH
