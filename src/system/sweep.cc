#include "system/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vpc
{

unsigned
sweepThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("VPC_SWEEP_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads)
{
    if (n == 0)
        return;
    unsigned workers = sweepThreads(threads);
    if (workers > n)
        workers = static_cast<unsigned>(n);

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1,
                                           std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace vpc
