#include "system/sweep.hh"

#include <cstdlib>
#include <thread>

#include "sim/thread_pool.hh"

namespace vpc
{

unsigned
sweepThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("VPC_SWEEP_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads)
{
    if (n == 0)
        return;
    unsigned workers = sweepThreads(threads);
    if (workers > n)
        workers = static_cast<unsigned>(n);

    if (workers <= 1) {
        // Strictly inline and in index order: the exact serial
        // baseline, with no pool machinery on the stack.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // The calling thread participates in the dispatch, so the pool
    // only needs workers - 1 extra threads for `workers` lanes.
    ThreadPool pool(workers - 1);
    pool.dispatch(n, fn);
}

} // namespace vpc
