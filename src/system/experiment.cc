#include "system/experiment.hh"

#include <cmath>

#include "sim/logging.hh"

namespace vpc
{

SystemConfig
makeBaselineConfig(unsigned num_processors, ArbiterPolicy policy)
{
    SystemConfig cfg;
    cfg.numProcessors = num_processors;
    cfg.arbiterPolicy = policy;
    cfg.shares.assign(num_processors,
                      QosShare{1.0 / num_processors,
                               1.0 / num_processors});
    cfg.validate();
    return cfg;
}

SystemConfig
makeScaledCmpConfig(unsigned num_processors, ArbiterPolicy policy)
{
    if (num_processors < 2 || num_processors > 32 ||
        (num_processors & (num_processors - 1)) != 0) {
        vpc_fatal("scaled CMP config needs a power-of-2 processor "
                  "count in [2, 32], got {}", num_processors);
    }
    SystemConfig cfg;
    cfg.numProcessors = num_processors;
    cfg.arbiterPolicy = policy;
    // One bank per two processors, 8 MB each: per-bank sets, ways and
    // admission pressure match the Table 1 baseline, so scaling the
    // machine scales the number of contention domains rather than
    // reshaping each one.
    cfg.l2.banks = num_processors / 2;
    cfg.l2.sizeBytes = 8ULL * 1024 * 1024 * cfg.l2.banks;
    // A crossbar serving more agents is deeper: 3/4/5 cycles at
    // 8/16/32 processors (the 4-processor baseline uses 2).
    cfg.l2.interconnectLatency =
        num_processors >= 32 ? 5 : num_processors >= 16 ? 4
        : num_processors >= 8 ? 3 : 2;
    cfg.shares.assign(num_processors,
                      QosShare{1.0 / num_processors,
                               1.0 / num_processors});
    cfg.validate();
    return cfg;
}

Cycle
ceilEven(double cycles)
{
    auto c = static_cast<Cycle>(std::ceil(cycles - 1e-9));
    if (c < 2)
        c = 2;
    return (c % 2 == 0) ? c : c + 1;
}

SystemConfig
makePrivateConfig(const SystemConfig &base, double phi, double beta)
{
    if (phi <= 0.0)
        vpc_fatal("private-equivalent machine undefined for phi == 0");

    SystemConfig cfg = base;
    cfg.numProcessors = 1;
    // The uniprocessor baseline uses the private-cache arbiter policy
    // (RoW-FCFS) -- Section 5.1.
    cfg.arbiterPolicy = ArbiterPolicy::RowFcfs;
    cfg.capacityPolicy = CapacityPolicy::Lru;
    cfg.shares = {QosShare{1.0, 1.0}};

    // Same number of sets, beta of the ways: shrink total capacity in
    // proportion to the ways kept.
    auto ways = static_cast<unsigned>(base.l2.ways * beta + 1e-9);
    if (ways == 0)
        ways = 1;
    cfg.l2.sizeBytes = base.l2.sizeBytes / base.l2.ways * ways;
    cfg.l2.ways = ways;

    // All shared-resource latencies scale by 1/phi (bandwidth =
    // 1/latency); occupancies stay even because the L2 runs at half
    // the core frequency.
    cfg.l2.tagLatency = ceilEven(base.l2.tagLatency / phi);
    cfg.l2.dataLatency = ceilEven(base.l2.dataLatency / phi);
    // Scale the *total* line occupancy of the bus (scaling the beat
    // and re-multiplying by the beat count would round 1/phi up to a
    // whole beat and overshoot badly, e.g. phi=0.75 doubling the bus
    // time).  The critical-word beat scales directly.
    Cycle base_occ = base.l2.busBeatCycles *
                     (base.l2.lineBytes / base.l2.busBytes);
    cfg.l2.busOccupancyOverride = ceilEven(base_occ / phi);
    cfg.l2.busBeatCycles = ceilEven(base.l2.busBeatCycles / phi);

    cfg.validate();
    return cfg;
}

double
targetIpc(const SystemConfig &base, const Workload &workload,
          double phi, double beta, const RunLengths &lens,
          KernelStats *kernel_out, Profiler *profile_out)
{
    if (phi <= 0.0)
        return 0.0;
    SystemConfig cfg = makePrivateConfig(base, phi, beta);
    std::vector<std::unique_ptr<Workload>> wl;
    wl.push_back(workload.clone(1));
    CmpSystem sys(std::move(cfg), std::move(wl));
    IntervalStats stats = sys.runAndMeasure(lens.warmup, lens.measure);
    if (kernel_out)
        *kernel_out = sys.kernelStats();
    if (profile_out && sys.profiling())
        *profile_out = sys.mergedProfile();
    return stats.ipc.at(0);
}

RunJob
makeTargetJob(const SystemConfig &base, const WorkloadKey &workload,
              double phi, double beta, const RunLengths &lens)
{
    RunJob job;
    job.config = makePrivateConfig(base, phi, beta);
    job.workloads = {workload};
    job.warmup = lens.warmup;
    job.measure = lens.measure;
    return job;
}

RunResult
runTargetIpc(const SystemConfig &base, const WorkloadKey &workload,
             double phi, double beta, RunCache *cache,
             const RunLengths &lens)
{
    return runAndMeasureCached(
        makeTargetJob(base, workload, phi, beta, lens), cache);
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
minimum(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double m = values.front();
    for (double v : values)
        m = std::min(m, v);
    return m;
}

} // namespace vpc
