/**
 * @file
 * Workload abstraction: a lazy stream of micro-operations.
 *
 * The processor model pulls MicroOps from a Workload and executes them
 * on the memory hierarchy.  Workloads are infinite streams (benchmarks
 * loop), matching the paper's methodology of running each benchmark for
 * a fixed simulated interval.
 */

#ifndef VPC_WORKLOAD_WORKLOAD_HH
#define VPC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sim/types.hh"

namespace vpc
{

/** One dynamic instruction as seen by the timing model. */
struct MicroOp
{
    enum class Kind
    {
        Load,    //!< memory read
        Store,   //!< memory write (write-through to L2)
        Compute  //!< non-memory instruction (single-cycle)
    };

    Kind kind = Kind::Compute;
    Addr addr = 0;
    /**
     * The op cannot issue until the previous load in program order has
     * completed (models address-generation / pointer-chase dependences
     * that limit memory-level parallelism).
     */
    bool dependsOnPrevLoad = false;
};

/** An infinite instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** @return the next dynamic instruction. */
    virtual MicroOp next() = 0;

    /**
     * Fill @p out with the next out.size() dynamic instructions, in
     * program order — exactly the ops that out.size() calls of next()
     * would have returned.  Generators override this to amortize the
     * per-op virtual dispatch over a whole block (the processor model
     * fetches through a refillable block buffer); the default simply
     * loops next() so trivial workloads stay one-method classes.
     */
    virtual void
    nextBlock(std::span<MicroOp> out)
    {
        for (MicroOp &op : out)
            op = next();
    }

    /** @return the benchmark's display name. */
    virtual std::string name() const = 0;

    /**
     * Create an identical fresh generator (restarted, reseeded with
     * @p seed where applicable).  Used to rerun the same benchmark on
     * an equivalently provisioned private machine for target IPCs.
     */
    virtual std::unique_ptr<Workload> clone(std::uint64_t seed)
        const = 0;
};

} // namespace vpc

#endif // VPC_WORKLOAD_WORKLOAD_HH
