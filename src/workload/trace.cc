#include "workload/trace.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace vpc
{

namespace
{

/** Strip leading blanks and trailing comment/newline. */
std::string
cleaned(const std::string &raw)
{
    std::string s = raw;
    std::size_t hash = s.find('#');
    if (hash != std::string::npos)
        s.erase(hash);
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

TraceWorkload::TraceWorkload(const std::string &path, Addr base_addr)
    : path_(path), base(base_addr)
{
    // Display name: the file's basename.
    std::size_t slash = path.find_last_of('/');
    name_ = "trace:" +
            (slash == std::string::npos ? path
                                        : path.substr(slash + 1));

    std::ifstream in(path);
    if (!in)
        vpc_fatal("cannot open trace file '{}'", path);

    std::string raw;
    unsigned line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string s = cleaned(raw);
        if (s.empty())
            continue;
        std::istringstream ss(s);
        std::string kind;
        ss >> kind;
        if (kind == "L" || kind == "S") {
            std::string hex;
            ss >> hex;
            if (hex.empty())
                vpc_fatal("{}:{}: missing address", path, line_no);
            MicroOp op;
            op.kind = kind == "L" ? MicroOp::Kind::Load
                                  : MicroOp::Kind::Store;
            try {
                op.addr = base + std::stoull(hex, nullptr, 16);
            } catch (const std::exception &) {
                vpc_fatal("{}:{}: bad address '{}'", path, line_no,
                          hex);
            }
            std::string dep;
            ss >> dep;
            if (dep == "d") {
                if (kind != "L")
                    vpc_fatal("{}:{}: dependence flag on a store",
                              path, line_no);
                op.dependsOnPrevLoad = true;
            } else if (!dep.empty()) {
                vpc_fatal("{}:{}: trailing junk '{}'", path, line_no,
                          dep);
            }
            ops.push_back(op);
        } else if (kind == "C") {
            std::uint64_t n = 1;
            std::string count;
            ss >> count;
            if (!count.empty()) {
                try {
                    n = std::stoull(count);
                } catch (const std::exception &) {
                    vpc_fatal("{}:{}: bad compute count '{}'", path,
                              line_no, count);
                }
            }
            for (std::uint64_t i = 0; i < n; ++i)
                ops.push_back(MicroOp{});
        } else {
            vpc_fatal("{}:{}: unknown op '{}'", path, line_no, kind);
        }
    }
    if (ops.empty())
        vpc_fatal("trace file '{}' contains no operations", path);
}

MicroOp
TraceWorkload::next()
{
    MicroOp op = ops[pos];
    pos = (pos + 1) % ops.size();
    return op;
}

void
TraceWorkload::nextBlock(std::span<MicroOp> out)
{
    std::size_t filled = 0;
    while (filled < out.size()) {
        std::size_t run =
            std::min(out.size() - filled, ops.size() - pos);
        std::copy_n(ops.begin() + static_cast<std::ptrdiff_t>(pos),
                    run, out.begin() +
                    static_cast<std::ptrdiff_t>(filled));
        filled += run;
        pos += run;
        if (pos == ops.size())
            pos = 0;
    }
}

std::unique_ptr<Workload>
TraceWorkload::clone(std::uint64_t seed) const
{
    (void)seed; // a trace replays identically regardless of seed
    return std::make_unique<TraceWorkload>(path_, base);
}

TraceRecorder::TraceRecorder(std::unique_ptr<Workload> inner_,
                             const std::string &path,
                             std::uint64_t max_ops)
    : inner(std::move(inner_)), path_(path), maxOps(max_ops)
{
    if (!inner)
        vpc_panic("TraceRecorder without inner workload");
    file = std::fopen(path.c_str(), "w");
    if (!file)
        vpc_fatal("cannot open trace output '{}'", path);
    std::fprintf(file, "# recorded from %s\n", inner->name().c_str());
}

TraceRecorder::~TraceRecorder()
{
    if (file) {
        flushComputes();
        std::fclose(file);
    }
}

void
TraceRecorder::flushComputes()
{
    if (pendingComputes == 0 || !file)
        return;
    std::fprintf(file, "C %llu\n",
                 static_cast<unsigned long long>(pendingComputes));
    pendingComputes = 0;
}

MicroOp
TraceRecorder::next()
{
    MicroOp op = inner->next();
    record(op);
    return op;
}

void
TraceRecorder::nextBlock(std::span<MicroOp> out)
{
    inner->nextBlock(out);
    for (const MicroOp &op : out)
        record(op);
}

void
TraceRecorder::record(const MicroOp &op)
{
    if (!file || written >= maxOps)
        return;
    ++written;
    switch (op.kind) {
      case MicroOp::Kind::Compute:
        ++pendingComputes;
        break;
      case MicroOp::Kind::Load:
        flushComputes();
        std::fprintf(file, "L %llx%s\n",
                     static_cast<unsigned long long>(op.addr),
                     op.dependsOnPrevLoad ? " d" : "");
        break;
      case MicroOp::Kind::Store:
        flushComputes();
        std::fprintf(file, "S %llx\n",
                     static_cast<unsigned long long>(op.addr));
        break;
    }
    if (written == maxOps) {
        flushComputes();
        std::fclose(file);
        file = nullptr;
    }
}

std::unique_ptr<Workload>
TraceRecorder::clone(std::uint64_t seed) const
{
    // Clones replay the generator without re-recording (the file is
    // owned by the original).
    return inner->clone(seed);
}

} // namespace vpc
