#include "workload/spec2000.hh"

#include "sim/logging.hh"

namespace vpc
{

namespace
{

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/** One row of the calibration table. */
SyntheticParams
profile(const char *name, double mem_frac, double store_frac,
        double store_loc, std::uint64_t ws, double hot_frac,
        double dep_frac, double stream_frac)
{
    SyntheticParams p;
    p.name = name;
    p.memFrac = mem_frac;
    p.storeFrac = store_frac;
    p.storeLocality = store_loc;
    p.workingSetBytes = ws;
    p.hotFrac = hot_frac;
    p.depFrac = dep_frac;
    p.streamFrac = stream_frac;
    return p;
}


/** A row with an additional L2-resident reuse region. */
SyntheticParams
l2profile(const char *name, double mem_frac, double store_frac,
          double store_loc, std::uint64_t ws, double hot_frac,
          double dep_frac, double stream_frac, double l2_frac,
          std::uint64_t l2_bytes)
{
    SyntheticParams p = profile(name, mem_frac, store_frac, store_loc,
                                ws, hot_frac, dep_frac, stream_frac);
    p.l2Frac = l2_frac;
    p.l2Bytes = l2_bytes;
    return p;
}

/**
 * Calibration table, ordered by resulting data-array utilization
 * (Figure 6's ordering).  Columns: memFrac, storeFrac, storeLocality,
 * workingSet, hotFrac, depFrac, streamFrac.
 */
const std::vector<SyntheticParams> &
table()
{
    static const std::vector<SyntheticParams> t = {
        profile("art",      0.45, 0.32, 0.70, 512 * KiB,  0.60, 0.05,
                0.35),
        profile("vpr",      0.40, 0.38, 0.78, 512 * KiB,  0.81, 0.15,
                0.40),
        profile("mesa",     0.40, 0.42, 0.88, 384 * KiB,  0.875, 0.10,
                0.50),
        profile("crafty",   0.38, 0.42, 0.91, 256 * KiB,  0.91, 0.10,
                0.40),
        profile("gap",      0.36, 0.40, 0.85, 512 * KiB,  0.885, 0.10,
                0.50),
        l2profile("mcf",    0.40, 0.25, 0.80, 64 * MiB,   0.35, 0.25,
                0.00, 0.90, 1 * MiB),
        profile("apsi",     0.36, 0.40, 0.80, 768 * KiB,  0.86, 0.10,
                0.60),
        profile("twolf",    0.35, 0.36, 0.88, 512 * KiB,  0.91, 0.15,
                0.30),
        profile("gcc",      0.34, 0.42, 0.90, 512 * KiB,  0.93, 0.10,
                0.40),
        profile("gzip",     0.30, 0.38, 0.93, 256 * KiB,  0.96, 0.10,
                0.50),
        l2profile("lucas",  0.30, 0.22, 0.75, 64 * MiB,   0.68, 0.10,
                0.95, 0.55, 512 * KiB),
        profile("equake",   0.35, 0.05, 0.60, 64 * MiB,   0.68, 0.20,
                0.95),
        profile("swim",     0.35, 0.05, 0.60, 128 * MiB,  0.78, 0.10,
                0.95),
        profile("wupwise",  0.30, 0.36, 0.94, 512 * KiB,  0.96, 0.10,
                0.60),
        profile("ammp",     0.30, 0.33, 0.95, 512 * KiB,  0.968, 0.15,
                0.40),
        profile("bzip2",    0.30, 0.30, 0.96, 256 * KiB,  0.98, 0.10,
                0.50),
        profile("mgrid",    0.30, 0.25, 0.97, 256 * KiB,  0.988, 0.05,
                0.80),
        profile("sixtrack", 0.22, 0.20, 0.98, 128 * KiB,  0.995, 0.05,
                0.50),
    };
    return t;
}

} // namespace

const std::vector<std::string> &
spec2000Names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        v.reserve(table().size());
        for (const SyntheticParams &p : table())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

const SyntheticParams &
spec2000Params(const std::string &name)
{
    for (const SyntheticParams &p : table()) {
        if (p.name == name)
            return p;
    }
    vpc_fatal("unknown SPEC 2000 benchmark '{}'", name);
}

std::unique_ptr<Workload>
makeSpec2000(const std::string &name, Addr base_addr,
             std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(spec2000Params(name),
                                               base_addr, seed);
}

} // namespace vpc
