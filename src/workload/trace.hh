/**
 * @file
 * Trace-driven workloads: capture and replay.
 *
 * The paper's methodology is trace-driven ("twenty 100 million
 * instruction sampled traces").  These classes let users bring their
 * own traces: TraceWorkload replays a simple text format, and
 * TraceRecorder tees any generator's op stream to a file so synthetic
 * runs can be captured once and replayed exactly.
 *
 * Trace format (one op per line, '#' starts a comment):
 *
 *   L <hex addr> [d]    load; optional 'd' marks a dependence on the
 *                       previous load
 *   S <hex addr>        store
 *   C [n]               n compute ops (default 1)
 *
 * Replay loops back to the beginning at end of trace (benchmarks are
 * modeled as infinite streams).
 */

#ifndef VPC_WORKLOAD_TRACE_HH
#define VPC_WORKLOAD_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace vpc
{

/** Replays a recorded op trace in a loop. */
class TraceWorkload : public Workload
{
  public:
    /**
     * Parse @p path eagerly; fatal error on malformed input.
     *
     * @param path trace file
     * @param base_addr offset added to every traced address (thread
     *        address-space placement)
     */
    explicit TraceWorkload(const std::string &path,
                           Addr base_addr = 0);

    MicroOp next() override;
    void nextBlock(std::span<MicroOp> out) override;
    std::string name() const override { return name_; }
    std::unique_ptr<Workload> clone(std::uint64_t seed) const override;

    /** @return parsed ops per loop iteration. */
    std::size_t length() const { return ops.size(); }

  private:
    std::string path_;
    std::string name_;
    Addr base;
    std::vector<MicroOp> ops;
    std::size_t pos = 0;
};

/** Wraps a workload and writes every op it produces to a file. */
class TraceRecorder : public Workload
{
  public:
    /**
     * @param inner generator to record; takes ownership
     * @param path output trace file (truncated)
     * @param max_ops stop recording (but keep forwarding) after this
     *        many ops so endless runs do not fill the disk
     */
    TraceRecorder(std::unique_ptr<Workload> inner,
                  const std::string &path,
                  std::uint64_t max_ops = 1'000'000);

    ~TraceRecorder() override;

    MicroOp next() override;
    void nextBlock(std::span<MicroOp> out) override;
    std::string name() const override { return inner->name(); }
    std::unique_ptr<Workload> clone(std::uint64_t seed) const override;

    /** @return ops written so far. */
    std::uint64_t recorded() const { return written; }

  private:
    std::unique_ptr<Workload> inner;
    std::string path_;
    std::FILE *file = nullptr;
    std::uint64_t maxOps;
    std::uint64_t written = 0;
    std::uint64_t pendingComputes = 0;

    /** Flush the run-length-encoded compute counter. */
    void flushComputes();

    /** Record one op (shared by next() and nextBlock()). */
    void record(const MicroOp &op);
};

} // namespace vpc

#endif // VPC_WORKLOAD_TRACE_HH
