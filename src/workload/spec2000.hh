/**
 * @file
 * Calibrated SPEC CPU 2000 stand-in profiles.
 *
 * The paper evaluates twenty 100M-instruction sampled SPEC 2000 traces;
 * those traces are proprietary, so each benchmark named in the
 * evaluation is modeled by a SyntheticWorkload whose parameters are
 * calibrated against the characteristics the paper itself publishes:
 *
 *  - Figure 6's per-benchmark shared-resource utilizations, including
 *    their ordering by data-array utilization (art highest, sixtrack
 *    lowest; single-thread average ~26%);
 *  - Figure 7's L2 write fraction (average 55% of L2 requests after
 *    gathering) and store gathering rate (average 80%), with equake
 *    and swim having very few L2 writes;
 *  - the qualitative memory behaviour of well-known benchmarks (mcf's
 *    pointer chasing, swim/lucas/equake streaming with L2 misses).
 */

#ifndef VPC_WORKLOAD_SPEC2000_HH
#define VPC_WORKLOAD_SPEC2000_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/synthetic.hh"

namespace vpc
{

/** @return benchmark names in Figure 6 order (by data-array util). */
const std::vector<std::string> &spec2000Names();

/**
 * Look up a benchmark's calibrated profile.
 *
 * @param name one of spec2000Names()
 * @return the generator parameters; fatal error on unknown name
 */
const SyntheticParams &spec2000Params(const std::string &name);

/**
 * Construct a benchmark generator.
 *
 * @param name one of spec2000Names()
 * @param base_addr thread-private address-space base
 * @param seed RNG seed
 */
std::unique_ptr<Workload> makeSpec2000(const std::string &name,
                                       Addr base_addr,
                                       std::uint64_t seed);

} // namespace vpc

#endif // VPC_WORKLOAD_SPEC2000_HH
