#include "workload/microbench.hh"

namespace vpc
{

MicroBenchmark::MicroBenchmark(bool is_store, Addr base_addr)
    : isStore(is_store), base(base_addr)
{}

MicroOp
MicroBenchmark::next()
{
    MicroOp op;
    if (phase < kUnroll) {
        // lwz/stw r3, <row offset>(r2)
        op.kind = isStore ? MicroOp::Kind::Store : MicroOp::Kind::Load;
        op.addr = base + row;
        row += kRowBytes;
        if (row >= kArrayBytes)
            row = 0;
        ++phase;
    } else {
        // r2 <- r2 + 256 (address increment of the unrolled body)
        op.kind = MicroOp::Kind::Compute;
        phase = 0;
    }
    return op;
}

void
MicroBenchmark::nextBlock(std::span<MicroOp> out)
{
    const MicroOp::Kind mem_kind =
        isStore ? MicroOp::Kind::Store : MicroOp::Kind::Load;
    for (MicroOp &op : out) {
        if (phase < kUnroll) {
            op.kind = mem_kind;
            op.addr = base + row;
            op.dependsOnPrevLoad = false;
            row += kRowBytes;
            if (row >= kArrayBytes)
                row = 0;
            ++phase;
        } else {
            op = MicroOp{};
            phase = 0;
        }
    }
}

std::string
MicroBenchmark::name() const
{
    return isStore ? "Stores" : "Loads";
}

std::unique_ptr<Workload>
MicroBenchmark::clone(std::uint64_t seed) const
{
    (void)seed; // deterministic benchmark; nothing to reseed
    return std::make_unique<MicroBenchmark>(isStore, base);
}

} // namespace vpc
