/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * Stands in for the paper's SPEC CPU 2000 sampled traces, which are not
 * redistributable.  Each generator emits an instruction mix shaped by a
 * handful of parameters so that a benchmark's *pressure profile* on the
 * shared L2 resources -- request rate, read/write mix, store-gathering
 * rate, L2 hit/miss behaviour and memory-level parallelism -- matches
 * the per-benchmark characteristics the paper reports (Figures 6/7).
 * See spec2000.hh for the calibrated per-benchmark parameter table.
 */

#ifndef VPC_WORKLOAD_SYNTHETIC_HH
#define VPC_WORKLOAD_SYNTHETIC_HH

#include "sim/random.hh"
#include "workload/workload.hh"

namespace vpc
{

/** Tuning knobs for one synthetic benchmark. */
struct SyntheticParams
{
    std::string name = "synthetic";
    /** Fraction of dynamic ops that access memory. */
    double memFrac = 0.3;
    /** Of memory ops, fraction that are stores. */
    double storeFrac = 0.3;
    /**
     * Probability a store stays on the current store line (consecutive
     * same-line stores gather in the SGB); controls Figure 7's
     * store-gathering rate.
     */
    double storeLocality = 0.8;
    /** L2-level working set; > L2 share produces L2 misses. */
    std::uint64_t workingSetBytes = 1 << 20;
    /**
     * Fraction of loads hitting a small L1-resident hot region;
     * controls the L1 filter rate and hence L2 pressure.
     */
    double hotFrac = 0.5;
    /** Hot region size (should be <= 1/2 the L1). */
    std::uint64_t hotBytes = 4 * 1024;
    /**
     * Of the loads that miss the hot region, the fraction served from
     * a medium, L2-resident region (reuse hits in the shared cache);
     * the remainder go to the large working set (L2 misses when it
     * exceeds the thread's share).  Gives benchmarks like mcf both
     * L2 reuse and a memory-bound miss stream.
     */
    double l2Frac = 0.0;
    /** L2-resident region size. */
    std::uint64_t l2Bytes = 256 * 1024;
    /**
     * Probability a load depends on the previous load (pointer
     * chasing); limits memory-level parallelism and increases
     * sensitivity to L2 latency.
     */
    double depFrac = 0.1;
    /**
     * Fraction of working-set loads that walk sequentially (streaming)
     * rather than jumping to a random line.
     */
    double streamFrac = 0.5;
};

/** An infinite instruction stream synthesized from SyntheticParams. */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param params benchmark profile
     * @param base_addr start of this thread's private address space
     * @param seed RNG seed (determines the exact op sequence)
     */
    SyntheticWorkload(const SyntheticParams &params, Addr base_addr,
                      std::uint64_t seed);

    MicroOp next() override;
    void nextBlock(std::span<MicroOp> out) override;
    std::string name() const override { return params.name; }
    std::unique_ptr<Workload> clone(std::uint64_t seed) const override;

    /** @return the generator's parameters. */
    const SyntheticParams &parameters() const { return params; }

  private:
    static constexpr Addr kLineBytes = 64;

    /**
     * Line count of one address region, with the modulo strength-
     * reduced: region sizes are runtime values, so `r % lines` is a
     * hardware divide on the per-op path — but nearly every calibrated
     * region is a power of two, where `r & mask` is the same value.
     */
    struct Region
    {
        std::uint32_t lines = 1;
        std::uint32_t mask = 0; //!< lines - 1 if pow2, else 0

        void
        set(std::uint64_t bytes)
        {
            std::uint64_t n = bytes / kLineBytes;
            lines = static_cast<std::uint32_t>(n ? n : 1);
            mask = (lines & (lines - 1)) == 0 ? lines - 1 : 0;
        }

        /** @return r reduced mod lines (exactly `r % lines`). */
        std::uint32_t
        reduce(std::uint32_t r) const
        {
            return mask != 0 ? r & mask : r % lines;
        }
    };

    /** Generate one op (the body shared by next() and nextBlock()). */
    MicroOp generate();

    SyntheticParams params;
    Addr base;
    std::uint64_t seed_;
    Rng rng;
    //! @name Per-op probability draws, threshold form (see Bernoulli)
    /// @{
    Bernoulli memB_;
    Bernoulli storeB_;
    Bernoulli storeLocB_;
    Bernoulli depB_;
    Bernoulli hotB_;
    Bernoulli l2B_;
    Bernoulli streamB_;
    /// @}
    Region wsRegion_;      //!< working set, in lines
    Region hotRegion_;     //!< L1-resident hot region, in lines
    Region l2Region_;      //!< L2-resident reuse region, in lines
    Addr streamPos = 0;    //!< sequential walk position (bytes)
    Addr storeLine = 0;    //!< current store target line offset
    unsigned storeWord = 0;//!< next word within the store line
};

} // namespace vpc

#endif // VPC_WORKLOAD_SYNTHETIC_HH
