/**
 * @file
 * The Loads and Stores microbenchmarks of Table 2.
 *
 * Each operates on a two-dimensional array of 32-bit words whose rows
 * are 64 bytes (one L1 line) and whose total size is 32KB -- twice the
 * L1 data cache -- so every access misses the L1 and hits the L2,
 * creating a constant stream of L2 traffic.  The loop is unrolled four
 * times: four memory operations followed by one address-increment
 * compute op, touching the first word of four consecutive rows.
 *
 * Loads stresses L2 load bandwidth; Stores stresses L2 store bandwidth
 * (consecutive stores touch different lines, so none gather).
 */

#ifndef VPC_WORKLOAD_MICROBENCH_HH
#define VPC_WORKLOAD_MICROBENCH_HH

#include "workload/workload.hh"

namespace vpc
{

/** Common row-walk machinery for the two microbenchmarks. */
class MicroBenchmark : public Workload
{
  public:
    /**
     * @param is_store emit stores instead of loads
     * @param base_addr start of this thread's private array
     */
    MicroBenchmark(bool is_store, Addr base_addr);

    MicroOp next() override;
    void nextBlock(std::span<MicroOp> out) override;
    std::string name() const override;
    std::unique_ptr<Workload> clone(std::uint64_t seed) const override;

    /** Array geometry from Table 2. */
    static constexpr Addr kRowBytes = 64;
    static constexpr Addr kArrayBytes = 32 * 1024;
    static constexpr unsigned kUnroll = 4;

  private:
    bool isStore;
    Addr base;
    Addr row = 0;        //!< current row offset within the array
    unsigned phase = 0;  //!< position within the unrolled loop body
};

/** The Loads microbenchmark: a constant stream of L2 read hits. */
class LoadsBenchmark : public MicroBenchmark
{
  public:
    explicit LoadsBenchmark(Addr base_addr)
        : MicroBenchmark(false, base_addr)
    {}
};

/** The Stores microbenchmark: a constant stream of L2 writes. */
class StoresBenchmark : public MicroBenchmark
{
  public:
    explicit StoresBenchmark(Addr base_addr)
        : MicroBenchmark(true, base_addr)
    {}
};

} // namespace vpc

#endif // VPC_WORKLOAD_MICROBENCH_HH
