#include "workload/synthetic.hh"

#include "sim/logging.hh"

namespace vpc
{

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params_,
                                     Addr base_addr,
                                     std::uint64_t seed)
    : params(params_), base(base_addr), seed_(seed),
      rng(seed, 0x9e3779b97f4a7c15ULL)
{
    if (params.workingSetBytes < kLineBytes)
        vpc_fatal("synthetic working set smaller than one line");
    if (params.hotBytes < kLineBytes)
        vpc_fatal("synthetic hot region smaller than one line");
}

MicroOp
SyntheticWorkload::next()
{
    return generate();
}

void
SyntheticWorkload::nextBlock(std::span<MicroOp> out)
{
    // One virtual call per block; generate() is a direct call here.
    for (MicroOp &op : out)
        op = generate();
}

MicroOp
SyntheticWorkload::generate()
{
    MicroOp op;
    if (!rng.chance(params.memFrac)) {
        op.kind = MicroOp::Kind::Compute;
        return op;
    }

    if (rng.chance(params.storeFrac)) {
        op.kind = MicroOp::Kind::Store;
        if (!rng.chance(params.storeLocality)) {
            // Move to a fresh line; consecutive stores there gather.
            std::uint64_t lines = params.workingSetBytes / kLineBytes;
            storeLine = kLineBytes *
                (rng.next32() % static_cast<std::uint32_t>(
                     lines ? lines : 1));
            storeWord = 0;
        }
        op.addr = base + storeLine + 4 * (storeWord % 16);
        ++storeWord;
        return op;
    }

    op.kind = MicroOp::Kind::Load;
    op.dependsOnPrevLoad = rng.chance(params.depFrac);
    if (rng.chance(params.hotFrac)) {
        // L1-resident hot region.
        std::uint64_t lines = params.hotBytes / kLineBytes;
        op.addr = base + params.workingSetBytes +
                  kLineBytes * (rng.next32() %
                                static_cast<std::uint32_t>(lines));
    } else if (rng.chance(params.l2Frac)) {
        // Medium region with L2 reuse (misses the L1, hits the L2).
        std::uint64_t lines = params.l2Bytes / kLineBytes;
        op.addr = base + params.workingSetBytes + params.hotBytes +
                  kLineBytes * (rng.next32() %
                                static_cast<std::uint32_t>(lines));
    } else if (rng.chance(params.streamFrac)) {
        // Sequential walk through the working set.
        op.addr = base + streamPos;
        streamPos += kLineBytes;
        if (streamPos >= params.workingSetBytes)
            streamPos = 0;
    } else {
        // Random line in the working set.
        std::uint64_t lines = params.workingSetBytes / kLineBytes;
        op.addr = base + kLineBytes *
                  (rng.next32() % static_cast<std::uint32_t>(lines));
    }
    return op;
}

std::unique_ptr<Workload>
SyntheticWorkload::clone(std::uint64_t seed) const
{
    return std::make_unique<SyntheticWorkload>(params, base, seed);
}

} // namespace vpc
