#include "workload/synthetic.hh"

#include "sim/logging.hh"

namespace vpc
{

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params_,
                                     Addr base_addr,
                                     std::uint64_t seed)
    : params(params_), base(base_addr), seed_(seed),
      rng(seed, 0x9e3779b97f4a7c15ULL)
{
    if (params.workingSetBytes < kLineBytes)
        vpc_fatal("synthetic working set smaller than one line");
    if (params.hotBytes < kLineBytes)
        vpc_fatal("synthetic hot region smaller than one line");
    memB_ = Bernoulli(params.memFrac);
    storeB_ = Bernoulli(params.storeFrac);
    storeLocB_ = Bernoulli(params.storeLocality);
    depB_ = Bernoulli(params.depFrac);
    hotB_ = Bernoulli(params.hotFrac);
    l2B_ = Bernoulli(params.l2Frac);
    streamB_ = Bernoulli(params.streamFrac);
    wsRegion_.set(params.workingSetBytes);
    hotRegion_.set(params.hotBytes);
    l2Region_.set(params.l2Bytes);
}

MicroOp
SyntheticWorkload::next()
{
    return generate();
}

void
SyntheticWorkload::nextBlock(std::span<MicroOp> out)
{
    // One virtual call per block; generate() is a direct call here.
    for (MicroOp &op : out)
        op = generate();
}

MicroOp
SyntheticWorkload::generate()
{
    MicroOp op;
    if (!rng.chance(memB_)) {
        op.kind = MicroOp::Kind::Compute;
        return op;
    }

    if (rng.chance(storeB_)) {
        op.kind = MicroOp::Kind::Store;
        if (!rng.chance(storeLocB_)) {
            // Move to a fresh line; consecutive stores there gather.
            storeLine = kLineBytes * wsRegion_.reduce(rng.next32());
            storeWord = 0;
        }
        op.addr = base + storeLine + 4 * (storeWord % 16);
        ++storeWord;
        return op;
    }

    op.kind = MicroOp::Kind::Load;
    op.dependsOnPrevLoad = rng.chance(depB_);
    if (rng.chance(hotB_)) {
        // L1-resident hot region.
        op.addr = base + params.workingSetBytes +
                  kLineBytes * hotRegion_.reduce(rng.next32());
    } else if (rng.chance(l2B_)) {
        // Medium region with L2 reuse (misses the L1, hits the L2).
        op.addr = base + params.workingSetBytes + params.hotBytes +
                  kLineBytes * l2Region_.reduce(rng.next32());
    } else if (rng.chance(streamB_)) {
        // Sequential walk through the working set.
        op.addr = base + streamPos;
        streamPos += kLineBytes;
        if (streamPos >= params.workingSetBytes)
            streamPos = 0;
    } else {
        // Random line in the working set.
        op.addr = base + kLineBytes * wsRegion_.reduce(rng.next32());
    }
    return op;
}

std::unique_ptr<Workload>
SyntheticWorkload::clone(std::uint64_t seed) const
{
    return std::make_unique<SyntheticWorkload>(params, base, seed);
}

} // namespace vpc
