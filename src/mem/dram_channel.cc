#include "mem/dram_channel.hh"

#include "sim/logging.hh"

namespace vpc
{

DramChannel::DramChannel(const MemConfig &cfg_, unsigned line_bytes)
    : cfg(cfg_), lineBytes(line_bytes),
      numBanks(cfg_.ranksPerChannel * cfg_.banksPerRank),
      bankReadyAt(numBanks, 0)
{
    if (numBanks == 0)
        vpc_fatal("DramChannel: no banks configured");
    if (!isPowerOf2(lineBytes))
        vpc_fatal("DramChannel: line size must be a power of two");
}

unsigned
DramChannel::bankIndex(Addr addr) const
{
    // Line-interleave across banks with an XOR fold of the higher
    // address bits, as real controllers do: without it, streams whose
    // bases differ by a large power of two (e.g. different threads'
    // address spaces) advance through the banks in lockstep and
    // serialize on a single bank's row cycle.
    Addr ln = addr / lineBytes;
    ln ^= ln >> 4;
    ln ^= ln >> 8;
    ln ^= ln >> 16;
    ln ^= ln >> 32;
    return static_cast<unsigned>(ln % numBanks);
}

Cycle
DramChannel::access(Addr addr, bool is_write, Cycle now)
{
    unsigned bank = bankIndex(addr);

    Cycle act_start = std::max(now, bankReadyAt[bank]);
    bankWait_.sample(static_cast<double>(act_start - now));

    // Closed page: ACT, then CAS after tRCD, data after tCL, one burst.
    Cycle cas = act_start + cfg.tRcd;
    Cycle data_start = std::max(cas + cfg.tCl, busReadyAt);
    Cycle data_end = data_start + cfg.tBurst;

    busReadyAt = data_end;
    busUtil_.addBusy(cfg.tBurst);

    // Auto-precharge: the bank can ACT again after the precharge
    // completes; writes first wait out the write-recovery time.
    Cycle pre_start = data_end + (is_write ? cfg.tWr : 0);
    bankReadyAt[bank] = pre_start + cfg.tRp;

    accesses.inc();
    return data_end;
}

} // namespace vpc
