/**
 * @file
 * DDR2-800 SDRAM channel timing model.
 *
 * Models one 64-bit channel with ranks x banks operating a closed-page
 * policy (Table 1): every access performs ACT -> CAS -> burst and
 * auto-precharges.  Bank-level parallelism is captured with per-bank
 * ready times; the shared channel data bus serializes bursts.  In the
 * paper's evaluation each thread owns a private channel (requests are
 * interleaved across channels by the high physical-address bits), so
 * inter-thread memory interference is excluded by construction -- the
 * study isolates *cache* sharing.
 */

#ifndef VPC_MEM_DRAM_CHANNEL_HH
#define VPC_MEM_DRAM_CHANNEL_HH

#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** One private SDRAM channel with closed-page timing. */
class DramChannel
{
  public:
    /**
     * @param cfg DRAM timing parameters
     * @param line_bytes transfer granularity (one cache line per access)
     */
    DramChannel(const MemConfig &cfg, unsigned line_bytes);

    /**
     * Perform one line access.
     *
     * @param addr line address (selects the bank)
     * @param is_write true for a writeback
     * @param now earliest cycle the command can issue
     * @return cycle the data burst completes (for reads, when the line
     *         is available at the controller)
     */
    Cycle access(Addr addr, bool is_write, Cycle now);

    /** @return total accesses serviced. */
    std::uint64_t accessCount() const { return accesses.value(); }

    /** @return bank-conflict (wait-for-bank) statistics, cycles. */
    const SampleStat &bankWait() const { return bankWait_; }

    /** @return data-bus busy statistics. */
    const UtilizationStat &busUtil() const { return busUtil_; }

    /** @return the cycle the channel data bus next becomes free. */
    Cycle busFreeAt() const { return busReadyAt; }

    /** @return the flat bank index addressed by @p addr. */
    unsigned bankIndex(Addr addr) const;

  private:

    MemConfig cfg;
    unsigned lineBytes;
    unsigned numBanks;
    std::vector<Cycle> bankReadyAt; //!< next ACT allowed per bank
    Cycle busReadyAt = 0;           //!< channel data bus free time
    Counter accesses;
    SampleStat bankWait_;
    UtilizationStat busUtil_;
};

} // namespace vpc

#endif // VPC_MEM_DRAM_CHANNEL_HH
