#include "mem/memory_controller.hh"

#include "arbiter/arbiter_factory.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vpc
{

MemoryController::MemoryController(const MemConfig &cfg_,
                                   unsigned num_threads,
                                   unsigned line_bytes,
                                   EventQueue &events_,
                                   const std::vector<double> &shares)
    : cfg(cfg_), events(events_), queues(num_threads)
{
    if (cfg.sharedChannel) {
        channels.emplace_back(cfg, line_bytes);
        std::vector<double> phis = shares;
        if (phis.empty())
            phis.assign(num_threads, 1.0 / num_threads);
        if (phis.size() != num_threads)
            vpc_fatal("memory scheduler: {} shares for {} threads",
                      phis.size(), num_threads);
        // The scheduled unit is one line burst; its bus occupancy is
        // the service requirement the fair-queuing shares divide.
        // The channel's effective bandwidth is below the nominal bus
        // rate (bank conflicts), so the scheduler runs the
        // virtual-clock FQ variant (see VpcArbiterOptions).
        VpcArbiterOptions opts;
        opts.virtualClock = true;
        sched = makeArbiter(cfg.schedulerPolicy, num_threads,
                            cfg.tBurst, 1, phis, opts);
        slots.resize(static_cast<std::size_t>(num_threads) *
                     (cfg.transactionEntries + cfg.writeEntries));
    } else {
        channels.reserve(num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            channels.emplace_back(cfg, line_bytes);
    }
}

bool
MemoryController::canAcceptRead(ThreadId t) const
{
    const ThreadQueues &q = queues.at(t);
    return q.outstandingReads < cfg.transactionEntries;
}

bool
MemoryController::canAcceptWrite(ThreadId t) const
{
    if (cfg.sharedChannel)
        return queues.at(t).outstandingWrites < cfg.writeEntries;
    return queues.at(t).writes.size() < cfg.writeEntries;
}

int
MemoryController::freeSlot() const
{
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].busy)
            return static_cast<int>(i);
    }
    return -1;
}

void
MemoryController::read(ThreadId t, Addr line_addr, Cycle now,
                       ReadCallback cb)
{
    ThreadQueues &q = queues.at(t);
    if (!canAcceptRead(t))
        vpc_panic("mem read from thread {} with full transaction "
                  "buffer", t);
    ++q.outstandingReads;
    if (!cfg.sharedChannel) {
        q.reads.push_back(PendingRead{line_addr, now, std::move(cb)});
        return;
    }
    int idx = freeSlot();
    if (idx < 0)
        vpc_panic("shared memory controller out of slots");
    Slot &s = slots[idx];
    s.busy = true;
    s.isWrite = false;
    s.thread = t;
    s.lineAddr = line_addr;
    s.queued = now;
    s.cb = std::move(cb);
    ArbRequest req;
    req.id = static_cast<std::uint32_t>(idx);
    req.thread = t;
    req.isWrite = false;
    req.arrival = now;
    req.seq = nextSeq++;
    req.lineAddr = line_addr;
    sched->enqueue(req, now);
}

void
MemoryController::write(ThreadId t, Addr line_addr, Cycle now)
{
    ThreadQueues &q = queues.at(t);
    if (!canAcceptWrite(t))
        vpc_panic("mem write from thread {} with full write buffer", t);
    if (!cfg.sharedChannel) {
        q.writes.push_back(line_addr);
        return;
    }
    ++q.outstandingWrites;
    int idx = freeSlot();
    if (idx < 0)
        vpc_panic("shared memory controller out of slots");
    Slot &s = slots[idx];
    s.busy = true;
    s.isWrite = true;
    s.thread = t;
    s.lineAddr = line_addr;
    s.queued = now;
    s.cb = nullptr;
    ArbRequest req;
    req.id = static_cast<std::uint32_t>(idx);
    req.thread = t;
    req.isWrite = true;
    req.arrival = now;
    req.seq = nextSeq++;
    req.lineAddr = line_addr;
    sched->enqueue(req, now);
}

void
MemoryController::finishSlot(unsigned idx, Cycle done)
{
    Slot &s = slots.at(idx);
    ThreadQueues &q = queues.at(s.thread);
    if (s.isWrite) {
        --q.outstandingWrites;
        q.writesDone.inc();
        s.busy = false;
        return;
    }
    --q.outstandingReads;
    q.readsDone.inc();
    q.readLat.sample(static_cast<double>(done - s.queued));
    ReadCallback cb = std::move(s.cb);
    Addr addr = s.lineAddr;
    s.busy = false;
    if (cb)
        cb(addr, done);
}

void
MemoryController::tickShared(Cycle now)
{
    // Issue at most one transaction per cycle, and only far enough
    // ahead to keep the data bus saturated: a transaction issued now
    // delivers data no earlier than ctrl + tRCD + tCL cycles out, so
    // the gate must look that far past the bus-free point or the
    // activate/CAS pipeline drains and the channel underruns (which
    // would also corrupt the fair queue's notion of who is behind).
    // Anything further ahead would just let the scheduler commit
    // decisions long before the service point.
    if (!sched->hasPending())
        return;
    DramChannel &ch = channels.front();
    Cycle lookahead = cfg.ctrlLatency + cfg.tRcd + cfg.tCl +
                      cfg.tBurst;
    if (ch.busFreeAt() > now + lookahead)
        return;
    std::optional<ArbRequest> grant = sched->select(now);
    if (!grant)
        return;
    const Slot &s = slots.at(grant->id);
    VPC_DPRINTF(Memory, "[{}] shared-channel issue t{} {} {:#x}", now,
                s.thread, s.isWrite ? "wr" : "rd", s.lineAddr);
    Cycle data_at = ch.access(s.lineAddr, s.isWrite,
                              now + cfg.ctrlLatency);
    Cycle done = data_at + cfg.ctrlLatency;
    events.schedule(done, [this, idx = grant->id, done]() {
        finishSlot(idx, done);
    });
}

void
MemoryController::tickPrivate(Cycle now)
{
    for (ThreadId t = 0; t < queues.size(); ++t) {
        ThreadQueues &q = queues[t];
        DramChannel &ch = channels[t];

        // Reads first; drain writebacks when no read is waiting or the
        // write buffer is nearly full (simple high-water policy).
        bool write_pressure = q.writes.size() >= cfg.writeEntries - 1;
        if (!q.reads.empty() && !write_pressure) {
            PendingRead pr = std::move(q.reads.front());
            q.reads.pop_front();
            Cycle data_at = ch.access(pr.lineAddr, false,
                                      now + cfg.ctrlLatency);
            Cycle done = data_at + cfg.ctrlLatency;
            q.readLat.sample(static_cast<double>(done - pr.queued));
            events.schedule(done,
                [this, t, done, pr = std::move(pr)]() {
                    --queues[t].outstandingReads;
                    queues[t].readsDone.inc();
                    pr.cb(pr.lineAddr, done);
                });
        } else if (!q.writes.empty()) {
            Addr a = q.writes.front();
            q.writes.pop_front();
            ch.access(a, true, now + cfg.ctrlLatency);
            q.writesDone.inc();
        }
    }
}

void
MemoryController::tick(Cycle now)
{
    if (cfg.sharedChannel)
        tickShared(now);
    else
        tickPrivate(now);
}

Cycle
MemoryController::nextWork(Cycle now) const
{
    if (cfg.sharedChannel) {
        if (!sched->hasPending())
            return kCycleMax;
        const DramChannel &ch = channels.front();
        Cycle lookahead = cfg.ctrlLatency + cfg.tRcd + cfg.tCl +
                          cfg.tBurst;
        // tickShared() gates issue on busFreeAt() <= now + lookahead;
        // busFreeAt only moves when this controller issues, so the
        // earliest cycle the gate can open is exact, not a guess.
        if (ch.busFreeAt() > now + lookahead)
            return ch.busFreeAt() - lookahead;
        return now;
    }
    for (const ThreadQueues &q : queues) {
        if (!q.reads.empty() || !q.writes.empty())
            return now;
    }
    return kCycleMax; // enqueues re-poll; completions are events
}

const SampleStat &
MemoryController::readLatency(ThreadId t) const
{
    return queues.at(t).readLat;
}

std::uint64_t
MemoryController::readCount(ThreadId t) const
{
    return queues.at(t).readsDone.value();
}

std::uint64_t
MemoryController::writeCount(ThreadId t) const
{
    return queues.at(t).writesDone.value();
}

const DramChannel &
MemoryController::channel(ThreadId t) const
{
    if (cfg.sharedChannel)
        return channels.front();
    return channels.at(t);
}

Arbiter &
MemoryController::scheduler()
{
    if (!sched)
        vpc_panic("scheduler() on a private-channel controller");
    return *sched;
}

void
MemoryController::setBandwidthShare(ThreadId t, double phi)
{
    if (!sched) {
        vpc_warn("memory share update ignored: private channels");
        return;
    }
    sched->setShare(t, phi);
}

} // namespace vpc
