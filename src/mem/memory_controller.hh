/**
 * @file
 * On-chip memory controller with two channel organizations.
 *
 * Private mode (the paper's evaluation setup, Table 1): one DDR2-800
 * channel per thread, a 16-entry transaction buffer and an 8-entry
 * write buffer per thread.  Reads are prioritized over writebacks;
 * writebacks drain when the write buffer passes its high-water mark
 * or the read queue is empty.  Because channels are private, no
 * cross-thread memory scheduling exists -- cache-level interference is
 * the only coupling between threads, which is exactly what the VPC
 * study isolates.
 *
 * Shared mode (MemConfig::sharedChannel): every thread's transactions
 * compete for a single channel through a pluggable scheduler built
 * from the same arbiter framework as the cache resources -- FCFS as
 * the baseline, or the fair-queuing VPC arbiter with per-thread
 * bandwidth shares.  This is the companion FQ memory system the paper
 * builds on (Nesbit et al., Section 2.1), and it lets the repository
 * demonstrate the full Virtual Private *Machine* story: QoS in the
 * cache and the memory system composed from one mechanism.
 */

#ifndef VPC_MEM_MEMORY_CONTROLLER_HH
#define VPC_MEM_MEMORY_CONTROLLER_HH

#include <functional>
#include <memory>
#include <vector>

#include "arbiter/arbiter.hh"
#include "mem/dram_channel.hh"
#include "sim/event_queue.hh"
#include "sim/ring.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace vpc
{

/** Routes cache misses and writebacks to DRAM channels. */
class MemoryController : public Ticking
{
  public:
    /** Invoked when a read's data is back at the cache controller. */
    using ReadCallback = std::function<void(Addr line_addr, Cycle now)>;

    /**
     * @param cfg memory configuration (selects private/shared mode)
     * @param num_threads thread count
     * @param line_bytes transfer granularity
     * @param events shared event queue for completion callbacks
     * @param shares per-thread bandwidth shares for the shared-channel
     *        fair-queuing scheduler; may be empty for private mode or
     *        share-less policies (defaults to equal shares)
     */
    MemoryController(const MemConfig &cfg, unsigned num_threads,
                     unsigned line_bytes, EventQueue &events,
                     const std::vector<double> &shares = {});

    /** @return true if thread @p t has a free transaction-buffer entry. */
    bool canAcceptRead(ThreadId t) const;

    /** @return true if thread @p t has a free write-buffer entry. */
    bool canAcceptWrite(ThreadId t) const;

    /**
     * Queue a line read.
     *
     * @pre canAcceptRead(t)
     * @param t owning thread
     * @param line_addr line-aligned address
     * @param now current cycle
     * @param cb invoked (via the event queue) when data returns
     */
    void read(ThreadId t, Addr line_addr, Cycle now, ReadCallback cb);

    /**
     * Queue a line writeback (fire-and-forget).
     *
     * @pre canAcceptWrite(t)
     */
    void write(ThreadId t, Addr line_addr, Cycle now);

    void tick(Cycle now) override;

    /**
     * Quiescence hint (see Ticking::nextWork).  Private mode: due
     * whenever any thread's read or write queue is non-empty (issue
     * happens every cycle), asleep otherwise — completions travel by
     * event.  Shared mode: asleep without pending transactions; while
     * the channel's bus is booked past the issue lookahead the next
     * possible issue cycle is known exactly, so the controller sleeps
     * until then.
     */
    Cycle nextWork(Cycle now) const override;

    /** @return read latency statistics (queue + DRAM), thread @p t. */
    const SampleStat &readLatency(ThreadId t) const;

    /** @return reads serviced for thread @p t. */
    std::uint64_t readCount(ThreadId t) const;

    /** @return writebacks serviced for thread @p t. */
    std::uint64_t writeCount(ThreadId t) const;

    /** @return thread @p t's channel (channel 0 in shared mode). */
    const DramChannel &channel(ThreadId t) const;

    /** @return true when running one shared channel. */
    bool sharedChannel() const { return cfg.sharedChannel; }

    /** @return the shared-mode scheduler (for stats/tests).
     *  @pre sharedChannel() */
    Arbiter &scheduler();

    /** Update thread @p t's memory bandwidth share (shared mode). */
    void setBandwidthShare(ThreadId t, double phi);

  private:
    struct PendingRead
    {
        Addr lineAddr;
        Cycle queued;
        ReadCallback cb;
    };

    struct ThreadQueues
    {
        SmallRing<PendingRead> reads;
        SmallRing<Addr> writes;
        unsigned outstandingReads = 0; //!< transaction entries in use
        unsigned outstandingWrites = 0; //!< shared-mode write slots
        Counter readsDone;
        Counter writesDone;
        SampleStat readLat;
    };

    /** Shared-mode in-flight transaction slot. */
    struct Slot
    {
        bool busy = false;
        bool isWrite = false;
        ThreadId thread = 0;
        Addr lineAddr = 0;
        Cycle queued = 0;
        ReadCallback cb;
    };

    /** Private-mode per-thread issue. */
    void tickPrivate(Cycle now);

    /** Shared-mode scheduler-driven issue. */
    void tickShared(Cycle now);

    /** @return a free shared-mode slot index, or -1. */
    int freeSlot() const;

    /** Complete slot @p idx whose data is ready at @p done. */
    void finishSlot(unsigned idx, Cycle done);

    MemConfig cfg;
    EventQueue &events;
    std::vector<DramChannel> channels;
    std::vector<ThreadQueues> queues;

    // Shared-channel state.
    std::unique_ptr<Arbiter> sched;
    std::vector<Slot> slots;
    SeqNum nextSeq = 0;
};

} // namespace vpc

#endif // VPC_MEM_MEMORY_CONTROLLER_HH
