#include "service/transport.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define VPC_HAVE_EPOLL 1
#else
#define VPC_HAVE_EPOLL 0
#endif

#include "sim/logging.hh"

namespace vpc
{

using Clock = std::chrono::steady_clock;

namespace
{

enum class FrameType : std::uint8_t
{
    Hello = 1,
    HelloAck = 2,
    SubmitBatch = 3,
    SubmitAck = 4,
    Watch = 5,
    Complete = 6,
    Ping = 7,
    Pong = 8,
};

/** @name Wire encoding: native-order fixed-width appends/reads. */
/// @{

void
putU8(std::string &s, std::uint8_t v)
{
    s.push_back(static_cast<char>(v));
}

void
putU32(std::string &s, std::uint32_t v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putU64(std::string &s, std::uint64_t v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putBytes(std::string &s, const std::string &b)
{
    putU32(s, static_cast<std::uint32_t>(b.size()));
    s.append(b);
}

/** Bounds-checked reader over one frame body. */
struct Cursor
{
    const char *p;
    std::size_t left;
    bool ok = true;

    template <typename T> T
    fixed()
    {
        T v{};
        if (left < sizeof(T)) {
            ok = false;
            return v;
        }
        std::memcpy(&v, p, sizeof(T));
        p += sizeof(T);
        left -= sizeof(T);
        return v;
    }
    std::uint8_t u8() { return fixed<std::uint8_t>(); }
    std::uint32_t u32() { return fixed<std::uint32_t>(); }
    std::uint64_t u64() { return fixed<std::uint64_t>(); }

    std::string
    bytes()
    {
        std::uint32_t n = u32();
        if (!ok || left < n) {
            ok = false;
            return "";
        }
        std::string out(p, n);
        p += n;
        left -= n;
        return out;
    }
};

/// @}

/** @return a complete frame: length prefix + type byte + body. */
std::string
makeFrame(FrameType t, const std::string &body)
{
    std::string f;
    f.reserve(5 + body.size());
    putU32(f, static_cast<std::uint32_t>(1 + body.size()));
    putU8(f, static_cast<std::uint8_t>(t));
    f.append(body);
    return f;
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
setCloexec(int fd)
{
    int flags = ::fcntl(fd, F_GETFD, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

/** @return a connected-or-connecting AF_UNIX fd, or -1. */
int
unixSocket()
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (!setNonBlocking(fd) || !setCloexec(fd)) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
fillAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
pollBackendForced()
{
    const char *env = std::getenv("VPC_TRANSPORT_POLL");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

} // namespace

std::string
defaultSocketPath(const std::string &spool_dir)
{
    return spool_dir + "/daemon.sock";
}

/*
 * ---------------------------------------------------------------
 * Poller: epoll where available, poll(2) everywhere (and on demand).
 * ---------------------------------------------------------------
 */

struct TransportServer::Poller
{
    struct Event
    {
        int fd;
        bool readable;
        bool writable;
        bool error;
    };

    explicit Poller(bool force_poll)
    {
#if VPC_HAVE_EPOLL
        usePoll_ = force_poll || pollBackendForced();
        if (!usePoll_) {
            epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
            if (epfd_ < 0)
                usePoll_ = true;
        }
#else
        (void)force_poll;
        usePoll_ = true;
#endif
    }

    ~Poller()
    {
#if VPC_HAVE_EPOLL
        if (epfd_ >= 0)
            ::close(epfd_);
#endif
    }

    void
    add(int fd, bool rd, bool wr)
    {
        interest_[fd] = {rd, wr};
#if VPC_HAVE_EPOLL
        if (!usePoll_) {
            epoll_event ev{};
            ev.events = events(rd, wr);
            ev.data.fd = fd;
            ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
        }
#endif
    }

    void
    mod(int fd, bool rd, bool wr)
    {
        auto it = interest_.find(fd);
        if (it == interest_.end())
            return add(fd, rd, wr);
        if (it->second.first == rd && it->second.second == wr)
            return;
        it->second = {rd, wr};
#if VPC_HAVE_EPOLL
        if (!usePoll_) {
            epoll_event ev{};
            ev.events = events(rd, wr);
            ev.data.fd = fd;
            ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
        }
#endif
    }

    void
    del(int fd)
    {
        interest_.erase(fd);
#if VPC_HAVE_EPOLL
        if (!usePoll_)
            ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    }

    void
    wait(std::vector<Event> &out, int timeout_ms)
    {
        out.clear();
#if VPC_HAVE_EPOLL
        if (!usePoll_) {
            epoll_event evs[64];
            int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
            for (int i = 0; i < n; ++i) {
                out.push_back({evs[i].data.fd,
                               (evs[i].events & EPOLLIN) != 0,
                               (evs[i].events & EPOLLOUT) != 0,
                               (evs[i].events &
                                (EPOLLERR | EPOLLHUP)) != 0});
            }
            return;
        }
#endif
        std::vector<pollfd> pfds;
        pfds.reserve(interest_.size());
        for (const auto &[fd, rw] : interest_) {
            short ev = 0;
            if (rw.first)
                ev |= POLLIN;
            if (rw.second)
                ev |= POLLOUT;
            pfds.push_back({fd, ev, 0});
        }
        int n = ::poll(pfds.data(),
                       static_cast<nfds_t>(pfds.size()), timeout_ms);
        if (n <= 0)
            return;
        for (const pollfd &p : pfds) {
            if (p.revents == 0)
                continue;
            out.push_back({p.fd, (p.revents & POLLIN) != 0,
                           (p.revents & POLLOUT) != 0,
                           (p.revents &
                            (POLLERR | POLLHUP | POLLNVAL)) != 0});
        }
    }

  private:
#if VPC_HAVE_EPOLL
    static std::uint32_t
    events(bool rd, bool wr)
    {
        return (rd ? EPOLLIN : 0u) | (wr ? EPOLLOUT : 0u);
    }
    int epfd_ = -1;
#endif
    bool usePoll_ = false;
    /** fd -> (want_read, want_write); also the poll() fd universe. */
    std::unordered_map<int, std::pair<bool, bool>> interest_;
};

/*
 * ---------------------------------------------------------------
 * TransportServer
 * ---------------------------------------------------------------
 */

struct TransportServer::Conn
{
    int fd;
    std::string in;           //!< unparsed inbound bytes
    std::size_t parsed = 0;   //!< in[0..parsed) already consumed
    std::deque<std::string> out;
    std::size_t outBytes = 0;  //!< total queued (minus outOffset)
    std::size_t outOffset = 0; //!< sent bytes of out.front()
    std::unordered_set<std::uint64_t> watched;
    Clock::time_point lastRecv;
    Clock::time_point lastSend;
    bool readPaused = false;
    bool pingOutstanding = false;
    /**
     * Condemned but not yet destroyed: set by doomConn() wherever a
     * fatal condition is found while a caller still holds this Conn
     * (send error inside enqueueFrame, hard-cap overflow, protocol
     * error mid-parse).  The fd is closed and the Conn freed only by
     * sweepDoomed(), from the event loop's top level.
     */
    bool doomed = false;
};

TransportServer::TransportServer(TransportConfig cfg, SubmitFn on_submit,
                                 StateFn probe_state)
    : cfg_(std::move(cfg)), onSubmit_(std::move(on_submit)),
      probeState_(std::move(probe_state))
{
}

TransportServer::~TransportServer()
{
    stop();
}

bool
TransportServer::start()
{
    sockaddr_un addr;
    if (!fillAddr(cfg_.socketPath, addr)) {
        vpc_warn("transport: socket path '{}' too long for AF_UNIX "
                 "({} byte limit); socket transport disabled",
                 cfg_.socketPath, sizeof(addr.sun_path) - 1);
        return false;
    }
    // The caller holds the spool's pid fence, so any existing socket
    // file is a dead daemon's leftover — unlink and rebind.
    ::unlink(cfg_.socketPath.c_str());
    listenFd_ = unixSocket();
    if (listenFd_ < 0)
        return false;
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 128) != 0) {
        vpc_warn("transport: cannot bind '{}': {}", cfg_.socketPath,
                 std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    wakeRead_ = pipefd[0];
    wakeWrite_ = pipefd[1];
    setNonBlocking(wakeRead_);
    setNonBlocking(wakeWrite_);
    setCloexec(wakeRead_);
    setCloexec(wakeWrite_);

    poller_ = std::make_unique<Poller>(cfg_.forcePoll);
    poller_->add(listenFd_, true, false);
    poller_->add(wakeRead_, true, false);

    stop_.store(false);
    thread_ = std::thread([this] { loop(); });
    started_ = true;
    return true;
}

void
TransportServer::stop()
{
    if (!started_)
        return;
    stop_.store(true);
    wake();
    if (thread_.joinable())
        thread_.join();
    for (auto &[fd, c] : conns_)
        ::close(fd);
    conns_.clear();
    watchers_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
    wakeRead_ = wakeWrite_ = -1;
    ::unlink(cfg_.socketPath.c_str());
    poller_.reset();
    started_ = false;
}

void
TransportServer::wake()
{
    if (wakeWrite_ < 0)
        return;
    char b = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wakeWrite_, &b, 1);
}

void
TransportServer::publishCompletion(std::uint64_t digest, JobState st,
                                   const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lk(inboxMu_);
        inbox_.push_back({digest, st, reason});
    }
    wake();
}

void
TransportServer::disconnectAll()
{
    {
        std::lock_guard<std::mutex> lk(inboxMu_);
        disconnectRequested_ = true;
    }
    wake();
}

void
TransportServer::loop()
{
    std::vector<Poller::Event> events;
    const int tick_ms = static_cast<int>(
        std::min<std::uint64_t>(std::max<std::uint64_t>(
            cfg_.heartbeatMs / 2, 10), 1000));
    while (!stop_.load(std::memory_order_acquire)) {
        poller_->wait(events, tick_ms);
        if (stop_.load(std::memory_order_acquire))
            break;
        for (const Poller::Event &ev : events) {
            if (ev.fd == listenFd_) {
                acceptAll();
                continue;
            }
            if (ev.fd == wakeRead_) {
                char buf[64];
                while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
                }
                continue;
            }
            auto it = conns_.find(ev.fd);
            if (it == conns_.end())
                continue;
            Conn &c = *it->second;
            if (c.doomed)
                continue;
            if (ev.error) {
                doomConn(c);
                continue;
            }
            if (ev.writable)
                flushConn(c);
            if (ev.readable)
                readConn(c);
        }
        drainCompletions();
        heartbeat();
        sweepDoomed();
    }
}

void
TransportServer::acceptAll()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or a transient error: try next loop
        if (!setNonBlocking(fd) || !setCloexec(fd)) {
            ::close(fd);
            continue;
        }
        auto c = std::make_unique<Conn>();
        c->fd = fd;
        c->lastRecv = c->lastSend = Clock::now();
        conns_.emplace(fd, std::move(c));
        poller_->add(fd, true, false);
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    }
}

void
TransportServer::doomConn(Conn &c)
{
    if (c.doomed)
        return;
    c.doomed = true;
    doomedFds_.push_back(c.fd);
    // Stop all polling on a doomed fd so it cannot generate further
    // events (or be flushed/read) before the sweep destroys it.
    poller_->mod(c.fd, false, false);
}

void
TransportServer::sweepDoomed()
{
    if (doomedFds_.empty())
        return;
    // closeConn() may only run here: no caller holds a Conn reference
    // and no conns_ iteration is in progress.
    for (int fd : doomedFds_)
        closeConn(fd);
    doomedFds_.clear();
}

void
TransportServer::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    for (std::uint64_t d : it->second->watched) {
        auto w = watchers_.find(d);
        if (w == watchers_.end())
            continue;
        std::erase(w->second, fd);
        if (w->second.empty())
            watchers_.erase(w);
    }
    poller_->del(fd);
    ::close(fd);
    conns_.erase(it);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
}

void
TransportServer::updateInterest(Conn &c)
{
    poller_->mod(c.fd, !c.readPaused, c.outBytes > 0);
}

void
TransportServer::enqueueFrame(Conn &c, std::string frame)
{
    if (c.doomed)
        return; // the sweep will drop the queue with the Conn
    c.outBytes += frame.size();
    c.out.push_back(std::move(frame));
    stats_.framesOut.fetch_add(1, std::memory_order_relaxed);
    flushConn(c); // opportunistic: most frames fit the socket buffer
}

void
TransportServer::flushConn(Conn &c)
{
    if (c.doomed)
        return;
    while (!c.out.empty()) {
        const std::string &f = c.out.front();
        ssize_t n = ::send(c.fd, f.data() + c.outOffset,
                           f.size() - c.outOffset, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            doomConn(c);
            return;
        }
        c.lastSend = Clock::now();
        c.outOffset += static_cast<std::size_t>(n);
        c.outBytes -= static_cast<std::size_t>(n);
        if (c.outOffset == f.size()) {
            c.out.pop_front();
            c.outOffset = 0;
        }
    }
    // Backpressure: a peer not draining its socket stops being read
    // (its submits throttle) and is dropped past the hard cap.
    if (c.outBytes > cfg_.writeHardCap) {
        stats_.dropped.fetch_add(1, std::memory_order_relaxed);
        vpc_warn("transport: dropping connection {} ({} bytes "
                 "undrained)", c.fd, c.outBytes);
        doomConn(c);
        return;
    }
    // Hysteresis: pause reads above the high-water mark, resume only
    // once the queue has drained to half of it.
    bool pause = c.readPaused;
    if (c.outBytes > cfg_.writeHighWater)
        pause = true;
    else if (c.outBytes <= cfg_.writeHighWater / 2)
        pause = false;
    if (pause && !c.readPaused)
        stats_.backpressured.fetch_add(1, std::memory_order_relaxed);
    c.readPaused = pause;
    updateInterest(c);
}

void
TransportServer::readConn(Conn &c)
{
    char buf[64 * 1024];
    for (;;) {
        ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            doomConn(c);
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            doomConn(c);
            return;
        }
        c.in.append(buf, static_cast<std::size_t>(n));
        c.lastRecv = Clock::now();
        c.pingOutstanding = false;
        if (c.readPaused)
            break; // honor backpressure promptly
    }
    // Parse every complete frame accumulated so far.  Stop as soon as
    // the Conn is doomed — a handler's reply may have hit a send
    // error or the hard cap.
    while (!c.doomed && c.in.size() - c.parsed >= 4) {
        std::uint32_t len;
        std::memcpy(&len, c.in.data() + c.parsed, 4);
        if (len == 0 || len > kMaxFrameBytes) {
            vpc_warn("transport: protocol error from fd {} (frame "
                     "length {})", c.fd, len);
            doomConn(c);
            return;
        }
        if (c.in.size() - c.parsed < 4u + len)
            break;
        const char *body = c.in.data() + c.parsed + 5;
        std::uint8_t type =
            static_cast<std::uint8_t>(c.in[c.parsed + 4]);
        c.parsed += 4u + len;
        stats_.framesIn.fetch_add(1, std::memory_order_relaxed);
        if (!handleFrame(c, type, body, len - 1)) {
            doomConn(c);
            return;
        }
    }
    if (c.parsed > 0) {
        c.in.erase(0, c.parsed);
        c.parsed = 0;
    }
}

bool
TransportServer::handleFrame(Conn &c, std::uint8_t type,
                             const char *body, std::size_t len)
{
    Cursor cur{body, len};
    switch (static_cast<FrameType>(type)) {
    case FrameType::Hello: {
        std::uint32_t ver = cur.u32();
        if (!cur.ok || ver != kTransportProtoVersion) {
            vpc_warn("transport: peer speaks protocol {} (want {})",
                     ver, kTransportProtoVersion);
            return false;
        }
        std::string ack;
        putU32(ack, kTransportProtoVersion);
        putU64(ack, static_cast<std::uint64_t>(::getpid()));
        enqueueFrame(c, makeFrame(FrameType::HelloAck, ack));
        return true;
    }
    case FrameType::SubmitBatch: {
        std::uint32_t n = cur.u32();
        if (!cur.ok || n > kMaxBatchJobs)
            return false;
        std::string ack;
        putU32(ack, n);
        for (std::uint32_t i = 0; i < n; ++i) {
            std::string text = cur.bytes();
            if (!cur.ok)
                return false;
            std::uint64_t digest = 0;
            JobState st = onSubmit_(text, digest);
            if (st == JobState::Absent) {
                digest = 0;
                stats_.submitRejects.fetch_add(
                    1, std::memory_order_relaxed);
            } else {
                stats_.submits.fetch_add(1, std::memory_order_relaxed);
                if (st != JobState::Done && st != JobState::Failed) {
                    // Not yet terminal: this peer gets the push.
                    if (c.watched.insert(digest).second)
                        watchers_[digest].push_back(c.fd);
                }
            }
            putU64(ack, digest);
            putU8(ack, static_cast<std::uint8_t>(st));
        }
        enqueueFrame(c, makeFrame(FrameType::SubmitAck, ack));
        return true;
    }
    case FrameType::Watch: {
        std::uint32_t n = cur.u32();
        if (!cur.ok || n > 1u << 20)
            return false;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint64_t d = cur.u64();
            if (!cur.ok)
                return false;
            // Already settled?  Push the completion immediately so a
            // watcher can never miss a terminal transition.
            std::string reason;
            JobState st = probeState_(d, reason);
            if (st == JobState::Done || st == JobState::Failed) {
                std::string b;
                putU64(b, d);
                putU8(b, static_cast<std::uint8_t>(st));
                putBytes(b, reason);
                enqueueFrame(c, makeFrame(FrameType::Complete, b));
                stats_.completionsPushed.fetch_add(
                    1, std::memory_order_relaxed);
                continue;
            }
            if (c.watched.insert(d).second)
                watchers_[d].push_back(c.fd);
        }
        return true;
    }
    case FrameType::Ping: {
        std::uint64_t token = cur.u64();
        if (!cur.ok)
            return false;
        std::string b;
        putU64(b, token);
        enqueueFrame(c, makeFrame(FrameType::Pong, b));
        return true;
    }
    case FrameType::Pong:
        return cur.u64(), cur.ok; // liveness already noted on recv
    default:
        vpc_warn("transport: unknown frame type {} from fd {}",
                 unsigned(type), c.fd);
        return false;
    }
}

void
TransportServer::drainCompletions()
{
    std::vector<PendingCompletion> batch;
    bool disconnect = false;
    {
        std::lock_guard<std::mutex> lk(inboxMu_);
        batch.swap(inbox_);
        disconnect = disconnectRequested_;
        disconnectRequested_ = false;
    }
    for (const PendingCompletion &pc : batch) {
        auto w = watchers_.find(pc.digest);
        if (w == watchers_.end())
            continue;
        std::vector<int> fds = std::move(w->second);
        watchers_.erase(w);
        std::string b;
        putU64(b, pc.digest);
        putU8(b, static_cast<std::uint8_t>(pc.state));
        putBytes(b, pc.reason);
        std::string frame = makeFrame(FrameType::Complete, b);
        for (int fd : fds) {
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            it->second->watched.erase(pc.digest);
            enqueueFrame(*it->second, frame);
            stats_.completionsPushed.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    if (disconnect) {
        std::vector<int> fds;
        fds.reserve(conns_.size());
        for (const auto &[fd, c] : conns_)
            fds.push_back(fd);
        for (int fd : fds)
            closeConn(fd);
    }
}

void
TransportServer::heartbeat()
{
    if (cfg_.heartbeatMs == 0)
        return;
    Clock::time_point now = Clock::now();
    const auto idle = std::chrono::milliseconds(cfg_.heartbeatMs);
    std::vector<int> dead;
    for (auto &[fd, cp] : conns_) {
        Conn &c = *cp;
        if (c.doomed)
            continue; // already condemned; the sweep handles it
        if (now - c.lastRecv > 3 * idle) {
            dead.push_back(fd);
            continue;
        }
        if (now - c.lastRecv > idle && now - c.lastSend > idle &&
            !c.pingOutstanding) {
            std::string b;
            putU64(b, static_cast<std::uint64_t>(
                          now.time_since_epoch().count()));
            c.pingOutstanding = true;
            enqueueFrame(c, makeFrame(FrameType::Ping, b));
        }
    }
    for (int fd : dead) {
        stats_.deadPeers.fetch_add(1, std::memory_order_relaxed);
        vpc_warn("transport: closing silent peer fd {}", fd);
        closeConn(fd);
    }
}

/*
 * ---------------------------------------------------------------
 * TransportClient
 * ---------------------------------------------------------------
 */

TransportClient::TransportClient(TransportConfig cfg)
    : cfg_(std::move(cfg))
{
}

TransportClient::~TransportClient()
{
    close();
}

void
TransportClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TransportClient::markDead()
{
    dead_ = true;
    close();
}

bool
TransportClient::connect(std::uint64_t timeout_ms)
{
    close();
    dead_ = false;
    daemonPid_ = 0;
    in_.clear();
    completions_.clear();
    haveAcks_ = false;
    pingOutstanding_ = false;

    sockaddr_un addr;
    if (!fillAddr(cfg_.socketPath, addr))
        return false;
    fd_ = unixSocket();
    if (fd_ < 0)
        return false;
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            close();
            return false;
        }
        pollfd p{fd_, POLLOUT, 0};
        if (::poll(&p, 1, static_cast<int>(timeout_ms)) <= 0) {
            close();
            return false;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            close();
            return false;
        }
    }
    lastTraffic_ = Clock::now();

    std::string hello;
    putU32(hello, kTransportProtoVersion);
    if (!sendAll(makeFrame(FrameType::Hello, hello), timeout_ms)) {
        close();
        return false;
    }
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (daemonPid_ == 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now()).count();
        if (left <= 0 || !pump(static_cast<std::uint64_t>(left))) {
            close();
            return false;
        }
        if (dead_)
            return false;
    }
    return true;
}

bool
TransportClient::sendAll(const std::string &frame,
                         std::uint64_t timeout_ms)
{
    if (fd_ < 0 || dead_)
        return false;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                auto left = std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline - Clock::now())
                    .count();
                if (left <= 0)
                    return false;
                pollfd p{fd_, POLLOUT, 0};
                if (::poll(&p, 1, static_cast<int>(left)) <= 0)
                    return false;
                continue;
            }
            markDead();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    lastTraffic_ = Clock::now();
    return true;
}

bool
TransportClient::handleFrame(std::uint8_t type, const char *body,
                             std::size_t len)
{
    Cursor cur{body, len};
    switch (static_cast<FrameType>(type)) {
    case FrameType::HelloAck: {
        std::uint32_t ver = cur.u32();
        std::uint64_t pid = cur.u64();
        if (!cur.ok || ver != kTransportProtoVersion)
            return false;
        daemonPid_ = pid;
        return true;
    }
    case FrameType::SubmitAck: {
        std::uint32_t n = cur.u32();
        if (!cur.ok || n > kMaxBatchJobs)
            return false;
        acks_.clear();
        acks_.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            Ack a;
            a.digest = cur.u64();
            a.state = static_cast<JobState>(cur.u8());
            if (!cur.ok)
                return false;
            acks_.push_back(a);
        }
        haveAcks_ = true;
        return true;
    }
    case FrameType::Complete: {
        Completion comp;
        comp.digest = cur.u64();
        comp.state = static_cast<JobState>(cur.u8());
        comp.reason = cur.bytes();
        if (!cur.ok)
            return false;
        completions_.push_back(std::move(comp));
        return true;
    }
    case FrameType::Ping: {
        std::uint64_t token = cur.u64();
        if (!cur.ok)
            return false;
        std::string b;
        putU64(b, token);
        return sendAll(makeFrame(FrameType::Pong, b), 1000);
    }
    case FrameType::Pong:
        pingOutstanding_ = false;
        return cur.u64(), cur.ok;
    default:
        return false; // a server never sends anything else
    }
}

bool
TransportClient::pump(std::uint64_t timeout_ms)
{
    if (fd_ < 0 || dead_)
        return false;
    // Heartbeat bookkeeping: ping a silent daemon, declare it dead
    // after three unanswered intervals.
    if (cfg_.heartbeatMs > 0) {
        auto idle = Clock::now() - lastTraffic_;
        if (idle > 3 * std::chrono::milliseconds(cfg_.heartbeatMs)) {
            markDead();
            return false;
        }
        if (idle > std::chrono::milliseconds(cfg_.heartbeatMs) &&
            !pingOutstanding_) {
            std::string b;
            putU64(b, ++pingToken_);
            pingOutstanding_ = true;
            if (!sendAll(makeFrame(FrameType::Ping, b), 1000))
                return false;
        }
        timeout_ms = std::min<std::uint64_t>(
            timeout_ms, std::max<std::uint64_t>(cfg_.heartbeatMs / 2,
                                                10));
    }
    pollfd p{fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
    if (rc < 0) {
        markDead();
        return false;
    }
    if (rc > 0 && (p.revents & (POLLIN | POLLERR | POLLHUP))) {
        char buf[64 * 1024];
        for (;;) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0) {
                markDead(); // daemon closed (or was SIGKILLed)
                return false;
            }
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                markDead();
                return false;
            }
            in_.append(buf, static_cast<std::size_t>(n));
            lastTraffic_ = Clock::now();
        }
    }
    // Dispatch complete frames.
    std::size_t parsed = 0;
    while (in_.size() - parsed >= 4) {
        std::uint32_t len;
        std::memcpy(&len, in_.data() + parsed, 4);
        if (len == 0 || len > kMaxFrameBytes) {
            markDead();
            return false;
        }
        if (in_.size() - parsed < 4u + len)
            break;
        std::uint8_t type = static_cast<std::uint8_t>(in_[parsed + 4]);
        const char *body = in_.data() + parsed + 5;
        parsed += 4u + len;
        if (!handleFrame(type, body, len - 1)) {
            markDead();
            return false;
        }
    }
    if (parsed > 0)
        in_.erase(0, parsed);
    return true;
}

bool
TransportClient::submitBatch(const std::vector<std::string> &encoded,
                             std::vector<Ack> &acks_out,
                             std::uint64_t timeout_ms)
{
    if (!connected())
        return false;
    acks_out.clear();
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    // Split into as many SubmitBatch frames as the server-side limits
    // (kMaxBatchJobs jobs, kMaxFrameBytes payload) require: an
    // oversized frame would be a protocol error that silently drops
    // the connection and degrades everything to the spool tier.
    std::size_t i = 0;
    while (i < encoded.size()) {
        std::string body;
        putU32(body, 0); // job count, patched once the chunk is cut
        std::uint32_t n = 0;
        while (i < encoded.size() && n < kMaxBatchJobs) {
            const std::string &text = encoded[i];
            // Frame payload = type byte + body so far + this record.
            if (1 + body.size() + 4 + text.size() > kMaxFrameBytes) {
                if (n == 0) {
                    vpc_warn("transport: job record of {} bytes "
                             "cannot fit one frame ({} byte limit); "
                             "falling back to spool submit",
                             text.size(), kMaxFrameBytes);
                    return false;
                }
                break;
            }
            putBytes(body, text);
            ++n;
            ++i;
        }
        std::memcpy(body.data(), &n, sizeof(n));
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now()).count();
        if (left <= 0)
            return false;
        haveAcks_ = false;
        if (!sendAll(makeFrame(FrameType::SubmitBatch, body),
                     static_cast<std::uint64_t>(left)))
            return false;
        while (!haveAcks_) {
            left = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now()).count();
            if (left <= 0)
                return false;
            if (!pump(static_cast<std::uint64_t>(left)) && dead_)
                return false;
        }
        acks_out.insert(acks_out.end(), acks_.begin(), acks_.end());
    }
    return true;
}

bool
TransportClient::watch(const std::vector<std::uint64_t> &digests)
{
    if (!connected())
        return false;
    // Chunk like submitBatch: stay well under the server's per-frame
    // Watch count (1M) and byte limits whatever the list size.
    std::size_t i = 0;
    do {
        std::size_t n = std::min<std::size_t>(digests.size() - i,
                                              kMaxBatchJobs);
        std::string body;
        putU32(body, static_cast<std::uint32_t>(n));
        for (std::size_t k = 0; k < n; ++k)
            putU64(body, digests[i + k]);
        i += n;
        if (!sendAll(makeFrame(FrameType::Watch, body), 5000))
            return false;
    } while (i < digests.size());
    return true;
}

bool
TransportClient::nextCompletion(Completion &out,
                                std::uint64_t timeout_ms)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (!completions_.empty()) {
            out = std::move(completions_.front());
            completions_.pop_front();
            return true;
        }
        if (dead_ || fd_ < 0)
            return false;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now()).count();
        if (left <= 0)
            return false;
        if (!pump(static_cast<std::uint64_t>(left)) && dead_)
            return false;
    }
}

} // namespace vpc
