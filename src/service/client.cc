#include "service/client.hh"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "service/job_codec.hh"
#include "sim/logging.hh"

namespace vpc
{

using Clock = std::chrono::steady_clock;

ServiceClient::ServiceClient(std::string spool_dir,
                             std::string cache_dir,
                             std::uint64_t poll_ms, bool use_socket)
    : pollMs_(poll_ms), useSocket_(use_socket)
{
    if (cache_dir.empty())
        cache_dir = spool_dir + "/cache";
    spool_ = std::make_unique<JobSpool>(std::move(spool_dir));
    cache_ = std::make_unique<RunCache>(std::move(cache_dir));
}

bool
ServiceClient::daemonAlive() const
{
    return spool_->ownerPid() != 0;
}

bool
ServiceClient::socketConnected()
{
    if (!useSocket_)
        return false;
    if (transport_ && transport_->connected())
        return true;
    std::uint64_t owner = spool_->ownerPid();
    if (owner == 0)
        return false; // no daemon: nothing to connect to
    if (transport_ && transport_->dead() && transportPid_ == owner)
        return false; // that daemon's transport died; don't re-dial it
    TransportConfig tc;
    tc.socketPath = defaultSocketPath(spool_->root());
    auto t = std::make_unique<TransportClient>(tc);
    if (!t->connect(500))
        return false; // spool-only daemon (or mid-restart)
    transport_ = std::move(t);
    transportPid_ = transport_->daemonPid();
    return true;
}

std::uint64_t
ServiceClient::submit(const RunJob &job)
{
    std::uint64_t digest = runDigest(job);
    JobState st = spool_->submit(digest, encodeJob(job));
    if (st == JobState::Absent)
        vpc_warn("client: could not spool {}",
                 JobSpool::jobName(digest));
    return digest;
}

JobState
ServiceClient::wait(std::uint64_t digest, std::uint64_t timeout_ms)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        JobState st = spool_->state(digest);
        if (st == JobState::Done || st == JobState::Failed ||
            st == JobState::Absent)
            return st;
        if (!daemonAlive())
            return st; // nobody will ever finish it
        if (timeout_ms != 0 && Clock::now() >= deadline)
            return st;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(pollMs_));
    }
}

bool
ServiceClient::fetch(std::uint64_t digest, RunResult &out)
{
    RunRecord rec;
    if (!cache_->probe(digest, rec))
        return false;
    out = RunResult{};
    out.record = rec;
    out.cacheHit = true;
    return true;
}

std::string
ServiceClient::failReason(std::uint64_t digest)
{
    return spool_->failReason(digest);
}

bool
ServiceClient::runJobSocket(const RunJob &job, std::uint64_t digest,
                            RunResult &out)
{
    if (!socketConnected())
        return false;
    std::vector<TransportClient::Ack> acks;
    if (!transport_->submitBatch({encodeJob(job)}, acks) ||
        acks.size() != 1)
        return false; // dead or wedged peer: fall back
    if (acks[0].state == JobState::Absent)
        return false; // daemon rejected the payload: recompute locally

    JobState st = acks[0].state;
    std::string reason;
    while (st != JobState::Done && st != JobState::Failed) {
        TransportClient::Completion comp;
        if (transport_->nextCompletion(comp, 500)) {
            if (comp.digest != digest)
                continue; // someone else's watch on this connection
            st = comp.state;
            reason = comp.reason;
            continue;
        }
        if (transport_->dead()) {
            vpc_warn("client: socket transport died with {} {}; "
                     "degrading", JobSpool::jobName(digest),
                     jobStateName(st));
            return false;
        }
        // Timeout tick: probe the spool as a belt-and-braces net so a
        // lost push can never strand the wait.
        JobState probed = spool_->state(digest);
        if (probed == JobState::Done || probed == JobState::Failed)
            st = probed;
    }
    if (st == JobState::Failed) {
        if (reason.empty())
            reason = failReason(digest);
        throw std::runtime_error(format(
            "job {} quarantined by the daemon: {}",
            JobSpool::jobName(digest), reason));
    }
    if (fetch(digest, out))
        return true;
    vpc_warn("client: {} is done but has no cache record — daemon "
             "cache dir mismatch?", JobSpool::jobName(digest));
    return false;
}

RunResult
ServiceClient::runJob(const RunJob &job, ServedBy *served)
{
    std::uint64_t digest = runDigest(job);

    RunResult out;
    if (fetch(digest, out)) {
        // Already computed in some earlier life; no daemon needed.
        if (served)
            *served = ServedBy::Local;
        return out;
    }

    if (runJobSocket(job, digest, out)) {
        if (served)
            *served = ServedBy::Socket;
        return out;
    }

    if (daemonAlive()) {
        submit(job);
        for (;;) {
            JobState st = spool_->state(digest);
            if (st == JobState::Done) {
                if (fetch(digest, out)) {
                    if (served)
                        *served = ServedBy::Daemon;
                    return out;
                }
                // done/ but no record: cache-dir mismatch.  Recompute
                // locally rather than spin.
                vpc_warn("client: {} is done but has no cache record "
                         "— daemon cache dir mismatch?",
                         JobSpool::jobName(digest));
                break;
            }
            if (st == JobState::Failed)
                throw std::runtime_error(format(
                    "job {} quarantined by the daemon: {}",
                    JobSpool::jobName(digest), failReason(digest)));
            if (!daemonAlive()) {
                vpc_warn("client: daemon died with {} {}; degrading "
                         "to local execution",
                         JobSpool::jobName(digest), jobStateName(st));
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(pollMs_));
        }
    }

    if (served)
        *served = ServedBy::Local;
    return runAndMeasureCached(job, cache_.get());
}

} // namespace vpc
