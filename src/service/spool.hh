/**
 * @file
 * Crash-safe on-disk job spool: a directory-per-state machine.
 *
 * A job's lifecycle state IS its location — `pending/`, `running/`,
 * `done/` or `failed/` under the spool root — and every transition is
 * a single atomic rename on one filesystem, so no crash at any point
 * can duplicate a job, lose a job, or leave one half in two states:
 *
 *     submit:  <tmp>       -> pending/job-<digest>   (publish)
 *     claim:   pending/X    -> running/X             (daemon takes it)
 *     done:    running/X    -> done/X
 *     fail:    running/X    -> failed/X              (quarantine)
 *     requeue: running/X    -> pending/X             (retry / recovery)
 *
 * Jobs are named by their content digest (job_codec embeds and checks
 * it), which gives exactly-once semantics for free: a second submit of
 * the same job, from any process, lands on the same name and becomes a
 * no-op against whatever state the first copy already reached.
 *
 * Crash recovery: anything in `running/` belongs to a daemon; a
 * starting daemon requeues all of it (the previous owner is dead or
 * about to be fenced out by the pid file).  Half-written submissions
 * are invisible by construction (tmp + rename) and stale temps are
 * reclaimed by the same janitor the run cache uses.
 *
 * Single-daemon fencing: `daemon.pid` at the spool root holds the
 * owner's pid, published by tmp + rename.  acquire() refuses when the
 * recorded pid is a different live process; a dead owner's file is
 * simply replaced.  Clients use the same file for daemonAlive().
 */

#ifndef VPC_SERVICE_SPOOL_HH
#define VPC_SERVICE_SPOOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vpc
{

/** Where a spooled job currently lives. */
enum class JobState
{
    Absent,  //!< not in the spool at all
    Pending, //!< submitted, waiting for the daemon
    Running, //!< claimed by the daemon
    Done,    //!< completed; result is in the run cache
    Failed,  //!< quarantined after exhausting its attempts
};

/** @return a human-readable name for @p st. */
const char *jobStateName(JobState st);

/** @return true when @p pid names a live process (kill-0 probe). */
bool processAlive(std::uint64_t pid);

/** The directory-per-state job spool (see file comment). */
class JobSpool
{
  public:
    /**
     * Open (creating if needed) the spool at @p root.  Runs the
     * stale-temp janitor over the state directories.
     */
    explicit JobSpool(std::string root);

    const std::string &root() const { return root_; }

    /** @return "job-<16-hex-digest>", the spool name for @p digest. */
    static std::string jobName(std::uint64_t digest);

    /** @return the path of @p digest in state @p st. */
    std::string jobPath(JobState st, std::uint64_t digest) const;

    /**
     * Publish @p text as a pending job (tmp + rename).  If the digest
     * already exists anywhere in the spool, nothing is written.
     *
     * @return the job's state after the call: Pending for a fresh or
     *         already-pending submit, else the state the existing copy
     *         is in; Absent only if the publish itself failed
     */
    JobState submit(std::uint64_t digest, const std::string &text);

    /**
     * Claim the oldest pending job by renaming it into running/.
     * Lost races (another claimant got the file first) move on to the
     * next candidate.
     *
     * @return true with @p digest_out and the job file's @p text_out
     *         filled; false when nothing was claimable
     */
    bool claim(std::uint64_t &digest_out, std::string &text_out);

    /**
     * Claim a specific pending job.  @return true with @p text_out
     * filled; false when the job was not pending or was taken first.
     */
    bool claimJob(std::uint64_t digest, std::string &text_out);

    /** running -> done. @return false if the job was not running. */
    bool markDone(std::uint64_t digest);

    /**
     * running -> failed (quarantine).  @p reason is written next to
     * the job as `<name>.err` (best effort) for the client to read.
     */
    bool markFailed(std::uint64_t digest, const std::string &reason);

    /** running -> pending (retry or crash recovery). */
    bool requeue(std::uint64_t digest);

    /** pending -> failed (poison job rejected before it ever ran). */
    bool rejectPending(std::uint64_t digest, const std::string &reason);

    /**
     * Startup recovery: requeue every job in running/ — their owner
     * is gone.  @return the number of orphans requeued.
     */
    std::size_t recoverOrphans();

    /** @return the state @p digest is currently in. */
    JobState state(std::uint64_t digest) const;

    /** @return digests currently in state @p st (unordered). */
    std::vector<std::uint64_t> list(JobState st) const;

    /** @return the quarantine reason for a failed job ("" if none). */
    std::string failReason(std::uint64_t digest) const;

    /**
     * @name Single-daemon fencing via daemon.pid
     *
     * acquire() publishes this process as the spool's daemon; it
     * fails when another live process holds the file.  release()
     * removes the file if this process owns it.  ownerPid() reads
     * the file (0 = none); a dead owner is reported as 0.
     */
    /// @{
    bool acquire();
    void release();
    std::uint64_t ownerPid() const;
    /// @}

  private:
    std::string stateDir(JobState st) const;
    bool moveJob(JobState from, JobState to, std::uint64_t digest);

    std::string root_;
};

} // namespace vpc

#endif // VPC_SERVICE_SPOOL_HH
