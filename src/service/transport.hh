/**
 * @file
 * Event-driven socket transport for the sweep service.
 *
 * PR 6's client/daemon rendezvous was the shared-filesystem spool
 * alone: every submit a directory rename, every result discovered by
 * client-side polling.  That is crash-safe but slow to *notice*
 * things — dispatch latency is capped by the poll interval and every
 * poll is a directory scan, which collapses under thousands of small
 * jobs.  This transport makes the hot path push-driven while leaving
 * the spool as the durability layer:
 *
 *  - TransportServer: a non-blocking Unix-domain socket listener run
 *    by the daemon on its own thread, multiplexed by epoll (Linux)
 *    with a poll(2) fallback (other platforms, or VPC_TRANSPORT_POLL=1
 *    to force it for testing).  Socket submits are handed to the
 *    daemon, which spools + journals them *before* the ack frame is
 *    sent, so the SIGKILL drill and exactly-once semantics are
 *    unchanged — a job acked over the socket is exactly as durable as
 *    one renamed into pending/.
 *  - TransportClient: a blocking-with-deadline client used by
 *    ServiceClient, vpcsubmit and the saturation bench.  Completions
 *    are *pushed* (no polling): every submitted or watched digest gets
 *    a Complete frame the instant the daemon settles it.
 *
 * Wire format: length-prefixed binary frames on a SOCK_STREAM Unix
 * socket (same host, so native byte order):
 *
 *     [u32 payload_len][u8 type][payload ...]
 *
 *     Hello        c->d  u32 proto_version
 *     HelloAck     d->c  u32 proto_version, u64 daemon_pid
 *     SubmitBatch  c->d  u32 n, n x { u32 len, bytes job_codec text }
 *     SubmitAck    d->c  u32 n, n x { u64 digest, u8 job_state }
 *                        (index-aligned with the batch; digest 0 +
 *                        state Absent = rejected/undecodable)
 *     Watch        c->d  u32 n, n x u64 digest
 *     Complete     d->c  u64 digest, u8 job_state, u32 len, bytes
 *                        reason (quarantine reason for Failed, "")
 *     Ping / Pong  both  u64 token
 *
 * Frames larger than kMaxFrameBytes, or any unparseable frame, are a
 * protocol error: the connection is closed (the peer degrades to the
 * spool path — every transport failure mode ends in a slower but
 * bit-identical result, never a lost or duplicated job).
 *
 * Flow control: each server connection owns a bounded write queue.
 * Above the high-water mark the server stops *reading* from that
 * connection (backpressure: a client flooding submits faster than it
 * drains acks/completions is throttled by its own socket); above the
 * hard cap the connection is dropped.  Heartbeats: the server pings
 * idle connections every heartbeatMs and closes peers silent for
 * 3 x heartbeatMs; the client does the same toward the daemon, so a
 * wedged (not just dead) peer is detected on both sides.  A SIGKILLed
 * daemon is detected immediately via EOF/ECONNRESET.
 */

#ifndef VPC_SERVICE_TRANSPORT_HH
#define VPC_SERVICE_TRANSPORT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/spool.hh"

namespace vpc
{

/** Bump when the frame set or any frame layout changes. */
constexpr std::uint32_t kTransportProtoVersion = 1;

/** Largest accepted frame payload (a batch of ~4k typical jobs). */
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/** Most jobs in one SubmitBatch frame (clients split larger ones). */
constexpr std::uint32_t kMaxBatchJobs = 65536;

/** @return the default socket path for @p spool_dir. */
std::string defaultSocketPath(const std::string &spool_dir);

/** Tuning shared by server and client. */
struct TransportConfig
{
    std::string socketPath;
    std::uint64_t heartbeatMs = 2000; //!< ping idle peers this often
    /** Server write-queue backpressure thresholds, bytes/connection. */
    std::size_t writeHighWater = 4u << 20;
    std::size_t writeHardCap = 16u << 20;
    /**
     * Force the poll(2) backend even where epoll is available (also
     * switchable per-process with VPC_TRANSPORT_POLL=1).
     */
    bool forcePoll = false;
};

/** Monotonic transport-server counters (read any time). */
struct TransportStats
{
    std::atomic<std::uint64_t> accepted{0};   //!< connections accepted
    std::atomic<std::uint64_t> closed{0};     //!< connections closed
    std::atomic<std::uint64_t> framesIn{0};
    std::atomic<std::uint64_t> framesOut{0};
    std::atomic<std::uint64_t> submits{0};    //!< jobs admitted
    std::atomic<std::uint64_t> submitRejects{0}; //!< undecodable jobs
    std::atomic<std::uint64_t> completionsPushed{0};
    std::atomic<std::uint64_t> backpressured{0}; //!< reads paused
    std::atomic<std::uint64_t> dropped{0};    //!< conns over hard cap
    std::atomic<std::uint64_t> deadPeers{0};  //!< heartbeat expiries
};

/**
 * The daemon-side listener (see file comment).  All socket work runs
 * on one internal thread; the daemon interacts through two
 * thread-safe entry points: the submit callback (invoked *on* the
 * transport thread) and publishCompletion() (invoked from the
 * daemon's scheduling thread).
 */
class TransportServer
{
  public:
    /**
     * Durably admit one job submitted over the socket.  Runs on the
     * transport thread.  Must decode @p text, fill @p digest_out,
     * spool + journal the job, and return the job's state after
     * admission (the ack payload).  Return JobState::Absent (digest 0)
     * for an undecodable/rejected payload.
     */
    using SubmitFn =
        std::function<JobState(const std::string &text,
                               std::uint64_t &digest_out)>;

    /**
     * Probe the terminal state of a watched digest (Watch frames for
     * jobs that may already be settled).  Fill @p reason_out for
     * Failed.  Runs on the transport thread.
     */
    using StateFn = std::function<JobState(std::uint64_t digest,
                                           std::string &reason_out)>;

    TransportServer(TransportConfig cfg, SubmitFn on_submit,
                    StateFn probe_state);
    ~TransportServer();

    TransportServer(const TransportServer &) = delete;
    TransportServer &operator=(const TransportServer &) = delete;

    /**
     * Bind the socket (unlinking any stale file — the caller must
     * already hold the spool's pid fence), listen, and start the
     * event loop thread.  @return false when the socket cannot be
     * created (path too long, bind failure); the service then runs
     * spool-only.
     */
    bool start();

    /** Stop the loop, close everything, unlink the socket file. */
    void stop();

    /**
     * Queue a settled job's Complete frame for every connection
     * watching @p digest.  Thread-safe; wakes the event loop.
     */
    void publishCompletion(std::uint64_t digest, JobState st,
                           const std::string &reason);

    /**
     * Close every client connection (graceful daemon shutdown: peers
     * see EOF and degrade to the spool/local path).  Thread-safe.
     */
    void disconnectAll();

    const TransportStats &stats() const { return stats_; }
    const std::string &socketPath() const { return cfg_.socketPath; }
    bool listening() const { return listenFd_ >= 0; }

  private:
    struct Conn;
    struct Poller;

    void loop();
    void acceptAll();
    void readConn(Conn &c);
    void flushConn(Conn &c);
    bool handleFrame(Conn &c, std::uint8_t type,
                     const char *body, std::size_t len);
    void enqueueFrame(Conn &c, std::string frame);
    void updateInterest(Conn &c);
    void doomConn(Conn &c);
    void sweepDoomed();
    void closeConn(int fd);
    void drainCompletions();
    void heartbeat();
    void wake();

    TransportConfig cfg_;
    SubmitFn onSubmit_;
    StateFn probeState_;
    TransportStats stats_;

    int listenFd_ = -1;
    int wakeRead_ = -1, wakeWrite_ = -1;
    std::unique_ptr<Poller> poller_;
    std::unordered_map<int, std::unique_ptr<Conn>> conns_;
    /** digest -> fds to notify on completion (loop thread only). */
    std::unordered_map<std::uint64_t, std::vector<int>> watchers_;
    /**
     * Connections condemned mid-callback (send error, hard cap,
     * protocol error).  flushConn()/enqueueFrame() run while callers
     * hold a Conn reference or iterate conns_, so they must never
     * destroy the Conn themselves: they doomConn() it and the event
     * loop sweeps this list once per iteration, when no frame is in
     * flight (loop thread only).
     */
    std::vector<int> doomedFds_;

    /** Cross-thread inbox: completions + control flags. */
    struct PendingCompletion
    {
        std::uint64_t digest;
        JobState state;
        std::string reason;
    };
    std::mutex inboxMu_;
    std::vector<PendingCompletion> inbox_;
    bool disconnectRequested_ = false;

    std::atomic<bool> stop_{false};
    std::thread thread_;
    bool started_ = false;
};

/**
 * Client end of the transport (see file comment).  Single-threaded:
 * every call pumps the socket with a deadline; completions pushed by
 * the daemon while waiting for something else are buffered and
 * returned by nextCompletion() in arrival order.
 */
class TransportClient
{
  public:
    explicit TransportClient(TransportConfig cfg);
    ~TransportClient();

    TransportClient(const TransportClient &) = delete;
    TransportClient &operator=(const TransportClient &) = delete;

    /** One submit's acknowledgement. */
    struct Ack
    {
        std::uint64_t digest = 0;
        JobState state = JobState::Absent;
    };

    /** One pushed completion notification. */
    struct Completion
    {
        std::uint64_t digest = 0;
        JobState state = JobState::Absent;
        std::string reason;
    };

    /**
     * Connect and complete the Hello handshake.
     * @return false when no daemon is listening (or the handshake
     *         timed out); the client is then unusable until the next
     *         connect()
     */
    bool connect(std::uint64_t timeout_ms = 1000);

    /** @return true while the connection looks alive. */
    bool connected() const { return fd_ >= 0 && !dead_; }

    /** @return true once the peer was detected dead (EOF, reset, or
     *          heartbeat expiry); the fallback paths take over. */
    bool dead() const { return dead_; }

    /** @return the daemon pid from the handshake (0 before it). */
    std::uint64_t daemonPid() const { return daemonPid_; }

    /**
     * Submit a batch of encoded job records (job_codec text) and wait
     * for the index-aligned acks.  Batches larger than the server's
     * per-frame limits (kMaxBatchJobs jobs, kMaxFrameBytes payload)
     * are transparently split into multiple SubmitBatch frames; a
     * single record too big for one frame fails the call client-side
     * instead of tripping a server protocol error.  Submitted digests
     * are implicitly watched: a Complete frame will follow for every
     * ack that was not already terminal.
     *
     * @return false on timeout, dead peer, or an oversized record
     *         (@p acks_out then holds only the chunks acked so far)
     */
    bool submitBatch(const std::vector<std::string> &encoded_jobs,
                     std::vector<Ack> &acks_out,
                     std::uint64_t timeout_ms = 5000);

    /** Subscribe to completion pushes for @p digests (jobs submitted
     *  in an earlier session; already-settled ones complete at once). */
    bool watch(const std::vector<std::uint64_t> &digests);

    /**
     * Return the next buffered or arriving completion.  Answers the
     * daemon's heartbeat pings while waiting and maintains its own
     * (a silent daemon is declared dead after 3 x heartbeatMs).
     *
     * @return false on timeout or dead peer
     */
    bool nextCompletion(Completion &out, std::uint64_t timeout_ms);

    void close();

  private:
    bool sendAll(const std::string &frame, std::uint64_t timeout_ms);
    bool pump(std::uint64_t timeout_ms); //!< read + dispatch once
    bool handleFrame(std::uint8_t type, const char *body,
                     std::size_t len);
    void markDead();

    TransportConfig cfg_;
    int fd_ = -1;
    bool dead_ = false;
    std::uint64_t daemonPid_ = 0;
    std::string in_;
    std::deque<Completion> completions_;
    bool haveAcks_ = false;
    std::vector<Ack> acks_;
    std::chrono::steady_clock::time_point lastTraffic_;
    bool pingOutstanding_ = false;
    std::uint64_t pingToken_ = 0;
};

} // namespace vpc

#endif // VPC_SERVICE_TRANSPORT_HH
