/**
 * @file
 * Serialization of RunJob to the flat on-disk record format.
 *
 * A spooled job file is the *complete* content identity of a run —
 * exactly the inputs runDigest() hashes: the normalized SystemConfig,
 * the per-thread workload keys and the warmup/measure lengths.  The
 * encoder embeds the job digest; the decoder re-derives it from the
 * decoded fields and rejects the record on mismatch, so any skew
 * between encoder, decoder and digest (a new config field added to
 * one but not the others) fails loudly as a decode error instead of
 * silently executing a different job than the client submitted.
 *
 * The format reuses record_io: one flat JSON object of unsigned
 * integers, strings and integer arrays, doubles as IEEE-754 bit
 * patterns.  `config.profile` is intentionally not encoded: it is
 * observe-only, excluded from the digest, and a daemon never returns
 * profiles (results come back through the run cache).
 */

#ifndef VPC_SERVICE_JOB_CODEC_HH
#define VPC_SERVICE_JOB_CODEC_HH

#include <string>

#include "system/run_cache.hh"

namespace vpc
{

/** Bump when the encoded field set changes. */
constexpr std::uint64_t kJobCodecSchema = 2;

/**
 * @return the job file text for @p job (validate() is applied first,
 *         so encode(decode(x)) is byte-stable)
 */
std::string encodeJob(const RunJob &job);

/**
 * Parse @p text into @p out.
 *
 * @return false on any malformation: truncated/corrupt record, schema
 *         mismatch, missing or excess config fields, a workload spec
 *         that cannot travel as a record string, or an embedded digest
 *         that does not match the decoded job's runDigest()
 */
bool decodeJob(const std::string &text, RunJob &out);

} // namespace vpc

#endif // VPC_SERVICE_JOB_CODEC_HH
