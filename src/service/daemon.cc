#include "service/daemon.hh"

#include <sys/stat.h>
#include <unistd.h>

#include "service/job_codec.hh"
#include "sim/cancel.hh"
#include "sim/logging.hh"
#include "system/sweep.hh"

namespace vpc
{

using Clock = std::chrono::steady_clock;

SweepDaemon::SweepDaemon(DaemonConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.cacheDir.empty())
        cfg_.cacheDir = cfg_.spoolDir + "/cache";
}

SweepDaemon::~SweepDaemon()
{
    // Transport first: once the spool is released a successor daemon
    // may bind its own socket, which a later unlink would clobber.
    if (transport_)
        transport_->stop();
    if (monitor_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(monitorMu_);
            monitorStop_ = true;
        }
        monitorCv_.notify_all();
        monitor_.join();
    }
    if (spool_)
        spool_->release();
}

bool
SweepDaemon::start()
{
    spool_ = std::make_unique<JobSpool>(cfg_.spoolDir);
    if (!spool_->acquire()) {
        vpc_warn("daemon: spool {} is owned by live pid {}",
                 cfg_.spoolDir, spool_->ownerPid());
        spool_.reset();
        return false;
    }
    journal_ = std::make_unique<JobJournal>(
        cfg_.spoolDir + "/journal.log", cfg_.journalRotateBytes,
        cfg_.journalKeepSegments);
    cache_ = std::make_unique<RunCache>(cfg_.cacheDir);
    cfg_.workers = sweepThreads(cfg_.workers);
    pool_ = std::make_unique<ThreadPool>(cfg_.workers);

    // Crash recovery: every running/ entry belonged to a dead owner
    // (we hold the pid file now); requeue them all.
    for (std::uint64_t d : spool_->list(JobState::Running)) {
        if (spool_->requeue(d)) {
            journal_->append(d, "recover");
            ++stats_.orphansRecovered;
        }
    }
    // Attempt history survives the crash through the journal.
    attempts_ = journal_->replayAttempts();

    if (cfg_.injectFaults) {
        injector_ = std::make_unique<FaultInjector>(cfg_.faultRate,
                                                    cfg_.faultSeed);
        // The fault fns run on the scheduling thread inside
        // planFaults(), which points planning_ at the job being
        // claimed — see planFaults() for the contract.
        injector_->addFault("stall-job", [this] {
            if (cfg_.deadlineMs == 0)
                return false; // a stall with no deadline never ends
            planning_->faultStall = true;
            return true;
        });
        injector_->addFault("fail-job", [this] {
            planning_->faultFail = true;
            return true;
        });
        injector_->addFault("abandon-job", [this] {
            planning_->faultAbandon = true;
            return true;
        });
        injector_->addFault("truncate-journal", [this] {
            // Chop mid-line, as a crash during append would: replay
            // must drop the torn tail and nothing else.
            struct ::stat st;
            const std::string &p = journal_->path();
            if (::stat(p.c_str(), &st) != 0 || st.st_size < 4)
                return false;
            return ::truncate(p.c_str(), st.st_size - 3) == 0;
        });
    }

    // Socket transport: start last, after recovery, so admissions
    // never race the orphan sweep.  Bind failure degrades to
    // spool-only service.
    if (cfg_.socket) {
        TransportConfig tc;
        tc.socketPath = cfg_.socketPath.empty()
                            ? defaultSocketPath(cfg_.spoolDir)
                            : cfg_.socketPath;
        tc.heartbeatMs = cfg_.heartbeatMs;
        transport_ = std::make_unique<TransportServer>(
            std::move(tc),
            [this](const std::string &text, std::uint64_t &d) {
                return admitSocketJob(text, d);
            },
            [this](std::uint64_t d, std::string &reason) {
                return probeJobState(d, reason);
            });
        if (!transport_->start()) {
            vpc_warn("daemon: socket transport unavailable; serving "
                     "spool-only");
            transport_.reset();
        }
    }

    monitor_ = std::thread([this] { monitorLoop(); });
    started_ = true;
    vpc_inform("daemon: serving spool {} (cache {}, {} worker "
               "thread(s), deadline {} ms, max {} attempts, {})",
               cfg_.spoolDir, cfg_.cacheDir, cfg_.workers,
               cfg_.deadlineMs, cfg_.maxAttempts,
               transport_ ? "socket " + transport_->socketPath()
                          : std::string("spool-only"));
    return true;
}

JobState
SweepDaemon::admitSocketJob(const std::string &text,
                            std::uint64_t &digest_out)
{
    RunJob job;
    if (!decodeJob(text, job))
        return JobState::Absent;
    std::uint64_t d = runDigest(job);
    digest_out = d;
    // Durability before the ack: the job is renamed into pending/ and
    // journaled *here*, on the transport thread, so an acked socket
    // submit survives SIGKILL exactly like a spool-path submit.
    JobState st = spool_->submit(d, text);
    if (st == JobState::Pending) {
        journal_->append(d, "submit");
        {
            std::lock_guard<std::mutex> lk(hotMu_);
            hotPending_.push_back(d);
        }
        hotCv_.notify_one();
    }
    return st;
}

JobState
SweepDaemon::probeJobState(std::uint64_t digest,
                           std::string &reason_out)
{
    JobState st = spool_->state(digest);
    if (st == JobState::Failed)
        reason_out = spool_->failReason(digest);
    return st;
}

std::uint64_t
SweepDaemon::backoffFor(unsigned attempt) const
{
    std::uint64_t ms = cfg_.backoffMs;
    for (unsigned i = 1; i < attempt && ms < cfg_.backoffCapMs; ++i)
        ms *= 2;
    return std::min(ms, cfg_.backoffCapMs);
}

void
SweepDaemon::planFaults(BatchJob &bj)
{
    if (!injector_)
        return;
    planning_ = &bj;
    // One roll per claim; the claim ordinal is the injector's "cycle"
    // so a given (seed, rate, job sequence) replays identically.
    injector_->maybeInject(static_cast<Cycle>(stats_.claimed));
    planning_ = nullptr;
    stats_.faultsInjected = injector_->injectedCount();
}

void
SweepDaemon::executeOne(BatchJob &bj)
{
    bj.attempted = true;
    bj.started = Clock::now();
    bj.executing.store(true, std::memory_order_release);
    try {
        if (bj.faultStall) {
            // Hold the job until the deadline monitor cancels it,
            // like a wedged simulation would.
            while (!bj.cancel.load(std::memory_order_relaxed))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            throw JobCancelled("injected stall: job held past its "
                               "deadline");
        }
        if (bj.faultFail)
            throw std::runtime_error("injected job failure");
        if (bj.faultAbandon) {
            // Walk away mid-claim, like a worker dying would; the
            // stale-claim sweep at the next pass must requeue it.
            bj.attempted = false;
            bj.executing.store(false, std::memory_order_release);
            return;
        }
        RunSupervision sup;
        sup.cancel = &bj.cancel;
        sup.deadlineMs = cfg_.deadlineMs;
        RunResult res = runAndMeasureCached(bj.job, cache_.get(), &sup);
        bj.cacheHit = res.cacheHit;
        bj.ok = true;
    } catch (const DeadlineExceeded &e) {
        bj.timedOut = true;
        bj.error = e.what();
    } catch (const JobCancelled &e) {
        // The only canceller of a live job is the deadline monitor.
        bj.timedOut = true;
        bj.error = e.what();
    } catch (const std::exception &e) {
        bj.error = e.what();
    }
    bj.executing.store(false, std::memory_order_release);
}

void
SweepDaemon::settleOutcome(BatchJob &bj)
{
    std::uint64_t d = bj.digest;
    if (!bj.attempted) {
        // Never ran: shutdown skipped it, or an injected abandonment.
        // The journaled "start" stands — after a real crash we could
        // not tell either — but the in-memory count should not burn
        // an attempt for a job we know never executed.
        if (attempts_[d] > 0)
            --attempts_[d];
        if (bj.faultAbandon)
            return; // left in running/ for the stale-claim sweep
        if (spool_->requeue(d)) {
            journal_->append(d, "requeue");
            ++stats_.republished;
        }
        return;
    }
    if (bj.ok) {
        journal_->append(d, "done");
        spool_->markDone(d);
        ++stats_.completed;
        if (bj.cacheHit)
            ++stats_.cacheHits;
        eligible_.erase(d);
        if (transport_)
            transport_->publishCompletion(d, JobState::Done, "");
        return;
    }
    ++stats_.failures;
    if (bj.timedOut)
        ++stats_.timeouts;
    journal_->append(d, "fail");
    unsigned att = attempts_[d];
    if (att >= cfg_.maxAttempts) {
        journal_->append(d, "quarantine");
        std::string reason =
            format("quarantined after {} attempt(s); last error: {}",
                   att, bj.error);
        spool_->markFailed(d, reason);
        ++stats_.quarantined;
        eligible_.erase(d);
        if (transport_)
            transport_->publishCompletion(d, JobState::Failed, reason);
        vpc_warn("daemon: quarantined {} after {} attempt(s): {}",
                 JobSpool::jobName(d), att, bj.error);
    } else {
        std::uint64_t wait_ms = backoffFor(att);
        eligible_[d] = Clock::now() +
                       std::chrono::milliseconds(wait_ms);
        journal_->append(d, "requeue");
        spool_->requeue(d);
        ++stats_.retried;
        vpc_inform("daemon: retrying {} in {} ms (attempt {}/{}): {}",
                   JobSpool::jobName(d), wait_ms, att,
                   cfg_.maxAttempts, bj.error);
    }
}

std::uint64_t
SweepDaemon::runOnce()
{
    if (!started_)
        vpc_panic("SweepDaemon::runOnce before start()");

    const unsigned lanes = pool_->workers() + 1;
    // Under saturation the jobs are tiny: claim several lanes' worth
    // per pass so per-batch dispatch overhead amortizes.
    const std::size_t cap = cfg_.claimCap != 0
                                ? cfg_.claimCap
                                : static_cast<std::size_t>(lanes) * 4;
    const std::atomic<bool> *stop = stop_.load();
    std::vector<std::unique_ptr<BatchJob>> batch;
    Clock::time_point now = Clock::now();

    // Socket submits land in the hot queue; snapshot it first.
    std::deque<std::uint64_t> hot;
    {
        std::lock_guard<std::mutex> lk(hotMu_);
        hot.swap(hotPending_);
    }

    // Directory scans are the slow path: still needed for spool-only
    // submitters, retry pickups and the stale-claim sweep, but not on
    // every pass while the socket keeps the hot queue fed.  Scan when
    // the hot path is idle, or at least every pollMs.
    bool scan = hot.empty() ||
                now - lastScan_ >=
                    std::chrono::milliseconds(cfg_.pollMs);
    if (scan) {
        lastScan_ = now;
        // Stale-claim sweep: nothing is executing between passes, so
        // any running/ entry was abandoned (injected fault, or a
        // claim we lost track of).  Requeue rather than leak it.
        for (std::uint64_t d : spool_->list(JobState::Running)) {
            if (spool_->requeue(d))
                journal_->append(d, "requeue");
        }
    }

    auto claimOne = [&](std::uint64_t d) {
        auto el = eligible_.find(d);
        if (el != eligible_.end() && el->second > now)
            return; // still backing off; a later scan reclaims it
        std::string text;
        if (!spool_->claimJob(d, text))
            return;
        ++stats_.claimed;
        auto bj = std::make_unique<BatchJob>();
        bj->digest = d;
        if (!decodeJob(text, bj->job)) {
            // Poison before it ever runs: corrupt record, codec skew
            // or an insane config.  Quarantine, don't retry.
            journal_->append(d, "quarantine");
            std::string reason = "undecodable or inconsistent job "
                                 "record";
            spool_->markFailed(d, reason);
            ++stats_.rejected;
            ++stats_.quarantined;
            if (transport_)
                transport_->publishCompletion(d, JobState::Failed,
                                              reason);
            return;
        }
        unsigned prior = attempts_[d];
        if (prior >= cfg_.maxAttempts) {
            // Exhausted in a previous life (crash between the last
            // failure and its quarantine transition).
            journal_->append(d, "quarantine");
            std::string reason =
                format("quarantined after {} attempt(s) (journal "
                       "replay)", prior);
            spool_->markFailed(d, reason);
            ++stats_.quarantined;
            if (transport_)
                transport_->publishCompletion(d, JobState::Failed,
                                              reason);
            return;
        }
        planFaults(*bj);
        attempts_[d] = prior + 1;
        journal_->append(d, "start");
        batch.push_back(std::move(bj));
    };

    while (!hot.empty() && batch.size() < cap &&
           !(stop && stop->load())) {
        std::uint64_t d = hot.front();
        hot.pop_front();
        claimOne(d);
    }
    if (!hot.empty()) {
        // Claim-capped (or stopping): hand the tail back, in order.
        std::lock_guard<std::mutex> lk(hotMu_);
        hotPending_.insert(hotPending_.begin(), hot.begin(), hot.end());
    }
    if (scan && batch.size() < cap) {
        for (std::uint64_t d : spool_->list(JobState::Pending)) {
            if (batch.size() >= cap)
                break;
            if (stop && stop->load())
                break;
            claimOne(d);
        }
    }
    if (batch.empty())
        return 0;

    {
        std::lock_guard<std::mutex> lk(monitorMu_);
        activeBatch_ = &batch;
    }
    pool_->dispatch(batch.size(), [&](std::size_t i) {
        executeOne(*batch[i]);
    });
    {
        std::lock_guard<std::mutex> lk(monitorMu_);
        activeBatch_ = nullptr;
    }

    std::uint64_t completed_before = stats_.completed;
    for (auto &bj : batch)
        settleOutcome(*bj);
    return stats_.completed - completed_before;
}

std::uint64_t
SweepDaemon::run(const std::atomic<bool> &stop)
{
    stop_.store(&stop);
    std::uint64_t completed_at_entry = stats_.completed;
    while (!stop.load()) {
        std::uint64_t done = runOnce();
        if (stop.load())
            break;
        if (done == 0) {
            // Idle: nothing claimable.  Wait in short slices so a
            // stop request is honored promptly; a socket submit
            // signals hotCv_ and ends the wait instantly.
            std::unique_lock<std::mutex> lk(hotMu_);
            Clock::time_point until =
                Clock::now() + std::chrono::milliseconds(cfg_.pollMs);
            while (!stop.load() && hotPending_.empty() &&
                   Clock::now() < until)
                hotCv_.wait_for(lk, std::chrono::milliseconds(5));
        }
    }
    // Stop the transport before the final republish: no new socket
    // admissions land after the drain, and connected clients see EOF
    // and degrade to their spool/local fallbacks.
    if (transport_)
        transport_->stop(); // idempotent; stats stay readable
    // Graceful drain: anything still claimed goes back to pending/
    // for the next daemon (in-flight jobs already settled above —
    // dispatch() does not return while they run).
    for (std::uint64_t d : spool_->list(JobState::Running)) {
        if (spool_->requeue(d)) {
            journal_->append(d, "requeue");
            ++stats_.republished;
        }
    }
    spool_->release();
    stop_.store(nullptr);
    vpc_inform("daemon: stopped ({} completed, {} retried, {} "
               "quarantined, {} republished)",
               stats_.completed, stats_.retried, stats_.quarantined,
               stats_.republished);
    return stats_.completed - completed_at_entry;
}

void
SweepDaemon::monitorLoop()
{
    std::unique_lock<std::mutex> lk(monitorMu_);
    while (!monitorStop_) {
        monitorCv_.wait_for(lk, std::chrono::milliseconds(10));
        if (monitorStop_)
            break;
        const std::atomic<bool> *stop = stop_.load();
        if (stop && stop->load()) {
            // Shutdown: skip the undispatched tail of the current
            // batch; in-flight jobs drain normally.
            pool_->requestCancel();
        }
        if (!activeBatch_)
            continue;
        Clock::time_point now = Clock::now();
        for (auto &bj : *activeBatch_) {
            if (!bj->executing.load(std::memory_order_acquire))
                continue;
            if (cfg_.deadlineMs != 0 &&
                now - bj->started >=
                    std::chrono::milliseconds(cfg_.deadlineMs))
                bj->cancel.store(true, std::memory_order_relaxed);
        }
    }
}

} // namespace vpc
