/**
 * @file
 * The sweep daemon: fault-tolerant execution of spooled jobs.
 *
 * One SweepDaemon owns a JobSpool, its JobJournal and a RunCache, and
 * turns pending jobs into cached RunRecords on a worker pool.  The
 * robustness contract, end to end:
 *
 *  - exactly-once results: jobs are content-addressed, identical
 *    in-flight jobs collapse in the RunCache, and completed jobs are
 *    served from cache on resubmission;
 *  - crash recovery: start() requeues every `running/` orphan (the
 *    previous owner is dead) and replays the journal for attempt
 *    counts, so a SIGKILLed daemon restarts exactly where it died;
 *  - deadlines: every executing job carries a cancel token watched by
 *    the deadline monitor thread; jobs whose config enables the
 *    watchdog additionally get a wall deadline armed in-kernel.
 *    Either way an over-budget job unwinds with JobCancelled /
 *    DeadlineExceeded and counts one failed attempt;
 *  - bounded retry: failed attempts are requeued with exponential
 *    backoff (backoffMs * 2^(attempt-1), capped) and quarantined
 *    into `failed/` after maxAttempts, with the reason recorded for
 *    the client;
 *  - graceful shutdown: when the stop flag rises the daemon claims
 *    nothing new, skips the undispatched tail of the current batch
 *    (ThreadPool::requestCancel), lets in-flight jobs drain, and
 *    republishes every still-claimed job back to `pending/`.
 *
 * Deterministic fault injection (--inject-service-faults) reuses the
 * verify layer's FaultInjector to stall jobs past their deadline,
 * abandon claimed jobs (exercising the republish sweep), fail jobs
 * (exercising retry + quarantine) and truncate the journal mid-line
 * (exercising torn-line replay) — all bit-reproducible from a seed.
 */

#ifndef VPC_SERVICE_DAEMON_HH
#define VPC_SERVICE_DAEMON_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <deque>

#include "service/journal.hh"
#include "service/spool.hh"
#include "service/transport.hh"
#include "sim/thread_pool.hh"
#include "system/run_cache.hh"
#include "verify/fault_injector.hh"

namespace vpc
{

/** Everything a SweepDaemon needs to run. */
struct DaemonConfig
{
    std::string spoolDir;
    std::string cacheDir;        //!< "" = <spoolDir>/cache
    /**
     * Pool threads (lanes = workers + 1).  0 = auto: resolved through
     * sweepThreads() at start(), i.e. VPC_SWEEP_THREADS if set, else
     * the hardware concurrency — the same default the sweep harness
     * and tools/sweep use.
     */
    unsigned workers = 0;
    std::uint64_t deadlineMs = 0;//!< per-job wall budget; 0 = unbounded
    unsigned maxAttempts = 3;    //!< quarantine after this many starts
    std::uint64_t backoffMs = 100;   //!< retry backoff base
    std::uint64_t backoffCapMs = 10000;
    std::uint64_t pollMs = 200;  //!< idle sleep between spool scans
    /**
     * Most jobs claimed per scheduling pass.  0 = auto: four lanes'
     * worth, so per-batch dispatch overhead amortizes under
     * saturation.  Small explicit values trade throughput for a
     * finer-grained spool state (jobs settle as they finish instead
     * of a batch at a time) — used by recovery drills that need jobs
     * spread across lifecycle states mid-drain.
     */
    std::size_t claimCap = 0;
    bool injectFaults = false;   //!< deterministic service-fault mode
    double faultRate = 0.0;      //!< per-job fault probability
    std::uint64_t faultSeed = 1;
    /**
     * Socket transport (src/service/transport.hh).  On by default;
     * when binding fails (path too long, no AF_UNIX) the daemon warns
     * and serves spool-only — never a hard error.
     */
    bool socket = true;
    std::string socketPath;      //!< "" = <spoolDir>/daemon.sock
    std::uint64_t heartbeatMs = 2000; //!< transport ping interval
    /** Journal rotation (see service/journal.hh). */
    std::uint64_t journalRotateBytes = 1u << 20;
    unsigned journalKeepSegments = 8;
};

/** Daemon-lifetime counters (monotonic; read after run()). */
struct DaemonStats
{
    std::uint64_t claimed = 0;     //!< jobs taken from pending/
    std::uint64_t completed = 0;   //!< jobs moved to done/
    std::uint64_t cacheHits = 0;   //!< completed without executing
    std::uint64_t failures = 0;    //!< failed attempts (all causes)
    std::uint64_t timeouts = 0;    //!< failures that were deadline hits
    std::uint64_t retried = 0;     //!< attempts requeued with backoff
    std::uint64_t quarantined = 0; //!< jobs moved to failed/
    std::uint64_t rejected = 0;    //!< undecodable / unrunnable jobs
    std::uint64_t republished = 0; //!< running jobs requeued at shutdown
    std::uint64_t orphansRecovered = 0; //!< running/ requeued at start
    std::uint64_t faultsInjected = 0;   //!< service faults applied
};

/** The spooled-job execution service (see file comment). */
class SweepDaemon
{
  public:
    explicit SweepDaemon(DaemonConfig cfg);
    ~SweepDaemon();

    /**
     * Acquire the spool (single daemon per spool), recover orphans,
     * replay the journal, start the deadline monitor.
     *
     * @return false when another live daemon owns the spool
     */
    bool start();

    /**
     * Serve jobs until @p stop becomes true; then drain gracefully
     * and release the spool.  @return jobs completed this run.
     */
    std::uint64_t run(const std::atomic<bool> &stop);

    /**
     * One scheduling pass: claim whatever is pending (subject to
     * retry backoff), execute it on the pool, settle the outcomes.
     * @return jobs completed in this pass.
     */
    std::uint64_t runOnce();

    const DaemonStats &stats() const { return stats_; }
    const RunCache &cache() const { return *cache_; }
    JobSpool &spool() { return *spool_; }
    /** @return the socket transport, or null when it is disabled or
     *          failed to bind (the daemon then serves spool-only). */
    const TransportServer *transport() const { return transport_.get(); }

  private:
    /** A claimed job travelling through one execution batch. */
    struct BatchJob
    {
        std::uint64_t digest = 0;
        RunJob job;
        CancelToken cancel{false};
        std::chrono::steady_clock::time_point started;
        std::atomic<bool> executing{false};
        // Outcome of the attempt:
        bool attempted = false; //!< false: skipped by shutdown cancel
        bool ok = false;
        bool timedOut = false;
        bool cacheHit = false;
        std::string error;
        // Injected fault plan for this attempt:
        bool faultStall = false;   //!< hold the job past its deadline
        bool faultFail = false;    //!< throw instead of computing
        bool faultAbandon = false; //!< leave it claimed in running/
    };

    void executeOne(BatchJob &bj);
    void settleOutcome(BatchJob &bj);
    void monitorLoop();
    void planFaults(BatchJob &bj);
    std::uint64_t backoffFor(unsigned attempt) const;
    /** TransportServer::SubmitFn — runs on the transport thread. */
    JobState admitSocketJob(const std::string &text,
                            std::uint64_t &digest_out);
    /** TransportServer::StateFn — runs on the transport thread. */
    JobState probeJobState(std::uint64_t digest,
                           std::string &reason_out);

    DaemonConfig cfg_;
    std::unique_ptr<JobSpool> spool_;
    std::unique_ptr<JobJournal> journal_;
    std::unique_ptr<RunCache> cache_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<TransportServer> transport_;
    std::unique_ptr<FaultInjector> injector_;

    /**
     * Hot admission queue: digests spooled by the socket transport,
     * claimable without a directory scan.  Guarded by hotMu_; hotCv_
     * wakes run()'s idle wait the instant a socket submit lands.
     */
    std::mutex hotMu_;
    std::condition_variable hotCv_;
    std::deque<std::uint64_t> hotPending_;
    /** Last pending/ directory scan (scheduling thread only). */
    std::chrono::steady_clock::time_point lastScan_{};
    /** The job planFaults() is rolling for (scheduling thread only). */
    BatchJob *planning_ = nullptr;
    DaemonStats stats_;

    /** Attempts per digest (journal replay + live updates). */
    std::unordered_map<std::uint64_t, unsigned> attempts_;
    /** Earliest next claim time for backed-off digests. */
    std::unordered_map<std::uint64_t,
                       std::chrono::steady_clock::time_point> eligible_;

    /** Deadline monitor. */
    std::thread monitor_;
    std::mutex monitorMu_;
    std::condition_variable monitorCv_;
    bool monitorStop_ = false;
    /** Jobs the monitor must watch; guarded by monitorMu_. */
    std::vector<std::unique_ptr<BatchJob>> *activeBatch_ = nullptr;

    /** run()'s stop flag, published for the monitor thread. */
    std::atomic<const std::atomic<bool> *> stop_{nullptr};
    bool started_ = false;
};

} // namespace vpc

#endif // VPC_SERVICE_DAEMON_HH
