#include "service/journal.hh"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hh"

namespace vpc
{

JobJournal::JobJournal(std::string path) : path_(std::move(path))
{
    f_ = std::fopen(path_.c_str(), "ab");
    if (!f_)
        vpc_warn("journal: cannot open {} for append", path_);
}

JobJournal::~JobJournal()
{
    if (f_)
        std::fclose(f_);
}

void
JobJournal::append(std::uint64_t digest, const std::string &event)
{
    if (!f_)
        return;
    std::fprintf(f_, "%016llx %s\n",
                 static_cast<unsigned long long>(digest),
                 event.c_str());
    std::fflush(f_);
}

std::vector<JobJournal::Event>
JobJournal::replay() const
{
    std::vector<Event> out;
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f)
        return out;
    std::string line;
    int c;
    bool terminated = false;
    auto flush_line = [&]() {
        // A valid line is exactly "<16 hex> <word>" and must have
        // ended in '\n' — a torn tail (no newline) is dropped.
        if (!terminated || line.size() < 18 || line[16] != ' ') {
            line.clear();
            return;
        }
        for (int i = 0; i < 16; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(line[i]))) {
                line.clear();
                return;
            }
        std::string word = line.substr(17);
        for (char w : word)
            if (!std::isalpha(static_cast<unsigned char>(w))) {
                line.clear();
                return;
            }
        Event e;
        e.digest = std::strtoull(line.substr(0, 16).c_str(), nullptr, 16);
        e.name = std::move(word);
        out.push_back(std::move(e));
        line.clear();
    };
    while ((c = std::fgetc(f)) != EOF) {
        if (c == '\n') {
            terminated = true;
            flush_line();
            terminated = false;
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    std::fclose(f);
    return out;
}

std::unordered_map<std::uint64_t, unsigned>
JobJournal::replayAttempts() const
{
    std::unordered_map<std::uint64_t, unsigned> attempts;
    for (const Event &e : replay())
        if (e.name == "start")
            ++attempts[e.digest];
    return attempts;
}

} // namespace vpc
