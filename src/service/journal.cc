#include "service/journal.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>

#include "sim/logging.hh"

namespace vpc
{

namespace fs = std::filesystem;

namespace
{

/**
 * @return the segment number of @p name relative to the active
 *         journal's @p base name ("journal.log.7" -> 7), or 0 when
 *         @p name is not a sealed segment of @p base
 */
std::uint64_t
segmentSeq(const std::string &base, const std::string &name)
{
    if (name.size() < base.size() + 2 ||
        name.compare(0, base.size(), base) != 0 ||
        name[base.size()] != '.')
        return 0;
    std::uint64_t seq = 0;
    for (std::size_t i = base.size() + 1; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i])))
            return 0;
        seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    return seq;
}

/** Append every parseable line of @p path to @p out (see replay()). */
void
parseInto(const std::string &path, std::vector<JobJournal::Event> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return;
    std::string line;
    int c;
    bool terminated = false;
    auto flush_line = [&]() {
        // A valid line is exactly "<16 hex> <word>" and must have
        // ended in '\n' — a torn tail (no newline) is dropped.
        if (!terminated || line.size() < 18 || line[16] != ' ') {
            line.clear();
            return;
        }
        for (int i = 0; i < 16; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(line[i]))) {
                line.clear();
                return;
            }
        std::string word = line.substr(17);
        for (char w : word)
            if (!std::isalpha(static_cast<unsigned char>(w))) {
                line.clear();
                return;
            }
        JobJournal::Event e;
        e.digest = std::strtoull(line.substr(0, 16).c_str(), nullptr, 16);
        e.name = std::move(word);
        out.push_back(std::move(e));
        line.clear();
    };
    while ((c = std::fgetc(f)) != EOF) {
        if (c == '\n') {
            terminated = true;
            flush_line();
            terminated = false;
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    std::fclose(f);
}

/**
 * @return the current size of append-mode stream @p f.  ftell() right
 *         after fopen("ab") is implementation-defined until the first
 *         write (glibc reports 0), so seek to the end explicitly.
 */
std::uint64_t
appendSize(std::FILE *f)
{
    if (std::fseek(f, 0, SEEK_END) != 0)
        return 0;
    long pos = std::ftell(f);
    return pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

} // namespace

JobJournal::JobJournal(std::string path, std::uint64_t rotate_bytes,
                       unsigned keep_segments)
    : path_(std::move(path)), rotateBytes_(rotate_bytes),
      keepSegments_(keep_segments)
{
    // Resume segment numbering past whatever a previous life sealed.
    for (const std::string &seg : segments()) {
        std::uint64_t seq = segmentSeq(
            fs::path(path_).filename().string(),
            fs::path(seg).filename().string());
        nextSeq_ = std::max(nextSeq_, seq + 1);
    }
    f_ = std::fopen(path_.c_str(), "ab");
    if (!f_) {
        vpc_warn("journal: cannot open {} for append", path_);
        return;
    }
    size_ = appendSize(f_);
}

JobJournal::~JobJournal()
{
    if (f_)
        std::fclose(f_);
}

void
JobJournal::append(std::uint64_t digest, const std::string &event)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!f_)
        return;
    int n = std::fprintf(f_, "%016llx %s\n",
                         static_cast<unsigned long long>(digest),
                         event.c_str());
    std::fflush(f_);
    if (n > 0)
        size_ += static_cast<std::uint64_t>(n);
    if (rotateBytes_ != 0 && size_ > rotateBytes_)
        rotate();
}

void
JobJournal::rotate()
{
    std::fclose(f_);
    f_ = nullptr;
    std::string sealed = path_ + "." + std::to_string(nextSeq_);
    std::error_code ec;
    fs::rename(path_, sealed, ec);
    if (ec) {
        // Keep appending to the oversized active file rather than
        // lose events; rotation retries after the next append.
        vpc_warn("journal: cannot seal {} -> {}: {}", path_, sealed,
                 ec.message());
    } else {
        ++nextSeq_;
        if (keepSegments_ != 0) {
            std::vector<std::string> segs = segments();
            while (segs.size() > keepSegments_) {
                fs::remove(segs.front(), ec);
                segs.erase(segs.begin());
            }
        }
    }
    f_ = std::fopen(path_.c_str(), "ab");
    if (!f_) {
        vpc_warn("journal: cannot reopen {} after rotation", path_);
        return;
    }
    size_ = appendSize(f_);
}

std::vector<std::string>
JobJournal::segments() const
{
    std::vector<std::pair<std::uint64_t, std::string>> found;
    fs::path p(path_);
    std::string base = p.filename().string();
    std::error_code ec;
    fs::path dir = p.parent_path().empty() ? "." : p.parent_path();
    for (const auto &ent : fs::directory_iterator(dir, ec)) {
        std::uint64_t seq =
            segmentSeq(base, ent.path().filename().string());
        if (seq != 0)
            found.emplace_back(seq, ent.path().string());
    }
    std::sort(found.begin(), found.end());
    std::vector<std::string> out;
    out.reserve(found.size());
    for (auto &[seq, path] : found)
        out.push_back(std::move(path));
    return out;
}

std::vector<JobJournal::Event>
JobJournal::replay() const
{
    std::vector<Event> out;
    for (const std::string &seg : segments())
        parseInto(seg, out);
    parseInto(path_, out);
    return out;
}

std::unordered_map<std::uint64_t, unsigned>
JobJournal::replayAttempts() const
{
    std::unordered_map<std::uint64_t, unsigned> attempts;
    for (const Event &e : replay())
        if (e.name == "start")
            ++attempts[e.digest];
    return attempts;
}

} // namespace vpc
