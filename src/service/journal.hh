/**
 * @file
 * Append-only job journal: the daemon's memory across crashes.
 *
 * The spool's rename-based state machine is crash-safe but memoryless
 * — after `running/X` is requeued to `pending/X` nothing in the spool
 * says the job already ran (and failed, or timed out) twice.  The
 * journal supplies that history: one text line per lifecycle event,
 * appended and flushed before the corresponding spool transition, so
 * a restarted daemon can count prior attempts and quarantine a poison
 * job instead of retrying it forever.
 *
 * Format: `<16-hex-digest> <event>\n`, events being start / done /
 * fail / requeue / quarantine / recover.  Recovery tolerates torn
 * writes: a process killed mid-append leaves a final line without a
 * terminating newline (or with garbage), and replay() skips any line
 * that does not parse exactly — losing at most one event, never
 * misreading one.  The journal is advisory history, not the source
 * of truth (the spool is), so a skipped torn line only costs one
 * uncounted attempt.
 *
 * Rotation: an always-on daemon serving thousands of jobs would grow
 * a single log without bound, so the journal optionally rotates.
 * When the active file exceeds @c rotate_bytes after an append it is
 * sealed by renaming to `<path>.<N>` (N ascending from 1, resuming
 * past any segments found on disk) and a fresh active file is opened.
 * replay() parses every sealed segment in ascending order and then
 * the active file, so attempt counts survive any number of rotations
 * and daemon restarts.  With @c keep_segments > 0 only that many
 * newest sealed segments are retained; pruning forgets the oldest
 * history, which is sound for an advisory log — at worst a poison
 * job whose failures were pruned earns a fresh round of attempts.
 */

#ifndef VPC_SERVICE_JOURNAL_HH
#define VPC_SERVICE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vpc
{

/** Append-only, torn-write-tolerant, rotating job event log. */
class JobJournal
{
  public:
    /** One parsed journal line. */
    struct Event
    {
        std::uint64_t digest = 0;
        std::string name;
    };

    /**
     * Open (creating if needed) the journal at @p path for append.
     *
     * @param rotate_bytes seal the active file once it grows past
     *        this many bytes (0 = never rotate)
     * @param keep_segments retain at most this many sealed segments,
     *        pruning the oldest (0 = keep all)
     */
    explicit JobJournal(std::string path,
                        std::uint64_t rotate_bytes = 0,
                        unsigned keep_segments = 0);
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Append one event line and flush it to the OS.  Thread-safe:
     * the daemon's scheduling thread and the socket transport thread
     * both journal (admission vs. settlement).
     */
    void append(std::uint64_t digest, const std::string &event);

    /**
     * Parse sealed segments (ascending) then the active journal;
     * malformed or torn lines are skipped.  Reads the files fresh
     * (not the append handle), so it sees other writers' history too.
     */
    std::vector<Event> replay() const;

    /** @return per-digest count of "start" events (attempts so far). */
    std::unordered_map<std::uint64_t, unsigned> replayAttempts() const;

    /** @return sealed segment paths, oldest first. */
    std::vector<std::string> segments() const;

    const std::string &path() const { return path_; }

  private:
    void rotate(); //!< caller holds mu_

    mutable std::mutex mu_;
    std::string path_;
    std::FILE *f_ = nullptr;
    std::uint64_t rotateBytes_ = 0;
    unsigned keepSegments_ = 0;
    std::uint64_t size_ = 0;   //!< active-file bytes (append handle)
    std::uint64_t nextSeq_ = 1; //!< next sealed segment number
};

} // namespace vpc

#endif // VPC_SERVICE_JOURNAL_HH
