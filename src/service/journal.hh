/**
 * @file
 * Append-only job journal: the daemon's memory across crashes.
 *
 * The spool's rename-based state machine is crash-safe but memoryless
 * — after `running/X` is requeued to `pending/X` nothing in the spool
 * says the job already ran (and failed, or timed out) twice.  The
 * journal supplies that history: one text line per lifecycle event,
 * appended and flushed before the corresponding spool transition, so
 * a restarted daemon can count prior attempts and quarantine a poison
 * job instead of retrying it forever.
 *
 * Format: `<16-hex-digest> <event>\n`, events being start / done /
 * fail / requeue / quarantine / recover.  Recovery tolerates torn
 * writes: a process killed mid-append leaves a final line without a
 * terminating newline (or with garbage), and replay() skips any line
 * that does not parse exactly — losing at most one event, never
 * misreading one.  The journal is advisory history, not the source
 * of truth (the spool is), so a skipped torn line only costs one
 * uncounted attempt.
 */

#ifndef VPC_SERVICE_JOURNAL_HH
#define VPC_SERVICE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace vpc
{

/** Append-only, torn-write-tolerant job event log. */
class JobJournal
{
  public:
    /** One parsed journal line. */
    struct Event
    {
        std::uint64_t digest = 0;
        std::string name;
    };

    /** Open (creating if needed) the journal at @p path for append. */
    explicit JobJournal(std::string path);
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /** Append one event line and flush it to the OS. */
    void append(std::uint64_t digest, const std::string &event);

    /**
     * Parse the whole journal; malformed or torn lines are skipped.
     * Reads the file fresh (not the append handle), so it sees other
     * writers' history too.
     */
    std::vector<Event> replay() const;

    /** @return per-digest count of "start" events (attempts so far). */
    std::unordered_map<std::uint64_t, unsigned> replayAttempts() const;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *f_ = nullptr;
};

} // namespace vpc

#endif // VPC_SERVICE_JOURNAL_HH
