/**
 * @file
 * Client side of the sweep service: submit, wait, fetch — and degrade
 * gracefully to local execution when no daemon is alive.
 *
 * The client and the daemon share two rendezvous points and nothing
 * else: the spool (jobs travel in, lifecycle state comes back) and
 * the run cache directory (results come back, bit-exact).  There is
 * no socket and no wire protocol — every interaction is an atomic
 * rename on a shared filesystem, so a client can outlive daemons,
 * daemons can outlive clients, and a SIGKILL on either side never
 * corrupts the other.
 *
 * Degradation contract (runJob): if a live daemon owns the spool the
 * job is submitted and awaited; if there is no daemon — or the daemon
 * dies while the job is still queued or running — the client computes
 * the job in-process against the same run cache directory.  Either
 * path yields bit-identical results (the run cache differential tests
 * enforce it), so callers never need to know which one served them.
 */

#ifndef VPC_SERVICE_CLIENT_HH
#define VPC_SERVICE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "service/spool.hh"
#include "system/run_cache.hh"

namespace vpc
{

/** How runJob() ultimately obtained its result. */
enum class ServedBy
{
    Daemon, //!< submitted to and completed by a live daemon
    Local,  //!< computed in-process (no daemon, or daemon died)
};

/** Submit/await/fetch client over a shared spool (see file comment). */
class ServiceClient
{
  public:
    /**
     * @param spool_dir the daemon's spool root
     * @param cache_dir run cache directory; "" = <spool_dir>/cache
     *        (must match the daemon's, or results cannot be fetched)
     * @param poll_ms wait() poll interval
     */
    explicit ServiceClient(std::string spool_dir,
                           std::string cache_dir = "",
                           std::uint64_t poll_ms = 50);

    /** @return true when a live daemon owns the spool right now. */
    bool daemonAlive() const;

    /**
     * Encode and spool @p job (no-op if already spooled or finished).
     * @return the job digest (its identity everywhere else)
     */
    std::uint64_t submit(const RunJob &job);

    /**
     * Poll until @p digest reaches done/ or failed/, the daemon dies,
     * or @p timeout_ms elapses (0 = wait forever).
     *
     * @return the job's state when polling stopped: Done / Failed are
     *         terminal; Pending / Running mean the daemon died or the
     *         timeout fired with the job still queued
     */
    JobState wait(std::uint64_t digest, std::uint64_t timeout_ms = 0);

    /**
     * Fetch a completed job's record from the shared run cache.
     * @return true and fill @p out on success
     */
    bool fetch(std::uint64_t digest, RunResult &out);

    /** @return the quarantine reason for a failed job ("" if none). */
    std::string failReason(std::uint64_t digest);

    /**
     * The whole round trip with graceful degradation: daemon when
     * alive, local execution otherwise (same cache, same bits).
     *
     * @throws std::runtime_error when the daemon quarantined the job
     *         or the job itself is unrunnable
     */
    RunResult runJob(const RunJob &job, ServedBy *served = nullptr);

    JobSpool &spool() { return *spool_; }
    RunCache &cache() { return *cache_; }

  private:
    std::unique_ptr<JobSpool> spool_;
    std::unique_ptr<RunCache> cache_;
    std::uint64_t pollMs_;
};

} // namespace vpc

#endif // VPC_SERVICE_CLIENT_HH
