/**
 * @file
 * Client side of the sweep service: submit, wait, fetch — and degrade
 * gracefully to local execution when no daemon is alive.
 *
 * Three tiers, fastest first, every one yielding the same bytes:
 *
 *  1. Socket: when the daemon's Unix-socket transport is reachable the
 *     job is submitted in a frame and the completion is *pushed* — no
 *     polling, submit-to-result latency is dispatch + execution.
 *  2. Spool polling: the original shared-filesystem rendezvous — jobs
 *     travel in by atomic rename, lifecycle state comes back from the
 *     state directories at poll_ms granularity.  Used when the socket
 *     is absent (remote filesystem, --no-socket) or dies mid-wait.
 *  3. Local: no live daemon at all — the client computes the job
 *     in-process against the same run cache directory.
 *
 * Results are bit-identical across all three (the run cache
 * differential tests enforce it), so callers never need to know which
 * tier served them.  A SIGKILL on either side never corrupts the
 * other: the spool stays the durability layer — a socket submit is
 * spooled + journaled by the daemon before it is acked.
 */

#ifndef VPC_SERVICE_CLIENT_HH
#define VPC_SERVICE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "service/spool.hh"
#include "service/transport.hh"
#include "system/run_cache.hh"

namespace vpc
{

/** How runJob() ultimately obtained its result. */
enum class ServedBy
{
    Socket, //!< pushed back over the daemon's socket transport
    Daemon, //!< spool-polled from a live daemon
    Local,  //!< computed in-process (no daemon, or daemon died)
};

/** Submit/await/fetch client over a shared spool (see file comment). */
class ServiceClient
{
  public:
    /**
     * @param spool_dir the daemon's spool root
     * @param cache_dir run cache directory; "" = <spool_dir>/cache
     *        (must match the daemon's, or results cannot be fetched)
     * @param poll_ms wait() poll interval
     * @param use_socket try the socket transport first (tier 1);
     *        false forces the spool-polling/local tiers
     */
    explicit ServiceClient(std::string spool_dir,
                           std::string cache_dir = "",
                           std::uint64_t poll_ms = 50,
                           bool use_socket = true);

    /** @return true when a live daemon owns the spool right now. */
    bool daemonAlive() const;

    /**
     * @return true when connected to the daemon's socket transport
     *         (connecting on first call; reconnecting after a dead
     *         peer only when a new daemon owns the spool)
     */
    bool socketConnected();

    /**
     * Encode and spool @p job (no-op if already spooled or finished).
     * @return the job digest (its identity everywhere else)
     */
    std::uint64_t submit(const RunJob &job);

    /**
     * Poll until @p digest reaches done/ or failed/, the daemon dies,
     * or @p timeout_ms elapses (0 = wait forever).
     *
     * @return the job's state when polling stopped: Done / Failed are
     *         terminal; Pending / Running mean the daemon died or the
     *         timeout fired with the job still queued
     */
    JobState wait(std::uint64_t digest, std::uint64_t timeout_ms = 0);

    /**
     * Fetch a completed job's record from the shared run cache.
     * @return true and fill @p out on success
     */
    bool fetch(std::uint64_t digest, RunResult &out);

    /** @return the quarantine reason for a failed job ("" if none). */
    std::string failReason(std::uint64_t digest);

    /**
     * The whole round trip with graceful degradation: daemon when
     * alive, local execution otherwise (same cache, same bits).
     *
     * @throws std::runtime_error when the daemon quarantined the job
     *         or the job itself is unrunnable
     */
    RunResult runJob(const RunJob &job, ServedBy *served = nullptr);

    JobSpool &spool() { return *spool_; }
    RunCache &cache() { return *cache_; }

  private:
    /**
     * Tier-1 round trip: submit over the socket, wait for the pushed
     * completion.  @return true and fill @p out on a terminal result
     * (throws on quarantine); false = socket unusable, fall back.
     */
    bool runJobSocket(const RunJob &job, std::uint64_t digest,
                      RunResult &out);

    std::unique_ptr<JobSpool> spool_;
    std::unique_ptr<RunCache> cache_;
    std::uint64_t pollMs_;
    bool useSocket_;
    std::unique_ptr<TransportClient> transport_;
    /** Daemon pid the current transport connection handshook with. */
    std::uint64_t transportPid_ = 0;
};

} // namespace vpc

#endif // VPC_SERVICE_CLIENT_HH
