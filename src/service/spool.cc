#include "service/spool.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include <signal.h>
#include <unistd.h>

#include "sim/logging.hh"
#include "system/run_cache.hh"

namespace fs = std::filesystem;

namespace vpc
{

namespace
{

constexpr const char *kStateDirs[] = {"", "pending", "running", "done",
                                      "failed"};

bool
slurpFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

/**
 * Publish @p text at @p path via pid-stamped temp + rename, the same
 * protocol (and janitor) as the run cache's record store.
 */
bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    static std::atomic<std::uint64_t> seq{0};
    std::string tmp = format("{}.tmp.{}.{}", path,
                             static_cast<std::uint64_t>(::getpid()),
                             seq.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
              text.size() && !std::ferror(f);
    ok = (std::fclose(f) == 0) && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** Parse "job-<16 hex>" back into a digest. */
bool
parseJobName(const std::string &name, std::uint64_t &digest_out)
{
    if (name.size() != 4 + 16 || name.compare(0, 4, "job-") != 0)
        return false;
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(name.c_str() + 4, &end, 16);
    if (errno != 0 || end != name.c_str() + name.size())
        return false;
    digest_out = v;
    return true;
}

} // namespace

const char *
jobStateName(JobState st)
{
    switch (st) {
    case JobState::Absent: return "absent";
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    }
    return "?";
}

bool
processAlive(std::uint64_t pid)
{
    if (pid == 0 || pid > static_cast<std::uint64_t>(INT32_MAX))
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    // EPERM means the pid exists but belongs to someone else.
    return errno == EPERM;
}

JobSpool::JobSpool(std::string root) : root_(std::move(root))
{
    std::error_code ec;
    for (const char *d : kStateDirs) {
        std::string dir = *d ? root_ + "/" + d : root_;
        fs::create_directories(dir, ec);
        if (ec)
            vpc_warn("spool: cannot create {}: {}", dir, ec.message());
        RunCache::gcStaleTemps(dir);
    }
}

std::string
JobSpool::jobName(std::uint64_t digest)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job-%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::string
JobSpool::stateDir(JobState st) const
{
    return root_ + "/" + kStateDirs[static_cast<int>(st)];
}

std::string
JobSpool::jobPath(JobState st, std::uint64_t digest) const
{
    return stateDir(st) + "/" + jobName(digest);
}

JobState
JobSpool::submit(std::uint64_t digest, const std::string &text)
{
    JobState cur = state(digest);
    if (cur != JobState::Absent)
        return cur;
    if (!writeFileAtomic(jobPath(JobState::Pending, digest), text))
        return JobState::Absent;
    return JobState::Pending;
}

bool
JobSpool::claim(std::uint64_t &digest_out, std::string &text_out)
{
    struct Candidate
    {
        fs::file_time_type mtime;
        std::string name;
        std::uint64_t digest;
    };
    std::vector<Candidate> cands;
    std::error_code ec;
    for (const auto &e :
         fs::directory_iterator(stateDir(JobState::Pending), ec)) {
        std::uint64_t d;
        std::string name = e.path().filename().string();
        if (!parseJobName(name, d))
            continue;
        std::error_code mec;
        auto mt = fs::last_write_time(e.path(), mec);
        if (mec)
            mt = fs::file_time_type::min(); // vanished: sort first, lose race
        cands.push_back({mt, name, d});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });
    for (const Candidate &c : cands) {
        if (!moveJob(JobState::Pending, JobState::Running, c.digest))
            continue; // lost the race to another claimant
        if (slurpFile(jobPath(JobState::Running, c.digest), text_out)) {
            digest_out = c.digest;
            return true;
        }
        // Claimed but unreadable — quarantine rather than spin on it.
        markFailed(c.digest, "job file unreadable after claim");
    }
    return false;
}

bool
JobSpool::claimJob(std::uint64_t digest, std::string &text_out)
{
    if (!moveJob(JobState::Pending, JobState::Running, digest))
        return false;
    if (slurpFile(jobPath(JobState::Running, digest), text_out))
        return true;
    markFailed(digest, "job file unreadable after claim");
    return false;
}

bool
JobSpool::moveJob(JobState from, JobState to, std::uint64_t digest)
{
    return std::rename(jobPath(from, digest).c_str(),
                       jobPath(to, digest).c_str()) == 0;
}

bool
JobSpool::markDone(std::uint64_t digest)
{
    return moveJob(JobState::Running, JobState::Done, digest);
}

bool
JobSpool::markFailed(std::uint64_t digest, const std::string &reason)
{
    if (!moveJob(JobState::Running, JobState::Failed, digest))
        return false;
    writeFileAtomic(jobPath(JobState::Failed, digest) + ".err", reason);
    return true;
}

bool
JobSpool::requeue(std::uint64_t digest)
{
    return moveJob(JobState::Running, JobState::Pending, digest);
}

bool
JobSpool::rejectPending(std::uint64_t digest, const std::string &reason)
{
    if (!moveJob(JobState::Pending, JobState::Failed, digest))
        return false;
    writeFileAtomic(jobPath(JobState::Failed, digest) + ".err", reason);
    return true;
}

std::size_t
JobSpool::recoverOrphans()
{
    std::size_t n = 0;
    for (std::uint64_t d : list(JobState::Running))
        if (requeue(d))
            ++n;
    if (n)
        vpc_inform("spool: requeued {} orphaned running job(s)", n);
    return n;
}

JobState
JobSpool::state(std::uint64_t digest) const
{
    std::error_code ec;
    for (JobState st : {JobState::Done, JobState::Failed,
                        JobState::Running, JobState::Pending}) {
        if (fs::exists(jobPath(st, digest), ec))
            return st;
    }
    return JobState::Absent;
}

std::vector<std::uint64_t>
JobSpool::list(JobState st) const
{
    std::vector<std::uint64_t> out;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(stateDir(st), ec)) {
        std::uint64_t d;
        if (parseJobName(e.path().filename().string(), d))
            out.push_back(d);
    }
    return out;
}

std::string
JobSpool::failReason(std::uint64_t digest) const
{
    std::string text;
    if (!slurpFile(jobPath(JobState::Failed, digest) + ".err", text))
        return "";
    return text;
}

bool
JobSpool::acquire()
{
    std::uint64_t owner = ownerPid();
    std::uint64_t self = static_cast<std::uint64_t>(::getpid());
    if (owner != 0 && owner != self)
        return false;
    return writeFileAtomic(root_ + "/daemon.pid",
                           format("{}\n", self));
}

void
JobSpool::release()
{
    if (ownerPid() == static_cast<std::uint64_t>(::getpid()))
        std::remove((root_ + "/daemon.pid").c_str());
}

std::uint64_t
JobSpool::ownerPid() const
{
    std::string text;
    if (!slurpFile(root_ + "/daemon.pid", text))
        return 0;
    errno = 0;
    char *end = nullptr;
    std::uint64_t pid = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str())
        return 0;
    return processAlive(pid) ? pid : 0;
}

} // namespace vpc
