#include "service/job_codec.hh"

#include <cstdio>
#include <cstdlib>
#include <type_traits>

#include "sim/logging.hh"
#include "system/record_io.hh"

namespace vpc
{

namespace
{

/**
 * The scalar config fields, enumerated once for both directions.
 * Walker is called with every unsigned field (doubles ride in a
 * separate bits array so the array stays uniformly integral).  The
 * order must be stable — it is checked end-to-end by the embedded
 * digest, not by this file alone.
 */
template <typename U, typename C>
void
walkConfigScalars(U &&u, C &cfg)
{
    u(cfg.numProcessors);

    auto &c = cfg.core;
    u(c.dispatchWidth);
    u(c.robEntries);
    u(c.retireWidth);
    u(c.loadQueueEntries);
    u(c.storeQueueEntries);
    u(c.lsuPorts);
    u(c.storeCommitWidth);

    auto &l1 = cfg.l1;
    u(l1.sizeBytes);
    u(l1.ways);
    u(l1.lineBytes);
    u(l1.hitLatency);
    u(l1.mshrs);
    u(l1.prefetch.enable);
    u(l1.prefetch.streams);
    u(l1.prefetch.degree);
    u(l1.prefetch.confidence);

    auto &l2 = cfg.l2;
    u(l2.banks);
    u(l2.sizeBytes);
    u(l2.ways);
    u(l2.lineBytes);
    u(l2.tagLatency);
    u(l2.tagWriteAccesses);
    u(l2.dataLatency);
    u(l2.dataWriteAccesses);
    u(l2.busBeatCycles);
    u(l2.busBytes);
    u(l2.busOccupancyOverride);
    u(l2.interconnectLatency);
    u(l2.stateMachinesPerThread);
    u(l2.sgbEntriesPerThread);
    u(l2.sgbHighWater);
    u(l2.readClaimEntries);

    auto &m = cfg.mem;
    u(m.ranksPerChannel);
    u(m.banksPerRank);
    u(m.transactionEntries);
    u(m.writeEntries);
    u(m.tRcd);
    u(m.tCl);
    u(m.tRp);
    u(m.tBurst);
    u(m.tWr);
    u(m.ctrlLatency);
    u(m.sharedChannel);
    u(m.schedulerPolicy);

    u(cfg.arbiterPolicy);
    u(cfg.capacityPolicy);

    auto &v = cfg.verify;
    u(v.paranoid);
    u(v.auditInterval);
    u(v.watchdogCycles);
    u(v.faultSeed);

    u(cfg.kernelSkip);
    u(cfg.kernelThreads);
    u(cfg.kernelFuse);
    u(cfg.allowUnallocatedShares);
    u(cfg.vpcIntraThreadRow);
    u(cfg.vpcIdleReset);
    u(cfg.vpcWorkConserving);
}

} // namespace

std::string
encodeJob(const RunJob &job)
{
    RunJob j = job;
    j.config.validate();
    std::uint64_t digest = runDigest(j);

    std::vector<std::uint64_t> cfg;
    walkConfigScalars(
        [&cfg](auto v) { cfg.push_back(static_cast<std::uint64_t>(v)); },
        j.config);

    std::vector<double> dbls{j.config.core.lsuRejectProb,
                             j.config.verify.faultRate};

    std::vector<double> shares;
    for (const auto &s : j.config.shares) {
        shares.push_back(s.phi);
        shares.push_back(s.beta);
    }

    std::vector<std::uint64_t> l1pf;
    for (const auto &p : j.config.l1PrefetchPerThread) {
        l1pf.push_back(p.enable ? 1 : 0);
        l1pf.push_back(p.streams);
        l1pf.push_back(p.degree);
        l1pf.push_back(p.confidence);
    }

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = ::open_memstream(&buf, &len);
    if (!f)
        vpc_fatal("job codec: open_memstream failed");

    std::fprintf(f, "{\"svc_schema\": %llu, \"digest\": %llu, ",
                 static_cast<unsigned long long>(kJobCodecSchema),
                 static_cast<unsigned long long>(digest));
    writeRecordVec(f, "cfg", cfg);
    writeRecordVec(f, "cfg_dbl", recordBits(dbls));
    writeRecordVec(f, "shares", recordBits(shares));
    writeRecordVec(f, "l1pf", l1pf);
    std::fprintf(f, "\"warmup\": %llu, \"measure\": %llu, "
                 "\"threads\": %llu",
                 static_cast<unsigned long long>(j.warmup),
                 static_cast<unsigned long long>(j.measure),
                 static_cast<unsigned long long>(j.workloads.size()));
    for (std::size_t t = 0; t < j.workloads.size(); ++t) {
        const WorkloadKey &w = j.workloads[t];
        if (!recordStringSafe(w.spec))
            vpc_fatal("job codec: workload spec '{}' cannot travel as "
                      "a record string", w.spec);
        std::fprintf(f, ", \"wl%zu_spec\": \"%s\", \"wl%zu_base\": %llu"
                     ", \"wl%zu_seed\": %llu",
                     t, w.spec.c_str(),
                     t, static_cast<unsigned long long>(w.base),
                     t, static_cast<unsigned long long>(w.seed));
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::string text(buf, len);
    std::free(buf);
    return text;
}

bool
decodeJob(const std::string &text, RunJob &out)
{
    RecordParser p(text);
    if (!p.parse())
        return false;

    std::uint64_t schema = 0, digest = 0;
    if (!p.getInt("svc_schema", schema) || schema != kJobCodecSchema)
        return false;
    if (!p.getInt("digest", digest))
        return false;

    std::vector<std::uint64_t> cfg, cfg_dbl, shares, l1pf;
    if (!p.getArray("cfg", cfg) || !p.getArray("cfg_dbl", cfg_dbl) ||
        !p.getArray("shares", shares) || !p.getArray("l1pf", l1pf))
        return false;
    if (cfg_dbl.size() != 2 || shares.size() % 2 != 0 ||
        l1pf.size() % 4 != 0)
        return false;

    RunJob job;
    std::size_t i = 0;
    bool underflow = false;
    walkConfigScalars(
        [&](auto &field) {
            if (i >= cfg.size()) {
                underflow = true;
                return;
            }
            field = static_cast<std::decay_t<decltype(field)>>(cfg[i++]);
        },
        job.config);
    if (underflow || i != cfg.size())
        return false; // field-count skew: stale or foreign record

    std::vector<double> dbls = recordDoubles(cfg_dbl);
    job.config.core.lsuRejectProb = dbls[0];
    job.config.verify.faultRate = dbls[1];

    std::vector<double> sh = recordDoubles(shares);
    job.config.shares.clear();
    for (std::size_t s = 0; s + 1 < sh.size(); s += 2)
        job.config.shares.push_back({sh[s], sh[s + 1]});

    job.config.l1PrefetchPerThread.clear();
    for (std::size_t s = 0; s + 3 < l1pf.size(); s += 4) {
        PrefetchConfig pf;
        pf.enable = l1pf[s] != 0;
        pf.streams = static_cast<unsigned>(l1pf[s + 1]);
        pf.degree = static_cast<unsigned>(l1pf[s + 2]);
        pf.confidence = static_cast<unsigned>(l1pf[s + 3]);
        job.config.l1PrefetchPerThread.push_back(pf);
    }

    std::uint64_t warmup = 0, measure = 0, threads = 0;
    if (!p.getInt("warmup", warmup) || !p.getInt("measure", measure) ||
        !p.getInt("threads", threads))
        return false;
    job.warmup = warmup;
    job.measure = measure;
    if (threads == 0 || threads > 1024)
        return false;

    for (std::uint64_t t = 0; t < threads; ++t) {
        WorkloadKey w;
        std::string pre = "wl" + std::to_string(t);
        std::uint64_t base = 0, seed = 0;
        if (!p.getString(pre + "_spec", w.spec) ||
            !p.getInt(pre + "_base", base) ||
            !p.getInt(pre + "_seed", seed))
            return false;
        w.base = base;
        w.seed = seed;
        job.workloads.push_back(w);
    }

    // Reject insane configs before digesting: runDigest() normalizes
    // through validate(), which exits the process on inconsistency —
    // a corrupt job file must degrade to "decode failed", not kill
    // the daemon.
    job.config.normalize();
    if (!job.config.check().empty())
        return false;

    // End-to-end integrity: the decoded job must digest to the value
    // the encoder embedded, or the record does not describe the job
    // the client submitted (corruption, or encoder/decoder skew).
    if (runDigest(job) != digest)
        return false;

    out = std::move(job);
    return true;
}

} // namespace vpc
