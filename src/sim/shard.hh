/**
 * @file
 * Cross-shard message formats for the shard-parallel kernel.
 *
 * Both directions carry a full SchedKey stamped by the *sending*
 * shard's EventQueue::makeKey, so the receiver can scheduleKeyed()
 * the message and land it in exactly the slot the sequential kernel's
 * global sequence would have given it.  The remaining fields are
 * deliberately generic — the kernel moves them without interpreting
 * them; the model glue in CmpSystem decides what they mean.
 */

#ifndef VPC_SIM_SHARD_HH
#define VPC_SIM_SHARD_HH

#include <cstdint>

#include "sim/sched_key.hh"
#include "sim/types.hh"

namespace vpc
{

/**
 * Core-to-uncore request: a store, load miss, or prefetch crossing
 * the interconnect.  key.when is the arrival cycle at the uncore
 * (send cycle + interconnect latency).
 */
struct CrossMsg
{
    SchedKey key;
    ThreadId thread = 0;
    Addr line = 0;
    std::uint8_t bank = 0;
    bool isStore = false;
    bool prefetch = false;
};

/**
 * Uncore-to-core delivery.  kind 0 is a line fill (key.when is the
 * critical-word cycle); kind 1 is a store-gather-buffer occupancy
 * snapshot effective from cycle eff, which the core shard applies to
 * its local occupancy table before executing eff (key is unused).
 */
struct CoreMsg
{
    SchedKey key;
    Addr line = 0;
    Cycle eff = 0;
    std::uint8_t kind = 0; //!< 0 = fill, 1 = occupancy
    std::uint8_t bank = 0;
    std::uint16_t occ = 0;
};

} // namespace vpc

#endif // VPC_SIM_SHARD_HH
