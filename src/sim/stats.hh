/**
 * @file
 * Lightweight statistics primitives.
 *
 * Every hardware model owns its statistics as plain members of these
 * types; a StatGroup provides named registration so benches and tests
 * can enumerate and print them uniformly.
 */

#ifndef VPC_SIM_STATS_HH
#define VPC_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace vpc
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { count_ += n; }

    /** @return the accumulated count. */
    std::uint64_t value() const { return count_; }

    /** Reset to zero. */
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/**
 * Tracks the busy fraction of a timed resource.
 *
 * A resource reports each service interval with addBusy(); utilization
 * over a measurement window is busy-cycles / window-cycles.
 */
class UtilizationStat
{
  public:
    /** Account @p cycles of busy time. */
    void addBusy(Cycle cycles) { busyCycles_ += cycles; }

    /** @return accumulated busy cycles. */
    Cycle busyCycles() const { return busyCycles_; }

    /**
     * @param window total elapsed cycles of the measurement interval
     * @return utilization in [0, 1] (clamped)
     */
    double
    utilization(Cycle window) const
    {
        if (window == 0)
            return 0.0;
        double u = static_cast<double>(busyCycles_) /
                   static_cast<double>(window);
        return u > 1.0 ? 1.0 : u;
    }

    /** Reset accumulated busy time. */
    void reset() { busyCycles_ = 0; }

  private:
    Cycle busyCycles_ = 0;
};

/** Running mean/min/max of a sampled scalar (e.g. queue latency). */
class SampleStat
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
        if (v < min_ || n_ == 1)
            min_ = v;
        if (v > max_ || n_ == 1)
            max_ = v;
    }

    /** @return number of samples recorded. */
    std::uint64_t count() const { return n_; }

    /** @return arithmetic mean (0 if no samples). */
    double mean() const { return n_ ? sum_ / n_ : 0.0; }

    /** @return smallest sample (0 if none). */
    double min() const { return n_ ? min_ : 0.0; }

    /** @return largest sample (0 if none). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram for latency distributions.
 *
 * Buckets are [0,w), [w,2w), ... plus an overflow bucket.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets number of regular buckets (an overflow bucket
     *        is appended automatically)
     */
    explicit Histogram(std::uint64_t bucket_width = 8,
                       std::size_t num_buckets = 32)
        : width(bucket_width ? bucket_width : 1),
          buckets(num_buckets + 1, 0)
    {}

    /** Record one value. */
    void
    sample(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / width);
        if (idx >= buckets.size() - 1)
            idx = buckets.size() - 1;
        ++buckets[idx];
        ++total_;
    }

    /** @return count in bucket @p i (last bucket = overflow). */
    std::uint64_t bucketCount(std::size_t i) const { return buckets.at(i); }

    /** @return number of buckets including overflow. */
    std::size_t numBuckets() const { return buckets.size(); }

    /** @return total samples. */
    std::uint64_t total() const { return total_; }

    /** @return bucket width. */
    std::uint64_t bucketWidth() const { return width; }

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total_ = 0;
};

/**
 * Per-run counters maintained by the simulation kernel itself (see
 * Simulator): how many cycles actually executed, how many were
 * fast-forwarded by the quiescence optimization, and how much component
 * and event work ran.  These make kernel speedups observable — a bench
 * can report events/cycle and skip ratios instead of anecdotes.
 *
 * Kernel counters are deliberately *not* part of the model statistics
 * block (stats_report.cc): ticksExecuted and cyclesSkipped legitimately
 * differ between a skipping and a --no-skip run of the same config,
 * while the model stats must stay bit-identical.
 */
struct KernelStats
{
    /** Cycles stepped one-by-one (events + due ticks executed). */
    Counter cyclesExecuted;
    /** Cycles fast-forwarded because the whole machine was quiescent. */
    Counter cyclesSkipped;
    /** Total Ticking::tick() invocations. */
    Counter ticksExecuted;
    /** Total events fired from the EventQueue. */
    Counter eventsFired;
    /** Cross-shard messages sent (sharded kernel only). */
    Counter messagesSent;
    /** Timing-wheel overflow/L1 cascade operations. */
    Counter wheelCascades;
    /** Shard advance iterations (sharded kernel only). */
    Counter epochs;
    /** Advance iterations blocked on a peer frontier (sharded only). */
    Counter barrierStalls;

    void
    reset()
    {
        cyclesExecuted.reset();
        cyclesSkipped.reset();
        ticksExecuted.reset();
        eventsFired.reset();
        messagesSent.reset();
        wheelCascades.reset();
        epochs.reset();
        barrierStalls.reset();
    }
};

/**
 * A named collection of statistic references for uniform reporting.
 *
 * Models register their stats with addCounter()/addUtilization(); the
 * group does not own the stats, it only references them, so it must not
 * outlive the registering model.
 */
class StatGroup
{
  public:
    /** Register a named counter. */
    void
    addCounter(std::string name, const Counter &c)
    {
        counters_.emplace_back(std::move(name), &c);
    }

    /** Register a named utilization stat. */
    void
    addUtilization(std::string name, const UtilizationStat &u)
    {
        utils_.emplace_back(std::move(name), &u);
    }

    /** @return all registered counters as (name, value) pairs. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(counters_.size());
        for (const auto &[name, c] : counters_)
            out.emplace_back(name, c->value());
        return out;
    }

    /**
     * @param window elapsed cycles
     * @return all registered utilizations as (name, fraction) pairs
     */
    std::vector<std::pair<std::string, double>>
    utilizationValues(Cycle window) const
    {
        std::vector<std::pair<std::string, double>> out;
        out.reserve(utils_.size());
        for (const auto &[name, u] : utils_)
            out.emplace_back(name, u->utilization(window));
        return out;
    }

  private:
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const UtilizationStat *>> utils_;
};

} // namespace vpc

#endif // VPC_SIM_STATS_HH
