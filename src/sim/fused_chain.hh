/**
 * @file
 * Fused fixed-latency event chains.
 *
 * Many hot event-queue hops have a latency that is a configuration
 * constant and a handler that is a pure state write consumed only by
 * later ticks: the L1 hit completion (hitLatency), the crossbar
 * transit to an L2 bank (interconnectLatency), the critical-word
 * response beat (busBeatCycles).  Routing those through the timing
 * wheel pays closure construction, placement, cascade and
 * deterministic ordering cost for hops whose order the model can
 * prove irrelevant.
 *
 * A fused chain is a FIFO side channel for one such hop class:
 * producers push (due-cycle, payload) records, and the kernel drains
 * every record due at the current cycle right after the event queue
 * fires — before any component ticks, so ticks observe exactly the
 * state the event-path delivery would have produced.  Because every
 * record in a lane carries the same constant latency, push order is
 * due order and the drain is a pointer chase down a ring, not a wheel
 * walk.  The payload is plain data handed to a sink bound at
 * construction (DataLane below) — no type erasure, no per-record
 * allocation, no indirect call on the hot path.
 *
 * Legality (see DESIGN.md 5i): a chain may only be fused when (a) its
 * latency is constant for the lane's lifetime, (b) its handlers are
 * pure state writes that no other same-cycle event handler reads, and
 * (c) producer and consumer live on the same shard.  Chains that
 * arbitrate shared state inside the handler (tagDone/dataDone/busDone,
 * memory returns) stay on the event queue.
 *
 * The kernel keeps a cached earliest-due cycle so lanes cost nothing
 * on cycles with no fused work: addFusedChain installs a due hook
 * (setDueHook) that push() min-updates, the kernel compares one Cycle
 * per executed cycle, and only a due drain touches the lanes at all.
 *
 * Counted lanes stand in for events the sharded kernel still fires as
 * real cross-shard events (crossbar transit, critical-word response):
 * their drains increment eventsFired and bill the profiler exactly as
 * the event path would, so kernel statistics stay comparable across
 * kernels.  Uncounted lanes (L1 hit completions) are fused identically
 * in both kernels and vanish from both counts symmetrically.
 */

#ifndef VPC_SIM_FUSED_CHAIN_HH
#define VPC_SIM_FUSED_CHAIN_HH

#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/profiler.hh"
#include "sim/ring.hh"
#include "sim/types.hh"

namespace vpc
{

/** Kernel-side view of one fused chain. */
class FusedChain
{
  public:
    virtual ~FusedChain() = default;

    /**
     * Run every entry due at or before @p now, in push order.
     * @return the number of entries drained.
     */
    virtual std::uint64_t drain(Cycle now) = 0;

    /** @return whether drained entries count as fired events. */
    virtual bool counted() const = 0;

    /** @return the due cycle of the oldest entry, or kCycleMax. */
    virtual Cycle nextDue() const = 0;

    /** @return entries not yet drained. */
    virtual std::size_t pending() const = 0;

    /**
     * Install (or clear) the profiler counted drains bill into; the
     * owning kernel forwards its own setProfiler here.  No-op for
     * chains that never bill.
     */
    virtual void setProfiler(Profiler *) {}

    /**
     * Install the owning kernel's earliest-due cache: push() will
     * min-update *@p hook, so the kernel can skip the lanes entirely
     * on cycles where nothing fused is due.  Passing nullptr detaches
     * (pushes fall back to a private sink).  The hook must outlive the
     * chain's use; the kernel is responsible for re-deriving the exact
     * minimum (via nextDue()) after each drain.
     */
    void setDueHook(Cycle *hook) { dueHook_ = hook ? hook : &selfDue_; }

  protected:
    /** Record that an entry due at @p when was pushed. */
    void
    noteDue(Cycle when)
    {
        if (when < *dueHook_)
            *dueHook_ = when;
    }

  private:
    Cycle selfDue_ = kCycleMax; //!< sink while no kernel is attached
    Cycle *dueHook_ = &selfDue_;
};

/**
 * The one concrete chain shape: a FIFO of (due, owner, payload)
 * records consumed by a sink bound at construction.  @p T must be
 * trivially copyable plain data (the whole point is that a fused hop
 * needs no closure); @p Sink is a stateless-or-small callable invoked
 * as sink(when, payload).  Producers push with the lane's constant
 * latency already applied, so due cycles are monotonically
 * non-decreasing in push order.
 */
template <class T, class Sink>
class DataLane final : public FusedChain
{
  public:
    /**
     * @param counted drains increment eventsFired and bill the
     *        profiler (lanes standing in for counted events);
     *        uncounted lanes never touch either.
     * @param sink consumer invoked for each drained record
     */
    explicit DataLane(bool counted, Sink sink = Sink{})
        : sink_(std::move(sink)), counted_(counted)
    {}

    void setProfiler(Profiler *p) override { prof_ = p; }

    /** Queue @p v for cycle @p when, billed to @p owner. */
    void
    push(Cycle when, Profiler::ComponentId owner, const T &v)
    {
        Entry &e = ring_.emplace_back();
        e.when = when;
        e.owner = owner;
        e.payload = v;
        noteDue(when);
    }

    /** Queue @p v for cycle @p when (uncounted lanes). */
    void
    push(Cycle when, const T &v)
    {
        push(when, Profiler::kUnattributed, v);
    }

    std::uint64_t
    drain(Cycle now) override
    {
        std::uint64_t fired = 0;
        while (!ring_.empty() && ring_.front().when <= now) {
            // Copy out before popping: the sink may push new records
            // (never due this cycle — the latency is a positive
            // constant) and grow the ring under us.
            Entry e = ring_.front();
            ring_.pop_front();
            if (counted_ && prof_ != nullptr) {
                std::uint64_t t0 = Profiler::nowNs();
                sink_(e.when, e.payload);
                prof_->addEvent(e.owner, Profiler::nowNs() - t0);
            } else {
                sink_(e.when, e.payload);
            }
            ++fired;
        }
        return fired;
    }

    bool counted() const override { return counted_; }

    Cycle
    nextDue() const override
    {
        return ring_.empty() ? kCycleMax : ring_.front().when;
    }

    std::size_t pending() const override { return ring_.size(); }

  private:
    struct Entry
    {
        Cycle when = 0;
        Profiler::ComponentId owner = Profiler::kUnattributed;
        T payload{};
    };

    SmallRing<Entry> ring_;
    Sink sink_;
    bool counted_;
    Profiler *prof_ = nullptr;
};

} // namespace vpc

#endif // VPC_SIM_FUSED_CHAIN_HH
