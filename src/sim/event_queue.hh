/**
 * @file
 * Deterministic event queue for delayed callbacks.
 *
 * The simulator is cycle-stepped (see Simulator), but several models
 * need "call me back in N cycles" semantics: DRAM access completion,
 * crossbar transit, data-bus beat completion.  Events scheduled for the
 * same cycle fire in scheduling order, which keeps runs reproducible.
 *
 * Hot-path design: the original implementation stored a std::function
 * per event, which heap-allocates for any capture larger than two
 * pointers — and nearly every event in the machine captures
 * [this, thread, addr, callback].  Events are now intrusive pool nodes:
 * the callable is constructed in-place in a fixed inline buffer inside a
 * slab-allocated node, dispatched through a single function pointer, and
 * the node is recycled on a free list after it fires.  The pending set
 * itself is a binary heap of 24-byte {when, seq, node} entries in a
 * plain vector.  Steady-state scheduling therefore touches the allocator
 * only when the simulation reaches a new high-water mark of in-flight
 * events; callables too large for the inline buffer (none in the tree
 * today) fall back transparently to a heap box.
 */

#ifndef VPC_SIM_EVENT_QUEUE_HH
#define VPC_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vpc
{

/** Orders events by (cycle, insertion sequence). */
class EventQueue
{
  public:
    /**
     * Compatibility alias: schedule() accepts any callable, including a
     * std::function built by older call sites and tests.
     */
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy callables of events that never fired.  The slabs
        // themselves free with the vector.
        for (const Entry &e : heap)
            e.node->destroy(e.node->storage);
    }

    /**
     * Schedule a callable to run at cycle @p when.
     *
     * The callable is moved into pooled inline storage; captures up to
     * kInlineBytes cost no allocation.
     *
     * @pre @p when must not be in the past relative to the last
     *      runDue() call.
     */
    template <class F>
    void
    schedule(Cycle when, F &&cb)
    {
        if (when < lastRun_)
            vpc_panic("event scheduled in the past ({} < {})",
                      when, lastRun_);
        Node *node = makeNode(std::forward<F>(cb));
        heap.push_back(Entry{when, nextSeq++, node});
        std::push_heap(heap.begin(), heap.end(), Entry::later);
    }

    /**
     * Run every event due at or before @p now, in deterministic order.
     * Events may schedule further events (including for @p now).
     *
     * @param now current cycle
     * @return number of events executed
     */
    std::size_t
    runDue(Cycle now)
    {
        // Time only moves forward.  Running the queue backward would
        // re-arm the schedule() past-check against an earlier cycle,
        // quietly re-admitting events scheduled before now().
        if (now < lastRun_)
            vpc_panic("event queue run backward ({} < {})", now,
                      lastRun_);
        lastRun_ = now;
        std::size_t n = 0;
        while (!heap.empty() && heap.front().when <= now) {
            // Detach the node before invoking so the callback may
            // schedule new events without invalidating the heap top.
            // The node returns to the free list only after the call:
            // a reschedule from inside the callback must not reuse the
            // storage the callable still lives in.
            Node *node = heap.front().node;
            std::pop_heap(heap.begin(), heap.end(), Entry::later);
            heap.pop_back();
            node->run(node->storage);
            node->destroy(node->storage);
            release(node);
            ++n;
        }
        return n;
    }

    /** @return cycle of the earliest pending event, or kCycleMax. */
    Cycle
    nextEventCycle() const
    {
        return heap.empty() ? kCycleMax : heap.front().when;
    }

    /** @return the cycle passed to the most recent runDue() call. */
    Cycle lastRunCycle() const { return lastRun_; }

    /** @return true if no events are pending. */
    bool empty() const { return heap.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap.size(); }

    /**
     * @return peak number of simultaneously live pooled nodes (tests).
     * Slabs are carved in batches, so this — not slab count — is the
     * measure of "the pool grows to peak-pending, not total-scheduled".
     */
    std::size_t poolAllocated() const { return peakLive; }

    /** @return how many of those peak nodes are currently idle (tests). */
    std::size_t poolFree() const { return peakLive - live; }

    /** Inline capture budget per event before the heap-box fallback. */
    static constexpr std::size_t kInlineBytes = 104;

  private:
    struct Node
    {
        void (*run)(void *storage);
        void (*destroy)(void *storage);
        Node *nextFree;
        alignas(std::max_align_t) std::byte storage[kInlineBytes];
    };

    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        Node *node;

        /** std::push_heap "less" giving a min-heap on (when, seq). */
        static bool
        later(const Entry &a, const Entry &b)
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    template <class F>
    Node *
    makeNode(F &&cb)
    {
        using Fn = std::decay_t<F>;
        Node *node = acquire();
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(node->storage))
                Fn(std::forward<F>(cb));
            node->run = [](void *s) { (*std::launder(
                reinterpret_cast<Fn *>(s)))(); };
            node->destroy = [](void *s) { std::launder(
                reinterpret_cast<Fn *>(s))->~Fn(); };
        } else {
            // Oversized capture: box it.  A raw pointer always fits.
            ::new (static_cast<void *>(node->storage))
                Fn *(new Fn(std::forward<F>(cb)));
            node->run = [](void *s) { (**std::launder(
                reinterpret_cast<Fn **>(s)))(); };
            node->destroy = [](void *s) { delete *std::launder(
                reinterpret_cast<Fn **>(s)); };
        }
        return node;
    }

    Node *
    acquire()
    {
        if (freeList == nullptr)
            refill();
        Node *node = freeList;
        freeList = node->nextFree;
        if (++live > peakLive)
            peakLive = live;
        return node;
    }

    void
    release(Node *node)
    {
        node->nextFree = freeList;
        freeList = node;
        --live;
    }

    void
    refill()
    {
        slabs.push_back(std::make_unique<Node[]>(kSlabNodes));
        Node *slab = slabs.back().get();
        for (std::size_t i = 0; i < kSlabNodes; ++i) {
            slab[i].nextFree = freeList;
            freeList = &slab[i];
        }
    }

    static constexpr std::size_t kSlabNodes = 64;

    std::vector<Entry> heap;
    std::vector<std::unique_ptr<Node[]>> slabs;
    Node *freeList = nullptr;
    std::size_t live = 0;     //!< nodes holding a pending or firing event
    std::size_t peakLive = 0; //!< high-water mark of live
    std::uint64_t nextSeq = 0;
    Cycle lastRun_ = 0;
};

} // namespace vpc

#endif // VPC_SIM_EVENT_QUEUE_HH
