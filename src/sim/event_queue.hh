/**
 * @file
 * Deterministic event queue for delayed callbacks.
 *
 * The simulator is cycle-stepped (see Simulator), but several models
 * need "call me back in N cycles" semantics: DRAM access completion,
 * crossbar transit, data-bus beat completion.  Events scheduled for the
 * same cycle fire in scheduling order, which keeps runs reproducible.
 */

#ifndef VPC_SIM_EVENT_QUEUE_HH
#define VPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vpc
{

/** Orders events by (cycle, insertion sequence). */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p cb to run at cycle @p when.
     *
     * @pre @p when must not be in the past relative to the last
     *      runDue() call.
     */
    void
    schedule(Cycle when, Callback cb)
    {
        if (when < lastRun_)
            vpc_panic("event scheduled in the past ({} < {})",
                      when, lastRun_);
        heap.push(Entry{when, nextSeq++, std::move(cb)});
    }

    /**
     * Run every event due at or before @p now, in deterministic order.
     * Events may schedule further events (including for @p now).
     *
     * @param now current cycle
     * @return number of events executed
     */
    std::size_t
    runDue(Cycle now)
    {
        // Time only moves forward.  Running the queue backward would
        // re-arm the schedule() past-check against an earlier cycle,
        // quietly re-admitting events scheduled before now().
        if (now < lastRun_)
            vpc_panic("event queue run backward ({} < {})", now,
                      lastRun_);
        lastRun_ = now;
        std::size_t n = 0;
        while (!heap.empty() && heap.top().when <= now) {
            // Move the callback out before popping so the event may
            // schedule new events without invalidating the heap top.
            Callback cb = std::move(heap.top().cb);
            heap.pop();
            cb();
            ++n;
        }
        return n;
    }

    /** @return cycle of the earliest pending event, or kCycleMax. */
    Cycle
    nextEventCycle() const
    {
        return heap.empty() ? kCycleMax : heap.top().when;
    }

    /** @return the cycle passed to the most recent runDue() call. */
    Cycle lastRunCycle() const { return lastRun_; }

    /** @return true if no events are pending. */
    bool empty() const { return heap.empty(); }

    /** @return number of pending events. */
    std::size_t size() const { return heap.size(); }

  private:
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        mutable Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::uint64_t nextSeq = 0;
    Cycle lastRun_ = 0;
};

} // namespace vpc

#endif // VPC_SIM_EVENT_QUEUE_HH
