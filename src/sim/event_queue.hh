/**
 * @file
 * Deterministic event queue for delayed callbacks.
 *
 * The simulator is cycle-stepped (see Simulator), but several models
 * need "call me back in N cycles" semantics: DRAM access completion,
 * crossbar transit, data-bus beat completion.  Events scheduled for the
 * same cycle fire in a deterministic key order (insertion order for the
 * sequential kernel; see sim/sched_key.hh for the shard-parallel
 * generalization), which keeps runs reproducible.
 *
 * Pending-set design: a two-level hierarchical timing wheel with a
 * heap overflow.  Nearly every event in the machine is short-delay
 * (L1 hit 2, crossbar 2, tag 4, data 8, bus beats, DRAM ~100 cycles),
 * so level 0 — 512 one-cycle slots — absorbs the hot path with O(1)
 * schedule and O(1) locate-next-slot, replacing the binary heap's
 * O(log n) sift per operation.  Level 1 covers the next 127 blocks of
 * 512 cycles each; entries cascade into level 0 when the cursor enters
 * their block.  Anything beyond ~65k cycles ahead (rare: watchdog-ish
 * timeouts, tests) sits in a min-heap and cascades into the wheel as
 * its horizon approaches.  Slots are unsorted vectors; a slot is
 * key-sorted once, when it fires.  Occupancy bitmaps make
 * nextEventCycle() a handful of word scans, cheap enough for the
 * quiescence fast-forward to call every executed cycle.
 *
 * Hot-path allocation design (unchanged from the heap version): events
 * are intrusive pool nodes — the callable is constructed in-place in a
 * fixed inline buffer inside a slab-allocated node, dispatched through
 * a function pointer, and recycled on a free list after firing.
 * Callables too large for the inline buffer fall back to a heap box.
 */

#ifndef VPC_SIM_EVENT_QUEUE_HH
#define VPC_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/sched_key.hh"
#include "sim/types.hh"

namespace vpc
{

/** Orders events by SchedKey (sequential use: cycle, insertion seq). */
class EventQueue
{
  public:
    /**
     * Compatibility alias: schedule() accepts any callable, including a
     * std::function built by older call sites and tests.
     */
    using Callback = std::function<void()>;

    EventQueue()
        : l0_(kL0Slots), l1_(kL1Slots), l1Block_(kL1Slots, 0),
          l1Min_(kL1Slots, kCycleMax)
    {
        l0Bits_.fill(0);
        l1Bits_.fill(0);
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy callables of events that never fired.  The slabs
        // themselves free with the vector.
        auto destroySlot = [](const std::vector<Entry> &slot) {
            for (const Entry &e : slot)
                e.node->destroy(e.node->storage);
        };
        for (const auto &slot : l0_)
            destroySlot(slot);
        for (const auto &slot : l1_)
            destroySlot(slot);
        destroySlot(overflow_);
    }

    /**
     * Schedule a callable to run at cycle @p when, ordered among
     * same-cycle events by insertion sequence (or, with a key source
     * installed, by the shard-parallel composite key).
     *
     * The callable is moved into pooled inline storage; captures up to
     * kInlineBytes cost no allocation.
     *
     * @pre @p when must not be in the past relative to the last
     *      runDue() call.
     */
    template <class F>
    void
    schedule(Cycle when, F &&cb)
    {
        scheduleKeyed(makeKey(when), std::forward<F>(cb));
    }

    /**
     * Build the ordering key the next schedule(when, ...) call from
     * the current context would use, consuming a sequence number.  The
     * sharded kernel uses this to stamp cross-shard messages at the
     * sender and replay them on the receiving shard's queue under
     * scheduleKeyed() — reproducing the order the sequential kernel
     * would have assigned.
     */
    SchedKey
    makeKey(Cycle when)
    {
        SchedKey key;
        key.when = when;
        if (keySrc_ != nullptr) {
            key.schedCycle = keySrc_->now;
            if (firing_ != nullptr) {
                key.phase =
                    static_cast<std::uint8_t>(SchedPhase::Event);
                key.x = fireIdx_;
            } else {
                key.phase = keySrc_->tickPhase;
                key.x = keySrc_->rank;
            }
            key.y = keySrc_->seq++;
        } else {
            key.y = nextSeq_++;
        }
        return key;
    }

    /**
     * Install (or clear, with nullptr) the shard-parallel key source.
     * Without one — the sequential kernel — keys degrade to the global
     * insertion sequence.  Not owned; must outlive the queue's use.
     */
    void setKeySource(KeySource *ks) { keySrc_ = ks; }

    /**
     * Install (or clear, with nullptr) the cycle-attribution profiler.
     * With one installed, every fired callback is timed and credited
     * to the component context that scheduled it (see Profiler).  Not
     * owned; must outlive the queue's use.
     */
    void setProfiler(Profiler *p) { prof_ = p; }

    /**
     * Set the owner context for subsequently scheduled events.  The
     * kernel brackets each component's tick() with its id; events
     * scheduled from inside a callback inherit the firing event's
     * owner instead (fireSlot() overrides the context).
     */
    void setProfileContext(Profiler::ComponentId id) { profCtx_ = id; }

    /**
     * @return the owner context an event scheduled right now would be
     * billed to.  Fused chains (sim/fused_chain.hh) capture it at push
     * time so counted lane drains bill exactly like the event path.
     */
    Profiler::ComponentId profileContext() const { return profCtx_; }

    /**
     * Schedule a callable under an explicit ordering key (the sharded
     * kernel constructs keys that replicate the sequential global
     * insertion order; see sim/sched_key.hh).
     *
     * @pre key.when must not be in the past, and the key must be
     *      unique among pending events.
     */
    template <class F>
    void
    scheduleKeyed(const SchedKey &key, F &&cb)
    {
        if (key.when < lastRun_)
            vpc_panic("event scheduled in the past ({} < {})",
                      key.when, lastRun_);
        Node *node = makeNode(std::forward<F>(cb));
        place(Entry{key, node});
        ++live_;
        // Keep the next-event cache exact while it is valid; a dirty
        // cache must stay dirty (min-updating an unknown value could
        // hide an earlier pending event from the fast-forward).
        if (!cacheDirty_ && key.when < cachedNext_)
            cachedNext_ = key.when;
    }

    /**
     * Run every event due at or before @p now, in deterministic key
     * order.  Events may schedule further events (including for
     * @p now).
     *
     * @param now current cycle
     * @return number of events executed
     */
    std::size_t
    runDue(Cycle now)
    {
        // Time only moves forward.  Running the queue backward would
        // re-arm the schedule() past-check against an earlier cycle,
        // quietly re-admitting events scheduled before now().
        if (now < lastRun_)
            vpc_panic("event queue run backward ({} < {})", now,
                      lastRun_);
        lastRun_ = now;
        fireIdx_ = 0;
        std::size_t n = 0;
        while (live_ > 0) {
            Cycle next = nextEventCycle();
            if (next > now)
                break;
            advanceTo(next);
            n += fireSlot(next);
        }
        return n;
    }

    /** @return cycle of the earliest pending event, or kCycleMax. */
    Cycle
    nextEventCycle() const
    {
        if (live_ == 0)
            return kCycleMax;
        if (cacheDirty_) {
            cachedNext_ = findNext();
            cacheDirty_ = false;
        }
        return cachedNext_;
    }

    /** @return the cycle passed to the most recent runDue() call. */
    Cycle lastRunCycle() const { return lastRun_; }

    /** @return true if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** @return number of pending events. */
    std::size_t size() const { return live_; }

    /**
     * @return the key of the event currently being fired, or nullptr
     * outside a callback.  The sharded kernel derives child-event
     * ordering keys from it (see ShardContext::makeKey).
     */
    const SchedKey *firingKey() const { return firing_; }

    /**
     * @return number of entries migrated between wheel levels (level 1
     * or overflow heap into level 0).  Kernel perf counter.
     */
    std::uint64_t cascades() const { return cascades_; }

    /**
     * @return peak number of simultaneously live pooled nodes (tests).
     * Slabs are carved in batches, so this — not slab count — is the
     * measure of "the pool grows to peak-pending, not total-scheduled".
     */
    std::size_t poolAllocated() const { return peakLive_; }

    /** @return how many of those peak nodes are currently idle (tests). */
    std::size_t poolFree() const { return peakLive_ - liveNodes_; }

    /** Inline capture budget per event before the heap-box fallback. */
    static constexpr std::size_t kInlineBytes = 104;

    /** Cycles covered by wheel level 0 (tests exercise the cascade). */
    static constexpr std::size_t kL0Slots = 512;

    /** Level-1 slot count; horizon = kL0Slots * kL1Slots cycles. */
    static constexpr std::size_t kL1Slots = 128;

  private:
    struct Node
    {
        void (*run)(void *storage);
        void (*destroy)(void *storage);
        Node *nextFree;
        /** Profiler account of the scheduling context (0 = none). */
        Profiler::ComponentId owner;
        alignas(std::max_align_t) std::byte storage[kInlineBytes];
    };

    struct Entry
    {
        SchedKey key;
        Node *node;
    };

    /** @return the level-1 block index covering @p c. */
    static Cycle block(Cycle c) { return c / kL0Slots; }

    /** File @p e into the right level for the current cursor. */
    void
    place(const Entry &e)
    {
        Cycle b = block(e.key.when);
        if (b == curBlock_) {
            std::size_t idx = e.key.when % kL0Slots;
            l0_[idx].push_back(e);
            l0Bits_[idx / 64] |= std::uint64_t{1} << (idx % 64);
            return;
        }
        if (b - curBlock_ < kL1Slots) {
            std::size_t idx = b % kL1Slots;
            if (l1_[idx].empty()) {
                l1Block_[idx] = b;
                l1Min_[idx] = e.key.when;
            } else if (l1Block_[idx] != b) {
                vpc_panic("timing wheel L1 slot collision "
                          "(block {} vs {})", l1Block_[idx], b);
            } else if (e.key.when < l1Min_[idx]) {
                l1Min_[idx] = e.key.when;
            }
            l1_[idx].push_back(e);
            l1Bits_[idx / 64] |= std::uint64_t{1} << (idx % 64);
            return;
        }
        overflow_.push_back(e);
        std::push_heap(overflow_.begin(), overflow_.end(), laterWhen);
    }

    /** Min-heap comparator on when (overflow needs no total order). */
    static bool
    laterWhen(const Entry &a, const Entry &b)
    {
        return a.key.when > b.key.when;
    }

    /**
     * Move the level-0 window to the block containing @p c, cascading
     * level-1 and overflow entries whose blocks enter the horizon.
     *
     * @pre level 0 is empty of entries before @p c (callers only
     *      advance to the minimum pending cycle).
     */
    void
    advanceTo(Cycle c)
    {
        Cycle b = block(c);
        if (b == curBlock_)
            return;
        curBlock_ = b;
        // Entries for the new current block leave level 1...
        std::size_t idx = b % kL1Slots;
        if (!l1_[idx].empty()) {
            if (l1Block_[idx] != b)
                vpc_panic("timing wheel cascade found stale block {} "
                          "in slot for block {}", l1Block_[idx], b);
            cascades_ += l1_[idx].size();
            for (const Entry &e : l1_[idx]) {
                std::size_t s = e.key.when % kL0Slots;
                l0_[s].push_back(e);
                l0Bits_[s / 64] |= std::uint64_t{1} << (s % 64);
            }
            l1_[idx].clear();
            l1Min_[idx] = kCycleMax;
            l1Bits_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
        }
        // ...and overflow entries now inside the level-1 horizon
        // redistribute into the wheel.
        Cycle horizonEnd = (curBlock_ + kL1Slots) * kL0Slots;
        while (!overflow_.empty() &&
               overflow_.front().key.when < horizonEnd) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          laterWhen);
            Entry e = overflow_.back();
            overflow_.pop_back();
            ++cascades_;
            place(e);
        }
    }

    /** Fire all entries in the level-0 slot for cycle @p c. */
    std::size_t
    fireSlot(Cycle c)
    {
        std::size_t idx = c % kL0Slots;
        auto &slot = l0_[idx];
        std::size_t n = 0;
        // Callbacks may schedule for this same cycle; those entries
        // land back in `slot` (with strictly later keys — their
        // schedCycle/sequence exceeds everything already sorted) and
        // are picked up by the next round.
        while (!slot.empty()) {
            scratch_.swap(slot);
            std::sort(scratch_.begin(), scratch_.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.key.before(b.key);
                      });
            for (const Entry &e : scratch_) {
                // The node returns to the free list only after the
                // call: a reschedule from inside the callback must not
                // reuse the storage the callable still lives in.
                firing_ = &e.key;
                if (prof_ != nullptr) {
                    // Children scheduled by this callback inherit its
                    // owner; the tick loop re-sets the context after.
                    Profiler::ComponentId owner = e.node->owner;
                    profCtx_ = owner;
                    std::uint64_t t0 = Profiler::nowNs();
                    e.node->run(e.node->storage);
                    prof_->addEvent(owner, Profiler::nowNs() - t0);
                    profCtx_ = Profiler::kUnattributed;
                } else {
                    e.node->run(e.node->storage);
                }
                e.node->destroy(e.node->storage);
                release(e.node);
                ++fireIdx_;
            }
            firing_ = nullptr;
            n += scratch_.size();
            scratch_.clear();
        }
        l0Bits_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
        live_ -= n;
        cacheDirty_ = true; // recompute lazily on next query
        return n;
    }

    /** Exact scan for the earliest pending cycle. @pre live_ > 0. */
    Cycle
    findNext() const
    {
        // Level 0 holds exactly the current block, so slot index order
        // is cycle order and the first set bit is the earliest level-0
        // cycle.
        for (std::size_t w = 0; w < l0Bits_.size(); ++w) {
            if (l0Bits_[w]) {
                std::size_t bit =
                    static_cast<std::size_t>(w) * 64 +
                    static_cast<std::size_t>(
                        std::countr_zero(l0Bits_[w]));
                return curBlock_ * kL0Slots + bit;
            }
        }
        Cycle best = kCycleMax;
        for (std::size_t w = 0; w < l1Bits_.size(); ++w) {
            std::uint64_t bits = l1Bits_[w];
            while (bits) {
                std::size_t idx =
                    w * 64 + static_cast<std::size_t>(
                                 std::countr_zero(bits));
                bits &= bits - 1;
                if (l1Min_[idx] < best)
                    best = l1Min_[idx];
            }
        }
        if (!overflow_.empty() && overflow_.front().key.when < best)
            best = overflow_.front().key.when;
        return best;
    }

    template <class F>
    Node *
    makeNode(F &&cb)
    {
        using Fn = std::decay_t<F>;
        Node *node = acquire();
        node->owner = profCtx_;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(node->storage))
                Fn(std::forward<F>(cb));
            node->run = [](void *s) { (*std::launder(
                reinterpret_cast<Fn *>(s)))(); };
            node->destroy = [](void *s) { std::launder(
                reinterpret_cast<Fn *>(s))->~Fn(); };
        } else {
            // Oversized capture: box it.  A raw pointer always fits.
            ::new (static_cast<void *>(node->storage))
                Fn *(new Fn(std::forward<F>(cb)));
            node->run = [](void *s) { (**std::launder(
                reinterpret_cast<Fn **>(s)))(); };
            node->destroy = [](void *s) { delete *std::launder(
                reinterpret_cast<Fn **>(s)); };
        }
        return node;
    }

    Node *
    acquire()
    {
        if (freeList_ == nullptr)
            refill();
        Node *node = freeList_;
        freeList_ = node->nextFree;
        if (++liveNodes_ > peakLive_)
            peakLive_ = liveNodes_;
        return node;
    }

    void
    release(Node *node)
    {
        node->nextFree = freeList_;
        freeList_ = node;
        --liveNodes_;
    }

    void
    refill()
    {
        slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
        Node *slab = slabs_.back().get();
        for (std::size_t i = 0; i < kSlabNodes; ++i) {
            slab[i].nextFree = freeList_;
            freeList_ = &slab[i];
        }
    }

    static constexpr std::size_t kSlabNodes = 64;

    std::vector<std::vector<Entry>> l0_; //!< current block, 1c slots
    std::vector<std::vector<Entry>> l1_; //!< next 127 blocks
    std::vector<Cycle> l1Block_;         //!< block id per L1 slot
    std::vector<Cycle> l1Min_;           //!< earliest when per L1 slot
    std::array<std::uint64_t, kL0Slots / 64> l0Bits_;
    std::array<std::uint64_t, kL1Slots / 64> l1Bits_;
    std::vector<Entry> overflow_;        //!< min-heap on when
    std::vector<Entry> scratch_;         //!< firing buffer (reused)
    Cycle curBlock_ = 0;                 //!< block mapped into level 0

    std::vector<std::unique_ptr<Node[]>> slabs_;
    Node *freeList_ = nullptr;
    std::size_t liveNodes_ = 0; //!< nodes holding a pending/firing event
    std::size_t peakLive_ = 0;  //!< high-water mark of liveNodes_
    std::size_t live_ = 0;      //!< pending entries
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fireIdx_ = 0; //!< fire-order index within runDue()
    KeySource *keySrc_ = nullptr;
    std::uint64_t cascades_ = 0;
    Cycle lastRun_ = 0;
    mutable Cycle cachedNext_ = kCycleMax;
    mutable bool cacheDirty_ = false;
    const SchedKey *firing_ = nullptr;
    Profiler *prof_ = nullptr; //!< null unless --profile
    /** Owner billed to events scheduled right now (see setProfileContext). */
    Profiler::ComponentId profCtx_ = Profiler::kUnattributed;
};

} // namespace vpc

#endif // VPC_SIM_EVENT_QUEUE_HH
