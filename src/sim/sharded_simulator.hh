/**
 * @file
 * Deterministic shard-parallel simulation kernel.
 *
 * Components are partitioned into shards — one per core plus a single
 * uncore shard (L2 banks, arbiters, memory) — each with its own
 * EventQueue (timing wheel) and its own slice of the cycle loop.  A
 * persistent worker pool advances shards concurrently under a
 * conservative lookahead protocol; all cross-shard traffic moves
 * through SPSC rings and carries a SchedKey stamped by the sender, so
 * every shard replays events in exactly the order the sequential
 * kernel would have fired them.  Model results are bit-identical at
 * any worker count.
 *
 * Frontier protocol.  Each shard publishes an atomic frontier H with
 * release semantics: every cycle < H has been executed (or proven a
 * no-op) and every cross-shard message originating from a cycle < H
 * has been pushed to its ring.  Readers acquire H *before* draining
 * the ring, so a bound derived from H implies the drain saw every
 * message that can fire at or before that bound:
 *
 *  - uncore may execute cycle u while  u <= min_i H_core(i) + sendLat - 1
 *    (a core message sent at s arrives at s + sendLat; all senders
 *    with s < H are drained, later sends land strictly beyond the
 *    bound);
 *  - a core may execute cycle c while  c <= H_uncore - 1,
 *    i.e. the uncore has already executed c.  This makes the uncore
 *    *lead*: fills due at c were sent at c - fillLat < H_uncore, and
 *    the occupancy snapshot effective at c was published while the
 *    uncore executed c, so both are in the ring when the core drains.
 *
 * Deadlock freedom: if the uncore is blocked (nextCycle > bound) then
 * some core's frontier equals min H, and that core's bound
 * H_uncore - 1 >= minH + sendLat - 1 >= its own nextCycle, so it can
 * advance.  The uncore can always advance when it trails.
 *
 * Quiescence.  Within its window a shard fast-forwards exactly like
 * the sequential skip kernel (active-set ticks + jump to next
 * activity).  Spans longer than the window would otherwise crawl
 * forward one window per round trip, so a worker that completes a
 * fruitless pass over all shards attempts a *global jump*: it locks
 * every shard in index order (safe — visitors hold at most one shard
 * lock and never block on a second), drains all rings, computes the
 * global next-activity cycle, and advances every shard there at once.
 *
 * Determinism.  Per-shard work counters (cycles executed/skipped,
 * epochs, stalls) depend on shard partitioning and are *kernel*
 * diagnostics: deterministic in the model but not comparable to the
 * sequential kernel's. Model statistics, events fired, and ticks
 * executed are bit-identical to the sequential skip kernel — the
 * determinism tests assert it.
 */

#ifndef VPC_SIM_SHARDED_SIMULATOR_HH
#define VPC_SIM_SHARDED_SIMULATOR_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fused_chain.hh"
#include "sim/shard.hh"
#include "sim/simulator.hh"
#include "sim/spsc.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "sim/types.hh"

namespace vpc
{

/**
 * Per-link conservative lookahead, derived from the modeled machine.
 *
 * The frontier protocol synchronizes shards every `send` cycles: a
 * core-to-uncore message sent at cycle s cannot arrive before
 * s + send, so the uncore may run `send` cycles past the slowest core
 * frontier before it must resynchronize.  `send` is exactly the
 * crossbar request latency (SystemConfig::l2.interconnectLatency) —
 * any larger value would let the uncore miss an arrival, any smaller
 * one synchronizes more often than the model requires.  `fill` is the
 * uncore-to-core minimum (the bus critical-word beat); the protocol
 * relies on fill >= 1 but the binding core-side bound is H_uncore - 1
 * regardless, because store-gather occupancy snapshots published
 * while the uncore executes cycle c take effect at c — a true
 * zero-lookahead coupling (see DESIGN.md 5h).  Machines modeled with
 * deeper interconnects (the 8/16/32-thread scale-up configs) widen
 * `send` and thus amortize every frontier publish and ring drain over
 * more simulated cycles.
 */
struct ShardLookahead
{
    Cycle send = 1; //!< core -> uncore: crossbar request latency
    Cycle fill = 1; //!< uncore -> core: bus critical-word beat

    /** Derive both links from the modeled L2/interconnect timing. */
    static ShardLookahead
    fromConfig(const SystemConfig &cfg)
    {
        ShardLookahead la;
        la.send = cfg.l2.interconnectLatency;
        la.fill = cfg.l2.busBeatCycles;
        return la;
    }
};

/** Shard-parallel drop-in for Simulator::run (see file comment). */
class ShardedSimulator
{
  public:
    /**
     * Worker-collapse policy.  The kernel's scheduling layer may fold
     * all shard execution onto one worker (the others park on a
     * condition variable) without affecting model results — SchedKeys
     * make event order independent of which worker advances a shard.
     *
     * - Adaptive (default): collapse when the measured runnable work
     *   per shard epoch falls below a low-water mark or when the host
     *   has a single hardware thread; re-split when work returns
     *   (hysteresis, see DESIGN.md 5h).  The VPC_KERNEL_FALLBACK
     *   environment variable ("serial" / "parallel" / "adaptive")
     *   overrides the initial mode for whole-process experiments.
     * - ForceSerial: always collapsed (parallel structure, one lane).
     * - ForceParallel: never collapse, even on one hardware thread.
     */
    enum class FallbackMode { Adaptive, ForceSerial, ForceParallel };

    /**
     * @param cores        number of core shards (>= 1); the uncore
     *                     shard is created implicitly.
     * @param workers      worker threads to use (clamped to
     *                     [1, cores + 1]).
     * @param sendLatency  minimum cycles between a core-side send and
     *                     its uncore arrival (the interconnect
     *                     latency); must be >= 1.
     * @param fillLatency  minimum cycles between an uncore-side send
     *                     and its core arrival (the bus critical-word
     *                     latency); must be >= 1 — the protocol relies
     *                     on it but does not otherwise use the value.
     */
    ShardedSimulator(unsigned cores, unsigned workers,
                     Cycle sendLatency, Cycle fillLatency);

    /** Convenience: lookahead derived from the modeled machine. */
    ShardedSimulator(unsigned cores, unsigned workers,
                     ShardLookahead la)
        : ShardedSimulator(cores, workers, la.send, la.fill)
    {}

    ShardedSimulator(const ShardedSimulator &) = delete;
    ShardedSimulator &operator=(const ShardedSimulator &) = delete;

    /** @return core shard @p core 's event queue (key source installed). */
    EventQueue &coreEvents(unsigned core);

    /** @return the uncore shard's event queue. */
    EventQueue &uncoreEvents();

    /**
     * Register a component on core shard @p core (registration order).
     * @p name labels the component in --profile reports.
     */
    void addCoreTicking(unsigned core, Ticking *t,
                        std::string name = {});

    /**
     * Register a component on the uncore shard (registration order).
     * @p name labels the component in --profile reports.
     */
    void addUncoreTicking(Ticking *t, std::string name = {});

    /**
     * Register a fused fixed-latency chain on core shard @p core (see
     * sim/fused_chain.hh).  Fusion must respect shard boundaries: a
     * chain's producer and consumer must both live on that shard (the
     * L1 hit-completion lane — CPU to its own private L1 and back).
     * Drained after the shard's events fire each executed cycle, in
     * registration order.  Not owned; must outlive the run.
     */
    void addCoreChain(unsigned core, FusedChain *c);

    /**
     * Install a cycle-attribution profiler on core shard @p core
     * (nullptr to remove).  Each shard gets its own Profiler — no
     * shared counters between workers — and the caller merges them
     * with Profiler::mergeByName after the run.  Install after all
     * addCoreTicking() calls and before running.
     */
    void setCoreProfiler(unsigned core, Profiler *p);

    /** Install a profiler on the uncore shard (see setCoreProfiler). */
    void setUncoreProfiler(Profiler *p);

    /**
     * Install the uncore-side delivery for core-to-uncore messages.
     * Runs as a keyed event on the uncore queue at msg.key.when.
     */
    void setArriveHandler(std::function<void(const CrossMsg &)> fn);

    /**
     * Install the core-side delivery for fills.  Runs as a keyed
     * event on the core's queue at the critical-word cycle.
     */
    void
    setFillHandler(std::function<void(unsigned core, Addr line,
                                      Cycle when)> fn);

    /**
     * Install the core-side application of an occupancy snapshot.
     * Called (outside any event) before the core executes the first
     * cycle >= the snapshot's effective cycle.
     */
    void
    setOccHandler(std::function<void(unsigned core, unsigned bank,
                                     unsigned occ)> fn);

    /**
     * Install the uncore probe that publishes occupancy snapshots.
     * Invoked with eff = c after cycle c's events fire (if any did)
     * and with eff = c + 1 after its ticks (if any ran); the probe
     * calls publishOcc for whatever state it tracks.
     */
    void setUncorePhaseHook(std::function<void(Cycle eff)> fn);

    /**
     * Send a core-to-uncore message.  Must be called from core
     * @p core 's execution context (its tick or event callbacks) with
     * msg.key already stamped via coreEvents(core).makeKey(arrival).
     */
    void sendCross(unsigned core, const CrossMsg &msg);

    /**
     * Send a fill to core @p core, due at cycle @p critical.  Must be
     * called from the uncore's execution context.
     */
    void sendFill(unsigned core, Addr line, Cycle critical);

    /**
     * Publish an occupancy snapshot for (core, bank) effective from
     * cycle @p eff, deduplicating against the last published value.
     * Must be called from the uncore phase hook.
     */
    void publishOcc(unsigned core, unsigned bank, Cycle eff,
                    unsigned occ);

    /** Advance all shards by @p cycles cycles; returns when done. */
    void run(Cycle cycles);

    /**
     * Install a cooperative cancel token (nullptr to remove); same
     * contract as Simulator::setCancelToken.  Every worker polls it
     * once per scheduling pass and unwinds with JobCancelled; run()
     * rethrows after all workers have stopped, leaving the shards
     * torn — the caller must discard the system.
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

    /**
     * Set the worker-collapse policy (between run() calls).  The
     * constructor reads VPC_KERNEL_FALLBACK for the initial value;
     * this setter wins afterwards.  Pure scheduling policy: model
     * results are byte-identical in every mode.
     */
    void setFallbackMode(FallbackMode m);

    /** @return the active collapse policy. */
    FallbackMode fallbackMode() const { return fallback_; }

    /** @return true while execution is collapsed onto one worker. */
    bool
    collapsed() const
    {
        return collapsed_.load(std::memory_order_relaxed);
    }

    /** @return parallel-to-collapsed transitions so far (diagnostic). */
    std::uint64_t fallbackCollapses() const { return collapses_; }

    /** @return collapsed-to-parallel transitions so far (diagnostic). */
    std::uint64_t fallbackResplits() const { return resplits_; }

    /** @return the current cycle (between run() calls). */
    Cycle now() const { return cycle_; }

    /** @return kernel counters merged across shards. */
    const KernelStats &kernelStats() const;

    /** @return total pending events across all shard queues. */
    std::size_t queuedEvents() const;

  private:
    struct alignas(64) Shard
    {
        EventQueue queue;
        KeySource key;
        std::vector<Ticking *> comps;
        std::vector<FusedChain *> chains; //!< drained after runDue
        Cycle chainsDue = kCycleMax; //!< earliest fused entry due
        std::vector<std::string> names;  //!< profile labels, parallel
        std::vector<Profiler::ComponentId> ids; //!< profiler accounts
        Profiler *prof = nullptr;        //!< null unless --profile
        /** Account billed for ring fills (core shards): the L2. */
        Profiler::ComponentId fillOwner = Profiler::kUnattributed;
        /** Accounts billed for ring arrivals (uncore): sender CPUs. */
        std::vector<Profiler::ComponentId> arriveOwner;
        std::mutex mtx;
        std::atomic<Cycle> frontier{0};
        Cycle nextCycle = 0;
        bool finished = false;
        std::uint64_t cascadesSeen = 0;
        std::deque<CoreMsg> occPending; //!< core shards only
        KernelStats stats;
    };

    void installProfiler(Shard &sh, Profiler *p);
    void workerLoop(std::size_t w);
    /**
     * Advance one shard (caller holds shards_[s]->mtx).  @p work, when
     * non-null, accumulates the executed work units (events fired +
     * ticks run) of this epoch — the adaptive fallback's load signal.
     */
    bool advanceShard(std::size_t s, std::uint64_t *work = nullptr);
    /** Execute shard @p sh 's cycle sh.nextCycle (lock held). */
    void execCycle(std::size_t s, Shard &sh, std::uint64_t *work);
    void drainInto(std::size_t s);    //!< caller holds shards_[s]->mtx
    /** @return true when at least one snapshot was applied. */
    bool applyOccUpTo(std::size_t s, Cycle c);
    bool tryGlobalJump();
    /**
     * Collapsed execution: hold every shard lock and drive all shards
     * from one global cycle loop (uncore phase first, then cores) —
     * the serial kernel's cost structure over the sharded plumbing,
     * with no per-window frontier epochs.  Returns when the run
     * finishes, the adaptive policy decides to re-split, or the
     * cancel token fires (the caller's loop rethrows).
     */
    void runCollapsed();
    Cycle nextActivity(const Shard &sh) const;
    void markFinished(Shard &sh);

    /** Coordinator-only (worker 0): EWMA + hysteresis mode switch. */
    void adaptMode(std::uint64_t pass_work,
                   std::uint64_t pass_epochs);
    /** Park a non-coordinator worker while execution is collapsed. */
    void parkWorker();
    /** Wake every parked worker (mode change, finish, cancel). */
    void wakeParked();

    unsigned cores_;
    unsigned workers_;
    unsigned hwThreads_; //!< host hardware threads (>= 1)
    Cycle sendLat_;
    Cycle end_ = 0;
    Cycle cycle_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_; //!< cores, then uncore
    std::vector<std::unique_ptr<SpscRing<CrossMsg>>> toUncore_;
    std::vector<std::unique_ptr<SpscRing<CoreMsg>>> toCore_;
    std::vector<std::vector<unsigned>> lastOcc_; //!< [core][bank] dedup

    std::function<void(const CrossMsg &)> arriveHandler_;
    std::function<void(unsigned, Addr, Cycle)> fillHandler_;
    std::function<void(unsigned, unsigned, unsigned)> occHandler_;
    std::function<void(Cycle)> phaseHook_;

    std::mutex jumpMtx_;
    std::atomic<unsigned> finished_{0};
    const CancelToken *cancel_ = nullptr; //!< null unless supervised
    ThreadPool pool_;
    mutable KernelStats merged_;

    /**
     * @name Adaptive serial fallback
     *
     * collapsed_ is the coordinator's published decision; parked
     * workers re-check it (plus finish/cancel) under parkMtx_.  The
     * EWMA state below belongs exclusively to worker 0.
     */
    /// @{
    FallbackMode fallback_ = FallbackMode::Adaptive;
    std::atomic<bool> collapsed_{false};
    std::mutex parkMtx_;
    std::condition_variable parkCv_;
    std::uint64_t ewmaDensity16_ = 0; //!< work/epoch EWMA, x16 fixed pt
    unsigned lowStreak_ = 0;          //!< passes below low water
    unsigned highStreak_ = 0;         //!< passes above high water
    unsigned cooldown_ = 0;           //!< passes until next flip allowed
    std::uint64_t collapses_ = 0;
    std::uint64_t resplits_ = 0;
    std::vector<Cycle> nextAct_;      //!< runCollapsed per-shard scratch
    /**
     * True only inside runCollapsed (all shard locks held): sends
     * bypass the SPSC rings and schedule straight onto the target
     * shard's queue, min-updating nextAct_ — same keys, same handler
     * order, none of the ring round-trip the single lane would pay.
     */
    bool direct_ = false;
    /// @}
};

} // namespace vpc

#endif // VPC_SIM_SHARDED_SIMULATOR_HH
