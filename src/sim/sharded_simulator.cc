#include "sim/sharded_simulator.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/debug.hh"

namespace vpc
{

namespace
{

/**
 * @name Adaptive-fallback tuning
 *
 * The load signal is executed work units (events fired + ticks run)
 * per advanced shard epoch, smoothed by an EWMA (alpha = 1/8, x16
 * fixed point).  One epoch is one lookahead window, so density is
 * "how much real work a worker hands off per synchronization" — below
 * kLowDensity the cross-thread handoff (ring traffic, frontier
 * cache-line bounces, try_lock misses) costs more host time than the
 * work itself and the kernel collapses onto one lane; above
 * kHighDensity (4x hysteresis gap) it re-splits.  Both need
 * kStreak consecutive passes and a kCooldown pass gap between flips
 * so a bursty workload does not thrash the mode.
 */
/// @{
constexpr std::uint64_t kLowDensity16 = 3 * 16;
constexpr std::uint64_t kHighDensity16 = 12 * 16;
constexpr unsigned kStreak = 8;
constexpr unsigned kCooldown = 64;
/// @}

ShardedSimulator::FallbackMode
fallbackModeFromEnv()
{
    const char *env = std::getenv("VPC_KERNEL_FALLBACK");
    if (env == nullptr || *env == '\0')
        return ShardedSimulator::FallbackMode::Adaptive;
    if (std::strcmp(env, "serial") == 0)
        return ShardedSimulator::FallbackMode::ForceSerial;
    if (std::strcmp(env, "parallel") == 0)
        return ShardedSimulator::FallbackMode::ForceParallel;
    if (std::strcmp(env, "adaptive") == 0)
        return ShardedSimulator::FallbackMode::Adaptive;
    vpc_panic("VPC_KERNEL_FALLBACK must be serial, parallel or "
              "adaptive (got \"{}\")", env);
}

} // namespace

ShardedSimulator::ShardedSimulator(unsigned cores, unsigned workers,
                                   Cycle sendLatency, Cycle fillLatency)
    : cores_(cores),
      workers_(workers < 1 ? 1
               : workers > cores + 1 ? cores + 1
                                     : workers),
      hwThreads_(std::thread::hardware_concurrency() < 1
                     ? 1
                     : std::thread::hardware_concurrency()),
      sendLat_(sendLatency),
      pool_(workers_ - 1),
      fallback_(fallbackModeFromEnv())
{
    if (cores < 1)
        vpc_panic("sharded kernel needs at least one core shard");
    if (sendLatency < 1 || fillLatency < 1)
        vpc_panic("sharded kernel needs cross-shard latency >= 1 "
                  "(send {}, fill {})",
                  sendLatency, fillLatency);

    shards_.reserve(cores + 1);
    for (unsigned s = 0; s <= cores; ++s) {
        auto sh = std::make_unique<Shard>();
        sh->key.tickPhase = static_cast<std::uint8_t>(
            s < cores ? SchedPhase::CpuTick : SchedPhase::UncoreTick);
        sh->key.rank = s;
        sh->queue.setKeySource(&sh->key);
        shards_.push_back(std::move(sh));
    }
    toUncore_.reserve(cores);
    toCore_.reserve(cores);
    lastOcc_.resize(cores);
    for (unsigned c = 0; c < cores; ++c) {
        toUncore_.push_back(std::make_unique<SpscRing<CrossMsg>>());
        toCore_.push_back(std::make_unique<SpscRing<CoreMsg>>());
    }
}

EventQueue &
ShardedSimulator::coreEvents(unsigned core)
{
    return shards_.at(core)->queue;
}

EventQueue &
ShardedSimulator::uncoreEvents()
{
    return shards_[cores_]->queue;
}

void
ShardedSimulator::addCoreTicking(unsigned core, Ticking *t,
                                 std::string name)
{
    Shard &sh = *shards_.at(core);
    sh.comps.push_back(t);
    sh.names.push_back(std::move(name));
}

void
ShardedSimulator::addUncoreTicking(Ticking *t, std::string name)
{
    Shard &sh = *shards_[cores_];
    sh.comps.push_back(t);
    sh.names.push_back(std::move(name));
}

void
ShardedSimulator::addCoreChain(unsigned core, FusedChain *c)
{
    Shard &sh = *shards_.at(core);
    sh.chains.push_back(c);
    c->setProfiler(sh.prof);
    c->setDueHook(&sh.chainsDue);
    if (c->nextDue() < sh.chainsDue)
        sh.chainsDue = c->nextDue();
}

void
ShardedSimulator::installProfiler(Shard &sh, Profiler *p)
{
    sh.prof = p;
    sh.queue.setProfiler(p);
    for (FusedChain *c : sh.chains)
        c->setProfiler(p);
    sh.ids.clear();
    if (p != nullptr) {
        sh.ids.reserve(sh.comps.size());
        for (std::size_t i = 0; i < sh.comps.size(); ++i) {
            sh.ids.push_back(p->add(
                sh.names[i].empty() ? "comp" + std::to_string(i)
                                    : sh.names[i]));
        }
    }
}

void
ShardedSimulator::setCoreProfiler(unsigned core, Profiler *p)
{
    Shard &sh = *shards_.at(core);
    installProfiler(sh, p);
    // Fills arriving over the ring were originated by the L2; bill
    // them to an "l2" account here, merged with the uncore's by name.
    sh.fillOwner = p != nullptr ? p->add("l2") : Profiler::kUnattributed;
}

void
ShardedSimulator::setUncoreProfiler(Profiler *p)
{
    Shard &sh = *shards_[cores_];
    installProfiler(sh, p);
    // Arrivals over ring c were originated by that core's CPU.
    sh.arriveOwner.assign(cores_, Profiler::kUnattributed);
    if (p != nullptr) {
        for (unsigned c = 0; c < cores_; ++c)
            sh.arriveOwner[c] = p->add("cpu" + std::to_string(c));
    }
}

void
ShardedSimulator::setArriveHandler(
    std::function<void(const CrossMsg &)> fn)
{
    arriveHandler_ = std::move(fn);
}

void
ShardedSimulator::setFillHandler(
    std::function<void(unsigned, Addr, Cycle)> fn)
{
    fillHandler_ = std::move(fn);
}

void
ShardedSimulator::setOccHandler(
    std::function<void(unsigned, unsigned, unsigned)> fn)
{
    occHandler_ = std::move(fn);
}

void
ShardedSimulator::setUncorePhaseHook(std::function<void(Cycle)> fn)
{
    phaseHook_ = std::move(fn);
}

void
ShardedSimulator::sendCross(unsigned core, const CrossMsg &msg)
{
    if (direct_) {
        Shard &un = *shards_[cores_];
        if (un.prof != nullptr)
            un.queue.setProfileContext(un.arriveOwner[core]);
        const CrossMsg m = msg;
        un.queue.scheduleKeyed(m.key, [this, m] { arriveHandler_(m); });
        if (un.prof != nullptr)
            un.queue.setProfileContext(Profiler::kUnattributed);
        if (m.key.when < nextAct_[cores_])
            nextAct_[cores_] = m.key.when;
    } else {
        toUncore_[core]->push(msg);
    }
    shards_[core]->stats.messagesSent.inc();
}

void
ShardedSimulator::sendFill(unsigned core, Addr line, Cycle critical)
{
    CoreMsg m;
    m.key = shards_[cores_]->queue.makeKey(critical);
    m.line = line;
    m.kind = 0;
    if (direct_) {
        Shard &sh = *shards_[core];
        if (sh.prof != nullptr)
            sh.queue.setProfileContext(sh.fillOwner);
        sh.queue.scheduleKeyed(m.key, [this, core, m] {
            fillHandler_(core, m.line, m.key.when);
        });
        if (sh.prof != nullptr)
            sh.queue.setProfileContext(Profiler::kUnattributed);
        if (critical < nextAct_[core])
            nextAct_[core] = critical;
    } else {
        toCore_[core]->push(m);
    }
    shards_[cores_]->stats.messagesSent.inc();
}

void
ShardedSimulator::publishOcc(unsigned core, unsigned bank, Cycle eff,
                             unsigned occ)
{
    auto &last = lastOcc_[core];
    if (bank >= last.size())
        last.resize(bank + 1, 0); // ports also start at occupancy 0
    if (last[bank] == occ)
        return;
    last[bank] = occ;
    CoreMsg m;
    m.eff = eff;
    m.kind = 1;
    m.bank = static_cast<std::uint8_t>(bank);
    m.occ = static_cast<std::uint16_t>(occ);
    if (direct_)
        shards_[core]->occPending.push_back(m);
    else
        toCore_[core]->push(m);
    shards_[cores_]->stats.messagesSent.inc();
}

void
ShardedSimulator::drainInto(std::size_t s)
{
    // Ring deliveries re-schedule events the *other* side's component
    // originated, so bill them to their semantic senders — exactly
    // what the serial kernel's owner-context attribution would do.
    Shard &sh = *shards_[s];
    if (s == cores_) {
        // Fixed core order: arrival *events* are ordered by their
        // carried keys anyway, so drain order only affects queue
        // internals; keeping it fixed keeps those deterministic too.
        // Whole spans at a time: one acquire snapshots the span, one
        // release retires it (see SpscRing's consumer span interface).
        for (unsigned c = 0; c < cores_; ++c) {
            auto &ring = *toUncore_[c];
            const std::size_t n = ring.readable();
            if (n == 0)
                continue;
            if (sh.prof != nullptr)
                sh.queue.setProfileContext(sh.arriveOwner[c]);
            for (std::size_t i = 0; i < n; ++i) {
                const CrossMsg m = ring.peek(i);
                sh.queue.scheduleKeyed(
                    m.key, [this, m] { arriveHandler_(m); });
            }
            ring.release(n);
        }
    } else {
        auto &ring = *toCore_[s];
        const std::size_t n = ring.readable();
        if (n == 0)
            return;
        if (sh.prof != nullptr)
            sh.queue.setProfileContext(sh.fillOwner);
        for (std::size_t i = 0; i < n; ++i) {
            const CoreMsg m = ring.peek(i);
            if (m.kind == 0) {
                sh.queue.scheduleKeyed(
                    m.key, [this, s, m] {
                        fillHandler_(static_cast<unsigned>(s), m.line,
                                     m.key.when);
                    });
            } else {
                sh.occPending.push_back(m);
            }
        }
        ring.release(n);
    }
    if (sh.prof != nullptr)
        sh.queue.setProfileContext(Profiler::kUnattributed);
}

bool
ShardedSimulator::applyOccUpTo(std::size_t s, Cycle c)
{
    auto &pend = shards_[s]->occPending;
    bool applied = false;
    while (!pend.empty() && pend.front().eff <= c) {
        const CoreMsg &m = pend.front();
        occHandler_(static_cast<unsigned>(s), m.bank, m.occ);
        pend.pop_front();
        applied = true;
    }
    return applied;
}

Cycle
ShardedSimulator::nextActivity(const Shard &sh) const
{
    Cycle next = sh.queue.nextEventCycle();
    if (sh.chainsDue < next)
        next = sh.chainsDue;
    if (next <= sh.nextCycle)
        return next; // due now: the component sweep cannot lower it
    for (Ticking *t : sh.comps) {
        Cycle w = t->nextWork(sh.nextCycle);
        if (w < next)
            next = w;
        if (next <= sh.nextCycle)
            break;
    }
    return next;
}

void
ShardedSimulator::markFinished(Shard &sh)
{
    if (sh.nextCycle >= end_ && !sh.finished) {
        sh.finished = true;
        finished_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardedSimulator::execCycle(std::size_t s, Shard &sh,
                            std::uint64_t *work)
{
    const Cycle c = sh.nextCycle;
    sh.key.now = c;
    if (s != cores_)
        applyOccUpTo(s, c);
    std::size_t fired = sh.queue.runDue(c);
    sh.stats.eventsFired.inc(fired);
    if (work != nullptr)
        *work += fired;
    if (sh.chainsDue <= c) {
        // Cached earliest-due hit: drain, then re-derive the exact
        // minimum (drained handlers may push records due strictly
        // later into any of this shard's lanes).
        sh.chainsDue = kCycleMax;
        for (FusedChain *ch : sh.chains) {
            std::uint64_t n = ch->drain(c);
            if (ch->counted())
                sh.stats.eventsFired.inc(n);
            if (work != nullptr)
                *work += n;
        }
        for (const FusedChain *ch : sh.chains) {
            Cycle d = ch->nextDue();
            if (d < sh.chainsDue)
                sh.chainsDue = d;
        }
    }
    if (s == cores_ && fired > 0 && phaseHook_)
        phaseHook_(c);
    std::size_t ticked = 0;
    for (std::size_t i = 0; i < sh.comps.size(); ++i) {
        Ticking *t = sh.comps[i];
        if (t->nextWork(c) <= c) {
            if (sh.prof != nullptr) {
                Profiler::ComponentId id = sh.ids[i];
                sh.queue.setProfileContext(id);
                std::uint64_t t0 = Profiler::nowNs();
                t->tick(c);
                sh.prof->addTick(id, Profiler::nowNs() - t0);
                sh.queue.setProfileContext(Profiler::kUnattributed);
            } else {
                t->tick(c);
            }
            ++ticked;
        }
    }
    sh.stats.ticksExecuted.inc(ticked);
    if (work != nullptr)
        *work += ticked;
    if (s == cores_ && ticked > 0 && phaseHook_)
        phaseHook_(c + 1);
    sh.stats.cyclesExecuted.inc();
    sh.nextCycle = c + 1;
}

bool
ShardedSimulator::advanceShard(std::size_t s, std::uint64_t *work)
{
    Shard &sh = *shards_[s];
    if (sh.nextCycle >= end_) {
        markFinished(sh);
        return false;
    }

    // Bound first (acquire), then drain: every message from sender
    // cycles below the acquired frontier is then visible, and no
    // later message can fire at or before the bound.
    Cycle bound; // inclusive
    if (s == cores_) {
        Cycle minH = kCycleMax;
        for (unsigned c = 0; c < cores_; ++c) {
            Cycle h = shards_[c]->frontier.load(
                std::memory_order_acquire);
            if (h < minH)
                minH = h;
        }
        bound = minH > kCycleMax - sendLat_ ? kCycleMax
                                            : minH + sendLat_ - 1;
    } else {
        Cycle hu =
            shards_[cores_]->frontier.load(std::memory_order_acquire);
        if (hu == 0) {
            sh.stats.barrierStalls.inc();
            return false;
        }
        bound = hu - 1;
    }
    if (bound > end_ - 1)
        bound = end_ - 1;

    drainInto(s);
    if (bound < sh.nextCycle) {
        sh.stats.barrierStalls.inc();
        return false;
    }

    const Cycle start = sh.nextCycle;
    while (sh.nextCycle <= bound) {
        execCycle(s, sh, work);

        // Fast-forward within the window, exactly like the
        // sequential skip kernel but clipped to bound + 1.
        Cycle next = nextActivity(sh);
        Cycle limit = bound >= kCycleMax ? kCycleMax : bound + 1;
        if (limit > end_)
            limit = end_;
        Cycle target = next < limit ? next : limit;
        if (target > sh.nextCycle) {
            sh.stats.cyclesSkipped.inc(target - sh.nextCycle);
            sh.nextCycle = target;
        }
    }

    std::uint64_t casc = sh.queue.cascades();
    sh.stats.wheelCascades.inc(casc - sh.cascadesSeen);
    sh.cascadesSeen = casc;
    sh.stats.epochs.inc();

    sh.frontier.store(sh.nextCycle, std::memory_order_release);
    markFinished(sh);
    return sh.nextCycle > start;
}

bool
ShardedSimulator::tryGlobalJump()
{
    if (!jumpMtx_.try_lock())
        return false;
    std::lock_guard<std::mutex> jg(jumpMtx_, std::adopt_lock);

    // Visitors hold at most one shard mutex and never block on a
    // second, so taking all of them in index order cannot deadlock.
    for (auto &sh : shards_)
        sh->mtx.lock();

    for (std::size_t s = 0; s < shards_.size(); ++s)
        drainInto(s);
    // Occupancy snapshots already effective can change a core's
    // nextWork (an unblocked retire stage); apply before polling.
    for (std::size_t s = 0; s < cores_; ++s)
        applyOccUpTo(s, shards_[s]->nextCycle);

    Cycle gn = kCycleMax;
    for (auto &sh : shards_) {
        if (sh->nextCycle >= end_)
            continue;
        Cycle next = nextActivity(*sh);
        if (next < gn)
            gn = next;
    }

    // With every lock held and every ring empty, no shard has any
    // activity before gn, so all of [nextCycle, gn) is a no-op span
    // for everyone — the sequential fast-forward, done globally.
    bool progress = false;
    Cycle target = gn < end_ ? gn : end_;
    for (auto &sh : shards_) {
        if (target > sh->nextCycle) {
            sh->stats.cyclesSkipped.inc(target - sh->nextCycle);
            sh->nextCycle = target;
            progress = true;
        }
        sh->frontier.store(sh->nextCycle, std::memory_order_release);
        markFinished(*sh);
    }

    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        (*it)->mtx.unlock();
    return progress;
}

void
ShardedSimulator::setFallbackMode(FallbackMode m)
{
    fallback_ = m;
}

void
ShardedSimulator::wakeParked()
{
    // Take the lock so a worker between its predicate check and its
    // wait cannot miss the notification.
    { std::lock_guard<std::mutex> lk(parkMtx_); }
    parkCv_.notify_all();
}

void
ShardedSimulator::parkWorker()
{
    std::unique_lock<std::mutex> lk(parkMtx_);
    // The timeout is a lost-wakeup backstop only; every mode flip,
    // finish and cancel notifies the condition variable explicitly.
    // Keep it long: short timeouts make parked lanes steal timeslices
    // from the one that is doing all the work.
    parkCv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
        return !collapsed_.load(std::memory_order_acquire) ||
               finished_.load(std::memory_order_acquire) >=
                   shards_.size() ||
               (cancel_ != nullptr &&
                cancel_->load(std::memory_order_relaxed));
    });
}

void
ShardedSimulator::adaptMode(std::uint64_t pass_work,
                            std::uint64_t pass_epochs)
{
    if (fallback_ != FallbackMode::Adaptive)
        return;
    // One hardware thread: parallelism can only lose.  Collapse once
    // and stay there — no amount of measured density changes the host.
    if (hwThreads_ < 2) {
        if (!collapsed_.load(std::memory_order_relaxed)) {
            collapsed_.store(true, std::memory_order_release);
            ++collapses_;
        }
        return;
    }
    if (pass_epochs == 0)
        return; // stalled pass: no density sample
    const auto density16 =
        static_cast<std::int64_t>(pass_work * 16 / pass_epochs);
    const auto ewma = static_cast<std::int64_t>(ewmaDensity16_);
    ewmaDensity16_ =
        static_cast<std::uint64_t>(ewma + (density16 - ewma) / 8);
    if (cooldown_ > 0) {
        --cooldown_;
        return;
    }
    // Only the collapse direction lives here (this runs after a
    // parallel pass); the re-split direction is runCollapsed's
    // periodic density check, against the same watermarks.
    if (ewmaDensity16_ < kLowDensity16) {
        lowStreak_++;
        if (lowStreak_ >= kStreak) {
            collapsed_.store(true, std::memory_order_release);
            ++collapses_;
            lowStreak_ = 0;
            cooldown_ = kCooldown;
        }
    } else {
        lowStreak_ = 0;
    }
}

void
ShardedSimulator::runCollapsed()
{
    const std::size_t n = shards_.size();
    for (auto &sh : shards_)
        sh->mtx.lock();

    // Entry: make everything in flight visible, apply pending
    // occupancy snapshots, and cache each shard's next activity.
    // From here on sends deliver directly (direct_), so the rings
    // stay empty until the lane re-splits or the run ends.
    for (std::size_t s = 0; s < n; ++s)
        drainInto(s);
    for (std::size_t s = 0; s < cores_; ++s)
        applyOccUpTo(s, shards_[s]->nextCycle);
    direct_ = true;
    nextAct_.assign(n, kCycleMax);
    Cycle chunkStart = end_;
    for (std::size_t s = 0; s < n; ++s) {
        Shard &sh = *shards_[s];
        if (sh.nextCycle < end_) {
            nextAct_[s] = nextActivity(sh);
            if (sh.nextCycle < chunkStart)
                chunkStart = sh.nextCycle;
        }
    }

    Shard &un = *shards_[cores_];
    std::uint64_t chunkWork = 0;
    unsigned sinceCheck = 0;

    for (;;) {
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            break; // the caller's loop observes the token and throws
        }

        // Global next cycle: the earliest activity of any unfinished
        // shard.  Everything before it is a no-op span for everyone —
        // the sequential fast-forward, with all locks held.
        Cycle c = kCycleMax;
        for (std::size_t s = 0; s < n; ++s) {
            Shard &sh = *shards_[s];
            if (sh.nextCycle >= end_)
                continue;
            Cycle a = nextAct_[s] > sh.nextCycle ? nextAct_[s]
                                                 : sh.nextCycle;
            if (a < c)
                c = a;
        }
        if (c >= end_) {
            for (auto &shp : shards_) {
                Shard &sh = *shp;
                if (sh.nextCycle < end_) {
                    sh.stats.cyclesSkipped.inc(end_ - sh.nextCycle);
                    sh.nextCycle = end_;
                }
            }
            break;
        }

        // Uncore phase first: it leads the protocol.  Its fills and
        // occupancy publishes for c deliver directly into the core
        // queues / pend lists before the core phase below runs c,
        // min-updating nextAct_ at the send — no ring round trip,
        // no per-iteration drain or next-event refresh.
        if (un.nextCycle <= c && nextAct_[cores_] <= c) {
            if (un.nextCycle < c) {
                un.stats.cyclesSkipped.inc(c - un.nextCycle);
                un.nextCycle = c;
            }
            execCycle(cores_, un, &chunkWork);
            nextAct_[cores_] = nextActivity(un);
        }

        // Core phase: execute, then apply eff <= c + 1 snapshots (the
        // next executable cycle) so a blocked retire stage wakes the
        // cached activity.  Core sends deliver directly into the
        // uncore queue, so an arrival at c + sendLat min-updates
        // nextAct_ before the next global-skip decision.
        for (std::size_t s = 0; s < cores_; ++s) {
            Shard &sh = *shards_[s];
            if (sh.nextCycle >= end_)
                continue;
            if (sh.nextCycle <= c && nextAct_[s] <= c) {
                if (sh.nextCycle < c) {
                    sh.stats.cyclesSkipped.inc(c - sh.nextCycle);
                    sh.nextCycle = c;
                }
                execCycle(s, sh, &chunkWork);
                applyOccUpTo(s, c + 1);
                nextAct_[s] = nextActivity(sh);
            } else if (applyOccUpTo(s, c + 1)) {
                nextAct_[s] = nextActivity(sh);
            }
        }

        // Periodic re-split check against the same density measure
        // the parallel passes use: work per equivalent window epoch
        // (span * shards / sendLat epochs over the chunk's span).
        if (++sinceCheck >= 4096) {
            sinceCheck = 0;
            const Cycle span = c >= chunkStart ? c - chunkStart + 1 : 1;
            const std::uint64_t equiv =
                (static_cast<std::uint64_t>(span) * n + sendLat_ - 1) /
                sendLat_;
            const std::uint64_t density16 =
                chunkWork * 16 / (equiv ? equiv : 1);
            ewmaDensity16_ = density16;
            chunkWork = 0;
            chunkStart = c + 1;
            if (fallback_ == FallbackMode::Adaptive &&
                hwThreads_ >= 2 && density16 > kHighDensity16) {
                if (++highStreak_ >= kStreak) {
                    highStreak_ = 0;
                    cooldown_ = kCooldown;
                    collapsed_.store(false, std::memory_order_release);
                    ++resplits_;
                    break;
                }
            } else {
                highStreak_ = 0;
            }
        }
    }

    direct_ = false;
    for (auto &shp : shards_) {
        Shard &sh = *shp;
        std::uint64_t casc = sh.queue.cascades();
        sh.stats.wheelCascades.inc(casc - sh.cascadesSeen);
        sh.cascadesSeen = casc;
        sh.stats.epochs.inc();
        sh.frontier.store(sh.nextCycle, std::memory_order_release);
        markFinished(sh);
    }
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        (*it)->mtx.unlock();
    if (collapsed_.load(std::memory_order_relaxed) == false)
        wakeParked();
}

void
ShardedSimulator::workerLoop(std::size_t w)
{
    const std::size_t n = shards_.size();
    while (finished_.load(std::memory_order_acquire) < n) {
        // Every worker observes the cancel token, so all of them
        // unwind and dispatch() rethrows the first JobCancelled after
        // the pool settles; no worker is left spinning for progress
        // a cancelled peer will never make.
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            if (w == 0)
                wakeParked();
            throw JobCancelled("sharded run cancelled before cycle " +
                               std::to_string(end_));
        }
        if (w != 0 && collapsed_.load(std::memory_order_acquire)) {
            parkWorker();
            continue;
        }
        if (w == 0 && collapsed_.load(std::memory_order_relaxed)) {
            // Collapsed: one lane drives every shard from a single
            // global cycle loop — serial-kernel cost structure, no
            // per-window frontier epochs (see runCollapsed).
            runCollapsed();
            continue;
        }
        bool progress = false;
        std::uint64_t passWork = 0;
        std::uint64_t passEpochs = 0;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t s = (w + i) % n;
            Shard &sh = *shards_[s];
            if (sh.frontier.load(std::memory_order_relaxed) >= end_)
                continue;
            if (!sh.mtx.try_lock())
                continue;
            bool p = advanceShard(s, &passWork);
            sh.mtx.unlock();
            if (p) {
                progress = true;
                ++passEpochs;
            }
        }
        if (w == 0)
            adaptMode(passWork, passEpochs);
        if (!progress && !tryGlobalJump())
            std::this_thread::yield();
    }
    if (w == 0)
        wakeParked();
}

void
ShardedSimulator::run(Cycle cycles)
{
    if (!arriveHandler_ || !fillHandler_ || !occHandler_ ||
        !phaseHook_) {
        vpc_panic("sharded kernel run() before handlers installed");
    }
    end_ = cycles > kCycleMax - cycle_ ? kCycleMax : cycle_ + cycles;
    if (end_ == cycle_)
        return;
    finished_.store(0, std::memory_order_relaxed);
    for (auto &sh : shards_)
        sh->finished = false;
    switch (fallback_) {
      case FallbackMode::ForceSerial:
        collapsed_.store(true, std::memory_order_relaxed);
        break;
      case FallbackMode::ForceParallel:
        collapsed_.store(false, std::memory_order_relaxed);
        break;
      case FallbackMode::Adaptive:
        // A single hardware thread decides immediately; otherwise the
        // previous run's decision carries over (warm start) and the
        // EWMA re-earns any flip.
        if (hwThreads_ < 2)
            collapsed_.store(true, std::memory_order_relaxed);
        break;
    }
    lowStreak_ = highStreak_ = 0;
    cooldown_ = 0;
    if (!collapsed_.load(std::memory_order_relaxed))
        ewmaDensity16_ = kHighDensity16;
    // A permanent collapse (forced, or a single-threaded host) can
    // never re-split, so the extra lanes would only ever park — skip
    // dispatching them and run the whole thing on the calling thread.
    const bool permanent =
        collapsed_.load(std::memory_order_relaxed) &&
        (fallback_ == FallbackMode::ForceSerial || hwThreads_ < 2);
    pool_.dispatch(permanent ? 1 : workers_,
                   [this](std::size_t w) { workerLoop(w); });
    cycle_ = end_;
    // Drain whatever the final cycles left in flight, so between runs
    // the queues hold exactly the events the sequential kernel would
    // (dumpState prints the pending count) and state dumps compare.
    for (std::size_t s = 0; s < shards_.size(); ++s)
        drainInto(s);
}

const KernelStats &
ShardedSimulator::kernelStats() const
{
    merged_.reset();
    for (const auto &sh : shards_) {
        merged_.cyclesExecuted.inc(sh->stats.cyclesExecuted.value());
        merged_.cyclesSkipped.inc(sh->stats.cyclesSkipped.value());
        merged_.ticksExecuted.inc(sh->stats.ticksExecuted.value());
        merged_.eventsFired.inc(sh->stats.eventsFired.value());
        merged_.messagesSent.inc(sh->stats.messagesSent.value());
        merged_.wheelCascades.inc(sh->stats.wheelCascades.value());
        merged_.epochs.inc(sh->stats.epochs.value());
        merged_.barrierStalls.inc(sh->stats.barrierStalls.value());
    }
    return merged_;
}

std::size_t
ShardedSimulator::queuedEvents() const
{
    std::size_t n = 0;
    for (const auto &sh : shards_) {
        n += sh->queue.size();
        for (const FusedChain *c : sh->chains)
            n += c->pending();
    }
    return n;
}

} // namespace vpc
