#include "sim/sharded_simulator.hh"

#include <thread>

#include "sim/debug.hh"

namespace vpc
{

ShardedSimulator::ShardedSimulator(unsigned cores, unsigned workers,
                                   Cycle sendLatency, Cycle fillLatency)
    : cores_(cores),
      workers_(workers < 1 ? 1
               : workers > cores + 1 ? cores + 1
                                     : workers),
      sendLat_(sendLatency),
      pool_(workers_ - 1)
{
    if (cores < 1)
        vpc_panic("sharded kernel needs at least one core shard");
    if (sendLatency < 1 || fillLatency < 1)
        vpc_panic("sharded kernel needs cross-shard latency >= 1 "
                  "(send {}, fill {})",
                  sendLatency, fillLatency);

    shards_.reserve(cores + 1);
    for (unsigned s = 0; s <= cores; ++s) {
        auto sh = std::make_unique<Shard>();
        sh->key.tickPhase = static_cast<std::uint8_t>(
            s < cores ? SchedPhase::CpuTick : SchedPhase::UncoreTick);
        sh->key.rank = s;
        sh->queue.setKeySource(&sh->key);
        shards_.push_back(std::move(sh));
    }
    toUncore_.reserve(cores);
    toCore_.reserve(cores);
    lastOcc_.resize(cores);
    for (unsigned c = 0; c < cores; ++c) {
        toUncore_.push_back(std::make_unique<SpscRing<CrossMsg>>());
        toCore_.push_back(std::make_unique<SpscRing<CoreMsg>>());
    }
}

EventQueue &
ShardedSimulator::coreEvents(unsigned core)
{
    return shards_.at(core)->queue;
}

EventQueue &
ShardedSimulator::uncoreEvents()
{
    return shards_[cores_]->queue;
}

void
ShardedSimulator::addCoreTicking(unsigned core, Ticking *t,
                                 std::string name)
{
    Shard &sh = *shards_.at(core);
    sh.comps.push_back(t);
    sh.names.push_back(std::move(name));
}

void
ShardedSimulator::addUncoreTicking(Ticking *t, std::string name)
{
    Shard &sh = *shards_[cores_];
    sh.comps.push_back(t);
    sh.names.push_back(std::move(name));
}

void
ShardedSimulator::installProfiler(Shard &sh, Profiler *p)
{
    sh.prof = p;
    sh.queue.setProfiler(p);
    sh.ids.clear();
    if (p != nullptr) {
        sh.ids.reserve(sh.comps.size());
        for (std::size_t i = 0; i < sh.comps.size(); ++i) {
            sh.ids.push_back(p->add(
                sh.names[i].empty() ? "comp" + std::to_string(i)
                                    : sh.names[i]));
        }
    }
}

void
ShardedSimulator::setCoreProfiler(unsigned core, Profiler *p)
{
    Shard &sh = *shards_.at(core);
    installProfiler(sh, p);
    // Fills arriving over the ring were originated by the L2; bill
    // them to an "l2" account here, merged with the uncore's by name.
    sh.fillOwner = p != nullptr ? p->add("l2") : Profiler::kUnattributed;
}

void
ShardedSimulator::setUncoreProfiler(Profiler *p)
{
    Shard &sh = *shards_[cores_];
    installProfiler(sh, p);
    // Arrivals over ring c were originated by that core's CPU.
    sh.arriveOwner.assign(cores_, Profiler::kUnattributed);
    if (p != nullptr) {
        for (unsigned c = 0; c < cores_; ++c)
            sh.arriveOwner[c] = p->add("cpu" + std::to_string(c));
    }
}

void
ShardedSimulator::setArriveHandler(
    std::function<void(const CrossMsg &)> fn)
{
    arriveHandler_ = std::move(fn);
}

void
ShardedSimulator::setFillHandler(
    std::function<void(unsigned, Addr, Cycle)> fn)
{
    fillHandler_ = std::move(fn);
}

void
ShardedSimulator::setOccHandler(
    std::function<void(unsigned, unsigned, unsigned)> fn)
{
    occHandler_ = std::move(fn);
}

void
ShardedSimulator::setUncorePhaseHook(std::function<void(Cycle)> fn)
{
    phaseHook_ = std::move(fn);
}

void
ShardedSimulator::sendCross(unsigned core, const CrossMsg &msg)
{
    toUncore_[core]->push(msg);
    shards_[core]->stats.messagesSent.inc();
}

void
ShardedSimulator::sendFill(unsigned core, Addr line, Cycle critical)
{
    CoreMsg m;
    m.key = shards_[cores_]->queue.makeKey(critical);
    m.line = line;
    m.kind = 0;
    toCore_[core]->push(m);
    shards_[cores_]->stats.messagesSent.inc();
}

void
ShardedSimulator::publishOcc(unsigned core, unsigned bank, Cycle eff,
                             unsigned occ)
{
    auto &last = lastOcc_[core];
    if (bank >= last.size())
        last.resize(bank + 1, 0); // ports also start at occupancy 0
    if (last[bank] == occ)
        return;
    last[bank] = occ;
    CoreMsg m;
    m.eff = eff;
    m.kind = 1;
    m.bank = static_cast<std::uint8_t>(bank);
    m.occ = static_cast<std::uint16_t>(occ);
    toCore_[core]->push(m);
    shards_[cores_]->stats.messagesSent.inc();
}

void
ShardedSimulator::drainInto(std::size_t s)
{
    // Ring deliveries re-schedule events the *other* side's component
    // originated, so bill them to their semantic senders — exactly
    // what the serial kernel's owner-context attribution would do.
    Shard &sh = *shards_[s];
    if (s == cores_) {
        // Fixed core order: arrival *events* are ordered by their
        // carried keys anyway, so drain order only affects queue
        // internals; keeping it fixed keeps those deterministic too.
        for (unsigned c = 0; c < cores_; ++c) {
            if (sh.prof != nullptr)
                sh.queue.setProfileContext(sh.arriveOwner[c]);
            CrossMsg m;
            while (toUncore_[c]->pop(m)) {
                sh.queue.scheduleKeyed(
                    m.key, [this, m] { arriveHandler_(m); });
            }
        }
    } else {
        if (sh.prof != nullptr)
            sh.queue.setProfileContext(sh.fillOwner);
        CoreMsg m;
        while (toCore_[s]->pop(m)) {
            if (m.kind == 0) {
                sh.queue.scheduleKeyed(
                    m.key, [this, s, m] {
                        fillHandler_(static_cast<unsigned>(s), m.line,
                                     m.key.when);
                    });
            } else {
                sh.occPending.push_back(m);
            }
        }
    }
    if (sh.prof != nullptr)
        sh.queue.setProfileContext(Profiler::kUnattributed);
}

void
ShardedSimulator::applyOccUpTo(std::size_t s, Cycle c)
{
    auto &pend = shards_[s]->occPending;
    while (!pend.empty() && pend.front().eff <= c) {
        const CoreMsg &m = pend.front();
        occHandler_(static_cast<unsigned>(s), m.bank, m.occ);
        pend.pop_front();
    }
}

Cycle
ShardedSimulator::nextActivity(const Shard &sh) const
{
    Cycle next = sh.queue.nextEventCycle();
    for (Ticking *t : sh.comps) {
        Cycle w = t->nextWork(sh.nextCycle);
        if (w < next)
            next = w;
        if (next <= sh.nextCycle)
            break;
    }
    return next;
}

void
ShardedSimulator::markFinished(Shard &sh)
{
    if (sh.nextCycle >= end_ && !sh.finished) {
        sh.finished = true;
        finished_.fetch_add(1, std::memory_order_release);
    }
}

bool
ShardedSimulator::advanceShard(std::size_t s)
{
    Shard &sh = *shards_[s];
    if (sh.nextCycle >= end_) {
        markFinished(sh);
        return false;
    }

    // Bound first (acquire), then drain: every message from sender
    // cycles below the acquired frontier is then visible, and no
    // later message can fire at or before the bound.
    Cycle bound; // inclusive
    if (s == cores_) {
        Cycle minH = kCycleMax;
        for (unsigned c = 0; c < cores_; ++c) {
            Cycle h = shards_[c]->frontier.load(
                std::memory_order_acquire);
            if (h < minH)
                minH = h;
        }
        bound = minH > kCycleMax - sendLat_ ? kCycleMax
                                            : minH + sendLat_ - 1;
    } else {
        Cycle hu =
            shards_[cores_]->frontier.load(std::memory_order_acquire);
        if (hu == 0) {
            sh.stats.barrierStalls.inc();
            return false;
        }
        bound = hu - 1;
    }
    if (bound > end_ - 1)
        bound = end_ - 1;

    drainInto(s);
    if (bound < sh.nextCycle) {
        sh.stats.barrierStalls.inc();
        return false;
    }

    const Cycle start = sh.nextCycle;
    while (sh.nextCycle <= bound) {
        const Cycle c = sh.nextCycle;
        sh.key.now = c;
        if (s != cores_)
            applyOccUpTo(s, c);
        std::size_t fired = sh.queue.runDue(c);
        sh.stats.eventsFired.inc(fired);
        if (s == cores_ && fired > 0 && phaseHook_)
            phaseHook_(c);
        std::size_t ticked = 0;
        for (std::size_t i = 0; i < sh.comps.size(); ++i) {
            Ticking *t = sh.comps[i];
            if (t->nextWork(c) <= c) {
                if (sh.prof != nullptr) {
                    Profiler::ComponentId id = sh.ids[i];
                    sh.queue.setProfileContext(id);
                    std::uint64_t t0 = Profiler::nowNs();
                    t->tick(c);
                    sh.prof->addTick(id, Profiler::nowNs() - t0);
                    sh.queue.setProfileContext(
                        Profiler::kUnattributed);
                } else {
                    t->tick(c);
                }
                ++ticked;
            }
        }
        sh.stats.ticksExecuted.inc(ticked);
        if (s == cores_ && ticked > 0 && phaseHook_)
            phaseHook_(c + 1);
        sh.stats.cyclesExecuted.inc();
        sh.nextCycle = c + 1;

        // Fast-forward within the window, exactly like the
        // sequential skip kernel but clipped to bound + 1.
        Cycle next = nextActivity(sh);
        Cycle limit = bound >= kCycleMax ? kCycleMax : bound + 1;
        if (limit > end_)
            limit = end_;
        Cycle target = next < limit ? next : limit;
        if (target > sh.nextCycle) {
            sh.stats.cyclesSkipped.inc(target - sh.nextCycle);
            sh.nextCycle = target;
        }
    }

    std::uint64_t casc = sh.queue.cascades();
    sh.stats.wheelCascades.inc(casc - sh.cascadesSeen);
    sh.cascadesSeen = casc;
    sh.stats.epochs.inc();

    sh.frontier.store(sh.nextCycle, std::memory_order_release);
    markFinished(sh);
    return sh.nextCycle > start;
}

bool
ShardedSimulator::tryGlobalJump()
{
    if (!jumpMtx_.try_lock())
        return false;
    std::lock_guard<std::mutex> jg(jumpMtx_, std::adopt_lock);

    // Visitors hold at most one shard mutex and never block on a
    // second, so taking all of them in index order cannot deadlock.
    for (auto &sh : shards_)
        sh->mtx.lock();

    for (std::size_t s = 0; s < shards_.size(); ++s)
        drainInto(s);
    // Occupancy snapshots already effective can change a core's
    // nextWork (an unblocked retire stage); apply before polling.
    for (std::size_t s = 0; s < cores_; ++s)
        applyOccUpTo(s, shards_[s]->nextCycle);

    Cycle gn = kCycleMax;
    for (auto &sh : shards_) {
        if (sh->nextCycle >= end_)
            continue;
        Cycle next = nextActivity(*sh);
        if (next < gn)
            gn = next;
    }

    // With every lock held and every ring empty, no shard has any
    // activity before gn, so all of [nextCycle, gn) is a no-op span
    // for everyone — the sequential fast-forward, done globally.
    bool progress = false;
    Cycle target = gn < end_ ? gn : end_;
    for (auto &sh : shards_) {
        if (target > sh->nextCycle) {
            sh->stats.cyclesSkipped.inc(target - sh->nextCycle);
            sh->nextCycle = target;
            progress = true;
        }
        sh->frontier.store(sh->nextCycle, std::memory_order_release);
        markFinished(*sh);
    }

    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
        (*it)->mtx.unlock();
    return progress;
}

void
ShardedSimulator::workerLoop(std::size_t w)
{
    const std::size_t n = shards_.size();
    while (finished_.load(std::memory_order_acquire) < n) {
        // Every worker observes the cancel token, so all of them
        // unwind and dispatch() rethrows the first JobCancelled after
        // the pool settles; no worker is left spinning for progress
        // a cancelled peer will never make.
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            throw JobCancelled("sharded run cancelled before cycle " +
                               std::to_string(end_));
        }
        bool progress = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t s = (w + i) % n;
            Shard &sh = *shards_[s];
            if (sh.frontier.load(std::memory_order_relaxed) >= end_)
                continue;
            if (!sh.mtx.try_lock())
                continue;
            bool p = advanceShard(s);
            sh.mtx.unlock();
            progress = progress || p;
        }
        if (!progress && !tryGlobalJump())
            std::this_thread::yield();
    }
}

void
ShardedSimulator::run(Cycle cycles)
{
    if (!arriveHandler_ || !fillHandler_ || !occHandler_ ||
        !phaseHook_) {
        vpc_panic("sharded kernel run() before handlers installed");
    }
    end_ = cycles > kCycleMax - cycle_ ? kCycleMax : cycle_ + cycles;
    if (end_ == cycle_)
        return;
    finished_.store(0, std::memory_order_relaxed);
    for (auto &sh : shards_)
        sh->finished = false;
    pool_.dispatch(workers_, [this](std::size_t w) { workerLoop(w); });
    cycle_ = end_;
    // Drain whatever the final cycles left in flight, so between runs
    // the queues hold exactly the events the sequential kernel would
    // (dumpState prints the pending count) and state dumps compare.
    for (std::size_t s = 0; s < shards_.size(); ++s)
        drainInto(s);
}

const KernelStats &
ShardedSimulator::kernelStats() const
{
    merged_.reset();
    for (const auto &sh : shards_) {
        merged_.cyclesExecuted.inc(sh->stats.cyclesExecuted.value());
        merged_.cyclesSkipped.inc(sh->stats.cyclesSkipped.value());
        merged_.ticksExecuted.inc(sh->stats.ticksExecuted.value());
        merged_.eventsFired.inc(sh->stats.eventsFired.value());
        merged_.messagesSent.inc(sh->stats.messagesSent.value());
        merged_.wheelCascades.inc(sh->stats.wheelCascades.value());
        merged_.epochs.inc(sh->stats.epochs.value());
        merged_.barrierStalls.inc(sh->stats.barrierStalls.value());
    }
    return merged_;
}

std::size_t
ShardedSimulator::queuedEvents() const
{
    std::size_t n = 0;
    for (const auto &sh : shards_)
        n += sh->queue.size();
    return n;
}

} // namespace vpc
