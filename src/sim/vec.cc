#include "sim/vec.hh"

namespace vpc
{
namespace vec
{

bool forceScalar = false;

} // namespace vec
} // namespace vpc
