/**
 * @file
 * Portable SIMD primitives for the SoA hot scans (DESIGN.md 5i).
 *
 * The hot loops this wraps are all short, data-parallel sweeps over
 * contiguous structure-of-arrays state: the way-parallel tag compare
 * in CacheArray::lookup/markDirty/invalidate, the LRU/overage-mask
 * min-stamp victim scans, the RoW exact-write-set membership probe,
 * and the VPC arbiter's EDF (finish, seq) argmin.  Each primitive has
 * one scalar reference implementation and optional vector bodies
 * selected at compile time (AVX2, SSE2, NEON); the scalar body is the
 * specification and every vector body must return bit-identical
 * results — the randomized oracle test drives both through the
 * runtime `forceScalar` switch to prove it.
 *
 * Dispatch is compile-time only: -DVPC_SIMD=OFF defines
 * VPC_SIMD_DISABLED and compiles the scalar bodies alone; otherwise
 * the widest instruction set the compiler advertises (__AVX2__,
 * __SSE2__, __ARM_NEON) is used.  `forceScalar` additionally forces
 * the scalar body at runtime so tests can differentially compare the
 * two paths inside a single (vector-enabled) binary.
 *
 * Overread contract: primitives taking an explicit element count and
 * documented as "padded" may read up to kWidth64 - 1 elements past
 * the end; callers guarantee that storage (CacheArray pads its
 * per-line planes).  Primitives without the padded note handle tails
 * with scalar code and never overread.
 */

#ifndef VPC_SIM_VEC_HH
#define VPC_SIM_VEC_HH

#include <cstddef>
#include <cstdint>
#include <limits>

#if !defined(VPC_SIMD_DISABLED)
#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#define VPC_VEC_X86 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define VPC_VEC_NEON 1
#endif
#endif

namespace vpc
{
namespace vec
{

/**
 * Runtime escape hatch: when set, every primitive executes its scalar
 * reference body.  Flipped by the SoA oracle test to differentially
 * check the vector bodies; never set on a hot path.
 */
extern bool forceScalar;

/** Lanes per vector of 64-bit elements (1 in scalar builds). */
#if !defined(VPC_SIMD_DISABLED) && defined(__AVX2__)
constexpr unsigned kWidth64 = 4;
constexpr const char *kIsaName = "avx2";
#elif !defined(VPC_SIMD_DISABLED) && defined(__SSE2__)
constexpr unsigned kWidth64 = 2;
constexpr const char *kIsaName = "sse2";
#elif defined(VPC_VEC_NEON)
constexpr unsigned kWidth64 = 2;
constexpr const char *kIsaName = "neon";
#else
constexpr unsigned kWidth64 = 1;
constexpr const char *kIsaName = "scalar";
#endif

namespace detail
{

inline std::uint64_t
eqMask64Scalar(const std::uint64_t *data, unsigned n, std::uint64_t key)
{
    std::uint64_t m = 0;
    for (unsigned i = 0; i < n; ++i)
        m |= std::uint64_t{data[i] == key} << i;
    return m;
}

inline unsigned
minIndex64Scalar(const std::uint64_t *vals, std::uint64_t mask)
{
    unsigned best = 64;
    std::uint64_t best_v = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
        auto w = static_cast<unsigned>(__builtin_ctzll(m));
        if (vals[w] < best_v) {
            best = w;
            best_v = vals[w];
        }
    }
    return best;
}

inline bool
contains64Scalar(const std::uint64_t *data, std::size_t n,
                 std::uint64_t key)
{
    for (std::size_t i = 0; i < n; ++i)
        if (data[i] == key)
            return true;
    return false;
}

inline unsigned
argminF64SeqScalar(const double *f, const std::uint64_t *seq,
                   unsigned n)
{
    unsigned best = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (f[i] < f[best] ||
            (f[i] == f[best] && seq[i] < seq[best]))
            best = i;
    }
    return best;
}

} // namespace detail

/**
 * Bit i set iff data[i] == key, for i in [0, n); n <= 64.  Padded:
 * may overread to the next kWidth64 boundary.
 */
inline std::uint64_t
eqMask64(const std::uint64_t *data, unsigned n, std::uint64_t key)
{
#if !defined(VPC_SIMD_DISABLED) && defined(__AVX2__)
    if (!forceScalar) {
        const __m256i k = _mm256_set1_epi64x(
            static_cast<long long>(key));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 4) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(data + i));
            __m256i eq = _mm256_cmpeq_epi64(v, k);
            auto bits = static_cast<std::uint64_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
            m |= bits << i;
        }
        return n < 64 ? m & ((std::uint64_t{1} << n) - 1) : m;
    }
#elif !defined(VPC_SIMD_DISABLED) && defined(__SSE2__)
    if (!forceScalar) {
        // SSE2 has no 64-bit compare: compare 32-bit halves and AND
        // each lane with its swapped half so a lane is all-ones iff
        // both halves matched.
        const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2) {
            __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + i));
            __m128i eq32 = _mm_cmpeq_epi32(v, k);
            __m128i eq = _mm_and_si128(
                eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
            auto bits = static_cast<std::uint64_t>(
                _mm_movemask_pd(_mm_castsi128_pd(eq)));
            m |= bits << i;
        }
        return n < 64 ? m & ((std::uint64_t{1} << n) - 1) : m;
    }
#elif defined(VPC_VEC_NEON)
    if (!forceScalar) {
        const uint64x2_t k = vdupq_n_u64(key);
        std::uint64_t m = 0;
        for (unsigned i = 0; i < n; i += 2) {
            uint64x2_t eq = vceqq_u64(vld1q_u64(data + i), k);
            m |= (vgetq_lane_u64(eq, 0) & 1) << i;
            m |= (vgetq_lane_u64(eq, 1) & 1) << (i + 1);
        }
        return n < 64 ? m & ((std::uint64_t{1} << n) - 1) : m;
    }
#endif
    return detail::eqMask64Scalar(data, n, key);
}

/**
 * Index of the smallest vals[i] among the set bits of @p mask, ties
 * to the lowest index (the LRU "first lowest way" rule).  @p mask
 * must be non-zero with all bits < n; values must be < 2^63 (LRU
 * stamps are use-clock readings, nowhere near that).  Padded: may
 * overread to the next kWidth64 boundary.
 */
inline unsigned
minIndex64(const std::uint64_t *vals, std::uint64_t mask, unsigned n)
{
#if !defined(VPC_SIMD_DISABLED) && defined(__AVX2__)
    if (!forceScalar) {
        // Masked-out lanes are blended to INT64_MAX, which no stamp
        // reaches, so the signed 64-bit min (AVX2 has no unsigned
        // compare) is exact.  The winning value is then located with
        // an equality sweep — ctz over (equal & mask) reproduces the
        // lowest-index tie-break.
        const __m256i sent = _mm256_set1_epi64x(
            std::numeric_limits<long long>::max());
        const __m256i lane_bits = _mm256_set_epi64x(8, 4, 2, 1);
        __m256i best = sent;
        for (unsigned i = 0; i < n; i += 4) {
            __m256i nib = _mm256_set1_epi64x(
                static_cast<long long>((mask >> i) & 0xf));
            __m256i lm = _mm256_cmpeq_epi64(
                _mm256_and_si256(nib, lane_bits), lane_bits);
            __m256i v = _mm256_blendv_epi8(
                sent,
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(vals + i)),
                lm);
            best = _mm256_blendv_epi8(
                best, v, _mm256_cmpgt_epi64(best, v));
        }
        alignas(32) std::int64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), best);
        std::int64_t bv = lanes[0];
        for (int l = 1; l < 4; ++l)
            if (lanes[l] < bv)
                bv = lanes[l];
        std::uint64_t eq = eqMask64(
            vals, n, static_cast<std::uint64_t>(bv)) & mask;
        return static_cast<unsigned>(__builtin_ctzll(eq));
    }
#endif
    return detail::minIndex64Scalar(vals, mask);
}

/**
 * @return true iff @p key appears in data[0, n).  Exact tail — never
 * overreads (the RoW write scratch is an unpadded vector).
 */
inline bool
contains64(const std::uint64_t *data, std::size_t n, std::uint64_t key)
{
#if !defined(VPC_SIMD_DISABLED) && defined(__AVX2__)
    if (!forceScalar) {
        const __m256i k = _mm256_set1_epi64x(
            static_cast<long long>(key));
        std::size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            __m256i eq = _mm256_cmpeq_epi64(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(data + i)),
                k);
            if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0)
                return true;
        }
        return detail::contains64Scalar(data + i, n - i, key);
    }
#elif !defined(VPC_SIMD_DISABLED) && defined(__SSE2__)
    if (!forceScalar) {
        const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            __m128i eq32 = _mm_cmpeq_epi32(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(data + i)),
                k);
            __m128i eq = _mm_and_si128(
                eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
            if (_mm_movemask_pd(_mm_castsi128_pd(eq)) != 0)
                return true;
        }
        return detail::contains64Scalar(data + i, n - i, key);
    }
#elif defined(VPC_VEC_NEON)
    if (!forceScalar) {
        const uint64x2_t k = vdupq_n_u64(key);
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            uint64x2_t eq = vceqq_u64(vld1q_u64(data + i), k);
            if ((vgetq_lane_u64(eq, 0) | vgetq_lane_u64(eq, 1)) != 0)
                return true;
        }
        return detail::contains64Scalar(data + i, n - i, key);
    }
#endif
    return detail::contains64Scalar(data, n, key);
}

/**
 * Index minimizing (f[i], seq[i]) lexicographically over [0, n);
 * n >= 1.  This is the EDF grant rule: earliest virtual finish wins,
 * arrival order breaks ties.  IEEE semantics match the scalar loop
 * exactly (strict < then ==; no NaNs reach this — finish times are
 * sums of non-NaN terms).  Exact tail — never overreads.
 */
inline unsigned
argminF64Seq(const double *f, const std::uint64_t *seq, unsigned n)
{
#if !defined(VPC_SIMD_DISABLED) && defined(__AVX2__)
    if (!forceScalar && n >= 4) {
        __m256d best = _mm256_loadu_pd(f);
        unsigned i = 4;
        for (; i + 4 <= n; i += 4)
            best = _mm256_min_pd(best, _mm256_loadu_pd(f + i));
        alignas(32) double lanes[4];
        _mm256_store_pd(lanes, best);
        double bv = lanes[0];
        for (int l = 1; l < 4; ++l)
            if (lanes[l] < bv)
                bv = lanes[l];
        for (; i < n; ++i)
            if (f[i] < bv)
                bv = f[i];
        // Lowest-seq winner among the (rare) equal-finish entries.
        unsigned best_i = n;
        for (unsigned j = 0; j < n; ++j) {
            if (f[j] == bv &&
                (best_i == n || seq[j] < seq[best_i]))
                best_i = j;
        }
        return best_i;
    }
#endif
    return detail::argminF64SeqScalar(f, seq, n);
}

} // namespace vec
} // namespace vpc

#endif // VPC_SIM_VEC_HH
