/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be bit-reproducible across runs and platforms, so we
 * use our own small PCG32 generator rather than std::mt19937 +
 * distribution objects (whose output is implementation-defined for
 * floating-point distributions).
 */

#ifndef VPC_SIM_RANDOM_HH
#define VPC_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"

namespace vpc
{

/**
 * Precomputed integer-threshold form of Rng::chance(p).
 *
 * chance(p) evaluates `next32() * 2^-32 < p` in double.  Both sides
 * are exact: a 32-bit integer scaled by a power of two only adjusts
 * the exponent, and p is whatever double the caller holds.  The
 * comparison therefore equals the real-number comparison
 * `next32() < p * 2^32`, whose right side is again computed exactly
 * and whose ceiling fits in 33 bits.  So `next32() < ceil(p * 2^32)`
 * reproduces chance(p) bit-for-bit while replacing the per-draw
 * convert/multiply/float-compare with one integer compare.  Callers
 * that test the same probability millions of times (workload
 * synthesis, the LSU reject draw) build the threshold once.
 *
 * Identity also requires preserving the *number of draws consumed*:
 * chance(p) short-circuits p <= 0 and p >= 1 without advancing the
 * generator, so those cases get sentinel encodings that answer
 * without a draw.  (A p just under 1 whose ceiling is exactly 2^32
 * is distinct from the p >= 1 case: it still consumes its draw.)
 */
class Bernoulli
{
  public:
    /** Sentinel: certainly true, and no draw is consumed. */
    static constexpr std::uint64_t kCertain = ~std::uint64_t{0};

    Bernoulli() = default;

    explicit Bernoulli(double p)
    {
        if (p <= 0.0)
            thr_ = 0; // never true, no draw consumed
        else if (p >= 1.0)
            thr_ = kCertain;
        else
            thr_ = static_cast<std::uint64_t>(
                std::ceil(p * 4294967296.0)); // in [1, 2^32]
    }

    std::uint64_t threshold() const { return thr_; }

  private:
    std::uint64_t thr_ = 0; //!< draw < thr_ <=> chance(p) true
};

/**
 * PCG32 (O'Neill) pseudo-random generator.
 *
 * 64-bit state, 32-bit output, period 2^64.  Deterministic given a seed
 * and stream id.
 */
class Rng
{
  public:
    /**
     * @param seed initial state seed
     * @param stream stream selector; generators with different streams
     *        produce independent sequences from the same seed
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
        : state(0), inc((stream << 1u) | 1u)
    {
        next32();
        state += seed;
        next32();
    }

    /** @return the next raw 32-bit value. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** @return a uniform integer in [0, bound). @p bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            vpc_panic("Rng::below called with bound 0");
        // Debiased modulo (Lemire-style rejection).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return next32() * (1.0 / 4294967296.0);
    }

    /** @return true with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * @return true with the probability @p b was built from;
     * bit-identical to chance(p), including the draws consumed
     * (see Bernoulli).
     */
    bool
    chance(const Bernoulli &b)
    {
        std::uint64_t t = b.threshold();
        if (t == 0)
            return false; // chance(p <= 0): no draw
        if (t == Bernoulli::kCertain)
            return true; // chance(p >= 1): no draw
        return next32() < t;
    }

    /**
     * Sample a (truncated) geometric run length >= 1 with mean roughly
     * @p mean.  Used for burst-length synthesis in workload generators.
     */
    std::uint32_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        std::uint32_t n = 1;
        while (n < 100000 && !chance(p))
            ++n;
        return n;
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace vpc

#endif // VPC_SIM_RANDOM_HH
