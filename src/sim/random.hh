/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be bit-reproducible across runs and platforms, so we
 * use our own small PCG32 generator rather than std::mt19937 +
 * distribution objects (whose output is implementation-defined for
 * floating-point distributions).
 */

#ifndef VPC_SIM_RANDOM_HH
#define VPC_SIM_RANDOM_HH

#include <cstdint>

#include "sim/logging.hh"

namespace vpc
{

/**
 * PCG32 (O'Neill) pseudo-random generator.
 *
 * 64-bit state, 32-bit output, period 2^64.  Deterministic given a seed
 * and stream id.
 */
class Rng
{
  public:
    /**
     * @param seed initial state seed
     * @param stream stream selector; generators with different streams
     *        produce independent sequences from the same seed
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
        : state(0), inc((stream << 1u) | 1u)
    {
        next32();
        state += seed;
        next32();
    }

    /** @return the next raw 32-bit value. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** @return a uniform integer in [0, bound). @p bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            vpc_panic("Rng::below called with bound 0");
        // Debiased modulo (Lemire-style rejection).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return next32() * (1.0 / 4294967296.0);
    }

    /** @return true with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Sample a (truncated) geometric run length >= 1 with mean roughly
     * @p mean.  Used for burst-length synthesis in workload generators.
     */
    std::uint32_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double p = 1.0 / mean;
        std::uint32_t n = 1;
        while (n < 100000 && !chance(p))
            ++n;
        return n;
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace vpc

#endif // VPC_SIM_RANDOM_HH
