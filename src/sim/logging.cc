#include "sim/logging.hh"

namespace vpc
{
namespace detail
{

void
panicExit(std::string_view msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %.*s\n  at %s:%d\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::abort();
}

void
fatalExit(std::string_view msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %.*s\n  at %s:%d\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::exit(1);
}

void
warnPrint(std::string_view msg)
{
    std::fprintf(stderr, "warn: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
}

void
informPrint(std::string_view msg)
{
    std::fprintf(stdout, "info: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::fflush(stdout);
}

} // namespace detail
} // namespace vpc
