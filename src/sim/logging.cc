#include "sim/logging.hh"

#include <utility>
#include <vector>

namespace vpc
{

namespace
{

struct DumpEntry
{
    std::size_t id = 0;
    std::string name;
    PanicDumpFn fn;
};

/**
 * Registry storage.  Function-local static so registration from any
 * translation unit's static initializers is safe.
 */
std::vector<DumpEntry> &
dumpRegistry()
{
    static std::vector<DumpEntry> entries;
    return entries;
}

std::size_t nextDumpId = 1;

/** Print every registered dump section; recursion-guarded. */
void
runPanicDumps()
{
    static bool dumping = false;
    if (dumping)
        return; // a dump callback panicked; do not recurse
    dumping = true;
    for (const DumpEntry &e : dumpRegistry()) {
        std::string body = e.fn ? e.fn() : std::string();
        std::fprintf(stderr,
                     "==== panic state dump: %s ====\n%s%s",
                     e.name.c_str(), body.c_str(),
                     (!body.empty() && body.back() == '\n') ? "" : "\n");
    }
    dumping = false;
}

} // namespace

std::size_t
registerPanicDump(std::string name, PanicDumpFn fn)
{
    std::size_t id = nextDumpId++;
    dumpRegistry().push_back(DumpEntry{id, std::move(name),
                                       std::move(fn)});
    return id;
}

void
unregisterPanicDump(std::size_t id)
{
    auto &entries = dumpRegistry();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->id == id) {
            entries.erase(it);
            return;
        }
    }
}

namespace detail
{

void
panicExit(std::string_view msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %.*s\n  at %s:%d\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    runPanicDumps();
    std::abort();
}

void
fatalExit(std::string_view msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %.*s\n  at %s:%d\n",
                 static_cast<int>(msg.size()), msg.data(), file, line);
    std::exit(1);
}

void
warnPrint(std::string_view msg)
{
    std::fprintf(stderr, "warn: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
}

void
informPrint(std::string_view msg)
{
    std::fprintf(stdout, "info: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::fflush(stdout);
}

} // namespace detail
} // namespace vpc
