/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator advances one core cycle at a time.  Each cycle it first
 * fires due events from the shared EventQueue, then calls tick() on every
 * registered Ticking component in registration order.  Registration order
 * is therefore part of the model: producers are registered before
 * consumers so data moves at most one pipeline stage per cycle.
 */

#ifndef VPC_SIM_SIMULATOR_HH
#define VPC_SIM_SIMULATOR_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace vpc
{

/** Interface for components that do work every core cycle. */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Perform this component's work for cycle @p now. */
    virtual void tick(Cycle now) = 0;
};

/**
 * Interface for runtime invariant auditing (see src/verify/).
 *
 * An auditor is invoked at the end of every step(), after all events
 * and ticks for the cycle have run, so it observes a settled snapshot
 * of the machine state.  Auditors check invariants and vpc_panic on
 * violation; they must not mutate model state (fault injection, which
 * deliberately does, is the one sanctioned exception).
 */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Audit the machine state at the end of cycle @p now. */
    virtual void audit(Cycle now) = 0;
};

/** Owns simulated time; steps registered components and the event queue. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Register a component for per-cycle ticking.  The simulator does
     * not take ownership; the component must outlive the simulator run.
     */
    void addTicking(Ticking *t) { components.push_back(t); }

    /**
     * Install the audit hook (nullptr to remove).  The auditor does
     * not become owned; it runs after every step.  Disabled auditing
     * costs one predictable branch per cycle.
     */
    void setAuditor(Auditable *a) { auditor_ = a; }

    /** @return the shared event queue. */
    EventQueue &events() { return queue; }
    const EventQueue &events() const { return queue; }

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /** Advance the simulation by exactly one cycle. */
    void
    step()
    {
        queue.runDue(cycle_);
        for (Ticking *t : components)
            t->tick(cycle_);
        if (auditor_)
            auditor_->audit(cycle_);
        ++cycle_;
    }

    /** Advance the simulation by @p cycles cycles. */
    void
    run(Cycle cycles)
    {
        // Saturate instead of wrapping: an overflowed end marker would
        // sit *behind* cycle_ and silently run zero cycles.
        Cycle end = cycles > kCycleMax - cycle_ ? kCycleMax
                                                : cycle_ + cycles;
        while (cycle_ < end)
            step();
    }

  private:
    EventQueue queue;
    std::vector<Ticking *> components;
    Cycle cycle_ = 0;
    Auditable *auditor_ = nullptr;
};

} // namespace vpc

#endif // VPC_SIM_SIMULATOR_HH
