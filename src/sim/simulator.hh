/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator advances one core cycle at a time.  Each cycle it first
 * fires due events from the shared EventQueue, then calls tick() on every
 * registered Ticking component in registration order.  Registration order
 * is therefore part of the model: producers are registered before
 * consumers so data moves at most one pipeline stage per cycle.
 *
 * Quiescence-aware kernel: components may additionally implement
 * nextWork() to tell the kernel when their next observable tick() can
 * occur.  run() uses the hints two ways:
 *
 *  - active set: within an executed cycle, a component whose
 *    nextWork(now) > now is not ticked at all (its tick() is required to
 *    be a no-op then, so skipping the call is exact);
 *  - fast-forward: when every component is quiescent and no event is
 *    due, cycle_ jumps straight to min(next event, earliest nextWork).
 *
 * Hints are re-polled immediately before each component's tick slot in
 * every executed cycle, so same-cycle activation by an earlier
 * component's tick (a bank enqueueing a DRAM read that the memory
 * controller — registered later — services the same cycle) is observed
 * exactly as in the naive loop.  See DESIGN.md ("Kernel performance
 * model") for the full determinism argument, and the quiescence
 * contract on Ticking::nextWork below.
 *
 * Skipping is disabled whenever an auditor is installed (per-cycle
 * audits and the forward-progress watchdog must observe every cycle)
 * and by setSkipping(false) (the --no-skip flag), which falls back to
 * the naive loop for bit-identical differential runs.
 */

#ifndef VPC_SIM_SIMULATOR_HH
#define VPC_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cancel.hh"
#include "sim/event_queue.hh"
#include "sim/fused_chain.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** Interface for components that do work every core cycle. */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Perform this component's work for cycle @p now. */
    virtual void tick(Cycle now) = 0;

    /**
     * Quiescence hint: the earliest cycle >= @p now at which this
     * component's tick() might do observable work, assuming no new
     * input arrives (no event fires, no earlier component feeds it).
     *
     * Contract for implementors:
     *
     *  - If nextWork(now) > now, then tick(c) for every cycle c in
     *    [now, nextWork(now)) must be a complete no-op: no model or
     *    statistics state may change, no random numbers may be drawn,
     *    and no calls into other components may occur.  The kernel is
     *    entitled to simply not make those calls.
     *  - Being conservative is always safe: returning @p now (the
     *    default) yields the naive always-tick loop.
     *  - The hint must be derived from current state only.  It is
     *    re-polled after any event fires and after earlier components
     *    tick, so it need not anticipate external wake-ups — those are
     *    visible as state changes by the time the hint is read again.
     *  - Return kCycleMax for "asleep until some event or peer wakes
     *    me" (e.g. an empty memory controller: new work only arrives
     *    via enqueue calls, completions via events).
     */
    virtual Cycle nextWork(Cycle now) const { return now; }
};

/**
 * Interface for runtime invariant auditing (see src/verify/).
 *
 * An auditor is invoked at the end of every step(), after all events
 * and ticks for the cycle have run, so it observes a settled snapshot
 * of the machine state.  Auditors check invariants and vpc_panic on
 * violation; they must not mutate model state (fault injection, which
 * deliberately does, is the one sanctioned exception).
 */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Audit the machine state at the end of cycle @p now. */
    virtual void audit(Cycle now) = 0;
};

/** Owns simulated time; steps registered components and the event queue. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Register a component for per-cycle ticking.  The simulator does
     * not take ownership; the component must outlive the simulator run.
     * @p name labels the component in --profile reports; unnamed
     * components are auto-labelled "comp<index>".
     */
    void
    addTicking(Ticking *t, std::string name = {})
    {
        components.push_back(t);
        names_.push_back(std::move(name));
    }

    /**
     * Install the cycle-attribution profiler (nullptr to remove).
     * Registers every component added so far under its addTicking()
     * name and brackets each executed tick with the component's owner
     * context, so events it schedules bill to it.  Install after all
     * addTicking() calls and before running.  Observe-only: profiling
     * never changes model state or statistics.
     */
    void
    setProfiler(Profiler *p)
    {
        prof_ = p;
        queue.setProfiler(p);
        for (FusedChain *c : chains_)
            c->setProfiler(p);
        ids_.clear();
        if (p != nullptr) {
            ids_.reserve(components.size());
            for (std::size_t i = 0; i < components.size(); ++i) {
                ids_.push_back(p->add(
                    names_[i].empty() ? "comp" + std::to_string(i)
                                      : names_[i]));
            }
        }
    }

    /**
     * Register a fused fixed-latency chain (see sim/fused_chain.hh).
     * Every cycle the kernel drains the chain's due entries right
     * after the event queue fires, in registration order.  Not owned;
     * must outlive the simulator run.  Register chains in the order
     * their entries would have been scheduled within a producing
     * cycle, so drains replay the event queue's insertion order.
     */
    void
    addFusedChain(FusedChain *c)
    {
        chains_.push_back(c);
        c->setProfiler(prof_);
        c->setDueHook(&chainsDue_);
        if (c->nextDue() < chainsDue_)
            chainsDue_ = c->nextDue();
    }

    /** @return pending events including undrained fused-chain entries. */
    std::size_t
    pendingEvents() const
    {
        std::size_t n = queue.size();
        for (const FusedChain *c : chains_)
            n += c->pending();
        return n;
    }

    /**
     * Install the audit hook (nullptr to remove).  The auditor does
     * not become owned; it runs after every step.  Installing an
     * auditor forces the naive per-cycle loop: audits and the watchdog
     * are defined per cycle, so no cycle may be skipped while one is
     * attached.
     */
    void setAuditor(Auditable *a) { auditor_ = a; }

    /**
     * Enable or disable quiescence skipping in run() (default on).
     * With skipping off the kernel executes the naive loop: every
     * cycle, every component.  Results are identical either way — the
     * differential tests assert it — so this is a verification and
     * debugging aid (--no-skip).
     */
    void setSkipping(bool on) { skipping_ = on; }

    /** @return whether run() may fast-forward quiescent spans. */
    bool skipping() const { return skipping_; }

    /**
     * Install a cooperative cancel token (nullptr to remove).  run()
     * polls it once per executed loop iteration and throws
     * JobCancelled when it is set, leaving the machine torn mid-run —
     * the caller must discard the system.  Observe-only for runs that
     * complete: with the token unset (or absent) cycle ordering,
     * events and every kernel counter are unchanged (see
     * sim/cancel.hh).
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

    /** @return kernel work counters for this simulator's lifetime. */
    const KernelStats &kernelStats() const { return kernel_; }

    /** @return the shared event queue. */
    EventQueue &events() { return queue; }
    const EventQueue &events() const { return queue; }

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /** Advance the simulation by exactly one cycle (naive semantics). */
    void
    step()
    {
        kernel_.eventsFired.inc(queue.runDue(cycle_));
        drainChains();
        if (prof_ != nullptr) {
            for (std::size_t i = 0; i < components.size(); ++i)
                profiledTick(i, cycle_);
        } else {
            for (Ticking *t : components)
                t->tick(cycle_);
        }
        kernel_.ticksExecuted.inc(components.size());
        kernel_.cyclesExecuted.inc();
        if (auditor_)
            auditor_->audit(cycle_);
        ++cycle_;
    }

    /** Advance the simulation by @p cycles cycles. */
    void
    run(Cycle cycles)
    {
        // Saturate instead of wrapping: an overflowed end marker would
        // sit *behind* cycle_ and silently run zero cycles.
        Cycle end = cycles > kCycleMax - cycle_ ? kCycleMax
                                                : cycle_ + cycles;
        if (!skipping_ || auditor_ != nullptr) {
            while (cycle_ < end) {
                checkCancelled();
                step();
            }
            syncWheelStats();
            return;
        }
        while (cycle_ < end) {
            checkCancelled();
            kernel_.eventsFired.inc(queue.runDue(cycle_));
            drainChains();
            // Active set: poll each hint immediately before the
            // component's slot so feeds from events and from earlier
            // components this cycle are already visible.
            for (std::size_t i = 0; i < components.size(); ++i) {
                Ticking *t = components[i];
                if (t->nextWork(cycle_) <= cycle_) {
                    if (prof_ != nullptr)
                        profiledTick(i, cycle_);
                    else
                        t->tick(cycle_);
                    kernel_.ticksExecuted.inc();
                }
            }
            kernel_.cyclesExecuted.inc();
            ++cycle_;
            // Fast-forward: nothing can happen before the earliest of
            // the next event, the next fused-chain entry (the cached
            // minimum — pushes min-update it, drains re-derive it),
            // and every component's next work cycle.
            Cycle next = queue.nextEventCycle();
            if (chainsDue_ < next)
                next = chainsDue_;
            if (next <= cycle_)
                continue; // an event is already due — no skip possible
            for (Ticking *t : components) {
                Cycle w = t->nextWork(cycle_);
                if (w < next)
                    next = w;
                if (next <= cycle_)
                    break; // already due — no skip possible
            }
            if (next > cycle_) {
                Cycle target = next < end ? next : end;
                if (target > cycle_) {
                    kernel_.cyclesSkipped.inc(target - cycle_);
                    cycle_ = target;
                }
            }
        }
        syncWheelStats();
    }

  private:
    /** Throw JobCancelled when the installed token is set. */
    void
    checkCancelled() const
    {
        if (cancel_ != nullptr &&
            cancel_->load(std::memory_order_relaxed)) {
            throw JobCancelled("simulation cancelled at cycle " +
                               std::to_string(cycle_));
        }
    }

    /**
     * Drain every fused chain's entries due this cycle.  One compare
     * on the cached earliest-due cycle in the common (nothing due)
     * case; a due drain re-derives the exact minimum afterwards, in a
     * second pass so pushes made *by* drained handlers (always due
     * strictly later — lane latencies are positive constants) are
     * observed no matter which lane they landed in.
     */
    void
    drainChains()
    {
        if (chainsDue_ > cycle_)
            return;
        chainsDue_ = kCycleMax;
        for (FusedChain *c : chains_) {
            std::uint64_t n = c->drain(cycle_);
            if (c->counted())
                kernel_.eventsFired.inc(n);
        }
        for (const FusedChain *c : chains_) {
            Cycle d = c->nextDue();
            if (d < chainsDue_)
                chainsDue_ = d;
        }
    }

    /** Timed tick of component @p i with its owner context active. */
    void
    profiledTick(std::size_t i, Cycle now)
    {
        Profiler::ComponentId id = ids_[i];
        queue.setProfileContext(id);
        std::uint64_t t0 = Profiler::nowNs();
        components[i]->tick(now);
        prof_->addTick(id, Profiler::nowNs() - t0);
        queue.setProfileContext(Profiler::kUnattributed);
    }

    /** Fold the wheel's cascade count into the kernel counters. */
    void
    syncWheelStats()
    {
        std::uint64_t c = queue.cascades();
        kernel_.wheelCascades.inc(c - cascadesSeen_);
        cascadesSeen_ = c;
    }

    EventQueue queue;
    std::vector<Ticking *> components;
    std::vector<FusedChain *> chains_;    //!< drained after runDue
    Cycle chainsDue_ = kCycleMax;         //!< earliest fused entry due
    std::vector<std::string> names_;      //!< profile labels, parallel
    std::vector<Profiler::ComponentId> ids_; //!< profiler accounts
    Profiler *prof_ = nullptr;            //!< null unless --profile
    Cycle cycle_ = 0;
    Auditable *auditor_ = nullptr;
    const CancelToken *cancel_ = nullptr; //!< null unless supervised
    bool skipping_ = true;
    KernelStats kernel_;
    std::uint64_t cascadesSeen_ = 0;
};

} // namespace vpc

#endif // VPC_SIM_SIMULATOR_HH
