/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator advances one core cycle at a time.  Each cycle it first
 * fires due events from the shared EventQueue, then calls tick() on every
 * registered Ticking component in registration order.  Registration order
 * is therefore part of the model: producers are registered before
 * consumers so data moves at most one pipeline stage per cycle.
 */

#ifndef VPC_SIM_SIMULATOR_HH
#define VPC_SIM_SIMULATOR_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace vpc
{

/** Interface for components that do work every core cycle. */
class Ticking
{
  public:
    virtual ~Ticking() = default;

    /** Perform this component's work for cycle @p now. */
    virtual void tick(Cycle now) = 0;
};

/** Owns simulated time; steps registered components and the event queue. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Register a component for per-cycle ticking.  The simulator does
     * not take ownership; the component must outlive the simulator run.
     */
    void addTicking(Ticking *t) { components.push_back(t); }

    /** @return the shared event queue. */
    EventQueue &events() { return queue; }

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /** Advance the simulation by exactly one cycle. */
    void
    step()
    {
        queue.runDue(cycle_);
        for (Ticking *t : components)
            t->tick(cycle_);
        ++cycle_;
    }

    /** Advance the simulation by @p cycles cycles. */
    void
    run(Cycle cycles)
    {
        Cycle end = cycle_ + cycles;
        while (cycle_ < end)
            step();
    }

  private:
    EventQueue queue;
    std::vector<Ticking *> components;
    Cycle cycle_ = 0;
};

} // namespace vpc

#endif // VPC_SIM_SIMULATOR_HH
