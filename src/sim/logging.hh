/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            code base); aborts.
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments); exits with status 1.
 * warn()   - something is suspicious but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef VPC_SIM_LOGGING_HH
#define VPC_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "sim/format.hh"

namespace vpc
{

namespace detail
{

[[noreturn]] void panicExit(std::string_view msg,
                            const char *file, int line);
[[noreturn]] void fatalExit(std::string_view msg,
                            const char *file, int line);
void warnPrint(std::string_view msg);
void informPrint(std::string_view msg);

} // namespace detail

/** Abort with a formatted message; use for internal invariant failures. */
#define vpc_panic(...) \
    ::vpc::detail::panicExit(::vpc::format(__VA_ARGS__), __FILE__, __LINE__)

/** Exit(1) with a formatted message; use for user/configuration errors. */
#define vpc_fatal(...) \
    ::vpc::detail::fatalExit(::vpc::format(__VA_ARGS__), __FILE__, __LINE__)

/** Print a warning; the simulation continues. */
#define vpc_warn(...) \
    ::vpc::detail::warnPrint(::vpc::format(__VA_ARGS__))

/** Print an informational status message. */
#define vpc_inform(...) \
    ::vpc::detail::informPrint(::vpc::format(__VA_ARGS__))

} // namespace vpc

#endif // VPC_SIM_LOGGING_HH
