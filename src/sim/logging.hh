/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            code base); aborts.
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments); exits with status 1.
 * warn()   - something is suspicious but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef VPC_SIM_LOGGING_HH
#define VPC_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>

#include "sim/format.hh"

namespace vpc
{

namespace detail
{

[[noreturn]] void panicExit(std::string_view msg,
                            const char *file, int line);
[[noreturn]] void fatalExit(std::string_view msg,
                            const char *file, int line);
void warnPrint(std::string_view msg);
void informPrint(std::string_view msg);

} // namespace detail

/**
 * @name Panic-time state dumps
 *
 * Components (the verify layer, primarily) can register a callback
 * that renders their state as text.  When vpc_panic fires, every
 * registered dump is printed to stderr before abort(), turning "the
 * simulator died" into a diagnosed machine snapshot: arbiter queues,
 * virtual clocks, per-thread occupancy, MSHRs.
 *
 * Dumps run for panics only -- fatal() is a user error and the machine
 * state is not interesting.  A dump callback that itself panics is
 * suppressed (no recursion).
 */
/// @{

/** A callback rendering one component's state for the panic report. */
using PanicDumpFn = std::function<std::string()>;

/**
 * Register @p fn under section heading @p name.
 *
 * @return an id for unregisterPanicDump(); callers must unregister
 *         before the captured state dies (see ScopedPanicDump)
 */
std::size_t registerPanicDump(std::string name, PanicDumpFn fn);

/** Remove a previously registered dump callback. */
void unregisterPanicDump(std::size_t id);

/** RAII registration of a panic dump section. */
class ScopedPanicDump
{
  public:
    ScopedPanicDump(std::string name, PanicDumpFn fn)
        : id_(registerPanicDump(std::move(name), std::move(fn)))
    {}

    ~ScopedPanicDump() { unregisterPanicDump(id_); }

    ScopedPanicDump(const ScopedPanicDump &) = delete;
    ScopedPanicDump &operator=(const ScopedPanicDump &) = delete;

  private:
    std::size_t id_;
};

/// @}

/** Abort with a formatted message; use for internal invariant failures. */
#define vpc_panic(...) \
    ::vpc::detail::panicExit(::vpc::format(__VA_ARGS__), __FILE__, __LINE__)

/** Exit(1) with a formatted message; use for user/configuration errors. */
#define vpc_fatal(...) \
    ::vpc::detail::fatalExit(::vpc::format(__VA_ARGS__), __FILE__, __LINE__)

/** Print a warning; the simulation continues. */
#define vpc_warn(...) \
    ::vpc::detail::warnPrint(::vpc::format(__VA_ARGS__))

/** Print an informational status message. */
#define vpc_inform(...) \
    ::vpc::detail::informPrint(::vpc::format(__VA_ARGS__))

} // namespace vpc

#endif // VPC_SIM_LOGGING_HH
