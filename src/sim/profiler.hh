/**
 * @file
 * Cycle-attribution profiler for the simulation kernels (--profile).
 *
 * Answers "where does the host's wall time go?" in terms of the model:
 * each registered component (a Ticking — cpu0..N-1, l2, mem) gets an
 * event-time/event-count and tick-time/tick-count account.  Tick time
 * is measured around each executed tick().  Event time is attributed
 * by *owner context*: the kernel tags every scheduled event with the
 * component whose tick (or whose own event) scheduled it, so a DRAM
 * completion scheduled by the memory controller's tick bills to "mem"
 * even though it fires from the event queue, and an event scheduled
 * from inside another event inherits that event's owner.  Events
 * scheduled outside any component context (setup code, tests) bill to
 * the reserved "(unattributed)" account, id 0.
 *
 * The profiler is strictly observe-only: it reads the monotonic clock
 * and bumps counters, so enabling it cannot change any model
 * statistic — the parallel determinism test asserts exactly that.
 * When disabled (no Profiler installed) the only residue on the hot
 * paths is one predictable branch per executed tick/event and one
 * 16-bit owner store per scheduled event.
 *
 * The shard-parallel kernel gives each shard its own Profiler (no
 * shared counters, no atomics); mergeByName() folds them into one
 * report after the run.
 */

#ifndef VPC_SIM_PROFILER_HH
#define VPC_SIM_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace vpc
{

/** Per-component host-time accounting (see file comment). */
class Profiler
{
  public:
    /** Component handle; 0 is the reserved unattributed account. */
    using ComponentId = std::uint16_t;

    static constexpr ComponentId kUnattributed = 0;

    /** One component's account. */
    struct Entry
    {
        std::string name;
        std::uint64_t tickNs = 0;    //!< host ns inside tick()
        std::uint64_t tickCount = 0; //!< executed ticks
        std::uint64_t eventNs = 0;   //!< host ns inside owned events
        std::uint64_t eventCount = 0;//!< owned events fired
    };

    Profiler() { entries_.push_back(Entry{"(unattributed)"}); }

    /** Register a component account. @return its id. */
    ComponentId
    add(std::string name)
    {
        entries_.push_back(Entry{std::move(name)});
        return static_cast<ComponentId>(entries_.size() - 1);
    }

    /** Credit @p ns of tick time to @p id. */
    void
    addTick(ComponentId id, std::uint64_t ns)
    {
        Entry &e = entries_[id];
        e.tickNs += ns;
        ++e.tickCount;
    }

    /** Credit @p ns of event-callback time to @p id. */
    void
    addEvent(ComponentId id, std::uint64_t ns)
    {
        Entry &e = entries_[id];
        e.eventNs += ns;
        ++e.eventCount;
    }

    /** @return the monotonic clock, in nanoseconds. */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** @return all accounts, unattributed first. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Fold @p other into this profiler, matching accounts by name. */
    void mergeByName(const Profiler &other);

    /** @return total event-callback ns across all accounts. */
    std::uint64_t totalEventNs() const;

    /** @return total event-callback ns attributed to named accounts. */
    std::uint64_t attributedEventNs() const;

    /**
     * Render the report: one line per account, sorted by total time
     * descending, with an attribution summary line.  Multi-line, no
     * trailing newline.
     */
    std::string report() const;

  private:
    std::vector<Entry> entries_;
};

} // namespace vpc

#endif // VPC_SIM_PROFILER_HH
