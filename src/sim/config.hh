/**
 * @file
 * System configuration (Table 1 of the paper) and QoS allocations.
 *
 * Defaults model the 2 GHz 4-processor CMP of Table 1.  All latencies
 * are in core (processor) cycles.  Bandwidth of the L2 arrays is the
 * reciprocal of their latency (the arrays are not pipelined), exactly as
 * the paper specifies.
 */

#ifndef VPC_SIM_CONFIG_HH
#define VPC_SIM_CONFIG_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"


namespace vpc
{

/** Which policy drives the shared L2 resource arbiters. */
enum class ArbiterPolicy
{
    Fcfs,      //!< first-come first-serve across all threads
    RowFcfs,   //!< reads-over-writes, then FCFS (private-cache policy)
    RoundRobin,//!< cycle round-robin across threads
    Vpc        //!< fair-queuing VPC arbiter (the paper's contribution)
};

/** Which replacement policy manages shared L2 capacity. */
enum class CapacityPolicy
{
    Lru,       //!< unpartitioned global LRU
    Vpc,       //!< VPC capacity manager (way partitioning, Section 4.2)
    /**
     * Flexible whole-cache occupancy partitioning -- the class of
     * manager Section 4.3 contrasts with way partitioning (better
     * average use of capacity, but no per-set guarantee and hence no
     * performance monotonicity).
     */
    GlobalOccupancy
};

/** Per-processor core parameters (Table 1, top half). */
struct CoreConfig
{
    unsigned dispatchWidth = 5;    //!< instrs per dispatch group
    unsigned robEntries = 100;     //!< 20 groups x 5 instructions
    unsigned retireWidth = 5;
    unsigned loadQueueEntries = 32;
    unsigned storeQueueEntries = 32;
    unsigned lsuPorts = 2;         //!< load issues per cycle
    unsigned storeCommitWidth = 1; //!< stores committed per cycle
    /**
     * Probability an issue attempt of an L1-*missing* load is rejected
     * by the LSU and retried (the 970's LSU reject / LMQ allocation
     * mechanism): loads enter the L2 out of order and the sustained
     * miss-issue rate is capped at lsuPorts * (1 - p) = 0.4/cycle,
     * which reproduces the Loads microbenchmark's 100% utilization on
     * two banks but ~80% on four (Figure 5).
     */
    double lsuRejectProb = 0.8;
};

/** Stride prefetcher configuration (see cache/prefetcher.hh). */
struct PrefetchConfig
{
    bool enable = false;     //!< paper baseline: prefetchers disabled
    unsigned streams = 4;    //!< tracked miss streams
    unsigned degree = 2;     //!< prefetches issued per confirmation
    unsigned confidence = 2; //!< confirmations before issuing
};

/** Private L1 data cache parameters. */
struct L1Config
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    Cycle hitLatency = 2;
    unsigned mshrs = 16;           //!< outstanding misses (D-cache)
    PrefetchConfig prefetch;       //!< disabled by default (Table 1)
};

/** Shared L2 cache parameters (per Table 1). */
struct L2Config
{
    unsigned banks = 2;
    std::uint64_t sizeBytes = 16ULL * 1024 * 1024; //!< total, all banks
    unsigned ways = 32;
    unsigned lineBytes = 64;
    Cycle tagLatency = 4;          //!< core cycles per tag access
    unsigned tagWriteAccesses = 2; //!< tag-state ECC read-modify-write
    Cycle dataLatency = 8;         //!< core cycles per data-array read
    unsigned dataWriteAccesses = 2;//!< ECC read-modify-write (Sec. 3.1)
    Cycle busBeatCycles = 2;       //!< 16B beat at 1/2 core frequency
    unsigned busBytes = 16;        //!< data bus width
    /**
     * Full-line bus occupancy override in cycles; 0 derives it as
     * busBeatCycles * (lineBytes / busBytes).  Used by the private-
     * equivalent machine (Section 5.3) whose 1/phi-scaled occupancy
     * is not a whole number of beats.
     */
    Cycle busOccupancyOverride = 0;
    Cycle interconnectLatency = 2; //!< crossbar request latency
    unsigned stateMachinesPerThread = 8; //!< controller SMs / thread / bank
    unsigned sgbEntriesPerThread = 8;    //!< store gathering buffer
    unsigned sgbHighWater = 6;           //!< retire-at-6 policy
    unsigned readClaimEntries = 8;

    /** @return number of sets per bank. */
    std::uint64_t
    setsPerBank(unsigned num_banks_override = 0) const
    {
        unsigned b = num_banks_override ? num_banks_override : banks;
        std::uint64_t per_bank = sizeBytes / b;
        return per_bank / (static_cast<std::uint64_t>(ways) * lineBytes);
    }
};

/** Per-thread private DDR2-800 channel parameters. */
struct MemConfig
{
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned transactionEntries = 16; //!< per-thread transaction buffer
    unsigned writeEntries = 8;        //!< per-thread write buffer
    // DDR2-800-5-5-5 on a 2 GHz core: 1 DRAM cycle = 5 core cycles.
    Cycle tRcd = 25;   //!< ACT->READ
    Cycle tCl = 25;    //!< READ->data
    Cycle tRp = 25;    //!< PRE->ACT
    Cycle tBurst = 20; //!< 64B over a 64-bit DDR bus (4 DRAM cycles)
    Cycle tWr = 25;    //!< write recovery before precharge
    Cycle ctrlLatency = 10; //!< controller pipeline overhead each way

    /**
     * Share one SDRAM channel among all threads instead of giving
     * each thread a private channel.  The paper's evaluation uses
     * private channels to isolate cache effects; the shared mode
     * implements the companion FQ memory system of Nesbit et al.
     * (Section 2.1) so the VPM framework extends across subsystems.
     */
    bool sharedChannel = false;
    /**
     * Transaction scheduling policy for the shared channel: Fcfs is
     * the baseline (equivalent to FR-FCFS under a closed-page
     * policy), Vpc is the fair-queuing scheduler with per-thread
     * bandwidth shares (taken from SystemConfig::shares).
     */
    ArbiterPolicy schedulerPolicy = ArbiterPolicy::Fcfs;
};

/**
 * QoS allocation for one thread: a bandwidth share (phi) applied to the
 * tag array, data array and data bus, and a capacity share (beta)
 * applied to the cache ways.
 */
struct QosShare
{
    double phi = 0.0;  //!< bandwidth share in [0, 1]
    double beta = 0.0; //!< capacity share in [0, 1]
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned numProcessors = 4;
    CoreConfig core;
    L1Config l1;
    L2Config l2;
    MemConfig mem;

    ArbiterPolicy arbiterPolicy = ArbiterPolicy::Fcfs;
    CapacityPolicy capacityPolicy = CapacityPolicy::Vpc;

    /** Allow RoW reordering inside each thread's VPC arbiter buffer. */
    bool vpcIntraThreadRow = true;
    /** Apply Equation 6 (reset idle thread virtual time); ablation. */
    bool vpcIdleReset = true;
    /** Work-conserving excess distribution; ablation (Section 3.2). */
    bool vpcWorkConserving = true;

    /** Per-thread QoS shares; sized to numProcessors by validate(). */
    std::vector<QosShare> shares;

    /**
     * Optional per-thread L1 prefetcher override; empty means every
     * thread uses l1.prefetch.  Sized to numProcessors otherwise.
     */
    std::vector<PrefetchConfig> l1PrefetchPerThread;

    /**
     * Check internal consistency and normalize the shares vector.
     * Calls vpc_fatal on user errors (over-allocation, bad sizes).
     */
    void
    validate()
    {
        if (numProcessors == 0)
            vpc_fatal("numProcessors must be > 0");
        if (!isPowerOf2(l2.lineBytes) || !isPowerOf2(l2.banks))
            vpc_fatal("L2 line size and bank count must be powers of 2");
        if (shares.empty()) {
            // Default: equal allocation of everything.
            shares.assign(numProcessors,
                          QosShare{1.0 / numProcessors,
                                   1.0 / numProcessors});
        }
        if (shares.size() != numProcessors)
            vpc_fatal("shares.size() ({}) != numProcessors ({})",
                      shares.size(), numProcessors);
        double phi_sum = 0.0, beta_sum = 0.0;
        for (const QosShare &s : shares) {
            if (s.phi < 0.0 || s.phi > 1.0 ||
                s.beta < 0.0 || s.beta > 1.0) {
                vpc_fatal("QoS shares must lie in [0, 1]");
            }
            phi_sum += s.phi;
            beta_sum += s.beta;
        }
        if (phi_sum > 1.0 + 1e-9)
            vpc_fatal("bandwidth over-allocated: sum(phi) = {}", phi_sum);
        if (beta_sum > 1.0 + 1e-9)
            vpc_fatal("capacity over-allocated: sum(beta) = {}", beta_sum);
        if (!l1PrefetchPerThread.empty() &&
            l1PrefetchPerThread.size() != numProcessors) {
            vpc_fatal("l1PrefetchPerThread.size() ({}) != "
                      "numProcessors ({})",
                      l1PrefetchPerThread.size(), numProcessors);
        }
    }

    /** @return thread @p t's effective L1 configuration. */
    L1Config
    l1ConfigFor(ThreadId t) const
    {
        L1Config out = l1;
        if (!l1PrefetchPerThread.empty())
            out.prefetch = l1PrefetchPerThread.at(t);
        return out;
    }
};

} // namespace vpc

#endif // VPC_SIM_CONFIG_HH
