/**
 * @file
 * System configuration (Table 1 of the paper) and QoS allocations.
 *
 * Defaults model the 2 GHz 4-processor CMP of Table 1.  All latencies
 * are in core (processor) cycles.  Bandwidth of the L2 arrays is the
 * reciprocal of their latency (the arrays are not pipelined), exactly as
 * the paper specifies.
 */

#ifndef VPC_SIM_CONFIG_HH
#define VPC_SIM_CONFIG_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"


namespace vpc
{

/**
 * Default for SystemConfig::kernelFuse: on unless the VPC_NO_FUSE
 * environment variable is set non-empty and not "0".  Read once per
 * process — an escape hatch, not a per-run switch — and folded into
 * the default rather than into normalize() so a config decoded from a
 * spooled job keeps the value its encoder hashed (the job codec embeds
 * and verifies the config digest across processes whose environments
 * may differ).
 */
inline bool
defaultKernelFuse()
{
    static const bool fuse = [] {
        const char *env = std::getenv("VPC_NO_FUSE");
        return env == nullptr || *env == '\0' ||
               (env[0] == '0' && env[1] == '\0');
    }();
    return fuse;
}

/** Which policy drives the shared L2 resource arbiters. */
enum class ArbiterPolicy
{
    Fcfs,      //!< first-come first-serve across all threads
    RowFcfs,   //!< reads-over-writes, then FCFS (private-cache policy)
    RoundRobin,//!< cycle round-robin across threads
    Vpc        //!< fair-queuing VPC arbiter (the paper's contribution)
};

/** Which replacement policy manages shared L2 capacity. */
enum class CapacityPolicy
{
    Lru,       //!< unpartitioned global LRU
    Vpc,       //!< VPC capacity manager (way partitioning, Section 4.2)
    /**
     * Flexible whole-cache occupancy partitioning -- the class of
     * manager Section 4.3 contrasts with way partitioning (better
     * average use of capacity, but no per-set guarantee and hence no
     * performance monotonicity).
     */
    GlobalOccupancy
};

/** Per-processor core parameters (Table 1, top half). */
struct CoreConfig
{
    unsigned dispatchWidth = 5;    //!< instrs per dispatch group
    unsigned robEntries = 100;     //!< 20 groups x 5 instructions
    unsigned retireWidth = 5;
    unsigned loadQueueEntries = 32;
    unsigned storeQueueEntries = 32;
    unsigned lsuPorts = 2;         //!< load issues per cycle
    unsigned storeCommitWidth = 1; //!< stores committed per cycle
    /**
     * Probability an issue attempt of an L1-*missing* load is rejected
     * by the LSU and retried (the 970's LSU reject / LMQ allocation
     * mechanism): loads enter the L2 out of order and the sustained
     * miss-issue rate is capped at lsuPorts * (1 - p) = 0.4/cycle,
     * which reproduces the Loads microbenchmark's 100% utilization on
     * two banks but ~80% on four (Figure 5).
     */
    double lsuRejectProb = 0.8;
};

/** Stride prefetcher configuration (see cache/prefetcher.hh). */
struct PrefetchConfig
{
    bool enable = false;     //!< paper baseline: prefetchers disabled
    unsigned streams = 4;    //!< tracked miss streams
    unsigned degree = 2;     //!< prefetches issued per confirmation
    unsigned confidence = 2; //!< confirmations before issuing
};

/** Private L1 data cache parameters. */
struct L1Config
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    Cycle hitLatency = 2;
    unsigned mshrs = 16;           //!< outstanding misses (D-cache)
    PrefetchConfig prefetch;       //!< disabled by default (Table 1)
};

/** Shared L2 cache parameters (per Table 1). */
struct L2Config
{
    unsigned banks = 2;
    std::uint64_t sizeBytes = 16ULL * 1024 * 1024; //!< total, all banks
    unsigned ways = 32;
    unsigned lineBytes = 64;
    Cycle tagLatency = 4;          //!< core cycles per tag access
    unsigned tagWriteAccesses = 2; //!< tag-state ECC read-modify-write
    Cycle dataLatency = 8;         //!< core cycles per data-array read
    unsigned dataWriteAccesses = 2;//!< ECC read-modify-write (Sec. 3.1)
    Cycle busBeatCycles = 2;       //!< 16B beat at 1/2 core frequency
    unsigned busBytes = 16;        //!< data bus width
    /**
     * Full-line bus occupancy override in cycles; 0 derives it as
     * busBeatCycles * (lineBytes / busBytes).  Used by the private-
     * equivalent machine (Section 5.3) whose 1/phi-scaled occupancy
     * is not a whole number of beats.
     */
    Cycle busOccupancyOverride = 0;
    Cycle interconnectLatency = 2; //!< crossbar request latency
    unsigned stateMachinesPerThread = 8; //!< controller SMs / thread / bank
    unsigned sgbEntriesPerThread = 8;    //!< store gathering buffer
    unsigned sgbHighWater = 6;           //!< retire-at-6 policy
    unsigned readClaimEntries = 8;

    /** @return number of sets per bank. */
    std::uint64_t
    setsPerBank(unsigned num_banks_override = 0) const
    {
        unsigned b = num_banks_override ? num_banks_override : banks;
        std::uint64_t per_bank = sizeBytes / b;
        return per_bank / (static_cast<std::uint64_t>(ways) * lineBytes);
    }
};

/** Per-thread private DDR2-800 channel parameters. */
struct MemConfig
{
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned transactionEntries = 16; //!< per-thread transaction buffer
    unsigned writeEntries = 8;        //!< per-thread write buffer
    // DDR2-800-5-5-5 on a 2 GHz core: 1 DRAM cycle = 5 core cycles.
    Cycle tRcd = 25;   //!< ACT->READ
    Cycle tCl = 25;    //!< READ->data
    Cycle tRp = 25;    //!< PRE->ACT
    Cycle tBurst = 20; //!< 64B over a 64-bit DDR bus (4 DRAM cycles)
    Cycle tWr = 25;    //!< write recovery before precharge
    Cycle ctrlLatency = 10; //!< controller pipeline overhead each way

    /**
     * Share one SDRAM channel among all threads instead of giving
     * each thread a private channel.  The paper's evaluation uses
     * private channels to isolate cache effects; the shared mode
     * implements the companion FQ memory system of Nesbit et al.
     * (Section 2.1) so the VPM framework extends across subsystems.
     */
    bool sharedChannel = false;
    /**
     * Transaction scheduling policy for the shared channel: Fcfs is
     * the baseline (equivalent to FR-FCFS under a closed-page
     * policy), Vpc is the fair-queuing scheduler with per-thread
     * bandwidth shares (taken from SystemConfig::shares).
     */
    ArbiterPolicy schedulerPolicy = ArbiterPolicy::Fcfs;
};

/**
 * QoS allocation for one thread: a bandwidth share (phi) applied to the
 * tag array, data array and data bus, and a capacity share (beta)
 * applied to the cache ways.
 */
struct QosShare
{
    double phi = 0.0;  //!< bandwidth share in [0, 1]
    double beta = 0.0; //!< capacity share in [0, 1]
};

/**
 * Runtime verification layer configuration (src/verify/): invariant
 * auditing, fault injection and the forward-progress watchdog.  All
 * off by default; when everything is off no auditor is installed and
 * the simulator hot path pays a single predictable branch.
 */
struct VerifyConfig
{
    /**
     * Paranoia level: 0 = off, 1 = audit every auditInterval cycles,
     * >= 2 = audit every cycle.
     */
    unsigned paranoid = 0;
    /** Cycles between audits at paranoid level 1. */
    Cycle auditInterval = 64;
    /**
     * Forward-progress watchdog: panic (with a structured state dump)
     * when a thread with outstanding requests retires nothing for this
     * many cycles.  0 disables the watchdog.
     */
    Cycle watchdogCycles = 0;
    /**
     * Fault-injection rate in expected faults per cycle (0 disables).
     * Faults deterministically perturb live state -- dropped grants,
     * corrupted virtual-time registers, flipped line ownership -- to
     * prove the auditors fire.
     */
    double faultRate = 0.0;
    /** Seed for the fault injector's private RNG. */
    std::uint64_t faultSeed = 1;

    /** @return true when any verify machinery must be built. */
    bool
    enabled() const
    {
        return paranoid > 0 || watchdogCycles > 0 || faultRate > 0.0;
    }
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned numProcessors = 4;
    CoreConfig core;
    L1Config l1;
    L2Config l2;
    MemConfig mem;

    ArbiterPolicy arbiterPolicy = ArbiterPolicy::Fcfs;
    CapacityPolicy capacityPolicy = CapacityPolicy::Vpc;

    /** Runtime verification layer (auditing / faults / watchdog). */
    VerifyConfig verify;

    /**
     * Let the simulation kernel fast-forward over provably quiescent
     * spans and skip ticks of idle components (see Ticking::nextWork).
     * Results are bit-identical either way — the differential tests
     * assert it — so turning this off (--no-skip) is purely a
     * verification and debugging aid.  Ignored (forced off) while an
     * auditor is installed, since audits are defined per cycle.
     */
    bool kernelSkip = true;

    /**
     * Fuse fixed-latency event chains (sim/fused_chain.hh): L1 hit
     * completions, crossbar transits and critical-word responses run
     * through FIFO lanes drained each cycle instead of the timing
     * wheel.  Model results and stdout are byte-identical either way
     * — the differential and determinism tests assert it — so turning
     * this off (the VPC_NO_FUSE=1 escape hatch) is purely a
     * verification and debugging aid.
     */
    bool kernelFuse = defaultKernelFuse();

    /**
     * Worker threads for the simulation kernel (--threads).  1 (the
     * default) selects the sequential kernel; above 1 the system is
     * partitioned into per-core shards plus an uncore shard and run
     * on the shard-parallel kernel (src/sim/sharded_simulator.hh).
     * Model results are bit-identical at any value — the determinism
     * tests assert it.
     */
    unsigned kernelThreads = 1;

    /**
     * Attach the cycle-attribution profiler (--profile): per-component
     * host-time accounting for ticks and owned events, reported to
     * stderr (and into bench JSON) after the run.  Observe-only —
     * enabling it never changes any model statistic; the parallel
     * determinism test asserts that at every worker count.
     */
    bool profile = false;

    /**
     * Permit zero QoS shares under the VPC policies.  A thread with
     * phi = 0 (or a beta whose way quota rounds to zero) holds no
     * guarantee at all -- it is served purely from excess bandwidth /
     * capacity, and the private-equivalent machine L_i = L / phi_i it
     * is measured against is undefined.  validate() rejects such
     * shares for active threads unless this flag is set by callers
     * that deliberately model unallocated threads (the VPC controller
     * starts all threads unallocated; Figure 8's sweep endpoints give
     * one thread everything).
     */
    bool allowUnallocatedShares = false;

    /** Allow RoW reordering inside each thread's VPC arbiter buffer. */
    bool vpcIntraThreadRow = true;
    /** Apply Equation 6 (reset idle thread virtual time); ablation. */
    bool vpcIdleReset = true;
    /** Work-conserving excess distribution; ablation (Section 3.2). */
    bool vpcWorkConserving = true;

    /** Per-thread QoS shares; sized to numProcessors by validate(). */
    std::vector<QosShare> shares;

    /**
     * Optional per-thread L1 prefetcher override; empty means every
     * thread uses l1.prefetch.  Sized to numProcessors otherwise.
     */
    std::vector<PrefetchConfig> l1PrefetchPerThread;

    /** Fill defaulted fields in place (the shares vector); no checks. */
    void
    normalize()
    {
        if (shares.empty()) {
            // Default: equal allocation of everything.
            shares.assign(numProcessors,
                          QosShare{1.0 / numProcessors,
                                   1.0 / numProcessors});
        }
    }

    /**
     * @return "" when the (normalized) configuration is internally
     *         consistent, else a description of the first problem.
     *         Never exits — the service layer uses this to reject
     *         malformed spooled jobs without killing the daemon.
     */
    std::string
    check() const
    {
        if (numProcessors == 0)
            return "numProcessors must be > 0";
        if (!isPowerOf2(l2.lineBytes) || !isPowerOf2(l2.banks))
            return "L2 line size and bank count must be powers of 2";
        if (l2.ways == 0)
            return "L2 must have at least one way";
        // The size must factor exactly into banks x sets x ways x
        // lines; a remainder silently truncates capacity, and a
        // non-power-of-2 set count breaks the mask-based set index.
        std::uint64_t l2_divisor = static_cast<std::uint64_t>(l2.banks) *
                                   l2.ways * l2.lineBytes;
        if (l2_divisor == 0 || l2.sizeBytes % l2_divisor != 0)
            return format("L2 size {} not divisible by banks*ways*line "
                          "({})", l2.sizeBytes, l2_divisor);
        if (!isPowerOf2(l2.setsPerBank()))
            return format("L2 geometry gives {} sets per bank; must be "
                          "a non-zero power of 2", l2.setsPerBank());
        // The L1 uses the same mask-based indexing; check it the same
        // way.
        if (!isPowerOf2(l1.lineBytes))
            return "L1 line size must be a power of 2";
        if (l1.ways == 0)
            return "L1 must have at least one way";
        std::uint64_t l1_divisor =
            static_cast<std::uint64_t>(l1.ways) * l1.lineBytes;
        if (l1.sizeBytes % l1_divisor != 0 ||
            !isPowerOf2(l1.sizeBytes / l1_divisor)) {
            return format("L1 geometry gives {} sets; must be a "
                          "non-zero power of 2",
                          l1.sizeBytes / l1_divisor);
        }
        if (shares.size() != numProcessors)
            return format("shares.size() ({}) != numProcessors ({})",
                          shares.size(), numProcessors);
        double phi_sum = 0.0, beta_sum = 0.0;
        for (std::size_t t = 0; t < shares.size(); ++t) {
            const QosShare &s = shares[t];
            if (s.phi < 0.0 || s.phi > 1.0 ||
                s.beta < 0.0 || s.beta > 1.0) {
                return "QoS shares must lie in [0, 1]";
            }
            // A zero share under the VPC policies gives the thread no
            // guarantee at all, and its private-equivalent reference
            // machine (L_i = L / phi_i) is undefined -- almost always
            // a configuration mistake rather than an intent.
            if (!allowUnallocatedShares &&
                arbiterPolicy == ArbiterPolicy::Vpc && s.phi == 0.0) {
                return format(
                    "thread {} has phi = 0 under the VPC arbiter: its "
                    "bandwidth guarantee and private-equivalent "
                    "latency L/phi are undefined (set "
                    "allowUnallocatedShares to model deliberately "
                    "unallocated threads)", t);
            }
            if (!allowUnallocatedShares &&
                capacityPolicy == CapacityPolicy::Vpc &&
                s.beta * l2.ways < 1.0) {
                return format(
                    "thread {} has beta = {} under the VPC capacity "
                    "manager: its way quota floor(beta * {}) rounds "
                    "to zero ways (set allowUnallocatedShares to "
                    "model deliberately unallocated threads)",
                    t, s.beta, l2.ways);
            }
            phi_sum += s.phi;
            beta_sum += s.beta;
        }
        if (phi_sum > 1.0 + 1e-9)
            return format("bandwidth over-allocated: sum(phi) = {}",
                          phi_sum);
        if (beta_sum > 1.0 + 1e-9)
            return format("capacity over-allocated: sum(beta) = {}",
                          beta_sum);
        if (!l1PrefetchPerThread.empty() &&
            l1PrefetchPerThread.size() != numProcessors) {
            return format("l1PrefetchPerThread.size() ({}) != "
                          "numProcessors ({})",
                          l1PrefetchPerThread.size(), numProcessors);
        }
        if (kernelThreads == 0)
            return "--threads must be >= 1";
        if (kernelThreads > 1) {
            // The shard-parallel kernel's lookahead window is the
            // cross-shard latency; zero latency means zero lookahead.
            if (l2.interconnectLatency < 1 || l2.busBeatCycles < 1) {
                return format("--threads > 1 needs interconnect and "
                              "bus beat latencies >= 1 (got {} and {})",
                              l2.interconnectLatency, l2.busBeatCycles);
            }
            if (verify.enabled())
                return "--threads > 1 is incompatible with the verify "
                       "layer (per-cycle audits assume the sequential "
                       "kernel)";
            if (!kernelSkip)
                return "--threads > 1 requires kernel skipping (drop "
                       "--no-skip)";
        }
        return "";
    }

    /**
     * Check internal consistency and normalize the shares vector.
     * Calls vpc_fatal on user errors (over-allocation, bad sizes);
     * callers that must survive bad configs (the sweep daemon) use
     * normalize() + check() instead.
     */
    void
    validate()
    {
        normalize();
        std::string err = check();
        if (!err.empty())
            vpc_fatal("{}", err);
    }

    /** @return thread @p t's effective L1 configuration. */
    L1Config
    l1ConfigFor(ThreadId t) const
    {
        L1Config out = l1;
        if (!l1PrefetchPerThread.empty())
            out.prefetch = l1PrefetchPerThread.at(t);
        return out;
    }
};

} // namespace vpc

#endif // VPC_SIM_CONFIG_HH
