/**
 * @file
 * Fixed-capacity single-producer single-consumer ring.
 *
 * The shard-parallel kernel connects each core shard to the uncore
 * shard with two of these (one per direction).  Exactly one thread
 * pushes and one thread pops at any time; the frontier protocol's
 * acquire/release on shard frontiers orders the *contents*, while the
 * ring's own acquire/release on head/tail orders the slots.
 *
 * Capacity is a hard bound, not backpressure: the lookahead window
 * bounds in-flight messages to far below kCapacity, so overflow means
 * a kernel bug and panics rather than blocking (blocking a shard
 * worker could deadlock the round-robin advance loop).
 */

#ifndef VPC_SIM_SPSC_HH
#define VPC_SIM_SPSC_HH

#include <array>
#include <atomic>
#include <cstddef>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vpc
{

template <class T, std::size_t kCapacity = 4096>
class SpscRing
{
    static_assert((kCapacity & (kCapacity - 1)) == 0,
                  "capacity must be a power of two");

  public:
    /** Producer side.  Panics if the ring is full (kernel bug). */
    void
    push(const T &v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        const std::size_t h = head_.load(std::memory_order_acquire);
        if (t - h >= kCapacity)
            vpc_panic("spsc ring overflow (capacity {})", kCapacity);
        slots_[t & (kCapacity - 1)] = v;
        tail_.store(t + 1, std::memory_order_release);
    }

    /**
     * Consumer side.  Returns false when empty; otherwise copies the
     * oldest element into @p out and advances.
     */
    bool
    pop(T &out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return false;
        out = slots_[h & (kCapacity - 1)];
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side emptiness probe (exact for the consumer). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

    /**
     * @name Consumer span interface
     *
     * Batched drain: one acquire on tail_ snapshots a whole readable
     * span, peek() then reads slots with plain indexing (they are
     * ordered by that single acquire), and one release on head_
     * retires the span.  Equivalent to readable() pops of pop() but
     * with two atomic operations per span instead of two per message.
     */
    /// @{

    /** @return messages currently readable (one acquire). */
    std::size_t
    readable() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_relaxed);
    }

    /** @return the @p i -th readable message, 0 = oldest. */
    const T &
    peek(std::size_t i) const
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        return slots_[(h + i) & (kCapacity - 1)];
    }

    /** Retire the oldest @p n messages (one release). */
    void
    release(std::size_t n)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        head_.store(h + n, std::memory_order_release);
    }

    /// @}

  private:
    std::array<T, kCapacity> slots_{};
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace vpc

#endif // VPC_SIM_SPSC_HH
