/**
 * @file
 * Minimal "{}"-style string formatting.
 *
 * The toolchain this project targets (GCC 12) does not ship
 * std::format, so logging and table output use this small formatter
 * instead.  Supported placeholder forms:
 *
 *   {}      - stream the argument with operator<<
 *   {:#x}   - hexadecimal with 0x prefix (integers)
 *   {:.Nf}  - fixed-point with N decimals (floating point)
 *
 * Any other specification falls back to plain streaming.  Surplus
 * placeholders render as-is; surplus arguments are ignored.
 */

#ifndef VPC_SIM_FORMAT_HH
#define VPC_SIM_FORMAT_HH

#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace vpc
{

namespace detail
{

/** Render one argument under the spec found between ':' and '}'. */
template <typename T>
std::string
renderArg(std::string_view spec, const T &value)
{
    std::ostringstream os;
    if (spec.find('x') != std::string_view::npos) {
        if (spec.find('#') != std::string_view::npos)
            os << "0x";
        if constexpr (std::is_integral_v<T>) {
            os << std::hex
               << static_cast<unsigned long long>(value);
        } else {
            os << value;
        }
    } else if (auto dot = spec.find('.');
               dot != std::string_view::npos) {
        int digits = 0;
        for (std::size_t i = dot + 1;
             i < spec.size() && spec[i] >= '0' && spec[i] <= '9'; ++i)
            digits = digits * 10 + (spec[i] - '0');
        if constexpr (std::is_arithmetic_v<T>) {
            os << std::fixed << std::setprecision(digits)
               << static_cast<double>(value);
        } else {
            os << value;
        }
    } else {
        os << value;
    }
    return os.str();
}

inline void
formatImpl(std::string &out, std::string_view f)
{
    out.append(f);
}

template <typename T, typename... Rest>
void
formatImpl(std::string &out, std::string_view f, const T &first,
           const Rest &...rest)
{
    for (std::size_t i = 0; i < f.size(); ++i) {
        if (f[i] == '{' && i + 1 < f.size() && f[i + 1] == '{') {
            out.push_back('{');
            ++i;
            continue;
        }
        if (f[i] == '{') {
            std::size_t close = f.find('}', i);
            if (close == std::string_view::npos) {
                out.append(f.substr(i));
                return;
            }
            std::string_view spec = f.substr(i + 1, close - i - 1);
            out += renderArg(spec, first);
            formatImpl(out, f.substr(close + 1), rest...);
            return;
        }
        out.push_back(f[i]);
    }
}

} // namespace detail

/** @return @p f with "{}" placeholders replaced by @p args in order. */
template <typename... Args>
std::string
format(std::string_view f, const Args &...args)
{
    std::string out;
    out.reserve(f.size() + 16);
    detail::formatImpl(out, f, args...);
    return out;
}

} // namespace vpc

#endif // VPC_SIM_FORMAT_HH
