#include "sim/profiler.hh"

#include <algorithm>

#include "sim/format.hh"

namespace vpc
{

void
Profiler::mergeByName(const Profiler &other)
{
    for (const Entry &oe : other.entries_) {
        Entry *mine = nullptr;
        for (Entry &e : entries_) {
            if (e.name == oe.name) {
                mine = &e;
                break;
            }
        }
        if (mine == nullptr) {
            entries_.push_back(Entry{oe.name});
            mine = &entries_.back();
        }
        mine->tickNs += oe.tickNs;
        mine->tickCount += oe.tickCount;
        mine->eventNs += oe.eventNs;
        mine->eventCount += oe.eventCount;
    }
}

std::uint64_t
Profiler::totalEventNs() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries_)
        n += e.eventNs;
    return n;
}

std::uint64_t
Profiler::attributedEventNs() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
        n += entries_[i].eventNs;
    return n;
}

std::string
Profiler::report() const
{
    std::vector<const Entry *> order;
    order.reserve(entries_.size());
    for (const Entry &e : entries_) {
        if (e.tickCount != 0 || e.eventCount != 0)
            order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const Entry *a, const Entry *b) {
                  std::uint64_t ta = a->tickNs + a->eventNs;
                  std::uint64_t tb = b->tickNs + b->eventNs;
                  if (ta != tb)
                      return ta > tb;
                  return a->name < b->name;
              });

    std::uint64_t grand = 0;
    for (const Entry &e : entries_)
        grand += e.tickNs + e.eventNs;

    // The project formatter has no width/alignment specs; pad by hand.
    auto left = [](std::string s, std::size_t w) {
        if (s.size() < w)
            s.append(w - s.size(), ' ');
        return s;
    };
    auto right = [](std::string s, std::size_t w) {
        if (s.size() < w)
            s.insert(0, w - s.size(), ' ');
        return s;
    };

    std::string out = "profile: " + left("component", 18) + " " +
        right("ticks", 10) + " " + right("tick-ms", 12) + " " +
        right("events", 10) + " " + right("event-ms", 12) + " " +
        right("share", 7);
    for (const Entry *e : order) {
        std::uint64_t t = e->tickNs + e->eventNs;
        double share = grand == 0
            ? 0.0 : 100.0 * static_cast<double>(t) /
                    static_cast<double>(grand);
        out += "\nprofile: " + left(e->name, 18) + " " +
            right(vpc::format("{}", e->tickCount), 10) + " " +
            right(vpc::format("{:.2f}",
                              static_cast<double>(e->tickNs) / 1e6),
                  12) + " " +
            right(vpc::format("{}", e->eventCount), 10) + " " +
            right(vpc::format("{:.2f}",
                              static_cast<double>(e->eventNs) / 1e6),
                  12) + " " +
            right(vpc::format("{:.1f}%", share), 7);
    }
    std::uint64_t ev_total = totalEventNs();
    double attributed = ev_total == 0
        ? 100.0 : 100.0 * static_cast<double>(attributedEventNs()) /
                  static_cast<double>(ev_total);
    out += vpc::format(
        "\nprofile: {:.1f}% of event time attributed to named "
        "components", attributed);
    return out;
}

} // namespace vpc
