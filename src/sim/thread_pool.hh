/**
 * @file
 * Persistent worker-thread pool shared by the parallel subsystems.
 *
 * Three distinct consumers need worker threads and previously grew
 * their own: the sweep harness (system/sweep.cc spawned ad-hoc
 * std::threads per parallelFor call), the benches (via sweep), and now
 * the shard-parallel simulation kernel (sim/sharded_simulator.hh).
 * This pool is the single implementation underneath all of them.
 *
 * Model:
 *
 *  - A pool owns `workers()` long-lived OS threads, parked on a
 *    condition variable between dispatches.  Constructing with 0
 *    workers is valid and cheap: every dispatch then runs inline on
 *    the calling thread.
 *  - dispatch(n, fn) runs fn(0) .. fn(n-1) exactly once each, handing
 *    indices out from an atomic counter.  The calling thread
 *    participates as a worker, so a pool of W threads serves a
 *    dispatch with up to W + 1 lanes, and dispatch works (serially)
 *    even on a pool with no threads at all.
 *  - Tasks may be long-running cooperative loops (the sharded kernel
 *    dispatches one task per kernel worker) or short jobs pulled from
 *    the shared counter (parallelFor) — the pool does not care.
 *  - If tasks throw, every remaining task still runs and the first
 *    exception (by completion order) is rethrown on the caller.
 *
 * dispatch() is not reentrant and not thread-safe: one dispatch at a
 * time per pool, always from the owning thread.
 */

#ifndef VPC_SIM_THREAD_POOL_HH
#define VPC_SIM_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpc
{

/** Reusable fixed-size worker pool (see file comment for the model). */
class ThreadPool
{
  public:
    /**
     * Spawn @p workers parked threads.  0 is valid: dispatch() then
     * runs everything inline on the caller.
     */
    explicit ThreadPool(unsigned workers);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Wakes and joins all workers. */
    ~ThreadPool();

    /** @return the number of pool threads (excluding the caller). */
    unsigned workers() const { return static_cast<unsigned>(
        threads_.size()); }

    /**
     * Run fn(0) .. fn(n-1), each exactly once, across the pool threads
     * and the calling thread.  Blocks until all tasks finished; the
     * first exception thrown by any task is rethrown here after every
     * task has completed.
     *
     * Under requestCancel() "each exactly once" weakens to "each at
     * most once": tasks not yet started are skipped (see below).
     */
    void dispatch(std::size_t n,
                  const std::function<void(std::size_t)> &fn);

    /**
     * @name Cancellation hook
     *
     * requestCancel() asks the current (and any future) dispatch to
     * stop handing out tasks: indices not yet started are skipped,
     * tasks already running finish normally, and dispatch() returns
     * once the in-flight ones drain.  skippedTasks() counts what was
     * dropped, so a supervisor (the sweep daemon's SIGTERM drain)
     * can tell a completed batch from a truncated one.  The flag is
     * sticky until clearCancel() — cancellation usually precedes
     * teardown, and a new batch must not silently resurrect work.
     * Safe to call from any thread, including signal-handler-adjacent
     * contexts (one relaxed atomic store).
     */
    /// @{
    void requestCancel() { cancel_.store(true,
                                         std::memory_order_relaxed); }
    bool cancelRequested() const { return cancel_.load(
        std::memory_order_relaxed); }
    void clearCancel() { cancel_.store(false,
                                       std::memory_order_relaxed); }
    /** @return tasks skipped by cancellation since construction. */
    std::uint64_t skippedTasks() const { return skipped_.load(
        std::memory_order_relaxed); }
    /// @}

  private:
    /** Body of a parked pool thread. */
    void workerLoop();

    /** Pull and run tasks of the current dispatch until exhausted. */
    void drainTasks();

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;   //!< caller -> workers: new batch
    std::condition_variable done_;   //!< workers -> caller: batch done
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t taskCount_ = 0;
    std::size_t nextTask_ = 0;       //!< guarded by mutex_
    std::size_t pending_ = 0;        //!< tasks not yet finished
    std::uint64_t batch_ = 0;        //!< generation counter for wake_
    bool stop_ = false;
    std::exception_ptr firstError_;
    std::atomic<bool> cancel_{false};
    std::atomic<std::uint64_t> skipped_{0};
};

} // namespace vpc

#endif // VPC_SIM_THREAD_POOL_HH
