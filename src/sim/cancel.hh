/**
 * @file
 * Cooperative job cancellation for the simulation kernels.
 *
 * The sweep daemon (src/service/) must bound the wall-clock time of
 * every job it runs, yet a simulation is a deterministic closed loop
 * with no natural preemption point.  The contract here keeps both
 * properties:
 *
 *  - a cancel token is a plain `std::atomic<bool>` owned by the
 *    supervisor (the daemon's deadline monitor).  The owner sets it;
 *    it never clears it mid-run;
 *  - the kernels (Simulator::run, ShardedSimulator's worker loops) and
 *    the wall-deadline Watchdog poll the token at loop granularity and
 *    unwind by throwing JobCancelled, which is catchable — unlike
 *    vpc_panic — because an over-deadline job is an operational event,
 *    not a simulator bug;
 *  - polling is observe-only: a run that completes without the token
 *    being set executes the exact same cycles, events and counters as
 *    a run with no token installed (a null-pointer branch per loop
 *    iteration is the whole cost), so cancellation support never
 *    perturbs cached results.
 *
 * A cancelled CmpSystem is torn mid-cycle and must be discarded; the
 * daemon rebuilds from the journaled job on retry.
 */

#ifndef VPC_SIM_CANCEL_HH
#define VPC_SIM_CANCEL_HH

#include <atomic>
#include <stdexcept>
#include <string>

namespace vpc
{

/** Thrown by the kernels when the installed cancel token is set. */
class JobCancelled : public std::runtime_error
{
  public:
    explicit JobCancelled(const std::string &why)
        : std::runtime_error(why)
    {}
};

/** Thrown by the Watchdog when a job's wall-clock deadline expires. */
class DeadlineExceeded : public JobCancelled
{
  public:
    explicit DeadlineExceeded(const std::string &why)
        : JobCancelled(why)
    {}
};

/** A supervisor-owned cancellation flag; see the file comment. */
using CancelToken = std::atomic<bool>;

} // namespace vpc

#endif // VPC_SIM_CANCEL_HH
