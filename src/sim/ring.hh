/**
 * @file
 * SmallRing: a growable circular buffer for hot-path FIFO queues.
 *
 * The simulator's inner loops (arbiter per-thread buffers, memory
 * controller read/write queues, L2 bank load queues) are FIFOs that
 * previously used std::deque.  libstdc++'s deque allocates a map block
 * plus at least one 512-byte chunk per queue and touches the allocator
 * on steady-state churn near chunk boundaries.  SmallRing keeps a single
 * power-of-two backing array that only ever grows, so steady-state
 * push/pop is allocation-free and all elements are contiguous modulo the
 * wrap point.
 *
 * Supported operations mirror the subset of deque the simulator uses:
 * push_back/emplace_back, pop_front, front/back, operator[], erase_at
 * (needed by the fault injector's drop-oldest hook and by arbiters that
 * grant out of FIFO order), clear, and forward iteration.
 *
 * T must be default-constructible and move-assignable; elements are
 * stored in a plain vector and logically dead slots simply hold
 * moved-from values.  That is the right trade for the simulator's small
 * POD-ish records (ArbRequest, pending-read descriptors) and keeps the
 * implementation trivially exception-safe.
 */

#ifndef VPC_SIM_RING_HH
#define VPC_SIM_RING_HH

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace vpc
{

template <class T>
class SmallRing
{
  public:
    SmallRing() = default;

    /** Reserve capacity for at least @p n elements up front. */
    explicit SmallRing(std::size_t n) { reserve(n); }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return slots.size(); }

    /** Element @p i positions from the front (0 == oldest). */
    T &operator[](std::size_t i)
    {
        return slots[wrap(head + i)];
    }

    const T &operator[](std::size_t i) const
    {
        return slots[wrap(head + i)];
    }

    T &front()
    {
        if (empty())
            vpc_panic("SmallRing::front on empty ring");
        return slots[head];
    }

    const T &front() const
    {
        if (empty())
            vpc_panic("SmallRing::front on empty ring");
        return slots[head];
    }

    T &back()
    {
        if (empty())
            vpc_panic("SmallRing::back on empty ring");
        return slots[wrap(head + count - 1)];
    }

    const T &back() const
    {
        if (empty())
            vpc_panic("SmallRing::back on empty ring");
        return slots[wrap(head + count - 1)];
    }

    void push_back(const T &v)
    {
        grow();
        slots[wrap(head + count)] = v;
        ++count;
    }

    void push_back(T &&v)
    {
        grow();
        slots[wrap(head + count)] = std::move(v);
        ++count;
    }

    template <class... Args>
    T &emplace_back(Args &&...args)
    {
        grow();
        T &slot = slots[wrap(head + count)];
        slot = T(std::forward<Args>(args)...);
        ++count;
        return slot;
    }

    void pop_front()
    {
        if (empty())
            vpc_panic("SmallRing::pop_front on empty ring");
        // Release resources held by the element.  Trivial types hold
        // none, and every slot is assigned before it is next exposed,
        // so the clearing store is skipped for them (the ROB and the
        // fused-lane rings pop tens of millions of POD records).
        if constexpr (!std::is_trivially_copyable_v<T>)
            slots[head] = T{};
        head = wrap(head + 1);
        --count;
    }

    /**
     * Remove the element @p i positions from the front, preserving the
     * relative order of the survivors (equivalent to
     * deque::erase(begin() + i)).
     */
    void erase_at(std::size_t i)
    {
        if (i >= count)
            vpc_panic("SmallRing::erase_at({}) with size {}", i, count);
        for (std::size_t j = i; j + 1 < count; ++j)
            slots[wrap(head + j)] = std::move(slots[wrap(head + j + 1)]);
        slots[wrap(head + count - 1)] = T{};
        --count;
    }

    void clear()
    {
        while (!empty())
            pop_front();
    }

    /** Grow the backing store so at least @p n elements fit. */
    void reserve(std::size_t n)
    {
        if (n > slots.size())
            rebuild(ceilPow2(n));
    }

    template <bool Const>
    class Iter
    {
        using RingPtr =
            std::conditional_t<Const, const SmallRing *, SmallRing *>;

      public:
        Iter(RingPtr r, std::size_t i) : ring(r), idx(i) {}

        auto &operator*() const { return (*ring)[idx]; }
        auto *operator->() const { return &(*ring)[idx]; }
        Iter &operator++() { ++idx; return *this; }
        bool operator==(const Iter &o) const { return idx == o.idx; }
        bool operator!=(const Iter &o) const { return idx != o.idx; }

      private:
        RingPtr ring;
        std::size_t idx;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    std::size_t wrap(std::size_t i) const { return i & (slots.size() - 1); }

    static std::size_t ceilPow2(std::size_t n)
    {
        std::size_t p = kMinCapacity;
        while (p < n)
            p <<= 1;
        return p;
    }

    void grow()
    {
        if (count == slots.size())
            rebuild(slots.empty() ? kMinCapacity : slots.size() * 2);
    }

    void rebuild(std::size_t new_cap)
    {
        std::vector<T> next(new_cap);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = std::move(slots[wrap(head + i)]);
        slots = std::move(next);
        head = 0;
    }

    static constexpr std::size_t kMinCapacity = 8;

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace vpc

#endif // VPC_SIM_RING_HH
