/**
 * @file
 * Total order on scheduled events that is stable across kernels.
 *
 * The sequential kernel orders same-cycle events by a single global
 * insertion sequence.  The shard-parallel kernel has no global counter
 * — each shard schedules independently — so events carry a composite
 * key that reconstructs the *same* total order from local information:
 *
 *   (when, schedCycle, phase, x, y, child)
 *
 *  - when:       cycle the event fires.
 *  - schedCycle: cycle the schedule() call was made.  The sequential
 *                global sequence is monotone in scheduling time, so
 *                earlier cycles always order first.
 *  - phase:      where within schedCycle the call was made.  A cycle
 *                runs event callbacks first, then core ticks (cores
 *                are registered before the uncore), then uncore ticks;
 *                global sequence numbers are assigned in exactly that
 *                order.
 *  - x, y:       within a tick phase: (shard rank, shard-local seq).
 *                Cores tick in thread order, so rank ordering equals
 *                sequential ordering; within one shard the local
 *                sequence preserves program order.
 *                Within the event phase: (firing index, shard-local
 *                seq) — events scheduled by a firing event callback
 *                inherit the position of that callback in its cycle's
 *                fire order, which is the order the sequential kernel
 *                fired (and hence sequence-numbered) the parents.
 *                This is exact at any nesting depth within one shard;
 *                see KeySource for the cross-shard caveat.
 *  - child:      reserved tie-break, currently always zero.
 *
 * The sequential kernel itself fills only (when, y=global seq), which
 * compares identically to its original (when, seq) heap order.
 */

#ifndef VPC_SIM_SCHED_KEY_HH
#define VPC_SIM_SCHED_KEY_HH

#include <cstdint>

#include "sim/types.hh"

namespace vpc
{

/** Intra-cycle phase a schedule() call originated from. */
enum class SchedPhase : std::uint8_t
{
    Event = 0,      //!< firing event callbacks (start of cycle)
    CpuTick = 1,    //!< core shard tick
    UncoreTick = 2, //!< uncore (L2 + memory) shard tick
};

/**
 * Per-shard key-generation state, installed into an EventQueue with
 * setKeySource() by the sharded kernel.  While installed, schedule()
 * stamps every event with a composite key instead of the serial global
 * sequence:
 *
 *  - from tick context: (when, now, tickPhase, rank, seq++)
 *  - while an event is firing: (when, now, Event, firing index, seq++)
 *
 * The firing index is the position of the currently running event in
 * its cycle's deterministic fire order, which within one shard equals
 * the order the sequential kernel fired (and hence sequence-numbered)
 * those parents — so children inherit the correct relative order at
 * any nesting depth.  Cross-shard messages are keyed by the *sending*
 * shard (EventQueue::makeKey) and scheduled on the receiving shard's
 * queue with the carried key.
 *
 * Known limit: two *different* shards' same-cycle event callbacks
 * scheduling onto the *same* queue would interleave by firing index
 * rather than by the sequential kernel's global order.  No current
 * model does this (core-side event callbacks — L1 hit/fill
 * completions — never schedule; all cross-shard sends originate in
 * tick context or in uncore-local events), and the depth-generalized
 * firing-index order is exact for everything the models do today.
 */
struct KeySource
{
    std::uint8_t tickPhase = 0; //!< SchedPhase::CpuTick or UncoreTick
    std::uint64_t rank = 0;     //!< shard rank (core id; cores first)
    std::uint64_t seq = 0;      //!< shard-local schedule sequence
    Cycle now = 0;              //!< shard-local current cycle
};

/** Composite event-ordering key (see file comment). */
struct SchedKey
{
    Cycle when = 0;
    Cycle schedCycle = 0;
    std::uint8_t phase = 0;
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint64_t child = 0;

    /** Strict lexicographic "fires earlier than". */
    bool
    before(const SchedKey &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (schedCycle != o.schedCycle)
            return schedCycle < o.schedCycle;
        if (phase != o.phase)
            return phase < o.phase;
        if (x != o.x)
            return x < o.x;
        if (y != o.y)
            return y < o.y;
        return child < o.child;
    }
};

} // namespace vpc

#endif // VPC_SIM_SCHED_KEY_HH
