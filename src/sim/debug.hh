/**
 * @file
 * Named debug-trace flags in the gem5 DPRINTF idiom.
 *
 * Models emit trace lines guarded by a named flag:
 *
 *     VPC_DPRINTF(L2Bank, "thread {} admitted {:#x}", t, addr);
 *
 * Flags are off by default (zero overhead beyond one branch) and are
 * enabled at process start from the VPC_DEBUG environment variable --
 * a comma-separated list of flag names, or "All":
 *
 *     VPC_DEBUG=Arbiter,L2Bank ./build/bench/bench_fig8
 *
 * Trace lines go to stderr prefixed with the current flag name; they
 * are a debugging aid, never parsed by the simulator itself.
 */

#ifndef VPC_SIM_DEBUG_HH
#define VPC_SIM_DEBUG_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "sim/format.hh"

namespace vpc
{
namespace debug
{

/** Debug flags; extend in lockstep with flagName(). */
enum class Flag
{
    Arbiter,
    L2Bank,
    Memory,
    Prefetch,
    Cpu,
    NumFlags
};

/** @return the canonical name of @p f. */
const char *flagName(Flag f);

/**
 * Flag state, indexed by Flag.  Parsed from VPC_DEBUG at process
 * start; exposed so enabled() is a single inline array load -- the
 * guard sits on every DPRINTF site in the simulator's hot loops.
 */
extern bool flagState[static_cast<std::size_t>(Flag::NumFlags)];

/** @return true if @p f was enabled via VPC_DEBUG. */
inline bool
enabled(Flag f)
{
    return flagState[static_cast<std::size_t>(f)];
}

/**
 * Enable or disable @p f programmatically (tests).
 */
void setEnabled(Flag f, bool on);

/**
 * Parse a VPC_DEBUG-style list ("Arbiter,L2Bank" or "All") and enable
 * the named flags.
 *
 * @return false if any name was unknown (known names still take
 *         effect)
 */
bool enableFromList(std::string_view list);

/** Emit one trace line (already formatted). */
void emit(Flag f, const std::string &msg);

} // namespace debug
} // namespace vpc

/** Guarded formatted trace line; no-op unless the flag is enabled. */
#define VPC_DPRINTF(flag, ...)                                        \
    do {                                                              \
        if (::vpc::debug::enabled(::vpc::debug::Flag::flag)) {        \
            ::vpc::debug::emit(::vpc::debug::Flag::flag,              \
                               ::vpc::format(__VA_ARGS__));           \
        }                                                             \
    } while (0)

#endif // VPC_SIM_DEBUG_HH
