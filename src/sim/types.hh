/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * All timing in the simulator is expressed in *core* (processor) clock
 * cycles, matching the convention of Table 1 of the paper ("latencies
 * measured in processor cycles").  Components that run at a divided clock
 * (the L2 cache and crossbar run at 1/2 core frequency, the SDRAM channel
 * at 1/5) simply use latencies that are multiples of their clock ratio.
 */

#ifndef VPC_SIM_TYPES_HH
#define VPC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace vpc
{

/** Simulated time, in core clock cycles. */
using Cycle = std::uint64_t;

/** A physical byte address. */
using Addr = std::uint64_t;

/** Hardware thread (== processor in this study) identifier. */
using ThreadId = std::uint32_t;

/** Monotonically increasing per-system request sequence number. */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Sentinel thread id used for requests not owned by any thread. */
constexpr ThreadId kInvalidThread =
    std::numeric_limits<ThreadId>::max();

/**
 * Round an address down to the start of its cache line.
 *
 * @param addr byte address
 * @param line_bytes cache line size; must be a power of two
 * @return the line-aligned address
 */
constexpr Addr
lineAlign(Addr addr, Addr line_bytes)
{
    return addr & ~(line_bytes - 1);
}

/** @return true iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer log2 for power-of-two values. */
constexpr unsigned
log2i(std::uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

} // namespace vpc

#endif // VPC_SIM_TYPES_HH
