#include "sim/thread_pool.hh"

namespace vpc
{

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::drainTasks()
{
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (cancel_.load(std::memory_order_relaxed) &&
                nextTask_ < taskCount_) {
                // Cancellation: retire the undispatched tail without
                // running it.  In-flight tasks still finish and are
                // still counted down by their own workers.
                std::size_t tail = taskCount_ - nextTask_;
                nextTask_ = taskCount_;
                skipped_.fetch_add(tail, std::memory_order_relaxed);
                pending_ -= tail;
                if (pending_ == 0)
                    done_.notify_all();
                return;
            }
            if (nextTask_ >= taskCount_)
                return;
            i = nextTask_++;
        }
        try {
            (*fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_ || batch_ != seen;
            });
            if (stop_)
                return;
            seen = batch_;
        }
        drainTasks();
    }
}

void
ThreadPool::dispatch(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        taskCount_ = n;
        nextTask_ = 0;
        pending_ = n;
        firstError_ = nullptr;
        ++batch_;
    }
    wake_.notify_all();
    // The caller works too: with zero pool threads this is the entire
    // execution, and with tasks == 1 it avoids a handoff round trip.
    drainTasks();
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        fn_ = nullptr;
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace vpc
