#include "sim/debug.hh"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace vpc
{
namespace debug
{

bool flagState[static_cast<std::size_t>(Flag::NumFlags)] = {};

namespace
{

constexpr std::size_t kNumFlags =
    static_cast<std::size_t>(Flag::NumFlags);

/**
 * One-time VPC_DEBUG parse at process start.  flagState has constant
 * (zero) initialization, so it is ready before any dynamic
 * initializer -- no ordering hazard with this parse or with early
 * enabled() calls, which simply see all-off until the parse runs.
 */
struct EnvInit
{
    EnvInit()
    {
        if (const char *env = std::getenv("VPC_DEBUG"))
            enableFromList(env);
    }
};

EnvInit envInit;

} // namespace

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Arbiter: return "Arbiter";
      case Flag::L2Bank: return "L2Bank";
      case Flag::Memory: return "Memory";
      case Flag::Prefetch: return "Prefetch";
      case Flag::Cpu: return "Cpu";
      case Flag::NumFlags: break;
    }
    return "?";
}

void
setEnabled(Flag f, bool on)
{
    flagState[static_cast<std::size_t>(f)] = on;
}

bool
enableFromList(std::string_view list)
{
    bool all_known = true;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string_view name = list.substr(
            start, comma == std::string_view::npos ? list.size() - start
                                                   : comma - start);
        if (!name.empty()) {
            if (name == "All") {
                for (std::size_t i = 0; i < kNumFlags; ++i)
                    flagState[i] = true;
            } else {
                bool known = false;
                for (std::size_t i = 0; i < kNumFlags; ++i) {
                    Flag f = static_cast<Flag>(i);
                    if (name == flagName(f)) {
                        setEnabled(f, true);
                        known = true;
                        break;
                    }
                }
                if (!known) {
                    std::fprintf(stderr,
                                 "warn: unknown VPC_DEBUG flag '%.*s'\n",
                                 static_cast<int>(name.size()),
                                 name.data());
                    all_known = false;
                }
            }
        }
        if (comma == std::string_view::npos)
            break;
        start = comma + 1;
    }
    return all_known;
}

void
emit(Flag f, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", flagName(f), msg.c_str());
}

} // namespace debug
} // namespace vpc
