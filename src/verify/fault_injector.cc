#include "verify/fault_injector.hh"

#include <utility>

#include "sim/logging.hh"

namespace vpc
{

FaultInjector::FaultInjector(double rate, std::uint64_t seed)
    : rate_(rate), rng(seed, /*stream=*/0x5eedf417)
{
    if (rate_ < 0.0 || rate_ > 1.0)
        vpc_fatal("fault rate {} out of [0, 1]", rate_);
}

void
FaultInjector::addFault(std::string name, FaultFn fn)
{
    if (!fn)
        vpc_panic("fault '{}' registered without callback", name);
    faults.push_back(Fault{std::move(name), std::move(fn)});
}

void
FaultInjector::maybeInject(Cycle now)
{
    if (faults.empty() || !rng.chance(rate_))
        return;
    Fault &f = faults[rng.below(
        static_cast<std::uint32_t>(faults.size()))];
    if (f.fn()) {
        ++injected;
        vpc_warn("fault injected: {} at cycle {}", f.name, now);
    }
}

} // namespace vpc
