/**
 * @file
 * Interface for runtime invariant checkers.
 *
 * A checker observes one component (through const accessors) and
 * vpc_panic()s the moment the component's state contradicts an
 * invariant the paper's equations or the implementation's bookkeeping
 * guarantee.  Checkers run from the Verifier's audit hook at the end
 * of a cycle, so they always see a settled machine state.
 */

#ifndef VPC_VERIFY_INVARIANT_HH
#define VPC_VERIFY_INVARIANT_HH

#include <string>

#include "sim/types.hh"

namespace vpc
{

/** One auditable invariant over a live component. */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    InvariantChecker() = default;
    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /**
     * Verify the invariant against the current machine state; calls
     * vpc_panic on violation and returns normally otherwise.
     *
     * @param now the cycle being audited
     */
    virtual void check(Cycle now) = 0;

    /** @return a short label naming the checker and its subject. */
    virtual std::string name() const = 0;
};

} // namespace vpc

#endif // VPC_VERIFY_INVARIANT_HH
