/**
 * @file
 * The audit hook implementation: owns the invariant checkers, the
 * watchdog and the fault injector, and schedules them from the
 * simulator's per-cycle audit callback.
 *
 * Cost model: with verification disabled no Verifier exists and the
 * simulator pays one null-pointer branch per cycle.  With paranoid
 * level 1 the checkers run every auditInterval cycles; level >= 2
 * runs them every cycle.  The watchdog and fault injector are cheap
 * and run every cycle whenever configured, independent of the
 * paranoia level.
 */

#ifndef VPC_VERIFY_VERIFIER_HH
#define VPC_VERIFY_VERIFIER_HH

#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/simulator.hh"
#include "verify/fault_injector.hh"
#include "verify/invariant.hh"
#include "verify/watchdog.hh"

namespace vpc
{

/** Runs registered checkers from the simulator audit hook. */
class Verifier : public Auditable
{
  public:
    explicit Verifier(const VerifyConfig &cfg);

    /** Register an invariant checker; the Verifier takes ownership. */
    void addChecker(std::unique_ptr<InvariantChecker> checker);

    /** Install the forward-progress watchdog. */
    void setWatchdog(std::unique_ptr<Watchdog> watchdog);

    /** @return the installed watchdog, or nullptr. */
    Watchdog *watchdog() { return watchdog_.get(); }

    /**
     * @return the fault injector, or nullptr when faultRate == 0;
     *         callers register their fault hooks on it.
     */
    FaultInjector *injector() { return injector_.get(); }

    void audit(Cycle now) override;

    /** @return full checker sweeps completed (tests). */
    std::uint64_t auditsRun() const { return audits; }

  private:
    VerifyConfig cfg;
    std::vector<std::unique_ptr<InvariantChecker>> checkers;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<FaultInjector> injector_;
    std::uint64_t audits = 0;
};

} // namespace vpc

#endif // VPC_VERIFY_VERIFIER_HH
