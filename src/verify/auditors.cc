#include "verify/auditors.hh"

#include <span>
#include <utility>

#include "sim/logging.hh"

namespace vpc
{

namespace
{

/**
 * Slack for floating-point virtual-time comparisons.  Virtual times
 * are sums of L/phi terms; after millions of grants the absolute
 * values are large and the representable step dwarfs 1e-9, so the
 * slack is relative where it matters.
 */
constexpr double kEps = 1e-6;

} // namespace

VpcArbiterAuditor::VpcArbiterAuditor(const VpcArbiter &arb,
                                     std::string label)
    : arb_(arb), label_(std::move(label)),
      lastRs(arb.numThreads(), 0.0), lastPending(arb.numThreads(), 0)
{}

void
VpcArbiterAuditor::check(Cycle now)
{
    const VpcArbiterOptions &opt = arb_.vpcOptions();
    double vclock = arb_.systemVirtualTime();
    if (!first && vclock + kEps < lastVclock) {
        vpc_panic("{}: system virtual time regressed ({} < {})",
                  name(), vclock, lastVclock);
    }
    for (ThreadId t = 0; t < arb_.numThreads(); ++t) {
        double rs = arb_.virtualTime(t);
        std::size_t pending = arb_.pendingCount(t);
        if (!first) {
            // Equations 5 and 6 only ever increase R.S_i.
            if (rs + kEps < lastRs[t]) {
                vpc_panic("{}: thread {} virtual time regressed "
                          "({} < {})", name(), t, rs, lastRs[t]);
            }
            // Equation 6: in wall-clock mode, an idle thread's R.S_i
            // is floored to the clock when it becomes busy, so after
            // an idle->pending transition R.S_i can never lie before
            // the last audit.
            if (!opt.virtualClock && opt.idleReset &&
                lastPending[t] == 0 && pending > 0 &&
                rs + kEps < static_cast<double>(lastCheck)) {
                vpc_panic("{}: thread {} became busy with virtual "
                          "time {} behind cycle {} (Equation 6 reset "
                          "missed)", name(), t, rs, lastCheck);
            }
            // Bounded lag: at every grant, EDF guarantees the served
            // request's finish tag is <= any backlogged thread's, so
            // the system clock (a start tag) trails every backlogged
            // thread's R.S_i by at most one maximal virtual service.
            // Only meaningful when idle threads are floored to this
            // same clock and no thread is held back (work-conserving).
            if (opt.virtualClock && opt.idleReset &&
                opt.workConserving && pending > 0 &&
                arb_.share(t) > 0.0) {
                double bound = rs + arb_.virtualServiceTime(t) *
                               arb_.writeMultiplier();
                if (vclock > bound + kEps) {
                    vpc_panic("{}: system virtual time {} ran {} "
                              "past backlogged thread {} (bound {})",
                              name(), vclock, vclock - bound, t,
                              bound);
                }
            }
        }
        lastRs[t] = rs;
        lastPending[t] = pending;
    }
    lastVclock = vclock;
    lastCheck = now;
    first = false;
}

ArbiterConservationAuditor::ArbiterConservationAuditor(
    const Arbiter &arb, std::string label)
    : arb_(arb), label_(std::move(label))
{}

void
ArbiterConservationAuditor::check(Cycle now)
{
    (void)now;
    for (ThreadId t = 0; t < arb_.numThreads(); ++t) {
        std::uint64_t in = arb_.enqueueCount(t);
        std::uint64_t out = arb_.grantCount(t) + arb_.pendingCount(t);
        if (in != out) {
            vpc_panic("{}: thread {} requests not conserved: {} "
                      "admitted != {} granted + {} pending",
                      name(), t, in, arb_.grantCount(t),
                      arb_.pendingCount(t));
        }
    }
}

CapacityAuditor::CapacityAuditor(const CacheArray &array,
                                 unsigned num_threads,
                                 std::string label,
                                 unsigned walk_period)
    : array_(array), numThreads(num_threads),
      label_(std::move(label)),
      walkPeriod(walk_period == 0 ? 1 : walk_period)
{}

void
CapacityAuditor::check(Cycle now)
{
    (void)now;
    std::uint64_t capacity = array_.numSets() * array_.numWays();
    std::uint64_t trackedTotal = 0;
    for (ThreadId t = 0; t < numThreads; ++t)
        trackedTotal += array_.trackedOccupancy(t);
    if (trackedTotal > capacity) {
        vpc_panic("{}: tracked occupancy {} exceeds capacity {}",
                  name(), trackedTotal, capacity);
    }
    if (++calls % walkPeriod != 0)
        return;
    // Ground truth: a full walk of the line ownership state.
    for (ThreadId t = 0; t < numThreads; ++t) {
        std::uint64_t actual = array_.occupancy(t);
        std::uint64_t tracked = array_.trackedOccupancy(t);
        if (actual != tracked) {
            vpc_panic("{}: thread {} occupancy bookkeeping drifted: "
                      "tracked {} != actual {}", name(), t, tracked,
                      actual);
        }
    }
}

CacheArray::VictimAudit
makeVpcVictimAudit(const VpcCapacityManager &mgr, std::string label)
{
    return [&mgr, label = std::move(label)](
               std::span<const CacheLine> set, ThreadId requester,
               unsigned way) {
        const CacheLine &victim = set[way];
        if (!victim.valid || victim.owner == requester)
            return; // empty way or condition 2: own LRU line
        if (victim.owner == kInvalidThread) {
            vpc_panic("victim-audit:{}: valid line without owner",
                      label);
        }
        // Condition 1: the dispossessed thread must hold more of
        // this set than its allocation, or the replacement just
        // broke its virtual private cache.
        unsigned held = 0;
        for (const CacheLine &line : set) {
            if (line.valid && line.owner == victim.owner)
                ++held;
        }
        if (held <= mgr.quota(victim.owner)) {
            vpc_panic("victim-audit:{}: thread {} evicted thread "
                      "{}'s line while it held {} <= quota {} ways "
                      "of the set (Section 4.2 condition 1)",
                      label, requester, victim.owner, held,
                      mgr.quota(victim.owner));
        }
    };
}

void
EventQueueAuditor::check(Cycle now)
{
    Cycle next = queue_.nextEventCycle();
    if (next < now) {
        vpc_panic("event-queue: stale event scheduled for cycle {} "
                  "still queued at cycle {}", next, now);
    }
}

} // namespace vpc
