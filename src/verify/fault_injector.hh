/**
 * @file
 * Deterministic fault injection.
 *
 * The auditors only earn trust by being shown to fire.  The injector
 * holds a set of named fault callbacks -- each perturbs live machine
 * state through a sanctioned hook (drop a queued request, corrupt a
 * virtual-time register, flip a line's owner, swallow a grant) -- and
 * fires them at a configured expected rate per cycle from a private
 * seeded PCG32 stream, so any run is bit-reproducible from
 * (rate, seed).
 */

#ifndef VPC_VERIFY_FAULT_INJECTOR_HH
#define VPC_VERIFY_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace vpc
{

/** Injects seeded random faults through registered hooks. */
class FaultInjector
{
  public:
    /**
     * A fault attempt; returns true if the fault was actually
     * applied (a drop hook finds nothing to drop in an empty queue
     * and reports false).
     */
    using FaultFn = std::function<bool()>;

    /**
     * @param rate expected faults per cycle, in [0, 1]
     * @param seed RNG seed; equal (rate, seed, machine) runs inject
     *        identically
     */
    FaultInjector(double rate, std::uint64_t seed);

    /** Register fault @p fn under @p name. */
    void addFault(std::string name, FaultFn fn);

    /**
     * Roll the dice for cycle @p now; on a hit, pick one registered
     * fault uniformly and apply it.  Call exactly once per cycle.
     */
    void maybeInject(Cycle now);

    /** @return faults successfully applied so far. */
    std::uint64_t injectedCount() const { return injected; }

    /** @return registered fault count. */
    std::size_t faultCount() const { return faults.size(); }

  private:
    struct Fault
    {
        std::string name;
        FaultFn fn;
    };

    double rate_;
    Rng rng;
    std::vector<Fault> faults;
    std::uint64_t injected = 0;
};

} // namespace vpc

#endif // VPC_VERIFY_FAULT_INJECTOR_HH
