#include "verify/watchdog.hh"

#include <utility>

#include "sim/logging.hh"

namespace vpc
{

Watchdog::Watchdog(Cycle limit)
    : limit_(limit)
{
    if (limit_ == 0)
        vpc_fatal("watchdog limit must be > 0 cycles");
}

void
Watchdog::addThread(Source src)
{
    if (!src.progress || !src.outstanding)
        vpc_panic("watchdog thread registered without callbacks");
    threads.push_back(ThreadWatch{std::move(src), 0, 0});
}

void
Watchdog::armWallDeadline(std::chrono::milliseconds budget)
{
    deadlineArmed_ = budget.count() > 0;
    if (deadlineArmed_)
        deadline_ = std::chrono::steady_clock::now() + budget;
    checksSinceWall_ = 0;
}

void
Watchdog::check(Cycle now)
{
    if (cancel_ != nullptr &&
        cancel_->load(std::memory_order_relaxed)) {
        throw JobCancelled(format("watchdog: run cancelled at cycle {}",
                                  now));
    }
    if (deadlineArmed_ && ++checksSinceWall_ >= kWallCheckInterval) {
        checksSinceWall_ = 0;
        if (std::chrono::steady_clock::now() >= deadline_) {
            throw DeadlineExceeded(format(
                "watchdog: wall-clock deadline exceeded at cycle {}",
                now));
        }
    }
    for (std::size_t t = 0; t < threads.size(); ++t) {
        ThreadWatch &w = threads[t];
        std::uint64_t p = w.src.progress();
        if (p != w.lastProgress) {
            w.lastProgress = p;
            w.quietSince = now;
            continue;
        }
        if (now - w.quietSince < limit_)
            continue;
        // Only a thread the memory system still owes work to is
        // starved; a thread with nothing outstanding is just idle.
        if (!w.src.outstanding()) {
            w.quietSince = now;
            continue;
        }
        vpc_panic("watchdog: thread {} retired nothing for {} cycles "
                  "with outstanding requests (starvation) at cycle {}",
                  t, now - w.quietSince, now);
    }
}

} // namespace vpc
