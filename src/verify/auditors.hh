/**
 * @file
 * Concrete invariant auditors for the arbiters, the capacity manager
 * and the event queue.
 *
 * Each auditor encodes an invariant derived from the paper:
 *
 *  - VpcArbiterAuditor: the fair-queuing registers of Section 4.1.
 *    R.S_i only moves forward (Equations 4/5 add positive virtual
 *    service), the system virtual clock only moves forward, an idle
 *    thread that becomes busy has had its R.S_i floored per Equation
 *    6, and in virtual-clock mode the clock never runs ahead of a
 *    backlogged thread by more than one maximal virtual service time
 *    (the EDF grant inequality F_j <= F_i).
 *
 *  - ArbiterConservationAuditor: requests are conserved -- every
 *    admission is either still pending or was granted, for every
 *    thread, on every arbiter.
 *
 *  - CapacityAuditor: the incrementally tracked per-thread line
 *    counts match a ground-truth walk of the array, and the total
 *    never exceeds the array's capacity.  makeVpcVictimAudit() checks
 *    each replacement decision against conditions 1 and 2 of Section
 *    4.2: a victim taken from another thread must come from a thread
 *    holding more than its allocation of the set.
 *
 *  - EventQueueAuditor: no event sits in the queue scheduled before
 *    the present (it would never fire).
 */

#ifndef VPC_VERIFY_AUDITORS_HH
#define VPC_VERIFY_AUDITORS_HH

#include <string>
#include <vector>

#include "arbiter/arbiter.hh"
#include "arbiter/vpc_arbiter.hh"
#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "sim/event_queue.hh"
#include "verify/invariant.hh"

namespace vpc
{

/** Audits the VPC arbiter's virtual-time registers (Section 4.1). */
class VpcArbiterAuditor : public InvariantChecker
{
  public:
    /**
     * @param arb the arbiter to watch (must outlive the auditor)
     * @param label resource name for diagnostics, e.g. "bank0.tag"
     */
    VpcArbiterAuditor(const VpcArbiter &arb, std::string label);

    void check(Cycle now) override;
    std::string name() const override { return "vpc-vtime:" + label_; }

  private:
    const VpcArbiter &arb_;
    std::string label_;
    std::vector<double> lastRs;
    std::vector<std::size_t> lastPending;
    double lastVclock = 0.0;
    Cycle lastCheck = 0;
    bool first = true;
};

/** Audits request conservation on any arbiter. */
class ArbiterConservationAuditor : public InvariantChecker
{
  public:
    ArbiterConservationAuditor(const Arbiter &arb, std::string label);

    void check(Cycle now) override;
    std::string name() const override
    {
        return "conservation:" + label_;
    }

  private:
    const Arbiter &arb_;
    std::string label_;
};

/** Audits per-thread occupancy bookkeeping of one cache array. */
class CapacityAuditor : public InvariantChecker
{
  public:
    /**
     * @param array the array to watch
     * @param num_threads threads whose occupancy is tracked
     * @param label array name for diagnostics, e.g. "bank0"
     * @param walk_period do the O(lines) ground-truth walk on every
     *        walk_period-th check only; the cheap capacity-bound
     *        check runs every time
     */
    CapacityAuditor(const CacheArray &array, unsigned num_threads,
                    std::string label, unsigned walk_period = 16);

    void check(Cycle now) override;
    std::string name() const override { return "capacity:" + label_; }

  private:
    const CacheArray &array_;
    unsigned numThreads;
    std::string label_;
    unsigned walkPeriod;
    std::uint64_t calls = 0;
};

/**
 * Build a victim-audit tap enforcing Section 4.2's replacement
 * conditions for @p mgr; install on the array via setVictimAudit().
 * Panics when a victim belonging to another thread is taken from a
 * thread at or under its way allocation of the set (condition 1), or
 * when a victim belongs to no thread the manager knows about.
 *
 * @param mgr the capacity manager whose quotas apply (must outlive
 *        the returned callable)
 * @param label array name for diagnostics
 */
CacheArray::VictimAudit makeVpcVictimAudit(const VpcCapacityManager &mgr,
                                           std::string label);

/** Audits that the event queue holds no event older than "now". */
class EventQueueAuditor : public InvariantChecker
{
  public:
    explicit EventQueueAuditor(const EventQueue &q) : queue_(q) {}

    void check(Cycle now) override;
    std::string name() const override { return "event-queue"; }

  private:
    const EventQueue &queue_;
};

} // namespace vpc

#endif // VPC_VERIFY_AUDITORS_HH
