#include "verify/verifier.hh"

#include <utility>

#include "sim/logging.hh"

namespace vpc
{

Verifier::Verifier(const VerifyConfig &cfg_)
    : cfg(cfg_)
{
    if (cfg.faultRate > 0.0) {
        injector_ = std::make_unique<FaultInjector>(cfg.faultRate,
                                                    cfg.faultSeed);
    }
}

void
Verifier::addChecker(std::unique_ptr<InvariantChecker> checker)
{
    if (!checker)
        vpc_panic("null invariant checker registered");
    checkers.push_back(std::move(checker));
}

void
Verifier::setWatchdog(std::unique_ptr<Watchdog> watchdog)
{
    watchdog_ = std::move(watchdog);
}

void
Verifier::audit(Cycle now)
{
    // Faults perturb state *before* this cycle's checks so an
    // injected corruption is observable at the earliest audit.
    if (injector_)
        injector_->maybeInject(now);
    if (watchdog_)
        watchdog_->check(now);
    if (cfg.paranoid == 0)
        return;
    if (cfg.paranoid == 1 && cfg.auditInterval > 1 &&
        now % cfg.auditInterval != 0) {
        return;
    }
    ++audits;
    for (auto &checker : checkers)
        checker->check(now);
}

} // namespace vpc
