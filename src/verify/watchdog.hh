/**
 * @file
 * Forward-progress watchdog.
 *
 * Starvation in this machine is silent: a thread whose stores never
 * win arbitration (the RoW-FCFS pathology of Section 3.1 / Figure 8)
 * simply retires nothing, forever, while the simulation keeps
 * running.  The watchdog turns that silence into a diagnosed panic:
 * a thread that has outstanding work anywhere in the memory system
 * yet retires no instruction for a configured number of cycles
 * trips, and the panic-dump registry prints the machine snapshot
 * (arbiter queues, virtual clocks, occupancy, MSHRs) that explains
 * who was starving whom.
 */

#ifndef VPC_VERIFY_WATCHDOG_HH
#define VPC_VERIFY_WATCHDOG_HH

#include <functional>
#include <string>
#include <vector>

#include "verify/invariant.hh"

namespace vpc
{

/** Panics when a thread with outstanding work stops retiring. */
class Watchdog : public InvariantChecker
{
  public:
    /** How the watchdog observes one thread. */
    struct Source
    {
        /** Monotonic progress counter (instructions retired). */
        std::function<std::uint64_t()> progress;
        /**
         * True while the thread is waiting on the memory system
         * (outstanding L1 misses or work queued in the L2).  A
         * thread that is idle by choice never trips the watchdog.
         */
        std::function<bool()> outstanding;
    };

    /** @param limit cycles without progress before panicking. */
    explicit Watchdog(Cycle limit);

    /** Register one thread; threads are numbered in call order. */
    void addThread(Source src);

    void check(Cycle now) override;
    std::string name() const override { return "watchdog"; }

  private:
    struct ThreadWatch
    {
        Source src;
        std::uint64_t lastProgress = 0;
        Cycle quietSince = 0;
    };

    Cycle limit_;
    std::vector<ThreadWatch> threads;
};

} // namespace vpc

#endif // VPC_VERIFY_WATCHDOG_HH
