/**
 * @file
 * Forward-progress watchdog.
 *
 * Starvation in this machine is silent: a thread whose stores never
 * win arbitration (the RoW-FCFS pathology of Section 3.1 / Figure 8)
 * simply retires nothing, forever, while the simulation keeps
 * running.  The watchdog turns that silence into a diagnosed panic:
 * a thread that has outstanding work anywhere in the memory system
 * yet retires no instruction for a configured number of cycles
 * trips, and the panic-dump registry prints the machine snapshot
 * (arbiter queues, virtual clocks, occupancy, MSHRs) that explains
 * who was starving whom.
 *
 * The watchdog also guards the *host* time domain for supervised
 * runs (the sweep daemon's per-job deadlines): armWallDeadline()
 * bounds a run's wall-clock time and setCancelToken() lets a
 * supervisor abort it.  Both trip by throwing (DeadlineExceeded /
 * JobCancelled — catchable, unlike the starvation panic) because an
 * over-deadline job is an operational event to be retried or
 * quarantined, not a simulator bug.
 */

#ifndef VPC_VERIFY_WATCHDOG_HH
#define VPC_VERIFY_WATCHDOG_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/cancel.hh"
#include "verify/invariant.hh"

namespace vpc
{

/** Panics when a thread with outstanding work stops retiring. */
class Watchdog : public InvariantChecker
{
  public:
    /** How the watchdog observes one thread. */
    struct Source
    {
        /** Monotonic progress counter (instructions retired). */
        std::function<std::uint64_t()> progress;
        /**
         * True while the thread is waiting on the memory system
         * (outstanding L1 misses or work queued in the L2).  A
         * thread that is idle by choice never trips the watchdog.
         */
        std::function<bool()> outstanding;
    };

    /** @param limit cycles without progress before panicking. */
    explicit Watchdog(Cycle limit);

    /** Register one thread; threads are numbered in call order. */
    void addThread(Source src);

    /**
     * Bound the run's wall-clock time: once @p budget host time has
     * elapsed, the next check() throws DeadlineExceeded.  The clock
     * is sampled every kWallCheckInterval checks, so enforcement
     * granularity is a few thousand cycles, not exact; 0 disarms.
     */
    void armWallDeadline(std::chrono::milliseconds budget);

    /**
     * Observe a supervisor's cancel token (nullptr to remove): when
     * it is set, the next check() throws JobCancelled.
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

    void check(Cycle now) override;
    std::string name() const override { return "watchdog"; }

    /** Checks between wall-clock samples (cheap vs. clock reads). */
    static constexpr std::uint64_t kWallCheckInterval = 1024;

  private:
    struct ThreadWatch
    {
        Source src;
        std::uint64_t lastProgress = 0;
        Cycle quietSince = 0;
    };

    Cycle limit_;
    std::vector<ThreadWatch> threads;
    bool deadlineArmed_ = false;
    std::chrono::steady_clock::time_point deadline_;
    const CancelToken *cancel_ = nullptr;
    std::uint64_t checksSinceWall_ = 0;
};

} // namespace vpc

#endif // VPC_VERIFY_WATCHDOG_HH
