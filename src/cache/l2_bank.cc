#include "cache/l2_bank.hh"

#include <algorithm>

#include "arbiter/arbiter_factory.hh"
#include "cache/replacement.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vpc
{

namespace
{

/** Build this bank's replacement policy from the configuration. */
std::unique_ptr<ReplacementPolicy>
makeCapacityPolicy(const SystemConfig &cfg, unsigned num_banks)
{
    if (cfg.capacityPolicy == CapacityPolicy::Lru)
        return std::make_unique<LruReplacement>();
    std::vector<double> betas;
    betas.reserve(cfg.shares.size());
    for (const QosShare &s : cfg.shares)
        betas.push_back(s.beta);
    if (cfg.capacityPolicy == CapacityPolicy::GlobalOccupancy) {
        std::uint64_t lines_per_bank =
            cfg.l2.setsPerBank(num_banks) * cfg.l2.ways;
        return std::make_unique<GlobalOccupancyManager>(
            betas, lines_per_bank);
    }
    return std::make_unique<VpcCapacityManager>(betas, cfg.l2.ways);
}

/** Extract the per-thread bandwidth shares from the configuration. */
std::vector<double>
phiVector(const SystemConfig &cfg)
{
    std::vector<double> phis;
    phis.reserve(cfg.shares.size());
    for (const QosShare &s : cfg.shares)
        phis.push_back(s.phi);
    return phis;
}

} // namespace

L2Bank::L2Bank(const SystemConfig &cfg_, unsigned bank_index,
               unsigned num_banks, unsigned num_threads,
               EventQueue &events_, MemoryController &mem_)
    : cfg(cfg_), bankIndex(bank_index), numThreads(num_threads),
      events(events_), mem(mem_),
      tags(cfg_.l2.setsPerBank(num_banks), cfg_.l2.ways,
           cfg_.l2.lineBytes, makeCapacityPolicy(cfg_, num_banks),
           log2i(num_banks)),
      ports(num_threads),
      sms(static_cast<std::size_t>(num_threads) *
          cfg_.l2.stateMachinesPerThread),
      smsInUse(num_threads, 0)
{
    sgbs.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        sgbs.emplace_back(cfg.l2.sgbEntriesPerThread,
                          cfg.l2.sgbHighWater);
    }
    for (unsigned t = 0; t < num_threads; ++t)
        ports[t].sgb = &sgbs[t];

    VpcArbiterOptions opts;
    opts.intraThreadRow = cfg.vpcIntraThreadRow;
    opts.idleReset = cfg.vpcIdleReset;
    opts.workConserving = cfg.vpcWorkConserving;
    std::vector<double> phis = phiVector(cfg);

    // Line transfer occupies the bus for (line / width) beats.
    Cycle bus_occ = cfg.l2.busOccupancyOverride
        ? cfg.l2.busOccupancyOverride
        : cfg.l2.busBeatCycles * (cfg.l2.lineBytes / cfg.l2.busBytes);

    // Tag *updates* (fill installs) are read-modify-writes of the
    // ECC-protected tag state: two back-to-back accesses.  This is why
    // miss-dominated benchmarks (equake, swim) show tag-array
    // utilization rivaling the data array in Figure 6.
    tagRes = std::make_unique<SharedResource>(
        vpc::format("bank{}.tag", bankIndex),
        makeArbiter(cfg.arbiterPolicy, numThreads, cfg.l2.tagLatency,
                    cfg.l2.tagWriteAccesses, phis, opts),
        cfg.l2.tagLatency, cfg.l2.tagWriteAccesses);
    dataRes = std::make_unique<SharedResource>(
        vpc::format("bank{}.data", bankIndex),
        makeArbiter(cfg.arbiterPolicy, numThreads, cfg.l2.dataLatency,
                    cfg.l2.dataWriteAccesses, phis, opts),
        cfg.l2.dataLatency, cfg.l2.dataWriteAccesses);
    busRes = std::make_unique<SharedResource>(
        vpc::format("bank{}.bus", bankIndex),
        makeArbiter(cfg.arbiterPolicy, numThreads, bus_occ, 1, phis,
                    opts),
        bus_occ, 1);

    tagRes->setGrantHandler(
        [this](const ArbRequest &req, Cycle, Cycle done) {
            events.schedule(done, [this, idx = req.id, done]() {
                tagDone(idx, done);
            });
        });
    dataRes->setGrantHandler(
        [this](const ArbRequest &req, Cycle, Cycle done) {
            events.schedule(done, [this, idx = req.id, done]() {
                dataDone(idx, done);
            });
        });
    busRes->setGrantHandler(
        [this](const ArbRequest &req, Cycle start, Cycle done) {
            // The bank data bus connects directly to the processors
            // (Figure 2a), so the critical word reaches the core after
            // the first beat: request-crossbar 2 + tag 4 + data 8 +
            // beat 2 = 16 cycles, matching Figure 4.
            Sm &sm = sms.at(req.id);
            Cycle critical = start + cfg.l2.busBeatCycles;
            if (fillPort) {
                fillPort(sm.thread, sm.lineAddr, critical);
            } else if (respLane != nullptr) {
                respLane->push(critical, events.profileContext(),
                               RespMsg{this, sm.thread, sm.lineAddr});
            } else {
                events.schedule(critical,
                    [this, t = sm.thread, la = sm.lineAddr]() {
                        if (respond)
                            respond(t, la);
                    });
            }
            events.schedule(done, [this, idx = req.id, start, done]() {
                busDone(idx, start, done);
            });
        });
}

void
L2Bank::setResponseHandler(ResponseHandler h)
{
    respond = std::move(h);
}

void
L2Bank::setFillPort(FillPort p)
{
    fillPort = std::move(p);
}

bool
L2Bank::tryReserveStore(ThreadId t)
{
    if (sgbs.at(t).full())
        return false;
    sgbs[t].reserve();
    return true;
}

void
L2Bank::storeArrive(ThreadId t, Addr line_addr, Cycle now)
{
    if (!sgbs.at(t).addStore(line_addr, now))
        ++sgbOccVersion_; // new entry: occupancy grew
}

void
L2Bank::remoteStoreArrive(ThreadId t, Addr line_addr, Cycle now)
{
    sgbs.at(t).reserve();
    if (!sgbs[t].addStore(line_addr, now))
        ++sgbOccVersion_;
}

void
L2Bank::loadArrive(ThreadId t, Addr line_addr, Cycle now,
                   bool prefetch)
{
    (void)now;
    ports.at(t).loadQueue.push_back(PendingLoad{line_addr, prefetch});
}

int
L2Bank::allocSm(ThreadId t)
{
    if (smsInUse[t] >= cfg.l2.stateMachinesPerThread)
        return -1;
    unsigned base = t * cfg.l2.stateMachinesPerThread;
    for (unsigned i = 0; i < cfg.l2.stateMachinesPerThread; ++i) {
        if (!sms[base + i].busy)
            return static_cast<int>(base + i);
    }
    vpc_panic("SM accounting out of sync for thread {}", t);
}

bool
L2Bank::lineConflict(Addr line_addr) const
{
    for (const Sm &sm : sms) {
        if (sm.busy && sm.lineAddr == line_addr)
            return true;
    }
    return false;
}

void
L2Bank::requestResource(SharedResource &res, unsigned sm_idx,
                        bool is_write, Cycle now)
{
    const Sm &sm = sms.at(sm_idx);
    ArbRequest req;
    req.id = sm_idx;
    req.thread = sm.thread;
    req.isWrite = is_write;
    req.isPrefetch = sm.isPrefetch;
    req.arrival = now;
    req.seq = nextSeq++;
    req.lineAddr = sm.lineAddr;
    res.request(req, now);
}

bool
L2Bank::tryAdmit(ThreadId t, Cycle now)
{
    ThreadPort &port = ports[t];
    StoreGatherBuffer &sgb = *port.sgb;

    // Decide the thread's candidate request: loads bypass gathered
    // stores (RoW) unless the buffer is at its high-water mark (RoW
    // inversion) or the load conflicts with a buffered store (partial
    // flush retires the conflicting store and its elders first).
    bool load_ready = false;
    bool load_prefetch = false;
    Addr load_addr = 0;
    if (!port.loadQueue.empty()) {
        load_addr = port.loadQueue.front().lineAddr;
        load_prefetch = port.loadQueue.front().prefetch;
        if (sgb.loadConflict(load_addr)) {
            sgb.flushThrough(load_addr);
        } else if (sgb.loadsMayBypass() || sgb.empty()) {
            load_ready = true;
        }
    }
    bool store_ready = !sgb.empty() && sgb.hasRetirable();

    Addr line_addr = 0;
    bool is_write = false;
    if (load_ready) {
        line_addr = load_addr;
        is_write = false;
    } else if (store_ready) {
        line_addr = *sgb.peekRetire();
        is_write = true;
    } else {
        return false;
    }

    // The tag pipeline touches this line's set a few cycles from now;
    // start pulling its plane rows into the host cache already.
    tags.prefetchSet(line_addr);

    // A request may not enter the controller pipeline while another
    // request to the same line is active (consistency check).
    if (lineConflict(line_addr))
        return false;

    int idx = allocSm(t);
    if (idx < 0)
        return false;

    Sm &sm = sms[idx];
    sm.busy = true;
    sm.thread = t;
    sm.lineAddr = line_addr;
    sm.isWrite = is_write;
    sm.isPrefetch = !is_write && load_ready && load_prefetch;
    sm.fill = false;
    sm.victimDirty = false;
    sm.victimAddr = 0;
    sm.pendingOps = 1;
    ++smsInUse[t];

    if (is_write) {
        sgb.popRetire();
        ++sgbOccVersion_;
        port.writes.inc();
    } else {
        port.loadQueue.pop_front();
        port.reads.inc();
    }
    VPC_DPRINTF(L2Bank, "[{}] bank{} admit t{} {} {:#x} sm{}", now,
                bankIndex, t, is_write ? "store" : "load", line_addr,
                idx);
    requestResource(*tagRes, idx, is_write, now);
    return true;
}

void
L2Bank::tagDone(unsigned sm_idx, Cycle now)
{
    Sm &sm = sms.at(sm_idx);
    if (!sm.busy)
        vpc_panic("tagDone on idle SM {}", sm_idx);

    if (sm.fill) {
        // Fill tag update: install the line, displacing a victim.
        Eviction ev = tags.insert(sm.lineAddr, sm.thread, sm.isWrite);
        if (ev.valid && ev.dirty) {
            sm.victimDirty = true;
            sm.victimAddr = ev.lineAddr;
        }
        // Dirty victims are read out of the data array before the fill
        // overwrites them; clean victims go straight to the fill write.
        requestResource(*dataRes, sm_idx, false, now);
        return;
    }

    bool hit = tags.lookup(sm.lineAddr, true, sm.thread);
    VPC_DPRINTF(L2Bank, "[{}] bank{} tagDone sm{} {:#x} {}", now,
                bankIndex, sm_idx, sm.lineAddr,
                hit ? "hit" : "miss");
    if (hit) {
        if (sm.isWrite) {
            tags.markDirty(sm.lineAddr, sm.thread);
            requestResource(*dataRes, sm_idx, true, now);
        } else if (rcqOccupancy < cfg.l2.readClaimEntries) {
            // The read-claim queue holds lines between the data array
            // and the bank data bus; a full queue backpressures new
            // data-array reads.
            requestResource(*dataRes, sm_idx, false, now);
        } else {
            deferredData.push_back(sm_idx);
        }
    } else {
        ports[sm.thread].misses.inc();
        startMemAccess(sm_idx, now);
    }
}

void
L2Bank::startMemAccess(unsigned sm_idx, Cycle now)
{
    Sm &sm = sms.at(sm_idx);
    if (!mem.canAcceptRead(sm.thread)) {
        deferredMem.push_back(sm_idx);
        return;
    }
    mem.read(sm.thread, sm.lineAddr, now,
             [this, sm_idx](Addr, Cycle done) {
                 memReturn(sm_idx, done);
             });
}

void
L2Bank::memReturn(unsigned sm_idx, Cycle now)
{
    Sm &sm = sms.at(sm_idx);
    sm.fill = true;
    // Two parallel legs for loads: (1) the line goes out on the bank
    // data bus to the requesting core ("data coming directly from
    // memory"; the bus arbiter prevents collisions with array reads);
    // (2) the line is installed: tag update, then data-array write
    // (preceded by a victim read-out if the victim is dirty).  Store
    // misses (write-allocate) only install.
    sm.pendingOps = sm.isWrite ? 1 : 2;
    if (!sm.isWrite)
        requestResource(*busRes, sm_idx, false, now);
    // The fill's tag install is a tag-state read-modify-write; it
    // revisits the set after the tag-array grant, so prefetch the
    // set's plane rows now.
    tags.prefetchSet(sm.lineAddr);
    requestResource(*tagRes, sm_idx, true, now);
}

void
L2Bank::dataDone(unsigned sm_idx, Cycle now)
{
    Sm &sm = sms.at(sm_idx);
    if (!sm.busy)
        vpc_panic("dataDone on idle SM {}", sm_idx);

    if (!sm.fill) {
        if (sm.isWrite) {
            // Store read-modify-write complete.
            finishLeg(sm_idx);
        } else {
            // Load hit: line sits in the read-claim queue until the
            // bank data bus takes it.
            ++rcqOccupancy;
            rcqHighWater = std::max(rcqHighWater, rcqOccupancy);
            requestResource(*busRes, sm_idx, false, now);
        }
        return;
    }

    if (sm.victimDirty) {
        // Victim read-out complete; write it back and start the fill
        // write.
        if (mem.canAcceptWrite(sm.thread))
            mem.write(sm.thread, sm.victimAddr, now);
        else
            deferredWb.emplace_back(sm.thread, sm.victimAddr);
        sm.victimDirty = false;
        requestResource(*dataRes, sm_idx, false, now);
        return;
    }
    // Fill write complete.
    finishLeg(sm_idx);
}

void
L2Bank::busDone(unsigned sm_idx, Cycle start, Cycle done)
{
    (void)start;
    (void)done;
    Sm &sm = sms.at(sm_idx);
    if (!sm.busy)
        vpc_panic("busDone on idle SM {}", sm_idx);
    if (!sm.fill) {
        // Hit-path transfer frees its read-claim queue slot.
        if (rcqOccupancy == 0)
            vpc_panic("read-claim queue underflow");
        --rcqOccupancy;
    }
    finishLeg(sm_idx);
}

void
L2Bank::finishLeg(unsigned sm_idx)
{
    Sm &sm = sms.at(sm_idx);
    if (sm.pendingOps == 0)
        vpc_panic("finishLeg with no pending ops on SM {}", sm_idx);
    if (--sm.pendingOps == 0) {
        sm.busy = false;
        --smsInUse[sm.thread];
    }
}

void
L2Bank::tick(Cycle now)
{
    // The bank (and crossbar) run at half the core frequency.
    if (now & 1)
        return;

    // Retry work that was blocked on a full downstream structure.
    while (!deferredWb.empty() &&
           mem.canAcceptWrite(deferredWb.front().first)) {
        mem.write(deferredWb.front().first, deferredWb.front().second,
                  now);
        deferredWb.pop_front();
    }
    while (!deferredMem.empty() &&
           mem.canAcceptRead(sms[deferredMem.front()].thread)) {
        unsigned idx = deferredMem.front();
        deferredMem.pop_front();
        startMemAccess(idx, now);
    }
    while (!deferredData.empty() &&
           rcqOccupancy < cfg.l2.readClaimEntries) {
        unsigned idx = deferredData.front();
        deferredData.pop_front();
        requestResource(*dataRes, idx, false, now);
    }

    // Admit one request per L2 cycle, round-robin across threads.
    // With no queued load and an empty gathering buffer a thread has
    // no candidate and tryAdmit() is a side-effect-free false, so the
    // inline emptiness check skips the call entirely.
    for (unsigned i = 0; i < numThreads; ++i) {
        ThreadId t = (admissionRR + i) % numThreads;
        const ThreadPort &port = ports[t];
        if (port.loadQueue.empty() && port.sgb->empty())
            continue;
        if (tryAdmit(t, now)) {
            admissionRR = (t + 1) % numThreads;
            break;
        }
    }

    tagRes->tick(now);
    dataRes->tick(now);
    busRes->tick(now);
}

Cycle
L2Bank::nextWork(Cycle now) const
{
    // The bank only acts on its even (half-frequency) cycles.
    Cycle e = now + (now & 1);

    // Deferred retries poll cheap downstream gates (memory buffer
    // space, read-claim occupancy) every L2 cycle, exactly as the
    // naive tick does, so a non-empty deferred queue keeps the bank
    // due: the gates are opened by events and by the memory
    // controller's tick, and the hint is re-polled each executed
    // cycle, so claiming "due" here is conservative, never wrong.
    if (!deferredWb.empty() || !deferredMem.empty() ||
        !deferredData.empty())
        return e;

    // Admission: a queued load can admit, flush gathered stores, or
    // at minimum mutate SGB flush state; a retirable store can admit.
    // With no queued load and nothing retirable, tryAdmit() is a
    // provable no-op (it reads SGB state and returns false).
    for (const ThreadPort &port : ports) {
        if (!port.loadQueue.empty() || port.sgb->hasRetirable())
            return e;
    }

    // Resources grant on their own schedule; round oddness up onto
    // the bank grid (occupancies are even, so this is a formality).
    Cycle next = tagRes->nextWork(e);
    next = std::min(next, dataRes->nextWork(e));
    next = std::min(next, busRes->nextWork(e));
    if (next == kCycleMax)
        return kCycleMax;
    return next + (next & 1);
}

bool
L2Bank::quiesced() const
{
    for (const Sm &sm : sms) {
        if (sm.busy)
            return false;
    }
    for (const ThreadPort &port : ports) {
        if (!port.loadQueue.empty())
            return false;
    }
    return deferredData.empty() && deferredMem.empty() &&
           deferredWb.empty() && !tagRes->arbiter().hasPending() &&
           !dataRes->arbiter().hasPending() &&
           !busRes->arbiter().hasPending();
}

bool
L2Bank::threadHasWork(ThreadId t) const
{
    const ThreadPort &port = ports.at(t);
    if (!port.loadQueue.empty() || !port.sgb->empty())
        return true;
    if (smsInUse.at(t) > 0)
        return true;
    return tagRes->arbiter().pendingCount(t) > 0 ||
           dataRes->arbiter().pendingCount(t) > 0 ||
           busRes->arbiter().pendingCount(t) > 0;
}

std::uint64_t
L2Bank::readCount(ThreadId t) const
{
    return ports.at(t).reads.value();
}

std::uint64_t
L2Bank::writeCount(ThreadId t) const
{
    return ports.at(t).writes.value();
}

std::uint64_t
L2Bank::threadMissCount(ThreadId t) const
{
    return ports.at(t).misses.value();
}

void
L2Bank::setBandwidthShare(ThreadId t, double phi)
{
    setResourceShares(t, phi, phi, phi);
}

void
L2Bank::setResourceShares(ThreadId t, double phi_tag, double phi_data,
                          double phi_bus)
{
    tagRes->arbiter().setShare(t, phi_tag);
    dataRes->arbiter().setShare(t, phi_data);
    busRes->arbiter().setShare(t, phi_bus);
}

void
L2Bank::setCapacityShare(ThreadId t, double beta)
{
    auto *mgr = dynamic_cast<VpcCapacityManager *>(&tags.policy());
    if (!mgr) {
        vpc_warn("capacity share update ignored: bank {} runs "
                 "unpartitioned LRU", bankIndex);
        return;
    }
    mgr->setShare(t, beta);
}

} // namespace vpc
