#include "cache/cache_array.hh"

#include "cache/replacement.hh"
#include "sim/logging.hh"

namespace vpc
{

CacheArray::CacheArray(std::uint64_t sets, unsigned ways,
                       unsigned line_bytes,
                       std::unique_ptr<ReplacementPolicy> policy,
                       unsigned index_shift)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      indexShift_(index_shift), policy_(std::move(policy))
{
    if (!isPowerOf2(sets_) || !isPowerOf2(lineBytes_))
        vpc_fatal("cache geometry must use power-of-two sets ({}) and "
                  "line size ({})", sets_, lineBytes_);
    if (ways_ == 0)
        vpc_fatal("cache must have at least one way");
    if (!policy_)
        vpc_panic("CacheArray constructed without replacement policy");
    data.assign(sets_ * ways_, CacheLine{});
}

CacheArray::~CacheArray() = default;

std::uint64_t
CacheArray::setIndex(Addr addr) const
{
    return ((addr / lineBytes_) >> indexShift_) & (sets_ - 1);
}

Addr
CacheArray::tagOf(Addr addr) const
{
    return ((addr / lineBytes_) >> indexShift_) / sets_;
}

std::span<CacheLine>
CacheArray::setOf(Addr addr)
{
    return {data.data() + setIndex(addr) * ways_, ways_};
}

std::span<const CacheLine>
CacheArray::setOf(Addr addr) const
{
    return {data.data() + setIndex(addr) * ways_, ways_};
}

bool
CacheArray::lookup(Addr addr, bool touch, ThreadId t)
{
    (void)t;
    Addr tag = tagOf(addr);
    for (CacheLine &line : setOf(addr)) {
        if (line.valid && line.tag == tag) {
            if (touch) {
                line.lastUse = ++useClock;
                hits.inc();
            }
            return true;
        }
    }
    if (touch)
        misses.inc();
    return false;
}

void
CacheArray::bumpOcc(ThreadId t, std::int64_t delta)
{
    if (t == kInvalidThread)
        return;
    if (t >= occTracked_.size())
        occTracked_.resize(t + 1, 0);
    if (delta < 0 && occTracked_[t] == 0)
        vpc_panic("tracked occupancy for thread {} underflowed", t);
    occTracked_[t] += static_cast<std::uint64_t>(delta);
}

std::uint64_t
CacheArray::trackedOccupancy(ThreadId t) const
{
    return t < occTracked_.size() ? occTracked_[t] : 0;
}

bool
CacheArray::faultFlipOwner(ThreadId to)
{
    for (CacheLine &line : data) {
        if (line.valid && line.owner != to) {
            line.owner = to;
            return true;
        }
    }
    return false;
}

Eviction
CacheArray::insert(Addr addr, ThreadId t, bool dirty)
{
    std::span<CacheLine> set = setOf(addr);
    unsigned w = policy_->victim(set, t);
    if (forcedVictim != kNoForcedVictim) {
        // Injected fault: override the policy's choice so the victim
        // audit can be shown to catch illegal replacement decisions.
        w = forcedVictim;
        forcedVictim = kNoForcedVictim;
    }
    if (w >= ways_)
        vpc_panic("replacement policy returned way {} of {}", w, ways_);
    if (victimAudit)
        victimAudit(set, t, w);

    CacheLine &line = set[w];
    Eviction ev;
    if (line.valid) {
        ev.valid = true;
        ev.dirty = line.dirty;
        ev.owner = line.owner;
        // Reconstruct the victim's address: the discarded interleave
        // bits are constant per bank and equal to the incoming
        // address's low line bits.
        Addr low = (addr / lineBytes_) &
                   ((Addr{1} << indexShift_) - 1);
        ev.lineAddr = (((line.tag * sets_ + setIndex(addr))
                        << indexShift_) | low) * lineBytes_;
        policy_->onEvict(line.owner);
        bumpOcc(line.owner, -1);
    }
    line.tag = tagOf(addr);
    line.valid = true;
    line.dirty = dirty;
    line.owner = t;
    line.lastUse = ++useClock;
    policy_->onInsert(t);
    bumpOcc(t, +1);
    return ev;
}

bool
CacheArray::markDirty(Addr addr, ThreadId t)
{
    (void)t;
    Addr tag = tagOf(addr);
    for (CacheLine &line : setOf(addr)) {
        if (line.valid && line.tag == tag) {
            line.dirty = true;
            line.lastUse = ++useClock;
            return true;
        }
    }
    return false;
}

void
CacheArray::invalidate(Addr addr)
{
    Addr tag = tagOf(addr);
    for (CacheLine &line : setOf(addr)) {
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            policy_->onEvict(line.owner);
            bumpOcc(line.owner, -1);
            return;
        }
    }
}

unsigned
CacheArray::setOccupancy(Addr addr, ThreadId t) const
{
    unsigned n = 0;
    for (const CacheLine &line : setOf(addr)) {
        if (line.valid && line.owner == t)
            ++n;
    }
    return n;
}

std::uint64_t
CacheArray::occupancy(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const CacheLine &line : data) {
        if (line.valid && line.owner == t)
            ++n;
    }
    return n;
}

} // namespace vpc
