#include "cache/cache_array.hh"

#include <bit>
#include <limits>

#include "cache/replacement.hh"
#include "sim/logging.hh"

namespace vpc
{

CacheArray::CacheArray(std::uint64_t sets, unsigned ways,
                       unsigned line_bytes,
                       std::unique_ptr<ReplacementPolicy> policy,
                       unsigned index_shift)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      indexShift_(index_shift), policy_(std::move(policy))
{
    if (!isPowerOf2(sets_) || !isPowerOf2(lineBytes_))
        vpc_fatal("cache geometry must use power-of-two sets ({}) and "
                  "line size ({})", sets_, lineBytes_);
    if (ways_ == 0)
        vpc_fatal("cache must have at least one way");
    if (ways_ > 64)
        vpc_fatal("cache associativity {} exceeds 64 (way state is "
                  "packed into one mask word per set)", ways_);
    if (!policy_)
        vpc_panic("CacheArray constructed without replacement policy");
    lineShift_ = log2i(lineBytes_);
    setShift_ = log2i(sets_);
    kind_ = policy_->kind();
    // The tag and stamp planes carry kWidth64 - 1 words of tail
    // padding so the vectorized scans can load whole vectors from any
    // set base without overreading the allocation (vec.hh's "padded"
    // contract).  The padding is never addressed by a (set, way) pair.
    tags_.assign(sets_ * ways_ + vec::kWidth64 - 1, 0);
    stamps_.assign(sets_ * ways_ + vec::kWidth64 - 1, 0);
    owners_.assign(sets_ * ways_, kInvalidThread);
    validMask_.assign(sets_, 0);
    dirtyMask_.assign(sets_, 0);
}

CacheArray::~CacheArray() = default;

void
CacheArray::ensureMaskThread(ThreadId t)
{
    if (t == kInvalidThread)
        return;
    while (maskThreads_ <= t) {
        ownerWays_.insert(ownerWays_.end(), sets_, 0);
        ++maskThreads_;
    }
}

void
CacheArray::bumpOcc(ThreadId t, std::int64_t delta)
{
    if (t == kInvalidThread)
        return;
    if (t >= occTracked_.size())
        occTracked_.resize(t + 1, 0);
    if (delta < 0 && occTracked_[t] == 0)
        vpc_panic("tracked occupancy for thread {} underflowed", t);
    occTracked_[t] += static_cast<std::uint64_t>(delta);
}

std::uint64_t
CacheArray::trackedOccupancy(ThreadId t) const
{
    return t < occTracked_.size() ? occTracked_[t] : 0;
}

bool
CacheArray::faultFlipOwner(ThreadId to)
{
    // Reassigns the real ownership state — owners_ *and* the way
    // masks, so the devirtualized victim path keeps agreeing with the
    // oracle's view of the lines — while leaving the occTracked_
    // counters stale.  That is the injected inconsistency the
    // CapacityAuditor must catch.
    for (std::uint64_t s = 0; s < sets_; ++s) {
        for (std::uint64_t m = validMask_[s]; m != 0; m &= m - 1) {
            unsigned w = ctz64(m);
            std::uint64_t li = s * ways_ + w;
            if (owners_[li] == to)
                continue;
            ThreadId from = owners_[li];
            std::uint64_t bit = std::uint64_t{1} << w;
            if (from < maskThreads_)
                ownerWays_[from * sets_ + s] &= ~bit;
            ensureMaskThread(to);
            if (to != kInvalidThread)
                ownerWays_[to * sets_ + s] |= bit;
            owners_[li] = to;
            return true;
        }
    }
    return false;
}

std::span<const CacheLine>
CacheArray::setLines(std::uint64_t index) const
{
    lineScratch_.resize(ways_);
    const std::uint64_t base = index * ways_;
    std::uint64_t vm = validMask_[index], dm = dirtyMask_[index];
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &l = lineScratch_[w];
        l.tag = tags_[base + w];
        l.valid = (vm >> w) & 1;
        l.dirty = (dm >> w) & 1;
        l.owner = owners_[base + w];
        l.lastUse = stamps_[base + w];
    }
    return {lineScratch_.data(), ways_};
}

unsigned
CacheArray::minStampWay(std::uint64_t s, std::uint64_t mask) const
{
    // vec::minIndex64 resolves stamp ties to the lowest way,
    // reproducing the oracle's ascending-scan first-lowest-way
    // tie-break exactly.
    return vec::minIndex64(&stamps_[s * ways_], mask, ways_);
}

unsigned
CacheArray::chooseVictim(std::uint64_t s, ThreadId requester)
{
    const std::uint64_t full = fullMask();
    const std::uint64_t vm = validMask_[s];
    if (vm != full) {
        // First invalid way, as every policy's firstInvalid() scan.
        return ctz64(~vm & full);
    }

    switch (kind_) {
      case PolicyKind::Lru:
        return minStampWay(s, full);

      case PolicyKind::Vpc: {
        const auto &mgr =
            static_cast<const VpcCapacityManager &>(*policy_);
        std::span<const unsigned> quotas = mgr.quotaTable();
        // Condition 1 (Section 4.2): LRU line among threads holding
        // more than their way allocation of this set.  Occupancy is
        // the popcount of the incrementally maintained ownership
        // mask — no recount.
        ThreadId n = maskThreads_ < quotas.size()
            ? maskThreads_ : static_cast<ThreadId>(quotas.size());
        std::uint64_t elig = 0;
        for (ThreadId j = 0; j < n; ++j) {
            std::uint64_t om = ownerWays_[j * sets_ + s];
            if (static_cast<unsigned>(std::popcount(om)) > quotas[j])
                elig |= om;
        }
        if (elig != 0)
            return minStampWay(s, elig);
        // Condition 2: the requester's own LRU line.  A thread with
        // no ownership mask has never inserted a line, so the oracle's
        // requester-owned scan is empty too.
        std::uint64_t own = ownerMask(requester, s);
        if (own != 0)
            return minStampWay(s, own);
        vpc_warn("VPC capacity manager: falling back to global LRU");
        return minStampWay(s, full);
      }

      case PolicyKind::GlobalOccupancy: {
        const auto &mgr =
            static_cast<const GlobalOccupancyManager &>(*policy_);
        std::span<const std::uint64_t> quotas = mgr.quotaTable();
        std::span<const std::uint64_t> occ = mgr.occTable();
        ThreadId n = maskThreads_ < quotas.size()
            ? maskThreads_ : static_cast<ThreadId>(quotas.size());
        std::uint64_t elig = 0;
        for (ThreadId j = 0; j < n; ++j) {
            if (occ[j] > quotas[j])
                elig |= ownerWays_[j * sets_ + s];
        }
        if (elig != 0)
            return minStampWay(s, elig);
        return minStampWay(s, full);
      }

      case PolicyKind::Other:
        break;
    }
    // Unknown policy: the virtual interface is the implementation.
    return policy_->victim(setLines(s), requester);
}

Eviction
CacheArray::insert(Addr addr, ThreadId t, bool dirty)
{
    std::uint64_t s = setIndex(addr);
    unsigned w = chooseVictim(s, t);
    if (forcedVictim != kNoForcedVictim) {
        // Injected fault: override the policy's choice so the victim
        // audit can be shown to catch illegal replacement decisions.
        w = forcedVictim;
        forcedVictim = kNoForcedVictim;
    }
    if (w >= ways_)
        vpc_panic("replacement policy returned way {} of {}", w, ways_);
    if (victimAudit)
        victimAudit(setLines(s), t, w);

    const std::uint64_t li = s * ways_ + w;
    const std::uint64_t bit = std::uint64_t{1} << w;
    Eviction ev;
    if (validMask_[s] & bit) {
        ev.valid = true;
        ev.dirty = (dirtyMask_[s] & bit) != 0;
        ev.owner = owners_[li];
        // Reconstruct the victim's address: the discarded interleave
        // bits are constant per bank and equal to the incoming
        // address's low line bits.
        Addr low = (addr >> lineShift_) &
                   ((Addr{1} << indexShift_) - 1);
        ev.lineAddr = (((tags_[li] * sets_ + s)
                        << indexShift_) | low) * lineBytes_;
        if (ev.owner < maskThreads_)
            ownerWays_[ev.owner * sets_ + s] &= ~bit;
        policy_->onEvict(ev.owner);
        bumpOcc(ev.owner, -1);
    }
    tags_[li] = tagOf(addr);
    validMask_[s] |= bit;
    if (dirty)
        dirtyMask_[s] |= bit;
    else
        dirtyMask_[s] &= ~bit;
    owners_[li] = t;
    stamps_[li] = ++useClock;
    if (t != kInvalidThread) {
        ensureMaskThread(t);
        ownerWays_[t * sets_ + s] |= bit;
    }
    policy_->onInsert(t);
    bumpOcc(t, +1);
    return ev;
}

bool
CacheArray::markDirty(Addr addr, ThreadId t)
{
    (void)t;
    std::uint64_t s = setIndex(addr);
    Addr tag = tagOf(addr);
    std::uint64_t eq = vec::eqMask64(&tags_[s * ways_], ways_, tag) &
                       validMask_[s];
    if (eq != 0) {
        unsigned w = ctz64(eq);
        dirtyMask_[s] |= std::uint64_t{1} << w;
        stamps_[s * ways_ + w] = ++useClock;
        return true;
    }
    return false;
}

void
CacheArray::invalidate(Addr addr)
{
    std::uint64_t s = setIndex(addr);
    Addr tag = tagOf(addr);
    std::uint64_t eq = vec::eqMask64(&tags_[s * ways_], ways_, tag) &
                       validMask_[s];
    if (eq != 0) {
        unsigned w = ctz64(eq);
        std::uint64_t bit = std::uint64_t{1} << w;
        validMask_[s] &= ~bit;
        dirtyMask_[s] &= ~bit;
        ThreadId owner = owners_[s * ways_ + w];
        if (owner < maskThreads_)
            ownerWays_[owner * sets_ + s] &= ~bit;
        policy_->onEvict(owner);
        bumpOcc(owner, -1);
    }
}

unsigned
CacheArray::setOccupancy(Addr addr, ThreadId t) const
{
    // Deliberately an owners_ walk, not an ownerWays_ popcount: the
    // verify layer uses this as the independent cross-check of the
    // incremental masks.
    std::uint64_t s = setIndex(addr);
    unsigned n = 0;
    for (std::uint64_t m = validMask_[s]; m != 0; m &= m - 1) {
        unsigned w = ctz64(m);
        if (owners_[s * ways_ + w] == t)
            ++n;
    }
    return n;
}

std::uint64_t
CacheArray::occupancy(ThreadId t) const
{
    std::uint64_t n = 0;
    for (std::uint64_t s = 0; s < sets_; ++s) {
        for (std::uint64_t m = validMask_[s]; m != 0; m &= m - 1) {
            unsigned w = ctz64(m);
            if (owners_[s * ways_ + w] == t)
                ++n;
        }
    }
    return n;
}

} // namespace vpc
