/**
 * @file
 * The shared, banked L2 cache (Figure 2a of the paper).
 *
 * Requests are address-interleaved across banks using the bits directly
 * above the line offset.  Each processor has private read/write ports
 * into every bank, so the crossbar contributes latency only (2 cycles
 * each way at 1/2 core frequency); contention is modeled at the banks'
 * shared resources.
 */

#ifndef VPC_CACHE_L2_CACHE_HH
#define VPC_CACHE_L2_CACHE_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/l2_bank.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace vpc
{

/**
 * Core-side interception point for the shard-parallel kernel.
 *
 * When a port is installed for a thread, L2Cache::store()/load() route
 * through it instead of touching bank state, so the calling core never
 * reads or writes uncore-owned structures.  The port (implemented by
 * the system layer) performs the admission check against its local
 * occupancy view and forwards the request across the shard boundary.
 * Addresses arrive line-aligned with the target bank precomputed.
 */
class L2CorePort
{
  public:
    virtual ~L2CorePort() = default;

    /** Mirror of L2Cache::store(); @return false to stall the core. */
    virtual bool store(Addr line_addr, unsigned bank, Cycle now) = 0;

    /** Mirror of L2Cache::load(). */
    virtual void load(Addr line_addr, unsigned bank, Cycle now,
                      bool prefetch) = 0;
};

/** Shared L2: crossbar front-end plus address-interleaved banks. */
class L2Cache : public Ticking
{
  public:
    /** Load critical-word delivery to a core. */
    using ResponseHandler =
        std::function<void(ThreadId t, Addr line_addr)>;

    /**
     * @param cfg system configuration
     * @param events shared event queue
     * @param mem memory controller
     */
    L2Cache(const SystemConfig &cfg, EventQueue &events,
            MemoryController &mem);

    /** Install the per-system response path (fan-out by thread id). */
    void setResponseHandler(ResponseHandler h);

    /**
     * Install thread @p t's core-side port (nullptr to remove).  Used
     * only by the shard-parallel kernel; without a port the serial
     * direct path is taken.
     */
    void setCorePort(ThreadId t, L2CorePort *port);

    /**
     * Route every bank's critical-word delivery through @p p instead
     * of scheduling a response event on the (serial) queue.  Shard-
     * parallel kernel only.
     */
    void setFillPort(L2Bank::FillPort p);

    /**
     * @name Fused serial crossbar transit lane
     *
     * The crossbar latency is a configuration constant and arrivals
     * are pure bank-queue writes consumed by later bank ticks, so the
     * lane replays the event path exactly from plain (bank, line,
     * thread, kind) records — no closure.  Counted: the sharded
     * kernel fires these as real cross-shard events, and eventsFired
     * must agree between kernels.  Serial kernel only — with core
     * ports installed the lane is never consulted.
     */
    /// @{
    struct TransitMsg
    {
        L2Bank *bank;
        Addr lineAddr;
        ThreadId thread;
        bool isStore;
        bool prefetch;
    };
    struct TransitSink
    {
        void
        operator()(Cycle when, const TransitMsg &m) const
        {
            if (m.isStore)
                m.bank->storeArrive(m.thread, m.lineAddr, when);
            else
                m.bank->loadArrive(m.thread, m.lineAddr, when,
                                   m.prefetch);
        }
    };
    using TransitLane = DataLane<TransitMsg, TransitSink>;

    /** Route crossbar transits through @p lane (nullptr to revert). */
    void setTransitLane(TransitLane *lane) { transitLane = lane; }
    /// @}

    /**
     * Issue a store from core @p t.
     *
     * @return false if the target bank's gathering buffer is full; the
     *         core must stall and retry
     */
    bool store(ThreadId t, Addr addr, Cycle now);

    /** Issue a load (L1 miss) from core @p t. */
    void load(ThreadId t, Addr addr, Cycle now,
              bool prefetch = false);

    void tick(Cycle now) override;

    /** Quiescence hint: the earliest nextWork across all banks. */
    Cycle nextWork(Cycle now) const override;

    /** @return bank index servicing @p addr. */
    unsigned bankOf(Addr addr) const;

    /** @return number of banks. */
    unsigned numBanks() const { return static_cast<unsigned>(
        banks.size()); }

    /** @return bank @p i. */
    L2Bank &bank(unsigned i) { return *banks.at(i); }
    const L2Bank &bank(unsigned i) const { return *banks.at(i); }

    /** @return true when all banks are idle. */
    bool quiesced() const;

    /** @return true while any bank holds work for thread @p t. */
    bool threadHasWork(ThreadId t) const;

    /** Mean utilization of a resource across banks over @p window. */
    double tagUtilization(Cycle window) const;
    double dataUtilization(Cycle window) const;
    double busUtilization(Cycle window) const;

    /** Mean accumulated busy cycles per bank (for interval deltas). */
    double tagBusyMean() const;
    double dataBusyMean() const;
    double busBusyMean() const;

    /** Aggregate per-thread request counts across banks. */
    std::uint64_t readCount(ThreadId t) const;
    std::uint64_t writeCount(ThreadId t) const;
    std::uint64_t missCount(ThreadId t) const;

    /** Aggregate store-gathering statistics across banks. */
    std::uint64_t storesTotal(ThreadId t) const;
    std::uint64_t storesGathered(ThreadId t) const;

    /** Update thread @p t's bandwidth share on every bank. */
    void setBandwidthShare(ThreadId t, double phi);

  private:
    const SystemConfig &cfg;
    EventQueue &events;
    std::vector<std::unique_ptr<L2Bank>> banks;
    std::vector<L2CorePort *> corePorts;
    TransitLane *transitLane = nullptr; //!< fused serial crossbar
};

} // namespace vpc

#endif // VPC_CACHE_L2_CACHE_HH
