#include "cache/l2_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vpc
{

L2Cache::L2Cache(const SystemConfig &cfg_, EventQueue &events_,
                 MemoryController &mem)
    : cfg(cfg_), events(events_),
      corePorts(cfg_.numProcessors, nullptr)
{
    banks.reserve(cfg.l2.banks);
    for (unsigned b = 0; b < cfg.l2.banks; ++b) {
        banks.push_back(std::make_unique<L2Bank>(
            cfg, b, cfg.l2.banks, cfg.numProcessors, events, mem));
    }
}

void
L2Cache::setResponseHandler(ResponseHandler h)
{
    // All banks share the system-level handler; the handler fans out
    // to the right core by thread id.
    for (auto &bank : banks) {
        bank->setResponseHandler(
            [h](ThreadId t, Addr line_addr) { h(t, line_addr); });
    }
}

void
L2Cache::setCorePort(ThreadId t, L2CorePort *port)
{
    corePorts.at(t) = port;
}

void
L2Cache::setFillPort(L2Bank::FillPort p)
{
    for (auto &bank : banks)
        bank->setFillPort(p);
}

unsigned
L2Cache::bankOf(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / cfg.l2.lineBytes) % banks.size());
}

bool
L2Cache::store(ThreadId t, Addr addr, Cycle now)
{
    Addr line = lineAlign(addr, cfg.l2.lineBytes);
    if (corePorts[t] != nullptr)
        return corePorts[t]->store(line, bankOf(addr), now);
    L2Bank &bank = *banks[bankOf(addr)];
    if (!bank.tryReserveStore(t))
        return false;
    Cycle arrive = now + cfg.l2.interconnectLatency;
    if (transitLane != nullptr) {
        transitLane->push(arrive, events.profileContext(),
                          TransitMsg{&bank, line, t,
                                     /*isStore=*/true, false});
    } else {
        events.schedule(arrive, [&bank, t, line, arrive]() {
            bank.storeArrive(t, line, arrive);
        });
    }
    return true;
}

void
L2Cache::load(ThreadId t, Addr addr, Cycle now, bool prefetch)
{
    Addr line = lineAlign(addr, cfg.l2.lineBytes);
    if (corePorts[t] != nullptr) {
        corePorts[t]->load(line, bankOf(addr), now, prefetch);
        return;
    }
    L2Bank &bank = *banks[bankOf(addr)];
    Cycle arrive = now + cfg.l2.interconnectLatency;
    if (transitLane != nullptr) {
        transitLane->push(arrive, events.profileContext(),
                          TransitMsg{&bank, line, t,
                                     /*isStore=*/false, prefetch});
    } else {
        events.schedule(arrive, [&bank, t, line, arrive, prefetch]() {
            bank.loadArrive(t, line, arrive, prefetch);
        });
    }
}

void
L2Cache::tick(Cycle now)
{
    for (auto &bank : banks)
        bank->tick(now);
}

Cycle
L2Cache::nextWork(Cycle now) const
{
    Cycle next = kCycleMax;
    for (const auto &bank : banks)
        next = std::min(next, bank->nextWork(now));
    return next;
}

bool
L2Cache::quiesced() const
{
    for (const auto &bank : banks) {
        if (!bank->quiesced())
            return false;
    }
    return true;
}

bool
L2Cache::threadHasWork(ThreadId t) const
{
    for (const auto &bank : banks) {
        if (bank->threadHasWork(t))
            return true;
    }
    return false;
}

double
L2Cache::tagUtilization(Cycle window) const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += bank->tagArray().util().utilization(window);
    return sum / static_cast<double>(banks.size());
}

double
L2Cache::dataUtilization(Cycle window) const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += bank->dataArray().util().utilization(window);
    return sum / static_cast<double>(banks.size());
}

double
L2Cache::busUtilization(Cycle window) const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += bank->dataBus().util().utilization(window);
    return sum / static_cast<double>(banks.size());
}

double
L2Cache::tagBusyMean() const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += static_cast<double>(bank->tagArray().util().busyCycles());
    return sum / static_cast<double>(banks.size());
}

double
L2Cache::dataBusyMean() const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += static_cast<double>(
            bank->dataArray().util().busyCycles());
    return sum / static_cast<double>(banks.size());
}

double
L2Cache::busBusyMean() const
{
    double sum = 0.0;
    for (const auto &bank : banks)
        sum += static_cast<double>(bank->dataBus().util().busyCycles());
    return sum / static_cast<double>(banks.size());
}

std::uint64_t
L2Cache::readCount(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks)
        n += bank->readCount(t);
    return n;
}

std::uint64_t
L2Cache::writeCount(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks)
        n += bank->writeCount(t);
    return n;
}

std::uint64_t
L2Cache::missCount(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks)
        n += bank->threadMissCount(t);
    return n;
}

std::uint64_t
L2Cache::storesTotal(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks)
        n += bank->sgb(t).storesTotal();
    return n;
}

std::uint64_t
L2Cache::storesGathered(ThreadId t) const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks)
        n += bank->sgb(t).storesGathered();
    return n;
}

void
L2Cache::setBandwidthShare(ThreadId t, double phi)
{
    for (auto &bank : banks)
        bank->setBandwidthShare(t, phi);
}

} // namespace vpc
