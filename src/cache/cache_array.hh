/**
 * @file
 * Set-associative tag/state storage shared by the L1 and L2 models.
 *
 * CacheArray tracks tags, validity, dirtiness, per-line owning thread
 * and LRU ordering; a ReplacementPolicy chooses victims.  Timing is
 * modeled elsewhere (SharedResource / L1 latency) -- this class is the
 * functional state only.
 *
 * Storage is structure-of-arrays (DESIGN.md 5e): contiguous per-line
 * tag and LRU-stamp words plus per-set packed valid/dirty bitmask
 * words and per-(thread, set) ownership way masks, so lookup() is a
 * stride-1 tag scan and victim selection is bitmask arithmetic over
 * incrementally maintained occupancy state — no per-fill recount and
 * no virtual call on the fill path.  The virtual ReplacementPolicy
 * interface is retained as the debug/verify oracle: the fill path
 * dispatches on PolicyKind instead, and the differential test
 * (tests/cache/soa_oracle_test.cc) proves both agree on every
 * replacement decision.
 */

#ifndef VPC_CACHE_CACHE_ARRAY_HH
#define VPC_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/vec.hh"

namespace vpc
{

/**
 * One cache line's bookkeeping state, as seen by the replacement
 * oracle and the verify layer.  The array itself no longer stores
 * lines in this shape; setLines() materializes them on demand.
 */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    ThreadId owner = kInvalidThread;
    std::uint64_t lastUse = 0; //!< LRU timestamp (higher = more recent)
};

class ReplacementPolicy;

/**
 * Dispatch tag for the devirtualized fill path.  CacheArray::insert
 * switches on the installed policy's kind instead of making a virtual
 * victim() call; Other falls back to the virtual oracle (custom test
 * policies).
 */
enum class PolicyKind
{
    Other,
    Lru,
    Vpc,
    GlobalOccupancy,
};

/** Result of an insert: what was evicted, if anything. */
struct Eviction
{
    bool valid = false;   //!< a valid line was displaced
    bool dirty = false;   //!< ... and it was dirty (needs writeback)
    Addr lineAddr = 0;    //!< address of the displaced line
    ThreadId owner = kInvalidThread;
};

/** Functional set-associative array with pluggable replacement. */
class CacheArray
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity (at most 64: way masks are one word)
     * @param line_bytes line size (power of two)
     * @param policy victim selection; takes ownership
     * @param index_shift line-number bits to discard before set
     *        indexing: a bank of a 2^n-way interleaved cache only
     *        sees every 2^n-th line, so those bits are constant and
     *        must not select the set (they would leave all but
     *        1/2^n of the sets unused)
     */
    CacheArray(std::uint64_t sets, unsigned ways, unsigned line_bytes,
               std::unique_ptr<ReplacementPolicy> policy,
               unsigned index_shift = 0);

    ~CacheArray();

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;
    CacheArray(CacheArray &&) = default;
    CacheArray &operator=(CacheArray &&) = default;

    /**
     * Probe for @p addr.
     *
     * @param addr byte address
     * @param touch update LRU state on hit
     * @param t thread performing the access (LRU bookkeeping)
     * @return true on hit
     */
    bool
    lookup(Addr addr, bool touch, ThreadId t)
    {
        (void)t;
        std::uint64_t s = setIndex(addr);
        Addr tag = tagOf(addr);
        // Way-parallel tag compare gated by the set's valid mask (the
        // tag plane is padded so whole-vector loads never overread).
        // At most one valid way can match, so the lowest set bit is
        // the scalar scan's first hit.
        std::uint64_t eq =
            vec::eqMask64(&tags_[s * ways_], ways_, tag) &
            validMask_[s];
        if (eq != 0) {
            if (touch) {
                stamps_[s * ways_ + ctz64(eq)] = ++useClock;
                hits.inc();
            }
            return true;
        }
        if (touch)
            misses.inc();
        return false;
    }

    /**
     * Hint the host prefetcher at the set that will service @p addr.
     * The L2 tag/stamp planes are megabytes, so the tag-pipeline
     * completion that runs several simulated cycles after admission
     * takes a host cache miss on its first touch of the set's row;
     * issuing the prefetch when the request is admitted overlaps that
     * miss with the intervening simulation work.  Observe-only: no
     * model state changes.
     */
    void
    prefetchSet(Addr addr) const
    {
        std::uint64_t s = setIndex(addr);
        __builtin_prefetch(&tags_[s * ways_]);
        __builtin_prefetch(&stamps_[s * ways_]);
        __builtin_prefetch(&validMask_[s]);
    }

    /**
     * Install the line containing @p addr, selecting a victim via the
     * replacement policy.
     *
     * @param addr byte address
     * @param t owning thread
     * @param dirty install in dirty state (write-allocate merge)
     * @return eviction information for writeback handling
     */
    Eviction insert(Addr addr, ThreadId t, bool dirty);

    /** Mark the line holding @p addr dirty. @return false on miss. */
    bool markDirty(Addr addr, ThreadId t);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(Addr addr);

    /** @return number of valid lines owned by thread @p t in the set
     *          holding @p addr. */
    unsigned setOccupancy(Addr addr, ThreadId t) const;

    /** @return total valid lines owned by thread @p t. */
    std::uint64_t occupancy(ThreadId t) const;

    /**
     * @return the incrementally tracked line count for thread @p t.
     *
     * Maintained alongside every insert/evict/invalidate; the verify
     * layer cross-checks it against occupancy()'s full array walk to
     * prove the bookkeeping never drifts from the actual ownership
     * state (capacity conservation).
     */
    std::uint64_t trackedOccupancy(ThreadId t) const;

    /**
     * @return the lines of set @p index, materialized from the packed
     * state (verify-layer inspection and the replacement oracle).
     * The span aliases a scratch buffer: it is valid until the next
     * setLines() call or insert() on this array.
     */
    std::span<const CacheLine> setLines(std::uint64_t index) const;

    /**
     * Observe-only tap invoked on every insert, before the victim
     * line is overwritten: (set lines, requesting thread, victim
     * way).  The VPC capacity auditor uses it to check conditions
     * 1 and 2 of Section 4.2 on each replacement decision, and the
     * SoA differential test uses it to replay every decision through
     * the virtual-policy oracle.
     */
    using VictimAudit =
        std::function<void(std::span<const CacheLine>, ThreadId,
                           unsigned)>;

    /** Install (or clear, with nullptr) the victim audit tap. */
    void setVictimAudit(VictimAudit fn) { victimAudit = std::move(fn); }

    /**
     * @name Fault-injection hooks
     *
     * faultFlipOwner() reassigns the first valid line found to thread
     * @p to without touching the tracked occupancy counters, breaking
     * capacity conservation on purpose.  faultForceNextVictim() makes
     * the next insert evict way @p way regardless of what the
     * replacement policy says, violating the Section 4.2 victim
     * conditions.  Both exist so the auditors can be proven live.
     */
    /// @{
    bool faultFlipOwner(ThreadId to);
    void faultForceNextVictim(unsigned way) { forcedVictim = way; }
    /// @}

    /** @return number of sets. */
    std::uint64_t numSets() const { return sets_; }

    /** @return associativity. */
    unsigned numWays() const { return ways_; }

    /** @return line size in bytes. */
    unsigned lineBytes() const { return lineBytes_; }

    /** @return the replacement policy (for share updates). */
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** @return hits observed (touched lookups only). */
    std::uint64_t hitCount() const { return hits.value(); }

    /** @return misses observed (touched lookups only). */
    std::uint64_t missCount() const { return misses.value(); }

  private:
    static unsigned
    ctz64(std::uint64_t m)
    {
        return static_cast<unsigned>(__builtin_ctzll(m));
    }

    // sets_ and lineBytes_ are validated powers of two, so indexing
    // is pure shift/mask -- no 64-bit division on the lookup path.
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> (lineShift_ + indexShift_)) & (sets_ - 1);
    }

    Addr
    tagOf(Addr addr) const
    {
        return addr >> (lineShift_ + indexShift_ + setShift_);
    }

    /** Way mask with one bit per way of the (<= 64-way) set. */
    std::uint64_t
    fullMask() const
    {
        return ways_ == 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << ways_) - 1;
    }

    /** @return owner-way mask of (thread, set), 0 if untracked. */
    std::uint64_t
    ownerMask(ThreadId t, std::uint64_t s) const
    {
        return t < maskThreads_ ? ownerWays_[t * sets_ + s] : 0;
    }

    /** Grow the per-thread ownership mask plane to cover thread t. */
    void ensureMaskThread(ThreadId t);

    /** Way with the smallest LRU stamp among @p mask; @p mask != 0. */
    unsigned minStampWay(std::uint64_t s, std::uint64_t mask) const;

    /** Devirtualized victim choice; must match policy_->victim(). */
    unsigned chooseVictim(std::uint64_t s, ThreadId requester);

    void bumpOcc(ThreadId t, std::int64_t delta);

    std::uint64_t sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned indexShift_;
    unsigned lineShift_ = 0; //!< log2(lineBytes_)
    unsigned setShift_ = 0;  //!< log2(sets_)
    std::unique_ptr<ReplacementPolicy> policy_;
    /** Devirtualized dispatch tag derived from the policy. */
    PolicyKind kind_ = PolicyKind::Other;

    //! @name Structure-of-arrays line state
    //! Per-line words, set-major: line (s, w) sits at s * ways_ + w.
    /// @{
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> stamps_;  //!< LRU: higher = more recent
    std::vector<ThreadId> owners_;
    /// @}
    //! Per-set packed state words, bit w = way w.
    /// @{
    std::vector<std::uint64_t> validMask_;
    std::vector<std::uint64_t> dirtyMask_;
    /// @}
    /**
     * Ownership way masks, thread-major: bit w of
     * ownerWays_[t * sets_ + s] is set iff line (s, w) is valid and
     * owned by t.  popcount is the set occupancy the VPC capacity
     * manager recounted per fill in the AoS layout; condition 1's
     * eligible set is the union of over-quota threads' masks.  The
     * plane grows on demand as new thread ids insert.
     */
    std::vector<std::uint64_t> ownerWays_;
    ThreadId maskThreads_ = 0; //!< threads covered by ownerWays_

    std::uint64_t useClock = 0;
    std::vector<std::uint64_t> occTracked_;
    /** Scratch backing setLines() materialization. */
    mutable std::vector<CacheLine> lineScratch_;
    VictimAudit victimAudit;
    static constexpr unsigned kNoForcedVictim = ~0u;
    unsigned forcedVictim = kNoForcedVictim;
    Counter hits;
    Counter misses;
};

} // namespace vpc

#endif // VPC_CACHE_CACHE_ARRAY_HH
