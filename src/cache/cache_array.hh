/**
 * @file
 * Set-associative tag/state storage shared by the L1 and L2 models.
 *
 * CacheArray tracks tags, validity, dirtiness, per-line owning thread
 * and LRU ordering; a ReplacementPolicy chooses victims.  Timing is
 * modeled elsewhere (SharedResource / L1 latency) -- this class is the
 * functional state only.
 */

#ifndef VPC_CACHE_CACHE_ARRAY_HH
#define VPC_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** One cache line's bookkeeping state. */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    ThreadId owner = kInvalidThread;
    std::uint64_t lastUse = 0; //!< LRU timestamp (higher = more recent)
};

class ReplacementPolicy;

/** Result of an insert: what was evicted, if anything. */
struct Eviction
{
    bool valid = false;   //!< a valid line was displaced
    bool dirty = false;   //!< ... and it was dirty (needs writeback)
    Addr lineAddr = 0;    //!< address of the displaced line
    ThreadId owner = kInvalidThread;
};

/** Functional set-associative array with pluggable replacement. */
class CacheArray
{
  public:
    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     * @param line_bytes line size (power of two)
     * @param policy victim selection; takes ownership
     * @param index_shift line-number bits to discard before set
     *        indexing: a bank of a 2^n-way interleaved cache only
     *        sees every 2^n-th line, so those bits are constant and
     *        must not select the set (they would leave all but
     *        1/2^n of the sets unused)
     */
    CacheArray(std::uint64_t sets, unsigned ways, unsigned line_bytes,
               std::unique_ptr<ReplacementPolicy> policy,
               unsigned index_shift = 0);

    ~CacheArray();

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;
    CacheArray(CacheArray &&) = default;

    /**
     * Probe for @p addr.
     *
     * @param addr byte address
     * @param touch update LRU state on hit
     * @param t thread performing the access (LRU bookkeeping)
     * @return true on hit
     */
    bool lookup(Addr addr, bool touch, ThreadId t);

    /**
     * Install the line containing @p addr, selecting a victim via the
     * replacement policy.
     *
     * @param addr byte address
     * @param t owning thread
     * @param dirty install in dirty state (write-allocate merge)
     * @return eviction information for writeback handling
     */
    Eviction insert(Addr addr, ThreadId t, bool dirty);

    /** Mark the line holding @p addr dirty. @return false on miss. */
    bool markDirty(Addr addr, ThreadId t);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(Addr addr);

    /** @return number of valid lines owned by thread @p t in the set
     *          holding @p addr. */
    unsigned setOccupancy(Addr addr, ThreadId t) const;

    /** @return total valid lines owned by thread @p t. */
    std::uint64_t occupancy(ThreadId t) const;

    /**
     * @return the incrementally tracked line count for thread @p t.
     *
     * Maintained alongside every insert/evict/invalidate; the verify
     * layer cross-checks it against occupancy()'s full array walk to
     * prove the bookkeeping never drifts from the actual ownership
     * state (capacity conservation).
     */
    std::uint64_t trackedOccupancy(ThreadId t) const;

    /** @return the lines of set @p index (verify-layer inspection). */
    std::span<const CacheLine>
    setLines(std::uint64_t index) const
    {
        return {data.data() + index * ways_, ways_};
    }

    /**
     * Observe-only tap invoked on every insert, before the victim
     * line is overwritten: (set lines, requesting thread, victim
     * way).  The VPC capacity auditor uses it to check conditions
     * 1 and 2 of Section 4.2 on each replacement decision.
     */
    using VictimAudit =
        std::function<void(std::span<const CacheLine>, ThreadId,
                           unsigned)>;

    /** Install (or clear, with nullptr) the victim audit tap. */
    void setVictimAudit(VictimAudit fn) { victimAudit = std::move(fn); }

    /**
     * @name Fault-injection hooks
     *
     * faultFlipOwner() reassigns the first valid line found to thread
     * @p to without touching the tracked occupancy counters, breaking
     * capacity conservation on purpose.  faultForceNextVictim() makes
     * the next insert evict way @p way regardless of what the
     * replacement policy says, violating the Section 4.2 victim
     * conditions.  Both exist so the auditors can be proven live.
     */
    /// @{
    bool faultFlipOwner(ThreadId to);
    void faultForceNextVictim(unsigned way) { forcedVictim = way; }
    /// @}

    /** @return number of sets. */
    std::uint64_t numSets() const { return sets_; }

    /** @return associativity. */
    unsigned numWays() const { return ways_; }

    /** @return line size in bytes. */
    unsigned lineBytes() const { return lineBytes_; }

    /** @return the replacement policy (for share updates). */
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** @return hits observed (touched lookups only). */
    std::uint64_t hitCount() const { return hits.value(); }

    /** @return misses observed (touched lookups only). */
    std::uint64_t missCount() const { return misses.value(); }

  private:
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    std::span<CacheLine> setOf(Addr addr);
    std::span<const CacheLine> setOf(Addr addr) const;
    void bumpOcc(ThreadId t, std::int64_t delta);

    std::uint64_t sets_;
    unsigned ways_;
    unsigned lineBytes_;
    unsigned indexShift_;
    std::unique_ptr<ReplacementPolicy> policy_;
    //! All lines, flat: set s occupies [s * ways_, (s + 1) * ways_).
    //! One contiguous block keeps a set lookup to a single cache-line
    //! touch instead of a per-set heap indirection.
    std::vector<CacheLine> data;
    std::uint64_t useClock = 0;
    std::vector<std::uint64_t> occTracked_;
    VictimAudit victimAudit;
    static constexpr unsigned kNoForcedVictim = ~0u;
    unsigned forcedVictim = kNoForcedVictim;
    Counter hits;
    Counter misses;
};

} // namespace vpc

#endif // VPC_CACHE_CACHE_ARRAY_HH
