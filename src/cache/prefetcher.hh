/**
 * @file
 * Per-thread stride prefetcher.
 *
 * The paper disables the 970's prefetchers and names "VPC supported
 * prefetching" as future work; it also lists "prioritizing
 * demand-fetches over prefetches" as a reordering optimization the
 * VPC arbiter's intra-thread buffer can implement without disturbing
 * bandwidth guarantees.  This module provides both pieces: a classic
 * reference-prediction stride prefetcher observing the L1 miss stream,
 * and prefetch-tagged requests that the arbiters service only behind
 * the same thread's demand reads.
 *
 * Prefetches consume the issuing thread's own bandwidth shares, so a
 * thread's prefetch aggressiveness cannot degrade other threads'
 * QoS -- the property that makes prefetching admissible in a VPC
 * system.  Note the paper's performance-monotonicity caveat: extra
 * bandwidth can increase prefetch volume and, through pollution,
 * occasionally lower the thread's own performance (Section 4.3);
 * bench_ablate_prefetch demonstrates both sides.
 */

#ifndef VPC_CACHE_PREFETCHER_HH
#define VPC_CACHE_PREFETCHER_HH

#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** Detects strided miss streams and proposes prefetch addresses. */
class StridePrefetcher
{
  public:
    /**
     * @param cfg tuning knobs
     * @param line_bytes cache line size (stride granularity)
     */
    StridePrefetcher(const PrefetchConfig &cfg, unsigned line_bytes);

    /**
     * Observe a demand miss and propose prefetch candidates.
     *
     * @param line_addr the missing line
     * @return line addresses to prefetch (empty while training or
     *         when disabled)
     */
    std::vector<Addr> observeMiss(Addr line_addr);

    /** @return prefetch addresses proposed so far. */
    std::uint64_t issuedCount() const { return issued.value(); }

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        unsigned confirmations = 0;
        std::uint64_t lastUse = 0;
    };

    PrefetchConfig cfg;
    unsigned lineBytes;
    std::vector<Stream> streams;
    std::uint64_t useClock = 0;
    Counter issued;
};

} // namespace vpc

#endif // VPC_CACHE_PREFETCHER_HH
