#include "cache/vpc_controller.hh"

#include "sim/logging.hh"

namespace vpc
{

VpcController::VpcController(L2Cache &l2_, unsigned num_threads)
    : l2(l2_), regs(num_threads)
{}

bool
VpcController::wouldOverAllocate(ThreadId t,
                                 const VpcConfigRegister &reg) const
{
    double tag = reg.phiTag, data = reg.phiData, bus = reg.phiBus;
    double beta = reg.beta;
    for (ThreadId i = 0; i < regs.size(); ++i) {
        if (i == t)
            continue;
        tag += regs[i].phiTag;
        data += regs[i].phiData;
        bus += regs[i].phiBus;
        beta += regs[i].beta;
    }
    constexpr double kTol = 1.0 + 1e-9;
    return tag > kTol || data > kTol || bus > kTol || beta > kTol;
}

bool
VpcController::writeRegister(ThreadId t, const VpcConfigRegister &reg)
{
    if (t >= regs.size())
        vpc_panic("VPC register write for invalid thread {}", t);
    auto in_range = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (!in_range(reg.phiTag) || !in_range(reg.phiData) ||
        !in_range(reg.phiBus) || !in_range(reg.beta)) {
        return false;
    }
    if (wouldOverAllocate(t, reg))
        return false;

    regs[t] = reg;
    for (unsigned b = 0; b < l2.numBanks(); ++b) {
        l2.bank(b).setResourceShares(t, reg.phiTag, reg.phiData,
                                     reg.phiBus);
        l2.bank(b).setCapacityShare(t, reg.beta);
    }
    return true;
}

const VpcConfigRegister &
VpcController::readRegister(ThreadId t) const
{
    return regs.at(t);
}

namespace
{

double
unallocated(const std::vector<VpcConfigRegister> &regs,
            double VpcConfigRegister::*field)
{
    double sum = 0.0;
    for (const VpcConfigRegister &r : regs)
        sum += r.*field;
    double rest = 1.0 - sum;
    return rest < 0.0 ? 0.0 : rest;
}

} // namespace

double
VpcController::unallocatedTag() const
{
    return unallocated(regs, &VpcConfigRegister::phiTag);
}

double
VpcController::unallocatedData() const
{
    return unallocated(regs, &VpcConfigRegister::phiData);
}

double
VpcController::unallocatedBus() const
{
    return unallocated(regs, &VpcConfigRegister::phiBus);
}

double
VpcController::unallocatedCapacity() const
{
    return unallocated(regs, &VpcConfigRegister::beta);
}

} // namespace vpc
