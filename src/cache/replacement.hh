/**
 * @file
 * Replacement policies: global LRU and the VPC Capacity Manager.
 *
 * The VPC Capacity Manager (Section 4.2) gives thread i a virtual
 * private cache with the same number of sets as the shared cache and at
 * least beta_i * ways cache ways.  On a fill its replacement policy
 * picks, from the destination set:
 *
 *   1) the LRU line owned by a thread j occupying *more* than
 *      beta_j * ways of the set (taking it cannot drop j below its
 *      allocation, and that line would not have been resident in j's
 *      equivalent private cache anyway); else
 *   2) the requester's own LRU line (all threads sit exactly at their
 *      allocations, so this matches the private-cache replacement).
 *
 * Fairness refinement: when several threads are over-allocation, we
 * choose the globally least-recently-used line among their lines,
 * which distributes the unallocated/excess ways toward threads with
 * recent reuse.
 */

#ifndef VPC_CACHE_REPLACEMENT_HH
#define VPC_CACHE_REPLACEMENT_HH

#include <span>
#include <string>

#include "cache/cache_array.hh"
#include "sim/types.hh"

namespace vpc
{

/** Chooses a victim way within one set. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /**
     * Select the victim way for a fill by @p requester.
     *
     * @param set the destination set's lines
     * @param requester the filling thread
     * @return index of the way to replace
     */
    virtual unsigned victim(std::span<const CacheLine> set,
                            ThreadId requester) const = 0;

    /**
     * Bookkeeping hooks: the owning CacheArray reports every line
     * installed for / taken from a thread, so policies that partition
     * on whole-cache occupancy can track it incrementally.
     */
    virtual void onInsert(ThreadId owner) { (void)owner; }
    virtual void onEvict(ThreadId owner) { (void)owner; }

    /**
     * @return the dispatch tag CacheArray uses to devirtualize the
     * fill path.  Policies returning anything but Other promise that
     * CacheArray's packed-mask victim computation is decision-for-
     * decision identical to their virtual victim() — the SoA
     * differential test enforces it.
     */
    virtual PolicyKind kind() const { return PolicyKind::Other; }

    /** @return a short display name. */
    virtual std::string name() const = 0;
};

/** Unpartitioned global LRU (thread-oblivious baseline). */
class LruReplacement : public ReplacementPolicy
{
  public:
    unsigned victim(std::span<const CacheLine> set,
                    ThreadId requester) const override;
    PolicyKind kind() const override { return PolicyKind::Lru; }
    std::string name() const override { return "LRU"; }
};

/**
 * A *flexible* whole-cache capacity manager of the kind the paper
 * contrasts with the VPC Capacity Manager (Section 4.3): it partitions
 * by each thread's occupancy of the entire cache rather than by ways
 * within each set.  Victims come from threads holding more than
 * beta_j of all cache lines; within the set the globally LRU such
 * line goes, else plain LRU.
 *
 * Flexibility cuts both ways, exactly as Section 4.3 argues: a thread
 * whose working set concentrates in a few hot sets may use all the
 * ways of those sets (better average performance than a way quota),
 * but nothing stops another thread from taking every way of one
 * particular set while staying under its whole-cache quota -- so the
 * per-set guarantee, and with it performance monotonicity, is lost.
 * bench_ablate_flexible compares the two.
 */
class GlobalOccupancyManager : public ReplacementPolicy
{
  public:
    /**
     * @param betas capacity share per thread; sum must be <= 1
     * @param total_lines capacity of the cache this policy manages
     */
    GlobalOccupancyManager(const std::vector<double> &betas,
                           std::uint64_t total_lines);

    unsigned victim(std::span<const CacheLine> set,
                    ThreadId requester) const override;
    void onInsert(ThreadId owner) override;
    void onEvict(ThreadId owner) override;
    PolicyKind kind() const override
    {
        return PolicyKind::GlobalOccupancy;
    }
    std::string name() const override { return "GlobalOccupancy"; }

    /** @return thread @p t's whole-cache line quota. */
    std::uint64_t quota(ThreadId t) const { return quotas.at(t); }

    /** @return thread @p t's tracked line occupancy. */
    std::uint64_t occupancy(ThreadId t) const
    {
        return occ.at(t);
    }

    /** @return all quotas (devirtualized fill path). */
    std::span<const std::uint64_t> quotaTable() const { return quotas; }

    /** @return all tracked occupancies (devirtualized fill path). */
    std::span<const std::uint64_t> occTable() const { return occ; }

  private:
    std::vector<std::uint64_t> quotas;
    std::vector<std::uint64_t> occ;
};

/** The paper's way-partitioning thread-aware policy. */
class VpcCapacityManager : public ReplacementPolicy
{
  public:
    /**
     * @param betas capacity share beta_i per thread; sum must be <= 1
     * @param ways shared-cache associativity the quotas apply to
     */
    VpcCapacityManager(const std::vector<double> &betas, unsigned ways);

    unsigned victim(std::span<const CacheLine> set,
                    ThreadId requester) const override;
    PolicyKind kind() const override { return PolicyKind::Vpc; }
    std::string name() const override { return "VPC"; }

    /** Update thread @p t's capacity share. */
    void setShare(ThreadId t, double beta);

    /** @return thread @p t's way quota (floor(beta_t * ways)). */
    unsigned quota(ThreadId t) const { return quotas.at(t); }

    /** @return all way quotas (devirtualized fill path). */
    std::span<const unsigned> quotaTable() const { return quotas; }

  private:
    std::vector<double> betas;
    std::vector<unsigned> quotas;
    unsigned ways;
};

} // namespace vpc

#endif // VPC_CACHE_REPLACEMENT_HH
