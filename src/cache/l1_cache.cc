#include "cache/l1_cache.hh"

#include "cache/replacement.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vpc
{

L1DCache::L1DCache(const L1Config &cfg_, ThreadId thread_,
                   EventQueue &events_)
    : cfg(cfg_), thread(thread_), events(events_),
      tags(cfg_.sizeBytes / (cfg_.ways * cfg_.lineBytes), cfg_.ways,
           cfg_.lineBytes, std::make_unique<LruReplacement>()),
      mshrs(cfg_.mshrs), prefetcher(cfg_.prefetch, cfg_.lineBytes)
{}

int
L1DCache::findMshr(Addr line_addr) const
{
    for (std::size_t i = 0; i < mshrs.size(); ++i) {
        if (mshrs[i].valid && mshrs[i].lineAddr == line_addr)
            return static_cast<int>(i);
    }
    return -1;
}

int
L1DCache::freeMshr() const
{
    for (std::size_t i = 0; i < mshrs.size(); ++i) {
        if (!mshrs[i].valid)
            return static_cast<int>(i);
    }
    return -1;
}

L1DCache::LoadResult
L1DCache::load(Addr addr, Cycle now, LoadCallback cb)
{
    if (probeTouch(addr)) {
        completeHit();
        scheduleHit(now, std::move(cb));
        return LoadResult::Hit;
    }
    return loadMiss(addr, now, std::move(cb));
}

L1DCache::LoadResult
L1DCache::loadMiss(Addr addr, Cycle now, LoadCallback cb)
{
    Addr line = lineAlign(addr, cfg.lineBytes);
    int idx = findMshr(line);
    if (idx >= 0) {
        // Secondary miss: merge with the outstanding fetch.
        merged.inc();
        if (mshrs[idx].prefetch) {
            // The prefetch was launched early enough to hide part of
            // the latency but not all of it.
            pfLateUseful.inc();
        }
        mshrs[idx].waiters.push_back(std::move(cb));
        // Secondary misses still train the prefetcher so a stream
        // keeps advancing once its own prefetches are in flight.
        maybePrefetch(line, now);
        return LoadResult::Miss;
    }

    idx = freeMshr();
    if (idx < 0) {
        blocked.inc();
        return LoadResult::Blocked;
    }

    misses.inc();
    mshrs[idx].valid = true;
    mshrs[idx].prefetch = false;
    mshrs[idx].lineAddr = line;
    mshrs[idx].waiters.clear();
    mshrs[idx].waiters.push_back(std::move(cb));
    if (!missHandler)
        vpc_panic("L1 miss with no miss handler installed");
    missHandler(line, now, false);
    maybePrefetch(line, now);
    return LoadResult::Miss;
}

void
L1DCache::maybePrefetch(Addr line_addr, Cycle now)
{
    for (Addr p : prefetcher.observeMiss(line_addr)) {
        if (wouldHit(p) || findMshr(p) >= 0)
            continue;
        int idx = freeMshr();
        if (idx < 0)
            break; // never displace demand capability
        mshrs[idx].valid = true;
        mshrs[idx].prefetch = true;
        mshrs[idx].lineAddr = p;
        mshrs[idx].waiters.clear();
        pfIssued.inc();
        VPC_DPRINTF(Prefetch, "[{}] t{} prefetch {:#x}", now, thread,
                    p);
        missHandler(p, now, true);
    }
}

bool
L1DCache::mshrPending(Addr addr) const
{
    return findMshr(lineAlign(addr, cfg.lineBytes)) >= 0;
}

bool
L1DCache::wouldHit(Addr addr) const
{
    // lookup() without touch has no LRU or statistics side effects,
    // but needs a non-const array reference; keep the cast local.
    return const_cast<CacheArray &>(tags).lookup(addr, false, thread);
}

void
L1DCache::store(Addr addr, Cycle now)
{
    (void)now;
    // Write-through, no-write-allocate: update the copy if present so
    // later loads hit current data; never allocate on a store miss.
    // The L1 is never dirty, so it produces no writebacks.
    tags.markDirty(addr, thread); // refreshes LRU; dirtiness is unused
}

void
L1DCache::fill(Addr line_addr, Cycle now)
{
    (void)now;
    int idx = findMshr(line_addr);
    if (idx < 0) {
        // A fill for a line with no MSHR can only be a duplicate; the
        // L2 sends one response per outstanding fetch, so this is a
        // protocol violation.
        vpc_panic("L1 fill for {:#x} with no matching MSHR", line_addr);
    }
    tags.insert(line_addr, thread, false);
    for (LoadCallback &cb : mshrs[idx].waiters)
        cb();
    mshrs[idx].valid = false;
    mshrs[idx].waiters.clear();
}

unsigned
L1DCache::mshrsInUse() const
{
    unsigned n = 0;
    for (const Mshr &m : mshrs) {
        if (m.valid)
            ++n;
    }
    return n;
}

} // namespace vpc
