#include "cache/prefetcher.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace vpc
{

StridePrefetcher::StridePrefetcher(const PrefetchConfig &cfg_,
                                   unsigned line_bytes)
    : cfg(cfg_), lineBytes(line_bytes), streams(cfg_.streams)
{
    if (cfg.enable && cfg.streams == 0)
        vpc_fatal("prefetcher enabled with zero streams");
}

std::vector<Addr>
StridePrefetcher::observeMiss(Addr line_addr)
{
    std::vector<Addr> out;
    if (!cfg.enable)
        return out;
    ++useClock;

    // 0. A repeated miss to a stream's current line (e.g. a merged
    //    secondary miss) is redundant: refresh recency, nothing more.
    for (Stream &s : streams) {
        if (s.valid && s.lastLine == line_addr) {
            s.lastUse = useClock;
            return out;
        }
    }

    // 1. A stream whose prediction matches: confirm and prefetch.
    for (Stream &s : streams) {
        if (!s.valid || s.stride == 0)
            continue;
        if (static_cast<std::int64_t>(line_addr) ==
            static_cast<std::int64_t>(s.lastLine) + s.stride) {
            s.lastLine = line_addr;
            s.lastUse = useClock;
            if (s.confirmations < cfg.confidence) {
                ++s.confirmations;
            }
            if (s.confirmations >= cfg.confidence) {
                for (unsigned d = 1; d <= cfg.degree; ++d) {
                    out.push_back(static_cast<Addr>(
                        static_cast<std::int64_t>(line_addr) +
                        s.stride * static_cast<std::int64_t>(d)));
                }
                issued.inc(out.size());
            }
            return out;
        }
    }

    // 2. A stream close enough to retrain (new stride from its last
    //    address).
    for (Stream &s : streams) {
        if (!s.valid)
            continue;
        std::int64_t delta = static_cast<std::int64_t>(line_addr) -
                             static_cast<std::int64_t>(s.lastLine);
        if (delta != 0 &&
            std::llabs(delta) <= 8 * static_cast<std::int64_t>(
                                         lineBytes)) {
            s.stride = delta;
            s.lastLine = line_addr;
            s.confirmations = 0;
            s.lastUse = useClock;
            return out;
        }
    }

    // 3. Allocate a stream (LRU victim).
    Stream *victim = &streams[0];
    for (Stream &s : streams) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    victim->valid = true;
    victim->lastLine = line_addr;
    victim->stride = 0;
    victim->confirmations = 0;
    victim->lastUse = useClock;
    return out;
}

} // namespace vpc
