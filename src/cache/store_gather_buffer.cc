#include "cache/store_gather_buffer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vpc
{

StoreGatherBuffer::StoreGatherBuffer(unsigned entries_,
                                     unsigned high_water)
    : entries(entries_), highWater(high_water)
{
    if (entries == 0)
        vpc_fatal("store gathering buffer needs at least one entry");
    if (highWater == 0 || highWater > entries)
        vpc_fatal("high-water mark {} invalid for {} entries",
                  highWater, entries);
    buffer.reserve(entries);
}

void
StoreGatherBuffer::reserve()
{
    if (full())
        vpc_panic("SGB reservation while full");
    ++reservations;
}

bool
StoreGatherBuffer::addStore(Addr line_addr, Cycle now)
{
    if (reservations == 0)
        vpc_panic("SGB store delivered without reservation");
    --reservations;
    total.inc();
    for (Entry &e : buffer) {
        if (e.lineAddr == line_addr) {
            gathered.inc();
            return true;
        }
    }
    buffer.push_back(Entry{line_addr, now});
    return false;
}

bool
StoreGatherBuffer::loadConflict(Addr line_addr) const
{
    for (const Entry &e : buffer) {
        if (e.lineAddr == line_addr)
            return true;
    }
    return false;
}

void
StoreGatherBuffer::flushThrough(Addr line_addr)
{
    // Newest matching entry and everything older must retire.
    for (std::size_t i = buffer.size(); i > 0; --i) {
        if (buffer[i - 1].lineAddr == line_addr) {
            flushCount = std::max<unsigned>(flushCount,
                                            static_cast<unsigned>(i));
            return;
        }
    }
}

void
StoreGatherBuffer::popRetire()
{
    if (buffer.empty())
        vpc_panic("SGB retire from empty buffer");
    buffer.pop_front();
    if (flushCount > 0)
        --flushCount;
}

} // namespace vpc
