/**
 * @file
 * Per-thread store gathering buffer (Section 3.1).
 *
 * Write-through L1 caches generate one L2 store per committed store
 * instruction; the gathering buffer merges stores to the same L2 line
 * so that, on average, only ~20% of stores require a separate L2 data
 * array access (Figure 7).  Policies implemented, as in the paper:
 *
 *  - merge incoming stores with an existing same-line entry;
 *  - retire-at-n: once occupancy reaches the high-water mark the buffer
 *    begins retiring stores to the L2, and loads lose their
 *    read-over-write bypass (RoW inversion) until occupancy drops back
 *    below the mark;
 *  - partial flush: a load that hits a buffered store forces that store
 *    and all older entries to retire before the load proceeds.
 */

#ifndef VPC_CACHE_STORE_GATHER_BUFFER_HH
#define VPC_CACHE_STORE_GATHER_BUFFER_HH

#include <optional>

#include "sim/ring.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** Gathers a thread's write-through stores in front of one L2 bank. */
class StoreGatherBuffer
{
  public:
    /**
     * @param entries buffer capacity
     * @param high_water retire-at-n threshold (n <= entries)
     */
    StoreGatherBuffer(unsigned entries, unsigned high_water);

    /** @return true if no entry (or reservation) is available. */
    bool full() const { return buffer.size() + reservations >= entries; }

    /** @return true if the buffer holds no stores. */
    bool empty() const { return buffer.empty(); }

    /** @return current number of gathered-line entries. */
    std::size_t occupancy() const { return buffer.size(); }

    /**
     * Reserve space for a store still in flight through the crossbar.
     * Counted against capacity so the core sees timely backpressure.
     */
    void reserve();

    /**
     * Deliver a store (releases one reservation).
     *
     * @param line_addr the store's L2 line address
     * @param now current cycle
     * @return true if the store was gathered into an existing entry
     */
    bool addStore(Addr line_addr, Cycle now);

    /** @return true if a buffered store targets @p line_addr. */
    bool loadConflict(Addr line_addr) const;

    /**
     * Partial flush: force the newest entry matching @p line_addr and
     * every older entry to retire before any load proceeds.
     */
    void flushThrough(Addr line_addr);

    /**
     * @return true while loads may bypass buffered stores (RoW
     * inversion at/above the high-water mark, Section 3.1).
     */
    bool loadsMayBypass() const { return buffer.size() < highWater; }

    /**
     * @return true if the retire policy wants to drain a store now.
     * Inline: the bank quiescence hint polls this for every thread
     * port on every executed cycle.
     */
    bool
    hasRetirable() const
    {
        return flushCount > 0 || buffer.size() >= highWater;
    }

    /** @return the line address of the oldest entry, if any. */
    std::optional<Addr>
    peekRetire() const
    {
        if (buffer.empty())
            return std::nullopt;
        return buffer.front().lineAddr;
    }

    /** Retire (remove) the oldest entry. @pre !empty(). */
    void popRetire();

    /** @return total stores delivered. */
    std::uint64_t storesTotal() const { return total.value(); }

    /** @return stores merged into an existing entry. */
    std::uint64_t storesGathered() const { return gathered.value(); }

  private:
    struct Entry
    {
        Addr lineAddr;
        Cycle firstStore;
    };

    unsigned entries;
    unsigned highWater;
    SmallRing<Entry> buffer;
    unsigned reservations = 0;
    unsigned flushCount = 0; //!< oldest entries that must retire
    Counter total;
    Counter gathered;
};

} // namespace vpc

#endif // VPC_CACHE_STORE_GATHER_BUFFER_HH
