/**
 * @file
 * Private write-through L1 data cache with MSHRs.
 *
 * Matches the baseline hierarchy (Section 3.1): write-through,
 * no-write-allocate, so every committed store is forwarded to the L2
 * (where it is gathered), and L1 load misses allocate an MSHR and fetch
 * the line from the L2.  Same-line misses merge into one outstanding
 * MSHR entry; the MSHR count bounds the thread's memory-level
 * parallelism (16 for the D-cache in Table 1).
 */

#ifndef VPC_CACHE_L1_CACHE_HH
#define VPC_CACHE_L1_CACHE_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/prefetcher.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fused_chain.hh"
#include "sim/stats.hh"

namespace vpc
{

/** One processor's private L1 D-cache. */
class L1DCache
{
  public:
    /** Invoked when a load's data is available at the core. */
    using LoadCallback = std::function<void()>;
    /** Invoked to fetch a line from the L2 (new primary miss). */
    using MissHandler =
        std::function<void(Addr line_addr, Cycle now, bool prefetch)>;

    enum class LoadResult
    {
        Hit,     //!< data in hit_latency cycles
        Miss,    //!< MSHR allocated or merged; callback fires on fill
        Blocked  //!< all MSHRs busy and no merge possible; retry later
    };

    /**
     * @param cfg L1 geometry and timing
     * @param thread owning hardware thread
     * @param events event queue for hit-latency callbacks
     */
    L1DCache(const L1Config &cfg, ThreadId thread, EventQueue &events);

    /** Install the L2-fetch path. */
    void setMissHandler(MissHandler h) { missHandler = std::move(h); }

    /**
     * Perform a load.
     *
     * @param addr byte address
     * @param now current cycle
     * @param cb completion callback (scheduled at hit latency on a hit,
     *        or when the L2 line returns on a miss)
     * @return hit/miss/blocked
     */
    LoadResult load(Addr addr, Cycle now, LoadCallback cb);

    /**
     * @name Split load path (the core's issue stage)
     *
     * The CPU probes once with probeTouch() — exactly the tag/LRU/
     * statistics effects of load()'s internal lookup — and then either
     * completes the hit itself (completeHit() plus its fused hit lane,
     * or scheduleHit() on the event path) or takes the miss path via
     * loadMiss(), which skips the redundant re-probe.  load() remains
     * the single-call form for standalone users.
     */
    /// @{
    /** Touching probe: @return hit, with load()'s lookup side effects. */
    bool probeTouch(Addr addr) { return tags.lookup(addr, true, thread); }

    /** Count a hit whose completion the caller delivers (fused lane). */
    void completeHit() { hits.inc(); }

    /** Schedule the unfused hit completion at the hit latency. */
    void
    scheduleHit(Cycle now, LoadCallback cb)
    {
        events.schedule(now + cfg.hitLatency, std::move(cb));
    }

    /** @return the constant hit latency (the fused lane's due offset). */
    Cycle hitLatency() const { return cfg.hitLatency; }

    /** load() for an address probeTouch() just missed: no re-probe. */
    LoadResult loadMiss(Addr addr, Cycle now, LoadCallback cb);
    /// @}

    /**
     * Perform a store (write-through, no-write-allocate).  Updates the
     * L1 copy if present; the caller forwards the store to the L2.
     */
    void store(Addr addr, Cycle now);

    /** L2 critical word arrived: fill the line, wake waiting loads. */
    void fill(Addr line_addr, Cycle now);

    /** Side-effect-free probe: would a load of @p addr hit? */
    bool wouldHit(Addr addr) const;

    /** @return true if a fetch of @p addr's line is in flight. */
    bool mshrPending(Addr addr) const;

    /** @return MSHR entries currently in use. */
    unsigned mshrsInUse() const;

    /** @return prefetch lines requested from the L2. */
    std::uint64_t prefetchesIssued() const { return pfIssued.value(); }

    /** @return demand misses that merged into a prefetch in flight. */
    std::uint64_t prefetchesLateUseful() const
    {
        return pfLateUseful.value();
    }

    /** @return hits / misses / blocked-load statistics. */
    std::uint64_t hitCount() const { return hits.value(); }
    std::uint64_t missCount() const { return misses.value(); }
    std::uint64_t mergedMissCount() const { return merged.value(); }
    std::uint64_t blockedCount() const { return blocked.value(); }

    /** @return the functional array (for tests). */
    const CacheArray &array() const { return tags; }

  private:
    struct Mshr
    {
        bool valid = false;
        bool prefetch = false; //!< allocated by the prefetcher
        Addr lineAddr = 0;
        std::vector<LoadCallback> waiters;
    };

    /** Feed the prefetcher and launch accepted prefetches. */
    void maybePrefetch(Addr line_addr, Cycle now);

    /** @return index of the MSHR tracking @p line_addr, or -1. */
    int findMshr(Addr line_addr) const;

    /** @return index of a free MSHR, or -1. */
    int freeMshr() const;

    L1Config cfg;
    ThreadId thread;
    EventQueue &events;
    CacheArray tags;
    std::vector<Mshr> mshrs;
    MissHandler missHandler;
    StridePrefetcher prefetcher;
    Counter hits;
    Counter misses;
    Counter merged;
    Counter blocked;
    Counter pfIssued;
    Counter pfLateUseful;
};

} // namespace vpc

#endif // VPC_CACHE_L1_CACHE_HH
