/**
 * @file
 * The VPC controller's software-visible control registers (Section 4).
 *
 * "The VPC controller ... has a set of control registers visible to
 * system software that specify a VPC configuration for each hardware
 * thread sharing the cache.  For each active thread, the control
 * registers specify a share of cache capacity (beta_i), and a share of
 * tag array, data array, and data bus bandwidths (phi_i).  In their
 * full generality, the mechanisms ... allow software to allocate each
 * of the three bandwidth resources independently (via separate
 * control registers)."
 *
 * This class implements that full generality: one register per thread
 * holding independent tag/data/bus bandwidth shares plus a capacity
 * share.  Writes are validated (no resource may be over-allocated
 * across threads) and take effect immediately on every bank's
 * arbiters and on the capacity manager; capacity reconfiguration is
 * lazy -- existing lines are redistributed by subsequent replacements,
 * which is exactly the low-overhead property the paper credits
 * thread-aware replacement with.
 */

#ifndef VPC_CACHE_VPC_CONTROLLER_HH
#define VPC_CACHE_VPC_CONTROLLER_HH

#include <vector>

#include "cache/l2_cache.hh"
#include "sim/types.hh"

namespace vpc
{

/** One thread's VPC configuration register. */
struct VpcConfigRegister
{
    double phiTag = 0.0;  //!< share of tag-array bandwidth
    double phiData = 0.0; //!< share of data-array bandwidth
    double phiBus = 0.0;  //!< share of data-bus bandwidth
    double beta = 0.0;    //!< share of cache ways

    /** Convenience: one phi for all three bandwidth resources. */
    static VpcConfigRegister
    uniform(double phi, double beta)
    {
        return VpcConfigRegister{phi, phi, phi, beta};
    }
};

/** Validated software interface to the VPC mechanisms. */
class VpcController
{
  public:
    /**
     * @param l2 the shared cache whose arbiters/capacity we control
     * @param num_threads hardware threads sharing the cache
     *
     * Registers start zeroed; threads receive only excess resources
     * until software writes an allocation.
     */
    VpcController(L2Cache &l2, unsigned num_threads);

    /**
     * Write thread @p t's configuration register.
     *
     * @return false (and change nothing) if any field is outside
     *         [0, 1] or the write would over-allocate any resource
     *         across threads
     */
    bool writeRegister(ThreadId t, const VpcConfigRegister &reg);

    /** @return thread @p t's current register value. */
    const VpcConfigRegister &readRegister(ThreadId t) const;

    /** @return unallocated share of the tag array, in [0, 1]. */
    double unallocatedTag() const;
    /** @return unallocated share of the data array, in [0, 1]. */
    double unallocatedData() const;
    /** @return unallocated share of the data bus, in [0, 1]. */
    double unallocatedBus() const;
    /** @return unallocated share of the cache ways, in [0, 1]. */
    double unallocatedCapacity() const;

    /** @return number of threads. */
    unsigned numThreads() const
    {
        return static_cast<unsigned>(regs.size());
    }

  private:
    /** @return true iff replacing regs[t] with @p reg over-allocates. */
    bool wouldOverAllocate(ThreadId t,
                           const VpcConfigRegister &reg) const;

    L2Cache &l2;
    std::vector<VpcConfigRegister> regs;
};

} // namespace vpc

#endif // VPC_CACHE_VPC_CONTROLLER_HH
