#include "cache/replacement.hh"

#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace vpc
{

namespace
{

/** Index of the invalid way, or the set size if all ways are valid. */
unsigned
firstInvalid(std::span<const CacheLine> set)
{
    for (unsigned w = 0; w < set.size(); ++w) {
        if (!set[w].valid)
            return w;
    }
    return static_cast<unsigned>(set.size());
}

} // namespace

unsigned
LruReplacement::victim(std::span<const CacheLine> set,
                       ThreadId requester) const
{
    (void)requester;
    unsigned inv = firstInvalid(set);
    if (inv < set.size())
        return inv;
    unsigned lru = 0;
    for (unsigned w = 1; w < set.size(); ++w) {
        if (set[w].lastUse < set[lru].lastUse)
            lru = w;
    }
    return lru;
}

GlobalOccupancyManager::GlobalOccupancyManager(
    const std::vector<double> &betas, std::uint64_t total_lines)
    : quotas(betas.size()), occ(betas.size(), 0)
{
    double sum = 0.0;
    for (std::size_t t = 0; t < betas.size(); ++t) {
        if (betas[t] < 0.0 || betas[t] > 1.0)
            vpc_fatal("capacity share {} out of [0,1]", betas[t]);
        sum += betas[t];
        quotas[t] = static_cast<std::uint64_t>(
            betas[t] * static_cast<double>(total_lines) + 1e-9);
    }
    if (sum > 1.0 + 1e-9)
        vpc_fatal("cache capacity over-allocated: sum(beta)={}", sum);
}

void
GlobalOccupancyManager::onInsert(ThreadId owner)
{
    if (owner < occ.size())
        ++occ[owner];
}

void
GlobalOccupancyManager::onEvict(ThreadId owner)
{
    if (owner < occ.size() && occ[owner] > 0)
        --occ[owner];
}

unsigned
GlobalOccupancyManager::victim(std::span<const CacheLine> set,
                               ThreadId requester) const
{
    unsigned inv = firstInvalid(set);
    if (inv < set.size())
        return inv;

    // Take the set-LRU line among threads over their *whole-cache*
    // quota; if nobody is over quota (possible with unallocated
    // capacity), fall back to plain LRU.  Note the absence of any
    // per-set protection: a thread within its global quota can still
    // lose every way of this particular set.
    unsigned best = static_cast<unsigned>(set.size());
    std::uint64_t best_use = std::numeric_limits<std::uint64_t>::max();
    for (unsigned w = 0; w < set.size(); ++w) {
        ThreadId j = set[w].owner;
        if (j >= occ.size() || occ[j] <= quotas[j])
            continue;
        if (set[w].lastUse < best_use) {
            best = w;
            best_use = set[w].lastUse;
        }
    }
    if (best < set.size())
        return best;
    return LruReplacement().victim(set, requester);
}

VpcCapacityManager::VpcCapacityManager(const std::vector<double> &betas_,
                                       unsigned ways_)
    : betas(betas_), quotas(betas_.size()), ways(ways_)
{
    double sum = 0.0;
    for (std::size_t t = 0; t < betas.size(); ++t) {
        if (betas[t] < 0.0 || betas[t] > 1.0)
            vpc_fatal("capacity share {} out of [0,1]", betas[t]);
        sum += betas[t];
        quotas[t] = static_cast<unsigned>(betas[t] * ways + 1e-9);
    }
    if (sum > 1.0 + 1e-9)
        vpc_fatal("cache capacity over-allocated: sum(beta)={}", sum);
}

void
VpcCapacityManager::setShare(ThreadId t, double beta)
{
    betas.at(t) = beta;
    quotas.at(t) = static_cast<unsigned>(beta * ways + 1e-9);
}

unsigned
VpcCapacityManager::victim(std::span<const CacheLine> set,
                           ThreadId requester) const
{
    unsigned inv = firstInvalid(set);
    if (inv < set.size())
        return inv;

    // Per-thread occupancy of this set.
    std::vector<unsigned> occ(quotas.size(), 0);
    for (const CacheLine &line : set) {
        if (line.owner < occ.size())
            ++occ[line.owner];
    }

    // Condition 1: LRU line among threads over their way allocation.
    // Globally-LRU selection across over-quota threads is the fairness
    // refinement distributing excess capacity.
    unsigned best = static_cast<unsigned>(set.size());
    std::uint64_t best_use = std::numeric_limits<std::uint64_t>::max();
    for (unsigned w = 0; w < set.size(); ++w) {
        ThreadId j = set[w].owner;
        if (j >= occ.size() || occ[j] <= quotas[j])
            continue;
        if (set[w].lastUse < best_use) {
            best = w;
            best_use = set[w].lastUse;
        }
    }
    if (best < set.size())
        return best;

    // Condition 2: every owner is exactly at (or under) its quota; take
    // the requester's own LRU line -- the same line a private cache
    // with beta_i of the ways would replace.
    best = static_cast<unsigned>(set.size());
    best_use = std::numeric_limits<std::uint64_t>::max();
    for (unsigned w = 0; w < set.size(); ++w) {
        if (set[w].owner != requester)
            continue;
        if (set[w].lastUse < best_use) {
            best = w;
            best_use = set[w].lastUse;
        }
    }
    if (best < set.size())
        return best;

    // The requester owns nothing and nobody is over quota: only
    // possible when lines are owned by an untracked/invalid thread.
    // Fall back to global LRU.
    vpc_warn("VPC capacity manager: falling back to global LRU");
    return LruReplacement().victim(set, requester);
}

} // namespace vpc
