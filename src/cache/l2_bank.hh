/**
 * @file
 * One bank of the shared L2 cache (Figure 2b of the paper).
 *
 * Request flow, mirroring Section 3.1:
 *
 *   core stores -> per-thread store gathering buffers
 *   core loads  -> per-thread load queues (checked against the SGB for
 *                  read-over-write dependences / RoW inversion)
 *   admission   -> round-robin across threads, line-conflict checked,
 *                  allocates a controller state machine (8 per thread)
 *   tag array   -> arbitrated; 4-cycle occupancy
 *   data array  -> arbitrated; 8-cycle reads, 16-cycle stores (ECC
 *                  read-modify-write), 8-cycle full-line fills
 *   data bus    -> arbitrated; 64B line over a 16B half-frequency bus
 *                  (8 core cycles; critical word after the first beat);
 *                  also carries fill data arriving from memory, so the
 *                  arbiter resolves array/memory collisions
 *   misses      -> per-thread private memory channel; on return the
 *                  state machine transfers the line to the core (bus)
 *                  and installs it (tag update + data write, with a
 *                  data-array read first when a dirty victim must be
 *                  written back).
 *
 * The three SharedResources each carry an arbiter built from the
 * configured policy (FCFS / RoW-FCFS / VPC), which is where the paper's
 * QoS mechanisms plug in.  The bank runs at 1/2 core frequency: it only
 * does work on even core cycles, and all resource occupancies are even
 * numbers of core cycles.
 */

#ifndef VPC_CACHE_L2_BANK_HH
#define VPC_CACHE_L2_BANK_HH

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arbiter/shared_resource.hh"
#include "cache/cache_array.hh"
#include "cache/store_gather_buffer.hh"
#include "mem/memory_controller.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fused_chain.hh"
#include "sim/ring.hh"
#include "sim/stats.hh"

namespace vpc
{

/** One address-interleaved bank of the shared L2. */
class L2Bank
{
  public:
    /**
     * Invoked when a load's critical word reaches the requesting core
     * (crossbar return latency included).
     */
    using ResponseHandler =
        std::function<void(ThreadId t, Addr line_addr)>;

    /**
     * Shard-parallel substitute for the response event: hands the
     * critical-word cycle to the kernel, which delivers it on the
     * requesting core's own queue.  Called from bank tick context.
     */
    using FillPort =
        std::function<void(ThreadId t, Addr line_addr, Cycle critical)>;

    /**
     * @param cfg full system configuration (L2 + QoS shares)
     * @param bank_index this bank's index
     * @param num_banks total banks (for set sizing)
     * @param num_threads hardware threads sharing the bank
     * @param events shared event queue
     * @param mem memory controller for misses and writebacks
     */
    L2Bank(const SystemConfig &cfg, unsigned bank_index,
           unsigned num_banks, unsigned num_threads,
           EventQueue &events, MemoryController &mem);

    /** Install the load-response path back to the cores. */
    void setResponseHandler(ResponseHandler h);

    /** Install the shard-parallel fill path (nullptr to remove). */
    void setFillPort(FillPort p);

    /**
     * @name Fused serial response lane
     *
     * The critical word always trails the bus grant by exactly
     * busBeatCycles and the response handler is a pure L1/core-state
     * write, so the lane replays the event path exactly from plain
     * (bank, thread, line) records — no closure.  Counted: the
     * sharded kernel delivers these as real fill events.  Serial
     * kernel only — with a fill port installed the lane is never
     * consulted.
     */
    /// @{
    struct RespMsg
    {
        L2Bank *bank;
        ThreadId thread;
        Addr lineAddr;
    };
    struct RespSink
    {
        void
        operator()(Cycle, const RespMsg &m) const
        {
            m.bank->deliverResponse(m.thread, m.lineAddr);
        }
    };
    using ResponseLane = DataLane<RespMsg, RespSink>;

    /** Route responses through @p lane (nullptr to revert). */
    void setResponseLane(ResponseLane *lane) { respLane = lane; }

    /** Invoke the response handler (a drained lane record's body). */
    void
    deliverResponse(ThreadId t, Addr line_addr)
    {
        if (respond)
            respond(t, line_addr);
    }
    /// @}

    /**
     * Reserve store-buffer space for a store entering the crossbar.
     *
     * @return false if thread @p t's gathering buffer is full (the
     *         core must retry)
     */
    bool tryReserveStore(ThreadId t);

    /** Deliver a store that completed crossbar transit. */
    void storeArrive(ThreadId t, Addr line_addr, Cycle now);

    /**
     * Deliver a store sent by a remote core shard: the admission
     * check already happened at the sender against its occupancy
     * view, so this reserves and delivers in one step (net-zero
     * reservations — occupancy evolves exactly as in the serial
     * reserve-then-arrive split).
     */
    void remoteStoreArrive(ThreadId t, Addr line_addr, Cycle now);

    /** Deliver a load that completed crossbar transit. */
    void loadArrive(ThreadId t, Addr line_addr, Cycle now,
                    bool prefetch = false);

    /** Advance the bank one core cycle. */
    void tick(Cycle now);

    /**
     * Quiescence hint (see Ticking::nextWork): earliest cycle >= now
     * at which tick() could do observable work.  Always a cycle on the
     * bank's even (half-frequency) grid, or kCycleMax when every
     * queue is empty and every resource is drained.
     */
    Cycle nextWork(Cycle now) const;

    /** @return true once every queue, buffer and state machine is idle.*/
    bool quiesced() const;

    /**
     * @return true while thread @p t has work anywhere in this bank:
     *         a queued load, gathered stores, an active controller
     *         state machine, or a request pending in any arbiter.
     *         The forward-progress watchdog uses this to tell a
     *         stalled thread from an idle one.
     */
    bool threadHasWork(ThreadId t) const;

    /** @name Resources (stats / tests) */
    /// @{
    SharedResource &tagArray() { return *tagRes; }
    SharedResource &dataArray() { return *dataRes; }
    SharedResource &dataBus() { return *busRes; }
    const SharedResource &tagArray() const { return *tagRes; }
    const SharedResource &dataArray() const { return *dataRes; }
    const SharedResource &dataBus() const { return *busRes; }
    /// @}

    /** @return the functional tag/data state. */
    const CacheArray &array() const { return tags; }
    CacheArray &array() { return tags; }

    /** @return thread @p t's store gathering buffer. */
    const StoreGatherBuffer &sgb(ThreadId t) const { return sgbs.at(t); }

    /**
     * Monotonic counter bumped whenever any thread's SGB occupancy
     * changes.  Lets the sharded kernel's occupancy-snapshot hook
     * skip its per-thread probe pass when nothing moved, instead of
     * probing every (thread, bank) pair twice per uncore cycle.
     */
    std::uint64_t sgbOccVersion() const { return sgbOccVersion_; }

    /** @return L2 read requests admitted for thread @p t. */
    std::uint64_t readCount(ThreadId t) const;

    /** @return L2 write requests admitted for thread @p t. */
    std::uint64_t writeCount(ThreadId t) const;

    /** @return L2 misses for thread @p t. */
    std::uint64_t threadMissCount(ThreadId t) const;

    /** @return high-water mark of the read-claim queue. */
    std::size_t readClaimHighWater() const { return rcqHighWater; }

    /** Update thread @p t's bandwidth share on all three arbiters. */
    void setBandwidthShare(ThreadId t, double phi);

    /**
     * Update thread @p t's bandwidth shares per resource (the "full
     * generality" interface of Section 4: independent control
     * registers for the tag array, data array and data bus).
     */
    void setResourceShares(ThreadId t, double phi_tag,
                           double phi_data, double phi_bus);

    /**
     * Update thread @p t's capacity share.  Takes effect through
     * subsequent replacements; resident lines are not flushed.
     * No-op (with a warning) when the bank runs unpartitioned LRU.
     */
    void setCapacityShare(ThreadId t, double beta);

  private:
    /** Controller state machine: one in-flight L2 request. */
    struct Sm
    {
        bool busy = false;
        ThreadId thread = 0;
        Addr lineAddr = 0;
        bool isWrite = false;
        bool isPrefetch = false;  //!< prefetch-generated load
        bool fill = false;        //!< processing a memory return
        bool victimDirty = false; //!< fill displaced a dirty line
        Addr victimAddr = 0;
        unsigned pendingOps = 0;  //!< outstanding parallel legs
    };

    /** A load waiting for controller admission. */
    struct PendingLoad
    {
        Addr lineAddr;
        bool prefetch;
    };

    /** Per-thread request state in front of the controller. */
    struct ThreadPort
    {
        StoreGatherBuffer *sgb = nullptr;
        SmallRing<PendingLoad> loadQueue;
        Counter reads;
        Counter writes;
        Counter misses;
    };

    /** One admission attempt from thread @p t. @return admitted. */
    bool tryAdmit(ThreadId t, Cycle now);

    /** Allocate a state machine for thread @p t, or -1 if none free. */
    int allocSm(ThreadId t);

    /** Release state machine @p sm_idx when its last leg completes. */
    void finishLeg(unsigned sm_idx);

    /** @return true if an active SM already handles @p line_addr. */
    bool lineConflict(Addr line_addr) const;

    /** Issue the miss to memory, or queue for retry if it is full. */
    void startMemAccess(unsigned sm_idx, Cycle now);

    /** Memory data returned for the SM's line: start the fill legs. */
    void memReturn(unsigned sm_idx, Cycle now);

    /** Tag-array access completed for @p sm_idx. */
    void tagDone(unsigned sm_idx, Cycle done);

    /** Data-array access completed for @p sm_idx. */
    void dataDone(unsigned sm_idx, Cycle done);

    /** Data-bus transfer completed for @p sm_idx. */
    void busDone(unsigned sm_idx, Cycle start, Cycle done);

    /** Enqueue an arbitration request for @p sm_idx on @p res. */
    void requestResource(SharedResource &res, unsigned sm_idx,
                         bool is_write, Cycle now);

    const SystemConfig &cfg;
    unsigned bankIndex;
    unsigned numThreads;
    EventQueue &events;
    MemoryController &mem;

    CacheArray tags;
    std::vector<StoreGatherBuffer> sgbs;
    std::uint64_t sgbOccVersion_ = 1; //!< see sgbOccVersion()
    std::vector<ThreadPort> ports;
    std::vector<Sm> sms;
    std::vector<unsigned> smsInUse; //!< per-thread active SM count

    std::unique_ptr<SharedResource> tagRes;
    std::unique_ptr<SharedResource> dataRes;
    std::unique_ptr<SharedResource> busRes;

    /** SM indices waiting to re-enter data-array arbitration because
     *  the read-claim queue was full. */
    SmallRing<unsigned> deferredData;
    /** SM indices waiting for memory transaction-buffer space. */
    SmallRing<unsigned> deferredMem;
    /** Dirty victim addresses waiting for memory write-buffer space,
     *  with the evicting thread. */
    SmallRing<std::pair<ThreadId, Addr>> deferredWb;

    std::size_t rcqOccupancy = 0;
    std::size_t rcqHighWater = 0;
    ThreadId admissionRR = 0;
    SeqNum nextSeq = 0;
    ResponseHandler respond;
    FillPort fillPort;
    ResponseLane *respLane = nullptr; //!< fused serial response path
};

} // namespace vpc

#endif // VPC_CACHE_L2_BANK_HH
