#include "core/cpu.hh"

#include "sim/logging.hh"

namespace vpc
{

Cpu::Cpu(const CoreConfig &cfg_, ThreadId thread_, Workload &workload_,
         L1DCache &l1_, L2Cache &l2_)
    : cfg(cfg_), thread(thread_), workload(workload_), l1(l1_),
      l2(l2_), rng(0xc0ffee + thread_, 0xabcd1234 + thread_),
      lsuRejectB_(cfg.lsuRejectProb)
{
    waitQ_.reserve(cfg.loadQueueEntries);
}

Cycle
Cpu::nextWork(Cycle now) const
{
    // Retire acts unless the ROB is empty or the head is a load still
    // in flight (a store head attempts an L2 write-through, a Done or
    // compute head retires — both observable).
    if (!rob.empty()) {
        const RobEntry &head = rob.front();
        if (head.op.kind != MicroOp::Kind::Load ||
            head.state == State::Done)
            return now;
    }
    // Issue scans for waiting loads; any such load consumes a port
    // and may draw from the RNG, even if it ends up rejected.
    if (!waitQ_.empty())
        return now;
    // Dispatch acts unless structurally blocked with the next op
    // already in the block buffer (an empty buffer means dispatch
    // would refill it, consuming workload state).
    if (rob.size() < cfg.robEntries) {
        if (fetchPos_ >= fetchLen_)
            return now;
        const MicroOp &head = fetchBlock_[fetchPos_];
        bool lq_full = head.kind == MicroOp::Kind::Load &&
                       loadsInRob >= cfg.loadQueueEntries;
        bool sq_full = head.kind == MicroOp::Kind::Store &&
                       storesInRob >= cfg.storeQueueEntries;
        if (!lq_full && !sq_full)
            return now;
    }
    return kCycleMax; // a load-completion event wakes the core
}

void
Cpu::tick(Cycle now)
{
    // Classic reverse pipeline order so data moves one stage per cycle.
    retireStage(now);
    issueStage(now);
    dispatchStage(now);
}

void
Cpu::retireStage(Cycle now)
{
    unsigned committed_stores = 0;
    for (unsigned i = 0; i < cfg.retireWidth && !rob.empty(); ++i) {
        RobEntry &head = rob.front();
        if (head.op.kind == MicroOp::Kind::Store) {
            if (committed_stores >= cfg.storeCommitWidth)
                break;
            // Write-through: the store must be accepted by the target
            // bank's gathering buffer before it can leave the machine.
            if (!l2.store(thread, head.op.addr, now)) {
                storeStalls.inc();
                break;
            }
            l1.store(head.op.addr, now);
            ++committed_stores;
            stores.inc();
            --storesInRob;
        } else if (head.op.kind == MicroOp::Kind::Load) {
            if (head.state != State::Done)
                break;
            loads.inc();
            --loadsInRob;
        } else if (head.state != State::Done) {
            break;
        }
        retired.inc();
        rob.pop_front();
    }
    oldestInRob = rob.empty() ? nextSeq : rob.front().seq;
}

bool
Cpu::depSatisfied(const RobEntry &entry) const
{
    if (!entry.op.dependsOnPrevLoad || entry.prevLoadSeq == 0)
        return true;
    if (entry.prevLoadSeq < oldestInRob)
        return true; // the producer already retired
    // ROB sequence numbers are contiguous (allocated at dispatch,
    // released only from the front), so the producer sits exactly
    // prevLoadSeq - front.seq slots in.
    return rob[entry.prevLoadSeq - rob.front().seq].state ==
           State::Done;
}

void
Cpu::issueStage(Cycle now)
{
    if (waitQ_.empty())
        return; // nothing issuable
    unsigned ports_used = 0;
    SeqNum base = rob.front().seq;
    // Walk the waiting-load list in program order, compacting out the
    // loads that issue; the ones that stay behind (dependence not yet
    // satisfied, LSU reject, MSHRs full) keep their relative order.
    std::size_t r = 0;
    std::size_t w = 0;
    for (; r < waitQ_.size(); ++r) {
        if (ports_used >= cfg.lsuPorts)
            break;
        RobEntry &e = rob[waitQ_[r] - base];
        if (!depSatisfied(e)) {
            waitQ_[w++] = waitQ_[r];
            continue;
        }
        ++ports_used;
        // One touching probe decides hit/miss up front.  This is
        // load()'s internal lookup hoisted above the reject draw: the
        // LRU touch only happens on a hit (where no RNG is consulted)
        // and a miss leaves the array untouched, so state and the RNG
        // sequence are identical to probing after the draw.
        bool hit = l1.probeTouch(e.op.addr);
        if (!hit && rng.chance(lsuRejectB_)) {
            // LSU reject on an L1 miss (LMQ allocation): the issue
            // slot is wasted and the load retries later, perturbing
            // the order loads reach the L2 and capping miss issue
            // bandwidth -- the 970 behaviour behind the Loads
            // benchmark's sub-100% utilization at >= 4 banks (Fig. 5).
            lsuRejects.inc();
            waitQ_[w++] = waitQ_[r];
            continue;
        }
        if (hit) {
            l1.completeHit();
            if (hitFused_)
                hitLane_.push(now + l1.hitLatency(), e.seq);
            else
                l1.scheduleHit(now, [this, seq = e.seq]() {
                    complete(seq);
                });
        } else if (l1.loadMiss(e.op.addr, now,
                               [this, seq = e.seq]() {
                                   complete(seq);
                               }) == L1DCache::LoadResult::Blocked) {
            // all MSHRs busy; slot wasted, retry later
            waitQ_[w++] = waitQ_[r];
            continue;
        }
        e.state = State::Issued;
    }
    if (w != r) {
        // Keep the unexamined tail (ports ran out before the end).
        while (r < waitQ_.size())
            waitQ_[w++] = waitQ_[r++];
        waitQ_.resize(w);
    }
}

void
Cpu::refillBlock()
{
    workload.nextBlock(std::span<MicroOp>(fetchBlock_));
    // Pre-decode the dependence flags into the side-array so the
    // dispatch loop reads a plain byte instead of re-inspecting ops.
    for (std::size_t i = 0; i < kFetchBlock; ++i)
        fetchDeps_[i] = fetchBlock_[i].dependsOnPrevLoad ? 1 : 0;
    fetchPos_ = 0;
    fetchLen_ = kFetchBlock;
}

void
Cpu::dispatchStage(Cycle now)
{
    (void)now;
    for (unsigned i = 0; i < cfg.dispatchWidth; ++i) {
        if (rob.size() >= cfg.robEntries)
            break;
        if (fetchPos_ >= fetchLen_)
            refillBlock();
        const MicroOp &head = fetchBlock_[fetchPos_];
        if (head.kind == MicroOp::Kind::Load &&
            loadsInRob >= cfg.loadQueueEntries) {
            break;
        }
        if (head.kind == MicroOp::Kind::Store &&
            storesInRob >= cfg.storeQueueEntries) {
            break;
        }

        bool was_empty = rob.empty();
        RobEntry &entry = rob.emplace_back();
        entry.op = head;
        entry.op.dependsOnPrevLoad = fetchDeps_[fetchPos_] != 0;
        ++fetchPos_;
        entry.seq = nextSeq++;
        entry.prevLoadSeq = lastLoadSeq;
        switch (entry.op.kind) {
          case MicroOp::Kind::Load:
            ++loadsInRob;
            waitQ_.push_back(entry.seq);
            lastLoadSeq = entry.seq;
            break;
          case MicroOp::Kind::Store:
            ++storesInRob;
            break;
          case MicroOp::Kind::Compute:
            // Non-memory work completes in a single cycle; it becomes
            // retirable on the next retire pass.
            entry.state = State::Done;
            break;
        }
        if (was_empty)
            oldestInRob = entry.seq;
    }
}

void
Cpu::complete(SeqNum seq)
{
    // Contiguous ROB sequence numbers make completion O(1): the entry
    // for seq, if still tracked, is exactly seq - front.seq slots in.
    SeqNum base = rob.empty() ? nextSeq : rob.front().seq;
    if (rob.empty() || seq < base || seq - base >= rob.size())
        vpc_panic("completion for unknown seq {}", seq);
    RobEntry &e = rob[seq - base];
    if (e.state != State::Issued)
        vpc_panic("completion for seq {} in state {}", seq,
                  static_cast<int>(e.state));
    e.state = State::Done;
}

} // namespace vpc
