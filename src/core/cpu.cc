#include "core/cpu.hh"

#include "sim/logging.hh"

namespace vpc
{

Cpu::Cpu(const CoreConfig &cfg_, ThreadId thread_, Workload &workload_,
         L1DCache &l1_, L2Cache &l2_)
    : cfg(cfg_), thread(thread_), workload(workload_), l1(l1_),
      l2(l2_), rng(0xc0ffee + thread_, 0xabcd1234 + thread_)
{}

void
Cpu::tick(Cycle now)
{
    // Classic reverse pipeline order so data moves one stage per cycle.
    retireStage(now);
    issueStage(now);
    dispatchStage(now);
}

void
Cpu::retireStage(Cycle now)
{
    unsigned committed_stores = 0;
    for (unsigned i = 0; i < cfg.retireWidth && !rob.empty(); ++i) {
        RobEntry &head = rob.front();
        if (head.op.kind == MicroOp::Kind::Store) {
            if (committed_stores >= cfg.storeCommitWidth)
                break;
            // Write-through: the store must be accepted by the target
            // bank's gathering buffer before it can leave the machine.
            if (!l2.store(thread, head.op.addr, now)) {
                storeStalls.inc();
                break;
            }
            l1.store(head.op.addr, now);
            ++committed_stores;
            stores.inc();
            --storesInRob;
        } else if (head.op.kind == MicroOp::Kind::Load) {
            if (head.state != State::Done)
                break;
            loads.inc();
            --loadsInRob;
        } else if (head.state != State::Done) {
            break;
        }
        retired.inc();
        rob.pop_front();
    }
    oldestInRob = rob.empty() ? nextSeq : rob.front().seq;
}

bool
Cpu::depSatisfied(const RobEntry &entry) const
{
    if (!entry.op.dependsOnPrevLoad || entry.prevLoadSeq == 0)
        return true;
    if (entry.prevLoadSeq < oldestInRob)
        return true; // the producer already retired
    for (const RobEntry &e : rob) {
        if (e.seq == entry.prevLoadSeq)
            return e.state == State::Done;
        if (e.seq > entry.prevLoadSeq)
            break;
    }
    return true; // producer no longer tracked; treat as complete
}

void
Cpu::issueStage(Cycle now)
{
    unsigned ports_used = 0;
    for (RobEntry &e : rob) {
        if (ports_used >= cfg.lsuPorts)
            break;
        if (e.op.kind != MicroOp::Kind::Load ||
            e.state != State::Waiting) {
            continue;
        }
        if (!depSatisfied(e))
            continue;
        ++ports_used;
        if (!l1.wouldHit(e.op.addr) &&
            rng.chance(cfg.lsuRejectProb)) {
            // LSU reject on an L1 miss (LMQ allocation): the issue
            // slot is wasted and the load retries later, perturbing
            // the order loads reach the L2 and capping miss issue
            // bandwidth -- the 970 behaviour behind the Loads
            // benchmark's sub-100% utilization at >= 4 banks (Fig. 5).
            lsuRejects.inc();
            continue;
        }
        L1DCache::LoadResult res =
            l1.load(e.op.addr, now,
                    [this, seq = e.seq]() { complete(seq); });
        if (res == L1DCache::LoadResult::Blocked)
            continue; // all MSHRs busy; slot wasted, retry later
        e.state = State::Issued;
    }
}

void
Cpu::dispatchStage(Cycle now)
{
    (void)now;
    for (unsigned i = 0; i < cfg.dispatchWidth; ++i) {
        if (rob.size() >= cfg.robEntries)
            break;
        if (!fetched)
            fetched = workload.next();
        if (fetched->kind == MicroOp::Kind::Load &&
            loadsInRob >= cfg.loadQueueEntries) {
            break;
        }
        if (fetched->kind == MicroOp::Kind::Store &&
            storesInRob >= cfg.storeQueueEntries) {
            break;
        }

        RobEntry entry;
        entry.op = *fetched;
        fetched.reset();
        entry.seq = nextSeq++;
        entry.prevLoadSeq = lastLoadSeq;
        switch (entry.op.kind) {
          case MicroOp::Kind::Load:
            ++loadsInRob;
            lastLoadSeq = entry.seq;
            break;
          case MicroOp::Kind::Store:
            ++storesInRob;
            break;
          case MicroOp::Kind::Compute:
            // Non-memory work completes in a single cycle; it becomes
            // retirable on the next retire pass.
            entry.state = State::Done;
            break;
        }
        if (rob.empty())
            oldestInRob = entry.seq;
        rob.push_back(std::move(entry));
    }
}

void
Cpu::complete(SeqNum seq)
{
    for (RobEntry &e : rob) {
        if (e.seq == seq) {
            if (e.state != State::Issued)
                vpc_panic("completion for seq {} in state {}", seq,
                          static_cast<int>(e.state));
            e.state = State::Done;
            return;
        }
    }
    vpc_panic("completion for unknown seq {}", seq);
}

} // namespace vpc
