#include "core/cpu.hh"

#include "sim/logging.hh"

namespace vpc
{

Cpu::Cpu(const CoreConfig &cfg_, ThreadId thread_, Workload &workload_,
         L1DCache &l1_, L2Cache &l2_)
    : cfg(cfg_), thread(thread_), workload(workload_), l1(l1_),
      l2(l2_), rng(0xc0ffee + thread_, 0xabcd1234 + thread_)
{}

Cycle
Cpu::nextWork(Cycle now) const
{
    // Retire acts unless the ROB is empty or the head is a load still
    // in flight (a store head attempts an L2 write-through, a Done or
    // compute head retires — both observable).
    if (!rob.empty()) {
        const RobEntry &head = rob.front();
        if (head.op.kind != MicroOp::Kind::Load ||
            head.state == State::Done)
            return now;
    }
    // Issue scans for waiting loads; any such load consumes a port
    // and may draw from the RNG, even if it ends up rejected.
    if (waitingLoads > 0)
        return now;
    // Dispatch acts unless structurally blocked with the next op
    // already in the block buffer (an empty buffer means dispatch
    // would refill it, consuming workload state).
    if (rob.size() < cfg.robEntries) {
        if (fetchPos_ >= fetchLen_)
            return now;
        const MicroOp &head = fetchBlock_[fetchPos_];
        bool lq_full = head.kind == MicroOp::Kind::Load &&
                       loadsInRob >= cfg.loadQueueEntries;
        bool sq_full = head.kind == MicroOp::Kind::Store &&
                       storesInRob >= cfg.storeQueueEntries;
        if (!lq_full && !sq_full)
            return now;
    }
    return kCycleMax; // a load-completion event wakes the core
}

void
Cpu::tick(Cycle now)
{
    // Classic reverse pipeline order so data moves one stage per cycle.
    retireStage(now);
    issueStage(now);
    dispatchStage(now);
}

void
Cpu::retireStage(Cycle now)
{
    unsigned committed_stores = 0;
    for (unsigned i = 0; i < cfg.retireWidth && !rob.empty(); ++i) {
        RobEntry &head = rob.front();
        if (head.op.kind == MicroOp::Kind::Store) {
            if (committed_stores >= cfg.storeCommitWidth)
                break;
            // Write-through: the store must be accepted by the target
            // bank's gathering buffer before it can leave the machine.
            if (!l2.store(thread, head.op.addr, now)) {
                storeStalls.inc();
                break;
            }
            l1.store(head.op.addr, now);
            ++committed_stores;
            stores.inc();
            --storesInRob;
        } else if (head.op.kind == MicroOp::Kind::Load) {
            if (head.state != State::Done)
                break;
            loads.inc();
            --loadsInRob;
        } else if (head.state != State::Done) {
            break;
        }
        retired.inc();
        rob.pop_front();
    }
    oldestInRob = rob.empty() ? nextSeq : rob.front().seq;
}

bool
Cpu::depSatisfied(const RobEntry &entry) const
{
    if (!entry.op.dependsOnPrevLoad || entry.prevLoadSeq == 0)
        return true;
    if (entry.prevLoadSeq < oldestInRob)
        return true; // the producer already retired
    // ROB sequence numbers are contiguous (allocated at dispatch,
    // released only from the front), so the producer sits exactly
    // prevLoadSeq - front.seq slots in.
    return rob[entry.prevLoadSeq - rob.front().seq].state ==
           State::Done;
}

void
Cpu::issueStage(Cycle now)
{
    if (waitingLoads == 0)
        return; // nothing issuable; skip the ROB walk entirely
    unsigned ports_used = 0;
    unsigned waiting_left = waitingLoads;
    SeqNum base = rob.front().seq;
    std::size_t i = issueScanSeq > base ? issueScanSeq - base : 0;
    SeqNum first_still_waiting = 0;
    for (; i < rob.size(); ++i) {
        if (ports_used >= cfg.lsuPorts || waiting_left == 0)
            break;
        RobEntry &e = rob[i];
        if (e.op.kind != MicroOp::Kind::Load ||
            e.state != State::Waiting) {
            continue;
        }
        --waiting_left; // seen (whether or not it issues below)
        if (!depSatisfied(e)) {
            if (first_still_waiting == 0)
                first_still_waiting = e.seq;
            continue;
        }
        ++ports_used;
        if (!l1.wouldHit(e.op.addr) &&
            rng.chance(cfg.lsuRejectProb)) {
            // LSU reject on an L1 miss (LMQ allocation): the issue
            // slot is wasted and the load retries later, perturbing
            // the order loads reach the L2 and capping miss issue
            // bandwidth -- the 970 behaviour behind the Loads
            // benchmark's sub-100% utilization at >= 4 banks (Fig. 5).
            lsuRejects.inc();
            if (first_still_waiting == 0)
                first_still_waiting = e.seq;
            continue;
        }
        L1DCache::LoadResult res =
            l1.load(e.op.addr, now,
                    [this, seq = e.seq]() { complete(seq); });
        if (res == L1DCache::LoadResult::Blocked) {
            // all MSHRs busy; slot wasted, retry later
            if (first_still_waiting == 0)
                first_still_waiting = e.seq;
            continue;
        }
        e.state = State::Issued;
        --waitingLoads;
    }
    // Advance the hint to the oldest load that is still Waiting, or
    // past everything examined when none was left behind.
    issueScanSeq = first_still_waiting != 0
                   ? first_still_waiting
                   : (i < rob.size() ? rob[i].seq : nextSeq);
}

void
Cpu::refillBlock()
{
    workload.nextBlock(std::span<MicroOp>(fetchBlock_));
    // Pre-decode the dependence flags into the side-array so the
    // dispatch loop reads a plain byte instead of re-inspecting ops.
    for (std::size_t i = 0; i < kFetchBlock; ++i)
        fetchDeps_[i] = fetchBlock_[i].dependsOnPrevLoad ? 1 : 0;
    fetchPos_ = 0;
    fetchLen_ = kFetchBlock;
}

void
Cpu::dispatchStage(Cycle now)
{
    (void)now;
    for (unsigned i = 0; i < cfg.dispatchWidth; ++i) {
        if (rob.size() >= cfg.robEntries)
            break;
        if (fetchPos_ >= fetchLen_)
            refillBlock();
        const MicroOp &head = fetchBlock_[fetchPos_];
        if (head.kind == MicroOp::Kind::Load &&
            loadsInRob >= cfg.loadQueueEntries) {
            break;
        }
        if (head.kind == MicroOp::Kind::Store &&
            storesInRob >= cfg.storeQueueEntries) {
            break;
        }

        RobEntry entry;
        entry.op = head;
        entry.op.dependsOnPrevLoad = fetchDeps_[fetchPos_] != 0;
        ++fetchPos_;
        entry.seq = nextSeq++;
        entry.prevLoadSeq = lastLoadSeq;
        switch (entry.op.kind) {
          case MicroOp::Kind::Load:
            ++loadsInRob;
            ++waitingLoads;
            lastLoadSeq = entry.seq;
            break;
          case MicroOp::Kind::Store:
            ++storesInRob;
            break;
          case MicroOp::Kind::Compute:
            // Non-memory work completes in a single cycle; it becomes
            // retirable on the next retire pass.
            entry.state = State::Done;
            break;
        }
        if (rob.empty())
            oldestInRob = entry.seq;
        rob.push_back(std::move(entry));
    }
}

void
Cpu::complete(SeqNum seq)
{
    // Contiguous ROB sequence numbers make completion O(1): the entry
    // for seq, if still tracked, is exactly seq - front.seq slots in.
    SeqNum base = rob.empty() ? nextSeq : rob.front().seq;
    if (rob.empty() || seq < base || seq - base >= rob.size())
        vpc_panic("completion for unknown seq {}", seq);
    RobEntry &e = rob[seq - base];
    if (e.state != State::Issued)
        vpc_panic("completion for seq {} in state {}", seq,
                  static_cast<int>(e.state));
    e.state = State::Done;
}

} // namespace vpc
