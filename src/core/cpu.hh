/**
 * @file
 * Simplified out-of-order processor model.
 *
 * Captures the structural properties of Table 1's core that matter to
 * the cache study, without modeling individual functional units:
 *
 *  - a dispatch-group-organized reorder buffer (100 entries = 20 groups
 *    of 5) filled in order at the dispatch width;
 *  - load/store reorder queues bounding in-flight memory operations;
 *  - loads issued out of order through a fixed number of LSU ports,
 *    with MSHR-bounded memory-level parallelism and an LSU-reject
 *    mechanism that perturbs issue order (see CoreConfig);
 *  - program-order retirement at the retire width; stores commit at the
 *    head by writing through the L1 into the L2's store gathering
 *    buffers, stalling retirement when a buffer is full (the
 *    backpressure path that throttles the Stores microbenchmark);
 *  - single-cycle non-memory instructions.
 *
 * Instruction fetch is not modeled (the workloads are small loops that
 * always hit the I-cache, as in the paper's microbenchmarks).
 */

#ifndef VPC_CORE_CPU_HH
#define VPC_CORE_CPU_HH

#include <array>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "sim/config.hh"
#include "sim/fused_chain.hh"
#include "sim/random.hh"
#include "sim/ring.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace vpc
{

/** One hardware thread's processor pipeline. */
class Cpu : public Ticking
{
  public:
    /**
     * @param cfg core parameters
     * @param thread hardware thread id
     * @param workload instruction stream (not owned)
     * @param l1 private L1 D-cache (not owned)
     * @param l2 shared L2 (not owned)
     */
    Cpu(const CoreConfig &cfg, ThreadId thread, Workload &workload,
        L1DCache &l1, L2Cache &l2);

    void tick(Cycle now) override;

    /**
     * Quiescence hint (see Ticking::nextWork).  The core sleeps only
     * when provably stalled on memory: the ROB head is a load still in
     * flight, no dispatched load is waiting to issue (a waiting load
     * consumes an LSU port and may draw from the RNG even when it ends
     * up rejected or blocked, so it keeps the core active), and
     * dispatch is structurally blocked with its next op already in the
     * fetch block buffer (an empty buffer means dispatch would refill
     * it from the workload).  The load-completion event flips the head
     * to Done, which makes the re-polled hint due again the same cycle
     * the naive loop would have retired it.
     */
    Cycle nextWork(Cycle now) const override;

    /** @return instructions retired so far. */
    std::uint64_t instrsRetired() const { return retired.value(); }

    /** @return loads retired so far. */
    std::uint64_t loadsRetired() const { return loads.value(); }

    /** @return stores retired so far. */
    std::uint64_t storesRetired() const { return stores.value(); }

    /** @return cycles retirement stalled on a full gathering buffer. */
    std::uint64_t storeStallCycles() const { return storeStalls.value(); }

    /** @return instructions per cycle over @p window cycles. */
    double
    ipc(Cycle window) const
    {
        return window == 0 ? 0.0
            : static_cast<double>(retired.value()) /
              static_cast<double>(window);
    }

    /** @return this thread's id. */
    ThreadId threadId() const { return thread; }

    /**
     * @name Fused L1 hit completion lane
     *
     * The hit hop is (constant hitLatency, one SeqNum to complete) —
     * pure data, no closure.  The system builder registers hitChain()
     * with the owning kernel (serial addFusedChain / sharded
     * addCoreChain on this core's shard) and flips setHitFused(true);
     * issueStage then pushes (due, seq) records instead of scheduling
     * an event, and the kernel's drain completes them the cycle the
     * event would have fired.  Left unfused (unit tests, VPC_NO_FUSE)
     * the hit completion is an ordinary event via L1::scheduleHit.
     */
    /// @{
    /** Drained-record consumer: completes the recorded load. */
    struct HitSink
    {
        Cpu *cpu;
        void
        operator()(Cycle, const SeqNum &seq) const
        {
            cpu->complete(seq);
        }
    };
    using HitLane = DataLane<SeqNum, HitSink>;

    /** @return the lane, for kernel registration (uncounted). */
    FusedChain *hitChain() { return &hitLane_; }

    /** Route hit completions through the lane (default: events). */
    void setHitFused(bool on) { hitFused_ = on; }
    /// @}

  private:
    enum class State
    {
        Waiting, //!< not yet issued
        Issued,  //!< access in flight
        Done     //!< result available; retirable
    };

    struct RobEntry
    {
        MicroOp op;
        State state = State::Waiting;
        SeqNum seq = 0;
        SeqNum prevLoadSeq = 0; //!< most recent older load (0 = none)
    };

    /**
     * Ops fetched per Workload::nextBlock() call.  One virtual call
     * (and, for generators, one string-free tight loop) is amortized
     * over this many dispatched ops; dependsOnPrevLoad is pre-decoded
     * into a side-array at refill so dispatch reads plain flags.
     */
    static constexpr std::size_t kFetchBlock = 128;

    /** Retire completed instructions in order; commit stores. */
    void retireStage(Cycle now);

    /** Issue ready loads through the LSU ports. */
    void issueStage(Cycle now);

    /** Dispatch new instructions from the fetch block buffer. */
    void dispatchStage(Cycle now);

    /** Refill the block buffer from the workload (pre-decodes deps). */
    void refillBlock();

    /** Mark the entry with sequence number @p seq complete. */
    void complete(SeqNum seq);

    /** @return true once @p entry's load dependence is satisfied. */
    bool depSatisfied(const RobEntry &entry) const;

    CoreConfig cfg;
    ThreadId thread;
    Workload &workload;
    L1DCache &l1;
    L2Cache &l2;
    Rng rng;
    Bernoulli lsuRejectB_; //!< cfg.lsuRejectProb in threshold form

    SmallRing<RobEntry> rob;
    /** @name Fetch block buffer (refilled via Workload::nextBlock) */
    /// @{
    std::array<MicroOp, kFetchBlock> fetchBlock_;
    /** Pre-decoded dependsOnPrevLoad flags (dispatch side-array). */
    std::array<std::uint8_t, kFetchBlock> fetchDeps_{};
    std::size_t fetchPos_ = 0; //!< next unconsumed op
    std::size_t fetchLen_ = 0; //!< valid ops in the buffer
    /// @}
    SeqNum nextSeq = 1;
    SeqNum lastLoadSeq = 0;    //!< seq of most recently dispatched load
    SeqNum oldestInRob = 1;    //!< seq of the ROB head (retire frontier)
    unsigned loadsInRob = 0;
    unsigned storesInRob = 0;
    /**
     * Dispatched loads not yet issued, in program order.  Exact
     * mirror of the Waiting loads in the ROB: dispatch appends, issue
     * compacts out the entries it issues (a Waiting load can neither
     * complete nor retire, so membership changes nowhere else).  The
     * issue stage visits the same loads in the same order as a ROB
     * walk would, without touching the non-load entries in between.
     */
    std::vector<SeqNum> waitQ_;

    HitLane hitLane_{/*counted=*/false, HitSink{this}};
    bool hitFused_ = false; //!< hit completions ride hitLane_

    Counter retired;
    Counter loads;
    Counter stores;
    Counter storeStalls;
    Counter lsuRejects;
};

} // namespace vpc

#endif // VPC_CORE_CPU_HH
