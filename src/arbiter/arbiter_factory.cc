#include "arbiter/arbiter_factory.hh"

#include "arbiter/fcfs_arbiter.hh"
#include "arbiter/round_robin_arbiter.hh"
#include "arbiter/row_fcfs_arbiter.hh"
#include "sim/logging.hh"

namespace vpc
{

std::unique_ptr<Arbiter>
makeArbiter(ArbiterPolicy policy, unsigned num_threads,
            Cycle read_latency, unsigned write_multiplier,
            const std::vector<double> &shares,
            const VpcArbiterOptions &opts)
{
    switch (policy) {
      case ArbiterPolicy::Fcfs:
        return std::make_unique<FcfsArbiter>(num_threads);
      case ArbiterPolicy::RowFcfs:
        return std::make_unique<RowFcfsArbiter>(num_threads);
      case ArbiterPolicy::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(num_threads);
      case ArbiterPolicy::Vpc:
        return std::make_unique<VpcArbiter>(num_threads, read_latency,
                                            write_multiplier, shares,
                                            opts);
    }
    vpc_panic("unknown arbiter policy {}", static_cast<int>(policy));
}

const char *
arbiterPolicyName(ArbiterPolicy policy)
{
    switch (policy) {
      case ArbiterPolicy::Fcfs: return "FCFS";
      case ArbiterPolicy::RowFcfs: return "RoW-FCFS";
      case ArbiterPolicy::RoundRobin: return "RoundRobin";
      case ArbiterPolicy::Vpc: return "VPC";
    }
    return "?";
}

} // namespace vpc
