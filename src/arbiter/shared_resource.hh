/**
 * @file
 * A non-preemptible timed resource guarded by an arbiter.
 *
 * Models the tag array, data array and data bus of an L2 cache bank:
 * each access occupies the resource for a fixed number of cycles
 * (bandwidth = 1 / latency, as in the paper), writes may occupy it for
 * multiple back-to-back accesses (the data array's ECC read-modify-
 * write), and whenever the resource is idle the attached arbiter picks
 * the next request.  Because the resource is non-preemptible, a newly
 * arrived request can be delayed by at most one maximum service time --
 * the preemption latency the paper's Section 4.1.2 analyses.
 */

#ifndef VPC_ARBITER_SHARED_RESOURCE_HH
#define VPC_ARBITER_SHARED_RESOURCE_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "arbiter/arbiter.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/** An arbitrated, occupancy-modeled hardware resource. */
class SharedResource
{
  public:
    /**
     * Called when a request is granted the resource.
     *
     * @param req the granted request
     * @param start cycle service begins
     * @param done cycle service completes (resource free again)
     */
    using GrantHandler =
        std::function<void(const ArbRequest &req, Cycle start,
                           Cycle done)>;

    /**
     * @param name for stats / debugging
     * @param arbiter selection policy; takes ownership
     * @param read_latency occupancy of a read access, cycles
     * @param write_accesses back-to-back accesses per write (>= 1)
     */
    SharedResource(std::string name, std::unique_ptr<Arbiter> arbiter,
                   Cycle read_latency, unsigned write_accesses = 1);

    /** Install the downstream grant handler. */
    void setGrantHandler(GrantHandler h) { onGrant = std::move(h); }

    /**
     * Install an additional observe-only tap invoked after the grant
     * handler; used by instrumentation (e.g. the Figure 4 bench).
     */
    void setGrantHandlerTap(GrantHandler h) { onGrantTap = std::move(h); }

    /** Enter @p req into arbitration. */
    void request(const ArbRequest &req, Cycle now);

    /**
     * Advance the resource one cycle: if idle and a request is
     * eligible, grant it and invoke the grant handler.  Call once per
     * core cycle.  The common no-op case (busy or nothing pending)
     * stays inline; the grant path lives in tickGrant().
     */
    void
    tick(Cycle now)
    {
        if (busy(now) || !arb->hasPending())
            return;
        tickGrant(now);
    }

    /** @return true if the resource is servicing a request at @p now. */
    bool busy(Cycle now) const { return now < freeAt; }

    /**
     * Quiescence hint for the owning component's nextWork(): the
     * earliest cycle >= @p now at which tick() could grant.  No
     * pending requests: kCycleMax (arrival re-polls the hint).  Busy:
     * the completion cycle.  Idle with work: @p now.  Conservative for
     * a non-work-conserving arbiter (tick() may still grant nothing;
     * that tick is a no-op, which is exactly what the contract allows).
     */
    Cycle
    nextWork(Cycle now) const
    {
        if (!arb->hasPending())
            return kCycleMax;
        return busy(now) ? freeAt : now;
    }

    /** @return occupancy of @p req in cycles. */
    Cycle
    occupancy(const ArbRequest &req) const
    {
        return req.isWrite ? readLatency * writeAccesses : readLatency;
    }

    /** @return the selection policy. */
    Arbiter &arbiter() { return *arb; }
    const Arbiter &arbiter() const { return *arb; }

    /** @return busy-fraction statistics. */
    const UtilizationStat &util() const { return util_; }

    /** @return accesses granted so far. */
    std::uint64_t accessCount() const { return accesses.value(); }

    /** @return this resource's name. */
    const std::string &name() const { return name_; }

    /**
     * @name Fault-injection hooks
     *
     * Deliberately perturb the next grant so the verify layer can be
     * proven live.  Dropping a grant consumes the request (the arbiter
     * has already accounted it) but never invokes the downstream
     * handlers, leaking whatever controller state machine was waiting
     * on it -- the forward-progress watchdog must catch the stall.
     * Delaying a grant stretches its occupancy without telling the
     * handlers, so completion events fire while the resource is still
     * formally busy.
     */
    /// @{
    void faultDropNextGrant() { dropNextGrant = true; }
    void faultDelayNextGrant(Cycle extra) { delayNextGrant = extra; }
    /// @}

  private:
    /** Grant path of tick(): the resource is idle with work pending. */
    void tickGrant(Cycle now);

    std::string name_;
    std::unique_ptr<Arbiter> arb;
    Cycle readLatency;
    unsigned writeAccesses;
    Cycle freeAt = 0;
    bool dropNextGrant = false;
    Cycle delayNextGrant = 0;
    GrantHandler onGrant;
    GrantHandler onGrantTap;
    UtilizationStat util_;
    Counter accesses;
};

} // namespace vpc

#endif // VPC_ARBITER_SHARED_RESOURCE_HH
