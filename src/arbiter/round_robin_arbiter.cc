#include "arbiter/round_robin_arbiter.hh"

#include "sim/logging.hh"

namespace vpc
{

RoundRobinArbiter::RoundRobinArbiter(unsigned num_threads)
    : Arbiter(num_threads), queues(num_threads)
{}

void
RoundRobinArbiter::doEnqueue(const ArbRequest &req, Cycle now)
{
    (void)now;
    if (req.thread >= numThreads())
        vpc_panic("RR enqueue from invalid thread {}", req.thread);
    queues[req.thread].push_back(req);
    ++total;
}

bool
RoundRobinArbiter::faultDropOldest(ThreadId t)
{
    if (queues.at(t).empty())
        return false;
    queues[t].pop_front();
    --total;
    return true;
}

std::optional<ArbRequest>
RoundRobinArbiter::select(Cycle now)
{
    if (total == 0)
        return std::nullopt;
    for (unsigned i = 0; i < numThreads(); ++i) {
        ThreadId t = (nextThread + i) % numThreads();
        if (!queues[t].empty()) {
            ArbRequest req = queues[t].front();
            queues[t].pop_front();
            --total;
            nextThread = (t + 1) % numThreads();
            recordGrant(req, now);
            return req;
        }
    }
    vpc_panic("RR arbiter inconsistent: total={} but all queues empty",
              total);
}

bool
RoundRobinArbiter::hasPending() const
{
    return total != 0;
}

std::size_t
RoundRobinArbiter::pendingCount() const
{
    return total;
}

std::size_t
RoundRobinArbiter::pendingCount(ThreadId t) const
{
    return queues.at(t).size();
}

} // namespace vpc
