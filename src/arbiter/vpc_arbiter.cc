#include "arbiter/vpc_arbiter.hh"

#include <bit>
#include <limits>

#include "arbiter/row_scan.hh"

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/vec.hh"

namespace vpc
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

VpcArbiter::VpcArbiter(unsigned num_threads, Cycle service_latency,
                       unsigned write_multiplier,
                       const std::vector<double> &shares,
                       const VpcArbiterOptions &opts)
    : Arbiter(num_threads), buffers_(num_threads),
      phi_(num_threads, 0.0), rl_(num_threads, 0.0),
      rs_(num_threads, 0.0), candIdx_(num_threads, 0),
      latency(service_latency), writeMult(write_multiplier),
      options(opts)
{
    if (shares.size() != num_threads)
        vpc_fatal("VpcArbiter: {} shares for {} threads",
                  shares.size(), num_threads);
    if (latency == 0)
        vpc_fatal("VpcArbiter: resource latency must be > 0");
    if (writeMult == 0)
        vpc_fatal("VpcArbiter: write multiplier must be > 0");
    if (num_threads > kMaxThreads)
        vpc_fatal("VpcArbiter: {} threads exceeds the {}-thread "
                  "active-mask limit", num_threads, kMaxThreads);
    double sum = 0.0;
    for (unsigned t = 0; t < num_threads; ++t) {
        sum += shares[t];
        setShare(t, shares[t]);
    }
    if (sum > 1.0 + 1e-9)
        vpc_fatal("VpcArbiter: resource over-allocated, sum(phi)={}",
                  sum);
}

void
VpcArbiter::setShare(ThreadId t, double phi)
{
    if (phi < 0.0 || phi > 1.0)
        vpc_fatal("VpcArbiter: share {} out of [0,1]", phi);
    phi_.at(t) = phi;
    // R.L_i only needs recomputation when phi changes (Section 4.1.1).
    rl_.at(t) = phi > 0.0 ? static_cast<double>(latency) / phi : kInf;
}

bool
VpcArbiter::faultDropOldest(ThreadId t)
{
    SmallRing<ArbRequest> &buf = buffers_.at(t);
    if (buf.empty())
        return false;
    buf.pop_front();
    invalidateCandidate(t);
    if (buf.empty())
        activeMask &= ~(1ull << t);
    --total;
    return true;
}

void
VpcArbiter::doEnqueue(const ArbRequest &req, Cycle now)
{
    if (req.thread >= numThreads())
        vpc_panic("VPC enqueue from invalid thread {}", req.thread);
    SmallRing<ArbRequest> &buf = buffers_[req.thread];
    // Equation 6: an idle thread's virtual resource cannot be available
    // before "now"; without this reset the thread would bank unbounded
    // credit while idle and later starve others while repaying none.
    // In virtual-clock mode "now" is the served-start-tag clock, which
    // stays meaningful when the resource cannot deliver its nominal
    // bandwidth (see VpcArbiterOptions::virtualClock).
    double reset_floor = options.virtualClock
        ? vclock : static_cast<double>(now);
    if (options.idleReset && buf.empty() &&
        rs_[req.thread] < reset_floor) {
        rs_[req.thread] = reset_floor;
    }
    buf.push_back(req);
    invalidateCandidate(req.thread);
    activeMask |= 1ull << req.thread;
    ++total;
}

std::size_t
VpcArbiter::candidateIndex(ThreadId t) const
{
    if (!options.intraThreadRow)
        return 0;
    std::uint64_t bit = std::uint64_t{1} << t;
    if (candValid_ & bit)
        return candIdx_[t];
    // Intra-thread reordering (Section 4.1.1): demand reads first,
    // then prefetch reads, then the oldest request -- a read may not
    // bypass an older same-line write (dependence).  One O(n) pass;
    // see row_scan.hh for the equivalence argument.
    std::size_t idx = rowCandidateIndex(buffers_[t], rowScratch);
    candIdx_[t] = static_cast<std::uint32_t>(idx);
    candValid_ |= bit;
    return idx;
}

double
VpcArbiter::nextVirtualFinish(ThreadId t) const
{
    const SmallRing<ArbRequest> &buf = buffers_.at(t);
    if (buf.empty())
        return kInf;
    std::size_t idx = candidateIndex(t);
    return rs_[t] + virtualService(t, buf[idx]);
}

std::optional<ArbRequest>
VpcArbiter::select(Cycle now)
{
    if (total == 0)
        return std::nullopt;

    // Earliest virtual finish time first (EDF); ties broken by global
    // arrival order so zero-share threads are FCFS among themselves.
    //
    // Visit backlogged threads only (ascending t, as before, so the
    // (finish, seq) tie-break is unchanged).  Candidate indices are
    // cached per thread, so a thread whose buffer did not change since
    // the last select costs one masked load, not a RoW rescan.  The
    // gather pass packs each eligible thread's (finish, seq) into
    // flat arrays so the argmin itself runs vectorized.
    double fin[kMaxThreads];
    SeqNum seqs[kMaxThreads];
    ThreadId tids[kMaxThreads];
    std::uint32_t idxs[kMaxThreads];
    unsigned cand = 0;
    for (std::uint64_t m = activeMask; m != 0; m &= m - 1) {
        auto t = static_cast<ThreadId>(std::countr_zero(m));
        if (!options.workConserving &&
            rs_[t] > static_cast<double>(now)) {
            // Non-work-conserving ablation: the thread's virtual start
            // time has not arrived yet; it is ineligible.
            continue;
        }
        std::size_t idx = candidateIndex(t);
        const ArbRequest &req = buffers_[t][idx];
        fin[cand] = rs_[t] + virtualService(t, req);
        seqs[cand] = req.seq;
        tids[cand] = t;
        idxs[cand] = static_cast<std::uint32_t>(idx);
        ++cand;
    }
    if (cand == 0)
        return std::nullopt;
    unsigned k = vec::argminF64Seq(fin, seqs, cand);
    ThreadId best_t = tids[k];
    std::size_t best_idx = idxs[k];
    double best_f = fin[k];

    SmallRing<ArbRequest> &buf = buffers_[best_t];
    ArbRequest req = buf[best_idx];
    buf.erase_at(best_idx);
    invalidateCandidate(best_t);
    if (buf.empty())
        activeMask &= ~(1ull << best_t);
    --total;
    // System virtual time = start tag of the request entering
    // service (used by virtual-clock idle resets).
    if (rs_[best_t] > vclock)
        vclock = rs_[best_t];
    // Equation 5: advance the virtual resource past this service.
    rs_[best_t] = best_f;
    VPC_DPRINTF(Arbiter, "[{}] grant t{} seq {} F={:.1f} rs->{:.1f}",
                now, best_t, req.seq, best_f, rs_[best_t]);
    recordGrant(req, now);
    return req;
}

bool
VpcArbiter::hasPending() const
{
    return total != 0;
}

std::size_t
VpcArbiter::pendingCount() const
{
    return total;
}

std::size_t
VpcArbiter::pendingCount(ThreadId t) const
{
    return buffers_.at(t).size();
}

} // namespace vpc
