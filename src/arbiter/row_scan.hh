/**
 * @file
 * Single-pass Read-over-Write candidate scan.
 *
 * Both the VPC arbiter's intra-thread reordering and the RoW-FCFS
 * baseline pick, in priority order: the oldest demand read, else the
 * oldest prefetch read, else the oldest request — where a read may not
 * bypass an older write to the same line address (dependence).  The
 * original implementations re-scanned the prefix for a conflicting
 * write per candidate, which is O(n²) in the queue depth and was the
 * dominant cost of selection on deep buffers.
 *
 * rowCandidateIndex() computes the same choice in one forward pass: it
 * accumulates the line addresses of the writes seen so far (a 64-bit
 * Bloom word backed by an exact scratch list, so the common no-write
 * case never searches), returns immediately at the first unblocked
 * demand read, and otherwise remembers the first unblocked read of any
 * kind.  Equivalence with the two-pass scan: pass 1 returned the
 * smallest i such that buf[i] is an unblocked demand read — identical
 * to the early return here since both walk i ascending and "blocked"
 * depends only on writes at positions < i; pass 2's result is the
 * first unblocked read of any kind, which is what `first_read` records
 * (a demand read that was unblocked would have returned already, and a
 * blocked one is equally skipped by both versions); the fallback is
 * index 0 in both.
 */

#ifndef VPC_ARBITER_ROW_SCAN_HH
#define VPC_ARBITER_ROW_SCAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "sim/vec.hh"

namespace vpc
{

/** Hash a line address into a 64-bit Bloom word (one bit). */
inline std::uint64_t
rowBloomBit(Addr line_addr)
{
    return 1ull << ((line_addr * 0x9E3779B97F4A7C15ull) >> 58);
}

/**
 * Index into @p queue of the request to service next under the RoW
 * policy.  @p queue needs size() and operator[] yielding ArbRequest
 * (any container; SmallRing and deque both qualify).
 *
 * @param write_scratch caller-provided scratch for the exact write
 *        set; cleared here, retains capacity across calls
 * @return chosen index (0 if the queue holds no eligible read)
 */
template <class Queue>
std::size_t
rowCandidateIndex(const Queue &queue, std::vector<Addr> &write_scratch)
{
    write_scratch.clear();
    std::uint64_t bloom = 0;
    std::size_t first_read = 0;
    bool have_read = false;
    const std::size_t n = queue.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto &req = queue[i];
        if (req.isWrite) {
            bloom |= rowBloomBit(req.lineAddr);
            write_scratch.push_back(req.lineAddr);
            continue;
        }
        // Bloom hit: confirm against the exact write set with a
        // vectorized membership probe (the scratch is contiguous).
        if ((bloom & rowBloomBit(req.lineAddr)) != 0 &&
            vec::contains64(write_scratch.data(),
                            write_scratch.size(), req.lineAddr))
            continue;
        if (!req.isPrefetch)
            return i; // oldest unblocked demand read wins outright
        if (!have_read) {
            have_read = true;
            first_read = i;
        }
    }
    return have_read ? first_read : 0;
}

} // namespace vpc

#endif // VPC_ARBITER_ROW_SCAN_HH
