/**
 * @file
 * The Virtual Private Cache arbiter (Section 4.1 of the paper).
 *
 * A strict fair-queuing arbiter: each thread i holds a share
 * 0 <= phi_i <= 1 of the resource's bandwidth and a small buffer of
 * pending request IDs.  The arbiter maintains, per thread,
 *
 *   R.L_i = L / phi_i      (virtual service time; L = resource latency)
 *   R.S_i                  (virtual time thread i's virtual resource
 *                           next becomes available)
 *
 * and a real-time clock R.clk.  On enqueue, Equation 6 conditionally
 * resets an idle thread's virtual time:
 *
 *   [6]  if queue_i empty and R.S_i <= R.clk then R.S_i <- R.clk
 *
 * On selection the thread with the earliest virtual finish time
 *
 *   [3'] S_i^k = R.S_i
 *   [4]  F_i^k = S_i^k + R.L_i        (2 * R.L_i for data-array writes)
 *
 * is granted (earliest deadline first), and
 *
 *   [5]  R.S_i <- F_i^k.
 *
 * Because R.S_i depends only on the amount of service consumed -- not on
 * which specific request is chosen -- requests *within* a thread's buffer
 * may be reordered (we implement Read-over-Write, subject to same-line
 * dependences) without disturbing any thread's bandwidth guarantee.
 *
 * Fairness policy: excess bandwidth goes to the backlogged thread with
 * the earliest virtual finish time, i.e. the thread that has received
 * the least excess service in the past relative to its share.
 *
 * Threads with phi_i = 0 have infinite virtual service time and are only
 * served from excess bandwidth (work conservation), in arrival order
 * among themselves.
 */

#ifndef VPC_ARBITER_VPC_ARBITER_HH
#define VPC_ARBITER_VPC_ARBITER_HH

#include <cstdint>
#include <vector>

#include "arbiter/arbiter.hh"
#include "sim/ring.hh"

namespace vpc
{

/** Tunables for the VPC arbiter (ablation switches). */
struct VpcArbiterOptions
{
    /** Reorder reads over writes inside each thread's buffer. */
    bool intraThreadRow = true;
    /** Apply Equation 6 on enqueue (reset idle virtual time). */
    bool idleReset = true;
    /**
     * Distribute excess bandwidth (work-conserving).  When false a
     * thread is eligible only once real time has caught up with its
     * virtual start time, so unallocated bandwidth is wasted.
     */
    bool workConserving = true;
    /**
     * Reset idle threads against the arbiter's *virtual* clock (the
     * start tag of the most recently granted request) instead of the
     * wall clock (Equation 6).
     *
     * Strict wall-clock FQ assumes the allocations are feasible: the
     * resource really can deliver sum(phi) of its nominal bandwidth.
     * A DRAM channel cannot (bank conflicts and activate gaps eat
     * into the nominal bus rate), so under wall-clock virtual time a
     * permanently backlogged flow accumulates unbounded deficit and
     * outranks every burst from a lighter flow forever.  Tracking
     * system virtual time by served start tags -- the classic
     * SFQ-style construction approximate fair-queuing memory
     * schedulers use (the paper's Section 2.1 notes the FQ memory
     * controller uses approximate methods) -- keeps shares exact and
     * the unfairness window bounded at any achievable bandwidth.
     * Cache resources keep the paper-exact wall-clock Equation 6
     * (their occupancy-based capacity makes sum(phi) <= 1 feasible).
     */
    bool virtualClock = false;
};

/** Fair-queuing arbiter providing per-thread minimum bandwidth. */
class VpcArbiter : public Arbiter
{
  public:
    /**
     * @param num_threads threads sharing the resource
     * @param service_latency L: resource occupancy of one (read) access,
     *        in cycles
     * @param write_multiplier how many back-to-back accesses a write
     *        performs (2 for the data array, 1 elsewhere)
     * @param shares phi_i per thread; sum must be <= 1
     * @param opts ablation switches
     */
    VpcArbiter(unsigned num_threads, Cycle service_latency,
               unsigned write_multiplier,
               const std::vector<double> &shares,
               const VpcArbiterOptions &opts = {});

    std::optional<ArbRequest> select(Cycle now) override;
    bool hasPending() const override;
    std::size_t pendingCount() const override;
    std::size_t pendingCount(ThreadId t) const override;
    void setShare(ThreadId t, double phi) override;
    std::string name() const override { return "VPC"; }
    bool faultDropOldest(ThreadId t) override;

    /** @return thread @p t's current share phi_t. */
    double share(ThreadId t) const { return phi_.at(t); }

    /** @return R.S_t, thread @p t's virtual-resource-available time. */
    double virtualTime(ThreadId t) const { return rs_.at(t); }

    /**
     * Virtual finish time of thread @p t's next grant, or +infinity if
     * the thread has no pending request.  Exposed for tests.
     */
    double nextVirtualFinish(ThreadId t) const;

    /** @return the ablation switches this arbiter was built with. */
    const VpcArbiterOptions &vpcOptions() const { return options; }

    /** @return start tag of the last granted request (system V(t)). */
    double systemVirtualTime() const { return vclock; }

    /** @return back-to-back accesses per write (2 for data array). */
    unsigned writeMultiplier() const { return writeMult; }

    /** @return R.L_t = L / phi_t (+infinity when phi_t = 0). */
    double virtualServiceTime(ThreadId t) const
    {
        return rl_.at(t);
    }

    /**
     * Fault-injection hook: rewind thread @p t's R.S_i register by
     * @p delta, violating virtual-time monotonicity on purpose so the
     * VpcArbiterAuditor can be proven live.
     */
    void
    faultCorruptVirtualTime(ThreadId t, double delta)
    {
        rs_.at(t) -= delta;
    }

  protected:
    void doEnqueue(const ArbRequest &req, Cycle now) override;

    /** Hard cap on threads per arbiter (the active set is a mask). */
    static constexpr unsigned kMaxThreads = 64;

  private:
    /**
     * Index into thread @p t's buffer of the request to service next
     * under the intra-thread reordering policy (RoW subject to
     * same-line dependences when enabled, else FIFO).  Cached per
     * thread: the RoW scan depends only on the buffer's contents, so
     * the cache is invalidated exactly on buffer mutation (enqueue,
     * grant, fault drop).  Between mutations the EDF loop reads the
     * winner back in O(1) instead of rescanning every backlogged
     * buffer every select.
     */
    std::size_t candidateIndex(ThreadId t) const;

    /** Drop thread @p t's cached candidate (buffer mutated). */
    void
    invalidateCandidate(ThreadId t)
    {
        candValid_ &= ~(std::uint64_t{1} << t);
    }

    /** Virtual service time of @p req for thread @p t. */
    double
    virtualService(ThreadId t, const ArbRequest &req) const
    {
        return req.isWrite ? rl_[t] * writeMult : rl_[t];
    }

    //! @name Per-thread state, flat (structure-of-arrays)
    /// @{
    std::vector<SmallRing<ArbRequest>> buffers_;
    std::vector<double> phi_; //!< bandwidth share
    std::vector<double> rl_;  //!< R.L_i = L / phi_i
    std::vector<double> rs_;  //!< R.S_i register
    mutable std::vector<std::uint32_t> candIdx_; //!< cached candidate
    /// @}
    /** Bit t set iff candIdx_[t] is current for buffers_[t]. */
    mutable std::uint64_t candValid_ = 0;
    /**
     * Bit t set iff thread t's buffer is non-empty.  EDF selection
     * iterates set bits only, so idle threads cost nothing — with one
     * backlogged thread out of 64, select() visits one queue, not 64.
     */
    std::uint64_t activeMask = 0;
    /** Scratch for the single-pass RoW scan (capacity persists). */
    mutable std::vector<Addr> rowScratch;
    double vclock = 0.0; //!< start tag of the last granted request
    Cycle latency;
    unsigned writeMult;
    VpcArbiterOptions options;
    std::size_t total = 0;
};

} // namespace vpc

#endif // VPC_ARBITER_VPC_ARBITER_HH
