/**
 * @file
 * Round-robin arbiter.
 *
 * Used by the baseline cache controller to select which thread's request
 * (after store gathering) is admitted into the controller pipeline next
 * (Section 3.1).  Rotates a priority pointer one past the last granted
 * thread, FIFO within each thread.
 */

#ifndef VPC_ARBITER_ROUND_ROBIN_ARBITER_HH
#define VPC_ARBITER_ROUND_ROBIN_ARBITER_HH

#include "arbiter/arbiter.hh"
#include "sim/ring.hh"

namespace vpc
{

/** Grants one request per thread in rotating order. */
class RoundRobinArbiter : public Arbiter
{
  public:
    explicit RoundRobinArbiter(unsigned num_threads);

    std::optional<ArbRequest> select(Cycle now) override;
    bool hasPending() const override;
    std::size_t pendingCount() const override;
    std::size_t pendingCount(ThreadId t) const override;
    std::string name() const override { return "RoundRobin"; }
    bool faultDropOldest(ThreadId t) override;

  protected:
    void doEnqueue(const ArbRequest &req, Cycle now) override;

  private:
    std::vector<SmallRing<ArbRequest>> queues;
    ThreadId nextThread = 0;
    std::size_t total = 0;
};

} // namespace vpc

#endif // VPC_ARBITER_ROUND_ROBIN_ARBITER_HH
