/**
 * @file
 * Abstract arbiter interface for shared cache resources.
 *
 * Each shared resource in an L2 bank (tag array, data array, data bus)
 * owns one Arbiter.  Requests enter arbitration with enqueue(); whenever
 * the resource is free, it calls select() to pick the next request.
 */

#ifndef VPC_ARBITER_ARBITER_HH
#define VPC_ARBITER_ARBITER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arbiter/arb_request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpc
{

/**
 * Selects which pending request accesses a shared resource next.
 *
 * Implementations must be work-conserving unless documented otherwise:
 * if hasPending() is true, select() must eventually return a request.
 */
class Arbiter
{
  public:
    /** @param num_threads number of hardware threads sharing us. */
    explicit Arbiter(unsigned num_threads)
        : numThreads_(num_threads), grants_(num_threads),
          enqueues_(num_threads)
    {}

    virtual ~Arbiter() = default;

    Arbiter(const Arbiter &) = delete;
    Arbiter &operator=(const Arbiter &) = delete;

    /**
     * Add a request to arbitration.
     *
     * Non-virtual so the base class can count per-thread admissions;
     * together with grantCount() and pendingCount() this lets the
     * verify layer prove request conservation (nothing is lost or
     * duplicated between enqueue and grant).  Policies implement
     * doEnqueue().
     *
     * @param req the request; req.thread must be < numThreads()
     * @param now current cycle (the arrival time a_i^k)
     */
    void
    enqueue(const ArbRequest &req, Cycle now)
    {
        ++enqueues_.at(req.thread);
        doEnqueue(req, now);
    }

    /**
     * Choose the request that accesses the resource next and remove it
     * from arbitration.
     *
     * @param now current cycle
     * @return the granted request, or std::nullopt if none is pending
     *         (or, for non-work-conserving policies, none is eligible)
     */
    virtual std::optional<ArbRequest> select(Cycle now) = 0;

    /** @return true if any request is waiting. */
    virtual bool hasPending() const = 0;

    /** @return total requests waiting across all threads. */
    virtual std::size_t pendingCount() const = 0;

    /** @return requests waiting for thread @p t. */
    virtual std::size_t pendingCount(ThreadId t) const = 0;

    /**
     * Update thread @p t's bandwidth share.  Policies without shares
     * ignore this.  Takes effect for subsequent service.
     */
    virtual void setShare(ThreadId t, double phi) { (void)t; (void)phi; }

    /** @return a short human-readable policy name. */
    virtual std::string name() const = 0;

    /** @return number of threads sharing this resource. */
    unsigned numThreads() const { return numThreads_; }

    /** @return grants issued so far to thread @p t. */
    std::uint64_t grantCount(ThreadId t) const { return grants_.at(t); }

    /** @return requests admitted so far for thread @p t. */
    std::uint64_t enqueueCount(ThreadId t) const { return enqueues_.at(t); }

    /** Queueing delay (enqueue to grant) statistics. */
    const SampleStat &queueDelay() const { return queueDelay_; }

    /**
     * Fault-injection hook: silently discard thread @p t's oldest
     * pending request without recording a grant, breaking request
     * conservation on purpose so the auditors can be proven live.
     *
     * @return true if a request was dropped
     */
    virtual bool faultDropOldest(ThreadId t) { (void)t; return false; }

  protected:
    /** Policy-specific admission; called by enqueue(). */
    virtual void doEnqueue(const ArbRequest &req, Cycle now) = 0;
    /** Record a grant for stats; call from select() implementations. */
    void
    recordGrant(const ArbRequest &req, Cycle now)
    {
        ++grants_.at(req.thread);
        queueDelay_.sample(static_cast<double>(now - req.arrival));
    }

  private:
    unsigned numThreads_;
    std::vector<std::uint64_t> grants_;
    std::vector<std::uint64_t> enqueues_;
    SampleStat queueDelay_;
};

} // namespace vpc

#endif // VPC_ARBITER_ARBITER_HH
