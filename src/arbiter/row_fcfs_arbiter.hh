/**
 * @file
 * Read-over-Write, First-Come First-Serve arbiter.
 *
 * The uniprocessor (private cache) baseline policy: among pending
 * requests, reads are always granted before writes; ties broken by
 * arrival order.  Effective for a single thread, but in a multithreaded
 * cache a thread issuing a continuous load stream starves every other
 * thread's stores indefinitely (Section 3.1 / Figure 8 of the paper) --
 * the motivating design flaw for the VPC arbiter.
 *
 * A read may not bypass an older write to the same line address
 * (dependence), mirroring the consistency checks performed before
 * requests enter arbitration in the baseline microarchitecture.
 */

#ifndef VPC_ARBITER_ROW_FCFS_ARBITER_HH
#define VPC_ARBITER_ROW_FCFS_ARBITER_HH

#include "arbiter/arbiter.hh"
#include "sim/ring.hh"

namespace vpc
{

/** Grants reads before writes, FCFS within each class. */
class RowFcfsArbiter : public Arbiter
{
  public:
    explicit RowFcfsArbiter(unsigned num_threads);

    std::optional<ArbRequest> select(Cycle now) override;
    bool hasPending() const override;
    std::size_t pendingCount() const override;
    std::size_t pendingCount(ThreadId t) const override;
    std::string name() const override { return "RoW-FCFS"; }
    bool faultDropOldest(ThreadId t) override;

  protected:
    void doEnqueue(const ArbRequest &req, Cycle now) override;

  private:
    SmallRing<ArbRequest> queue;
    std::vector<std::size_t> perThread;
    /** Scratch for the single-pass RoW scan (capacity persists). */
    std::vector<Addr> rowScratch;
};

} // namespace vpc

#endif // VPC_ARBITER_ROW_FCFS_ARBITER_HH
