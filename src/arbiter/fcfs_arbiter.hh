/**
 * @file
 * First-come first-serve arbiter.
 *
 * The multiprocessor baseline policy for shared resources in the paper's
 * evaluation: requests are granted in global arrival order regardless of
 * thread or request type.  Under FCFS, threads receive resource *time* in
 * proportion to their request rate and per-request occupancy (e.g. with
 * one load interleaved per store on the data array, the store thread gets
 * 2/3 of the bandwidth because writes occupy the array twice as long).
 */

#ifndef VPC_ARBITER_FCFS_ARBITER_HH
#define VPC_ARBITER_FCFS_ARBITER_HH

#include "arbiter/arbiter.hh"
#include "sim/ring.hh"

namespace vpc
{

/** Grants requests in strict global arrival order. */
class FcfsArbiter : public Arbiter
{
  public:
    explicit FcfsArbiter(unsigned num_threads);

    std::optional<ArbRequest> select(Cycle now) override;
    bool hasPending() const override;
    std::size_t pendingCount() const override;
    std::size_t pendingCount(ThreadId t) const override;
    std::string name() const override { return "FCFS"; }
    bool faultDropOldest(ThreadId t) override;

  protected:
    void doEnqueue(const ArbRequest &req, Cycle now) override;

  private:
    SmallRing<ArbRequest> queue;
    std::vector<std::size_t> perThread;
};

} // namespace vpc

#endif // VPC_ARBITER_FCFS_ARBITER_HH
