#include "arbiter/fcfs_arbiter.hh"

#include "sim/logging.hh"

namespace vpc
{

FcfsArbiter::FcfsArbiter(unsigned num_threads)
    : Arbiter(num_threads), perThread(num_threads, 0)
{}

void
FcfsArbiter::doEnqueue(const ArbRequest &req, Cycle now)
{
    (void)now;
    if (req.thread >= numThreads())
        vpc_panic("FCFS enqueue from invalid thread {}", req.thread);
    queue.push_back(req);
    ++perThread[req.thread];
}

bool
FcfsArbiter::faultDropOldest(ThreadId t)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].thread == t) {
            queue.erase_at(i);
            --perThread[t];
            return true;
        }
    }
    return false;
}

std::optional<ArbRequest>
FcfsArbiter::select(Cycle now)
{
    if (queue.empty())
        return std::nullopt;
    ArbRequest req = queue.front();
    queue.pop_front();
    --perThread[req.thread];
    recordGrant(req, now);
    return req;
}

bool
FcfsArbiter::hasPending() const
{
    return !queue.empty();
}

std::size_t
FcfsArbiter::pendingCount() const
{
    return queue.size();
}

std::size_t
FcfsArbiter::pendingCount(ThreadId t) const
{
    return perThread.at(t);
}

} // namespace vpc
