#include "arbiter/row_fcfs_arbiter.hh"

#include "arbiter/row_scan.hh"
#include "sim/logging.hh"

namespace vpc
{

RowFcfsArbiter::RowFcfsArbiter(unsigned num_threads)
    : Arbiter(num_threads), perThread(num_threads, 0)
{}

void
RowFcfsArbiter::doEnqueue(const ArbRequest &req, Cycle now)
{
    (void)now;
    if (req.thread >= numThreads())
        vpc_panic("RoW-FCFS enqueue from invalid thread {}", req.thread);
    queue.push_back(req);
    ++perThread[req.thread];
}

bool
RowFcfsArbiter::faultDropOldest(ThreadId t)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].thread == t) {
            queue.erase_at(i);
            --perThread[t];
            return true;
        }
    }
    return false;
}

std::optional<ArbRequest>
RowFcfsArbiter::select(Cycle now)
{
    if (queue.empty())
        return std::nullopt;

    // Oldest demand read, then oldest prefetch read, that does not
    // bypass an older same-line write; else the oldest request.  One
    // O(n) pass; see row_scan.hh for the equivalence argument.
    std::size_t chosen = rowCandidateIndex(queue, rowScratch);

    ArbRequest req = queue[chosen];
    queue.erase_at(chosen);
    --perThread[req.thread];
    recordGrant(req, now);
    return req;
}

bool
RowFcfsArbiter::hasPending() const
{
    return !queue.empty();
}

std::size_t
RowFcfsArbiter::pendingCount() const
{
    return queue.size();
}

std::size_t
RowFcfsArbiter::pendingCount(ThreadId t) const
{
    return perThread.at(t);
}

} // namespace vpc
