#include "arbiter/row_fcfs_arbiter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vpc
{

RowFcfsArbiter::RowFcfsArbiter(unsigned num_threads)
    : Arbiter(num_threads), perThread(num_threads, 0)
{}

void
RowFcfsArbiter::doEnqueue(const ArbRequest &req, Cycle now)
{
    (void)now;
    if (req.thread >= numThreads())
        vpc_panic("RoW-FCFS enqueue from invalid thread {}", req.thread);
    queue.push_back(req);
    ++perThread[req.thread];
}

bool
RowFcfsArbiter::faultDropOldest(ThreadId t)
{
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->thread == t) {
            queue.erase(it);
            --perThread[t];
            return true;
        }
    }
    return false;
}

std::optional<ArbRequest>
RowFcfsArbiter::select(Cycle now)
{
    if (queue.empty())
        return std::nullopt;

    // Oldest demand read, then oldest prefetch read, that does not
    // bypass an older same-line write; else the oldest request.
    auto blocked = [this](std::deque<ArbRequest>::iterator it) {
        for (auto older = queue.begin(); older != it; ++older) {
            if (older->isWrite && older->lineAddr == it->lineAddr)
                return true;
        }
        return false;
    };
    auto chosen = queue.end();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (!it->isWrite && !it->isPrefetch && !blocked(it)) {
            chosen = it;
            break;
        }
    }
    if (chosen == queue.end()) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (!it->isWrite && !blocked(it)) {
                chosen = it;
                break;
            }
        }
    }
    if (chosen == queue.end())
        chosen = queue.begin();

    ArbRequest req = *chosen;
    queue.erase(chosen);
    --perThread[req.thread];
    recordGrant(req, now);
    return req;
}

bool
RowFcfsArbiter::hasPending() const
{
    return !queue.empty();
}

std::size_t
RowFcfsArbiter::pendingCount() const
{
    return queue.size();
}

std::size_t
RowFcfsArbiter::pendingCount(ThreadId t) const
{
    return perThread.at(t);
}

} // namespace vpc
