/**
 * @file
 * The unit of arbitration for shared L2 cache resources.
 *
 * An ArbRequest is a lightweight handle: the paper's implementation
 * stores only a request ID per buffer entry (a reference to a cache
 * controller state machine).  We carry the few fields the arbitration
 * policies themselves need (thread, read/write, arrival order, line
 * address for dependence-aware reordering) plus the opaque @c id the
 * resource owner uses to resume the state machine.
 */

#ifndef VPC_ARBITER_ARB_REQUEST_HH
#define VPC_ARBITER_ARB_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace vpc
{

/** A request waiting for a shared resource. */
struct ArbRequest
{
    /** Opaque handle for the owner (controller state machine index). */
    std::uint32_t id = 0;
    /** Requesting hardware thread. */
    ThreadId thread = 0;
    /** Write requests occupy the data array for two accesses (ECC). */
    bool isWrite = false;
    /** Cycle the request entered arbitration. */
    Cycle arrival = 0;
    /** Global arrival sequence number; total order for FCFS. */
    SeqNum seq = 0;
    /** Line address, used for dependence checks during reordering. */
    Addr lineAddr = 0;
    /**
     * Prefetch-generated request: serviced behind the same thread's
     * demand reads by reorder-capable arbiters.
     */
    bool isPrefetch = false;
};

} // namespace vpc

#endif // VPC_ARBITER_ARB_REQUEST_HH
