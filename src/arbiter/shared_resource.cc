#include "arbiter/shared_resource.hh"

#include "sim/logging.hh"

namespace vpc
{

SharedResource::SharedResource(std::string name,
                               std::unique_ptr<Arbiter> arbiter,
                               Cycle read_latency,
                               unsigned write_accesses)
    : name_(std::move(name)), arb(std::move(arbiter)),
      readLatency(read_latency), writeAccesses(write_accesses)
{
    if (!arb)
        vpc_panic("SharedResource {} constructed without arbiter",
                  name_);
    if (readLatency == 0 || writeAccesses == 0)
        vpc_fatal("SharedResource {}: zero latency/accesses", name_);
}

void
SharedResource::request(const ArbRequest &req, Cycle now)
{
    arb->enqueue(req, now);
}

void
SharedResource::tickGrant(Cycle now)
{
    std::optional<ArbRequest> granted = arb->select(now);
    if (!granted)
        return; // non-work-conserving arbiter with no eligible thread
    Cycle occ = occupancy(*granted) + delayNextGrant;
    delayNextGrant = 0;
    freeAt = now + occ;
    util_.addBusy(occ);
    accesses.inc();
    if (dropNextGrant) {
        // Injected fault: the grant disappears into the void and the
        // downstream state machine waiting on it never advances.
        dropNextGrant = false;
        return;
    }
    if (onGrant)
        onGrant(*granted, now, freeAt);
    if (onGrantTap)
        onGrantTap(*granted, now, freeAt);
}

} // namespace vpc
