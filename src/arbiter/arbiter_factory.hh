/**
 * @file
 * Construction of arbiters from a SystemConfig policy selection.
 */

#ifndef VPC_ARBITER_ARBITER_FACTORY_HH
#define VPC_ARBITER_ARBITER_FACTORY_HH

#include <memory>
#include <vector>

#include "arbiter/arbiter.hh"
#include "arbiter/vpc_arbiter.hh"
#include "sim/config.hh"

namespace vpc
{

/**
 * Build an arbiter for one shared resource.
 *
 * @param policy which policy to instantiate
 * @param num_threads threads sharing the resource
 * @param read_latency resource occupancy of a read, in cycles (used by
 *        the VPC arbiter's virtual service times)
 * @param write_multiplier accesses per write (2 for the data array)
 * @param shares per-thread phi_i; ignored by share-less policies
 * @param opts VPC ablation switches
 * @return a newly constructed arbiter
 */
std::unique_ptr<Arbiter>
makeArbiter(ArbiterPolicy policy, unsigned num_threads,
            Cycle read_latency, unsigned write_multiplier,
            const std::vector<double> &shares,
            const VpcArbiterOptions &opts = {});

/** @return a short display name for @p policy. */
const char *arbiterPolicyName(ArbiterPolicy policy);

} // namespace vpc

#endif // VPC_ARBITER_ARBITER_FACTORY_HH
