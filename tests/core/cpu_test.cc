/**
 * @file
 * Unit tests for the simplified out-of-order core model.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cpu.hh"
#include "system/cmp_system.hh"
#include "system/experiment.hh"
#include "workload/microbench.hh"
#include "workload/workload.hh"

namespace vpc
{
namespace
{

/** Emits only single-cycle compute ops. */
struct ComputeOnly : Workload
{
    MicroOp next() override { return MicroOp{}; }
    std::string name() const override { return "compute"; }
    std::unique_ptr<Workload> clone(std::uint64_t) const override
    {
        return std::make_unique<ComputeOnly>();
    }
};

/** Emits loads to one L1-resident line, optionally dependent. */
struct HotLoads : Workload
{
    explicit HotLoads(bool dep_) : dep(dep_) {}

    MicroOp
    next() override
    {
        MicroOp op;
        op.kind = MicroOp::Kind::Load;
        op.addr = 0x1000;
        op.dependsOnPrevLoad = dep;
        return op;
    }

    std::string name() const override { return "hotloads"; }

    std::unique_ptr<Workload>
    clone(std::uint64_t) const override
    {
        return std::make_unique<HotLoads>(dep);
    }

    bool dep;
};

IntervalStats
runSingle(std::unique_ptr<Workload> wl, Cycle warm = 5'000,
          Cycle measure = 20'000)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::move(wl));
    CmpSystem sys(cfg, std::move(v));
    return sys.runAndMeasure(warm, measure);
}

TEST(Cpu, ComputeIpcBoundedByRetireWidth)
{
    IntervalStats s = runSingle(std::make_unique<ComputeOnly>());
    CoreConfig core;
    EXPECT_LE(s.ipc.at(0), static_cast<double>(core.retireWidth));
    EXPECT_GT(s.ipc.at(0), 0.9 * core.retireWidth);
}

TEST(Cpu, IndependentHotLoadsSustainLsuThroughput)
{
    // L1 hits are never LSU-rejected, so two loads issue per cycle;
    // retire-width and in-order-retire effects keep IPC near 2.
    IntervalStats s = runSingle(std::make_unique<HotLoads>(false));
    EXPECT_GT(s.ipc.at(0), 1.5);
}

TEST(Cpu, DependentLoadsSerializeOnHitLatency)
{
    // Each load waits for the previous one: one load per (hit
    // latency) cycles at best.
    IntervalStats s = runSingle(std::make_unique<HotLoads>(true));
    L1Config l1;
    double bound = 1.0 / static_cast<double>(l1.hitLatency);
    EXPECT_LE(s.ipc.at(0), 1.05 * bound);
    EXPECT_GT(s.ipc.at(0), 0.5 * bound);
}

TEST(Cpu, StoresThrottledByGatheringBufferDrain)
{
    // The Stores microbenchmark is limited by data-array writes (2
    // banks / 16 cycles = 0.125 stores/cycle), reached only through
    // retire-stall backpressure on full gathering buffers.
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<StoresBenchmark>(0));
    CmpSystem sys(cfg, std::move(v));
    IntervalStats s = sys.runAndMeasure(20'000, 40'000);
    EXPECT_GT(sys.cpu(0).storeStallCycles(), 0u);
    EXPECT_NEAR(s.ipc.at(0), 0.15625, 0.01);
}

TEST(Cpu, CountsLoadsAndStoresSeparately)
{
    SystemConfig cfg = makeBaselineConfig(1, ArbiterPolicy::RowFcfs);
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<LoadsBenchmark>(0));
    CmpSystem sys(cfg, std::move(v));
    sys.run(30'000);
    Cpu &cpu = sys.cpu(0);
    EXPECT_GT(cpu.loadsRetired(), 0u);
    EXPECT_EQ(cpu.storesRetired(), 0u);
    // 4 loads per 5 instructions in the unrolled loop.
    EXPECT_NEAR(static_cast<double>(cpu.loadsRetired()) /
                    static_cast<double>(cpu.instrsRetired()),
                0.8, 0.01);
}

TEST(Cpu, DeterministicInstructionCounts)
{
    auto run = [] {
        SystemConfig cfg = makeBaselineConfig(1,
                                              ArbiterPolicy::RowFcfs);
        std::vector<std::unique_ptr<Workload>> v;
        v.push_back(std::make_unique<LoadsBenchmark>(0));
        CmpSystem sys(cfg, std::move(v));
        sys.run(25'000);
        return sys.cpu(0).instrsRetired();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace vpc
