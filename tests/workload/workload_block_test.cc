/**
 * @file
 * Workload determinism and block-fetch equivalence.
 *
 * The run cache's soundness rests on two stream-level contracts:
 *
 *  - determinism: building (or cloning) a workload from the same
 *    (spec, base, seed) replays a bit-identical op stream, so a
 *    content key fully identifies the simulation input;
 *  - block equivalence: nextBlock(out) returns exactly the ops that
 *    out.size() next() calls would have, so the processor's block
 *    buffer cannot perturb any model statistic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "sim/format.hh"
#include "system/options.hh"
#include "workload/spec2000.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace vpc
{
namespace
{

/** Every concrete family reachable from a spec string. */
const std::vector<std::string> kSpecs = {"art", "mcf", "loads",
                                         "stores", "idle"};

std::unique_ptr<Workload>
make(const std::string &spec, Addr base, std::uint64_t seed)
{
    std::string err;
    auto wl = makeWorkloadFromSpec(spec, base, seed, err);
    EXPECT_NE(wl, nullptr) << err;
    return wl;
}

std::vector<MicroOp>
drainNext(Workload &wl, std::size_t n)
{
    std::vector<MicroOp> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(wl.next());
    return out;
}

/** Drain @p n ops via nextBlock with deliberately uneven chunks. */
std::vector<MicroOp>
drainBlocks(Workload &wl, std::size_t n)
{
    static const std::size_t chunks[] = {1, 3, 128, 64, 7, 256, 2};
    std::vector<MicroOp> out(n);
    std::size_t pos = 0, c = 0;
    while (pos < n) {
        std::size_t len = std::min(chunks[c++ % std::size(chunks)],
                                   n - pos);
        wl.nextBlock(std::span<MicroOp>(out.data() + pos, len));
        pos += len;
    }
    return out;
}

void
expectSameStream(const std::vector<MicroOp> &a,
                 const std::vector<MicroOp> &b, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].kind == b[i].kind && a[i].addr == b[i].addr &&
                    a[i].dependsOnPrevLoad == b[i].dependsOnPrevLoad)
            << what << ": streams diverge at op " << i;
    }
}

constexpr std::size_t kOps = 10'000;

TEST(WorkloadBlock, NextBlockMatchesRepeatedNext)
{
    for (const std::string &spec : kSpecs) {
        auto serial = make(spec, 5ull << 40, 7);
        auto blocked = make(spec, 5ull << 40, 7);
        expectSameStream(drainNext(*serial, kOps),
                         drainBlocks(*blocked, kOps), spec);
    }
}

TEST(WorkloadBlock, SameKeyReplaysBitIdentically)
{
    for (const std::string &spec : kSpecs) {
        auto a = make(spec, 3ull << 40, 11);
        auto b = make(spec, 3ull << 40, 11);
        expectSameStream(drainNext(*a, kOps), drainNext(*b, kOps),
                         spec);
    }
}

TEST(WorkloadBlock, CloneRestartsAndReseeds)
{
    for (const std::string &spec : kSpecs) {
        auto original = make(spec, 2ull << 40, 5);
        drainNext(*original, 1234); // advance; clone must not care
        auto cloned = original->clone(9);
        auto fresh = make(spec, 2ull << 40,
                          spec == "art" || spec == "mcf" ? 9 : 5);
        expectSameStream(drainNext(*cloned, kOps),
                         drainNext(*fresh, kOps), spec);
    }
}

TEST(WorkloadBlock, SpecRebuildMatchesTargetClone)
{
    // targetIpc() clones the shared-run workload with seed 1; the run
    // cache rebuilds it from (spec, base, 1) instead.  Equal streams
    // here are what make the keyed target IPC exact.
    for (const std::string &spec : kSpecs) {
        auto shared = make(spec, 1ull << 40, 42);
        auto cloned = shared->clone(1);
        auto rebuilt = make(spec, 1ull << 40, 1);
        expectSameStream(drainNext(*cloned, kOps),
                         drainNext(*rebuilt, kOps), spec);
    }
}

TEST(WorkloadBlock, TraceReplayAndBlocksAcrossWrap)
{
    std::string path = format("{}/vpc_block_trace_test.trace",
                              ::testing::TempDir());
    {
        TraceRecorder rec(makeSpec2000("art", 0, 3), path);
        drainNext(rec, 3'000);
    } // destructor flushes
    TraceWorkload serial(path);
    TraceWorkload blocked(path);
    ASSERT_GT(serial.length(), 0u);
    // Drain past the end so the loop-back seam is block-covered too.
    std::size_t n = serial.length() * 2 + 137;
    expectSameStream(drainNext(serial, n), drainBlocks(blocked, n),
                     "trace");
    std::remove(path.c_str());
}

TEST(WorkloadBlock, DefaultNextBlockLoopsNext)
{
    // A minimal workload that only implements next() must still honor
    // the block contract through the base-class default.
    struct Counting : Workload
    {
        Addr n = 0;
        MicroOp
        next() override
        {
            return MicroOp{MicroOp::Kind::Load, n++ * 64, false};
        }
        std::string name() const override { return "counting"; }
        std::unique_ptr<Workload>
        clone(std::uint64_t) const override
        {
            return std::make_unique<Counting>();
        }
    };
    Counting serial, blocked;
    expectSameStream(drainNext(serial, 1'000),
                     drainBlocks(blocked, 1'000), "counting");
}

} // namespace
} // namespace vpc
