/**
 * @file
 * Unit tests for the Table 2 microbenchmarks.
 */

#include <gtest/gtest.h>

#include "workload/microbench.hh"

namespace vpc
{
namespace
{

TEST(MicroBenchmark, LoadsEmitsUnrolledRowWalk)
{
    LoadsBenchmark wl(0x1000000);
    // Pattern: 4 loads (stride 64) then one compute.
    for (unsigned iter = 0; iter < 3; ++iter) {
        for (unsigned i = 0; i < 4; ++i) {
            MicroOp op = wl.next();
            EXPECT_EQ(op.kind, MicroOp::Kind::Load);
            EXPECT_EQ(op.addr,
                      0x1000000 + 64ull * (iter * 4 + i));
            EXPECT_FALSE(op.dependsOnPrevLoad);
        }
        EXPECT_EQ(wl.next().kind, MicroOp::Kind::Compute);
    }
}

TEST(MicroBenchmark, StoresEmitsStores)
{
    StoresBenchmark wl(0);
    MicroOp op = wl.next();
    EXPECT_EQ(op.kind, MicroOp::Kind::Store);
}

TEST(MicroBenchmark, WrapsAt32KB)
{
    LoadsBenchmark wl(0);
    Addr max_addr = 0;
    // One full pass: 512 rows -> 512 loads + 128 computes.
    for (unsigned i = 0; i < 512 + 128; ++i) {
        MicroOp op = wl.next();
        if (op.kind == MicroOp::Kind::Load)
            max_addr = std::max(max_addr, op.addr);
    }
    EXPECT_EQ(max_addr, MicroBenchmark::kArrayBytes - 64);
    // Next load restarts at the base.
    MicroOp op = wl.next();
    EXPECT_EQ(op.kind, MicroOp::Kind::Load);
    EXPECT_EQ(op.addr, 0u);
}

TEST(MicroBenchmark, ArrayIsTwiceTheL1)
{
    EXPECT_EQ(MicroBenchmark::kArrayBytes, 2u * 16 * 1024);
}

TEST(MicroBenchmark, CloneRestartsTheStream)
{
    LoadsBenchmark wl(0);
    wl.next();
    wl.next();
    auto fresh = wl.clone(7);
    MicroOp op = fresh->next();
    EXPECT_EQ(op.addr, 0u);
    EXPECT_EQ(fresh->name(), "Loads");
}

TEST(MicroBenchmark, MemoryOpFractionIs80Percent)
{
    StoresBenchmark wl(0);
    unsigned mem_ops = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        if (wl.next().kind != MicroOp::Kind::Compute)
            ++mem_ops;
    }
    EXPECT_EQ(mem_ops, 800u);
}

} // namespace
} // namespace vpc
