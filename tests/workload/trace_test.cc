/**
 * @file
 * Unit tests for trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/microbench.hh"
#include "workload/spec2000.hh"
#include "workload/trace.hh"

namespace vpc
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    TraceTest()
    {
        path = testing::TempDir() + "vpc_trace_test.txt";
    }

    ~TraceTest() override { std::remove(path.c_str()); }

    void
    writeTrace(const std::string &contents)
    {
        std::ofstream out(path);
        out << contents;
    }

    std::string path;
};

TEST_F(TraceTest, ParsesAllOpKinds)
{
    writeTrace("# header comment\n"
               "L 1000\n"
               "S 1040  # trailing comment\n"
               "L 1080 d\n"
               "C 3\n"
               "C\n");
    TraceWorkload wl(path);
    EXPECT_EQ(wl.length(), 7u); // 3 mem ops + 3 computes + 1 compute

    MicroOp op = wl.next();
    EXPECT_EQ(op.kind, MicroOp::Kind::Load);
    EXPECT_EQ(op.addr, 0x1000u);
    op = wl.next();
    EXPECT_EQ(op.kind, MicroOp::Kind::Store);
    EXPECT_EQ(op.addr, 0x1040u);
    op = wl.next();
    EXPECT_EQ(op.kind, MicroOp::Kind::Load);
    EXPECT_TRUE(op.dependsOnPrevLoad);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(wl.next().kind, MicroOp::Kind::Compute);
}

TEST_F(TraceTest, LoopsAtEndOfTrace)
{
    writeTrace("L 40\nS 80\n");
    TraceWorkload wl(path);
    EXPECT_EQ(wl.next().addr, 0x40u);
    EXPECT_EQ(wl.next().addr, 0x80u);
    EXPECT_EQ(wl.next().addr, 0x40u); // wrapped
}

TEST_F(TraceTest, BaseAddressOffsetsEveryOp)
{
    writeTrace("L 100\n");
    TraceWorkload wl(path, 1ull << 32);
    EXPECT_EQ(wl.next().addr, (1ull << 32) + 0x100);
}

TEST_F(TraceTest, MalformedTracesAreFatal)
{
    writeTrace("X 1000\n");
    EXPECT_EXIT((TraceWorkload{path}), testing::ExitedWithCode(1),
                "unknown op");
    writeTrace("L zzz\n");
    EXPECT_EXIT((TraceWorkload{path}), testing::ExitedWithCode(1),
                "bad address");
    writeTrace("S 40 d\n");
    EXPECT_EXIT((TraceWorkload{path}), testing::ExitedWithCode(1),
                "dependence flag on a store");
    writeTrace("");
    EXPECT_EXIT((TraceWorkload{path}), testing::ExitedWithCode(1),
                "no operations");
    EXPECT_EXIT((TraceWorkload{"/nonexistent/file"}),
                testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceTest, RecordThenReplayRoundTrips)
{
    // Record 200 ops of the Loads microbenchmark, then replay and
    // compare against a fresh generator.
    {
        TraceRecorder rec(std::make_unique<LoadsBenchmark>(0), path,
                          200);
        for (unsigned i = 0; i < 300; ++i)
            rec.next(); // past the cap: recording stops at 200
        EXPECT_EQ(rec.recorded(), 200u);
    }
    TraceWorkload replay(path);
    LoadsBenchmark fresh(0);
    for (unsigned i = 0; i < 200; ++i) {
        MicroOp a = replay.next();
        MicroOp b = fresh.next();
        ASSERT_EQ(a.kind, b.kind) << "op " << i;
        if (a.kind != MicroOp::Kind::Compute)
            ASSERT_EQ(a.addr, b.addr) << "op " << i;
    }
}

TEST_F(TraceTest, RecorderRoundTripsSyntheticWithDependences)
{
    {
        TraceRecorder rec(makeSpec2000("mcf", 0, 9), path, 500);
        for (unsigned i = 0; i < 500; ++i)
            rec.next();
    }
    TraceWorkload replay(path);
    auto fresh = makeSpec2000("mcf", 0, 9);
    for (unsigned i = 0; i < 500; ++i) {
        MicroOp a = replay.next();
        MicroOp b = fresh->next();
        ASSERT_EQ(a.kind, b.kind) << "op " << i;
        if (a.kind == MicroOp::Kind::Load) {
            ASSERT_EQ(a.addr, b.addr);
            ASSERT_EQ(a.dependsOnPrevLoad, b.dependsOnPrevLoad);
        }
    }
}

TEST_F(TraceTest, RecorderForwardsUnchanged)
{
    TraceRecorder rec(std::make_unique<StoresBenchmark>(0x4000),
                      path, 100);
    StoresBenchmark fresh(0x4000);
    for (unsigned i = 0; i < 50; ++i) {
        MicroOp a = rec.next();
        MicroOp b = fresh.next();
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST_F(TraceTest, TraceNameFromBasename)
{
    writeTrace("L 0\n");
    TraceWorkload wl(path);
    EXPECT_EQ(wl.name().rfind("trace:", 0), 0u);
}

} // namespace
} // namespace vpc
