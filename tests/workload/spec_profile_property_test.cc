/**
 * @file
 * Parameterized property tests over every SPEC 2000 stand-in profile.
 */

#include <gtest/gtest.h>

#include "workload/spec2000.hh"

namespace vpc
{
namespace
{

class SpecProfileSweep
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(SpecProfileSweep, MemFractionMatchesProfile)
{
    const SyntheticParams &p = spec2000Params(GetParam());
    auto wl = makeSpec2000(GetParam(), 0, 17);
    unsigned mem = 0;
    const unsigned n = 30000;
    for (unsigned i = 0; i < n; ++i) {
        if (wl->next().kind != MicroOp::Kind::Compute)
            ++mem;
    }
    EXPECT_NEAR(mem / double(n), p.memFrac, 0.02);
}

TEST_P(SpecProfileSweep, StoreFractionMatchesProfile)
{
    const SyntheticParams &p = spec2000Params(GetParam());
    auto wl = makeSpec2000(GetParam(), 0, 23);
    unsigned mem = 0, stores = 0;
    for (unsigned i = 0; i < 40000; ++i) {
        MicroOp op = wl->next();
        if (op.kind == MicroOp::Kind::Store) {
            ++stores;
            ++mem;
        } else if (op.kind == MicroOp::Kind::Load) {
            ++mem;
        }
    }
    ASSERT_GT(mem, 0u);
    EXPECT_NEAR(stores / double(mem), p.storeFrac, 0.03);
}

TEST_P(SpecProfileSweep, AddressesStayInsideTheThreadRegion)
{
    const SyntheticParams &p = spec2000Params(GetParam());
    Addr base = 0x7ull << 40;
    auto wl = makeSpec2000(GetParam(), base, 31);
    Addr limit = base + p.workingSetBytes + p.hotBytes + p.l2Bytes +
                 64;
    for (unsigned i = 0; i < 20000; ++i) {
        MicroOp op = wl->next();
        if (op.kind == MicroOp::Kind::Compute)
            continue;
        EXPECT_GE(op.addr, base);
        EXPECT_LT(op.addr, limit);
    }
}

TEST_P(SpecProfileSweep, DeterministicForFixedSeed)
{
    auto a = makeSpec2000(GetParam(), 0x1000, 5);
    auto b = makeSpec2000(GetParam(), 0x1000, 5);
    for (unsigned i = 0; i < 2000; ++i) {
        MicroOp x = a->next(), y = b->next();
        ASSERT_EQ(x.kind, y.kind);
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.dependsOnPrevLoad, y.dependsOnPrevLoad);
    }
}

TEST_P(SpecProfileSweep, OnlyLoadsCarryDependences)
{
    auto wl = makeSpec2000(GetParam(), 0, 41);
    for (unsigned i = 0; i < 10000; ++i) {
        MicroOp op = wl->next();
        if (op.dependsOnPrevLoad)
            EXPECT_EQ(op.kind, MicroOp::Kind::Load);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SpecProfileSweep,
                         ::testing::ValuesIn(spec2000Names()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace vpc
