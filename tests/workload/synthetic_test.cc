/**
 * @file
 * Unit tests for the synthetic workload generator and the SPEC 2000
 * calibration table.
 */

#include <gtest/gtest.h>

#include "workload/spec2000.hh"
#include "workload/synthetic.hh"

namespace vpc
{
namespace
{

TEST(SyntheticWorkload, MemFractionMatchesParameter)
{
    SyntheticParams p;
    p.memFrac = 0.4;
    SyntheticWorkload wl(p, 0, 1);
    unsigned mem = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i) {
        if (wl.next().kind != MicroOp::Kind::Compute)
            ++mem;
    }
    EXPECT_NEAR(mem / double(n), 0.4, 0.02);
}

TEST(SyntheticWorkload, StoreFractionOfMemOps)
{
    SyntheticParams p;
    p.memFrac = 1.0;
    p.storeFrac = 0.3;
    SyntheticWorkload wl(p, 0, 2);
    unsigned stores = 0;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i) {
        if (wl.next().kind == MicroOp::Kind::Store)
            ++stores;
    }
    EXPECT_NEAR(stores / double(n), 0.3, 0.02);
}

TEST(SyntheticWorkload, AddressesStayInThreadSpace)
{
    SyntheticParams p;
    p.workingSetBytes = 1 << 20;
    Addr base = 1ull << 40;
    SyntheticWorkload wl(p, base, 3);
    for (unsigned i = 0; i < 5000; ++i) {
        MicroOp op = wl.next();
        if (op.kind != MicroOp::Kind::Compute) {
            EXPECT_GE(op.addr, base);
            EXPECT_LT(op.addr,
                      base + (1 << 20) + p.hotBytes + p.l2Bytes +
                          64);
        }
    }
}

TEST(SyntheticWorkload, StoreLocalityDrivesGatherableRuns)
{
    SyntheticParams p;
    p.memFrac = 1.0;
    p.storeFrac = 1.0;
    p.storeLocality = 0.8;
    SyntheticWorkload wl(p, 0, 4);
    Addr prev_line = ~0ull;
    unsigned same = 0, total = 0;
    for (unsigned i = 0; i < 10000; ++i) {
        MicroOp op = wl.next();
        Addr line = lineAlign(op.addr, 64);
        if (prev_line != ~0ull) {
            ++total;
            same += line == prev_line ? 1 : 0;
        }
        prev_line = line;
    }
    EXPECT_NEAR(same / double(total), 0.8, 0.03);
}

TEST(SyntheticWorkload, DeterministicForSameSeed)
{
    SyntheticParams p = spec2000Params("gcc");
    SyntheticWorkload a(p, 0, 42), b(p, 0, 42);
    for (unsigned i = 0; i < 1000; ++i) {
        MicroOp x = a.next(), y = b.next();
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.addr, y.addr);
    }
}

TEST(SyntheticWorkload, CloneReseedsButKeepsProfile)
{
    SyntheticParams p = spec2000Params("art");
    SyntheticWorkload wl(p, 0x100, 1);
    auto c = wl.clone(99);
    EXPECT_EQ(c->name(), "art");
}

TEST(Spec2000, AllEighteenBenchmarksPresent)
{
    const auto &names = spec2000Names();
    EXPECT_EQ(names.size(), 18u);
    EXPECT_EQ(names.front(), "art");      // highest data-array util
    EXPECT_EQ(names.back(), "sixtrack");  // lowest
}

TEST(Spec2000, ProfilesFollowThePapersCharacterization)
{
    // equake and swim have very few L2 writes (Figure 7).
    EXPECT_LT(spec2000Params("equake").storeFrac, 0.1);
    EXPECT_LT(spec2000Params("swim").storeFrac, 0.1);
    // mcf is the canonical pointer chaser: the most dependence-bound
    // profile in the table.
    double mcf_dep = spec2000Params("mcf").depFrac;
    for (const std::string &name : spec2000Names())
        EXPECT_LE(spec2000Params(name).depFrac, mcf_dep) << name;
    // mcf/swim/lucas/equake working sets exceed the 16MB L2.
    EXPECT_GT(spec2000Params("mcf").workingSetBytes, 16ull << 20);
    EXPECT_GT(spec2000Params("swim").workingSetBytes, 16ull << 20);
    // sixtrack is L1-resident.
    EXPECT_GT(spec2000Params("sixtrack").hotFrac, 0.8);
}

TEST(Spec2000, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(spec2000Params("nosuch"), testing::ExitedWithCode(1),
                "unknown");
}

TEST(Spec2000, FactoryBuildsWorkload)
{
    auto wl = makeSpec2000("gzip", 0x1000, 5);
    EXPECT_EQ(wl->name(), "gzip");
    wl->next();
}

} // namespace
} // namespace vpc
