/**
 * @file
 * Unit tests for the VPC Capacity Manager (Section 4.2).
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace vpc
{
namespace
{

CacheLine
line(ThreadId owner, std::uint64_t last_use, bool valid = true)
{
    CacheLine l;
    l.valid = valid;
    l.owner = owner;
    l.lastUse = last_use;
    return l;
}

TEST(VpcCapacityManager, QuotasFromBetas)
{
    VpcCapacityManager mgr({0.25, 0.25, 0.25, 0.25}, 32);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_EQ(mgr.quota(t), 8u);
    VpcCapacityManager uneven({0.5, 0.1, 0.1, 0.1}, 32);
    EXPECT_EQ(uneven.quota(0), 16u);
    EXPECT_EQ(uneven.quota(1), 3u);
}

TEST(VpcCapacityManager, InvalidLinesUsedFirst)
{
    VpcCapacityManager mgr({0.5, 0.5}, 4);
    std::vector<CacheLine> set = {line(0, 1), line(0, 2),
                                  line(1, 3, false), line(1, 4)};
    EXPECT_EQ(mgr.victim(set, 0), 2u);
}

TEST(VpcCapacityManager, Condition1TakesFromOverQuotaThread)
{
    // Quotas: 1 way each of 4.  Thread 1 holds 3 ways (over quota);
    // thread 0 requests: the victim must be thread 1's LRU line.
    VpcCapacityManager mgr({0.25, 0.25, 0.25, 0.25}, 4);
    std::vector<CacheLine> set = {line(0, 10), line(1, 5), line(1, 2),
                                  line(1, 7)};
    EXPECT_EQ(mgr.victim(set, 0), 2u); // lastUse 2 is thread 1's LRU
}

TEST(VpcCapacityManager, Condition1NeverDropsThreadBelowQuota)
{
    // Thread 1 exactly at quota (2 of 4 with beta=.5): its lines are
    // protected; requester (over quota itself) loses its own LRU.
    VpcCapacityManager mgr({0.5, 0.5}, 4);
    std::vector<CacheLine> set = {line(0, 1), line(0, 9), line(1, 2),
                                  line(1, 3)};
    // Thread 0 at quota too -> condition 2: requester's own LRU.
    EXPECT_EQ(mgr.victim(set, 0), 0u);
}

TEST(VpcCapacityManager, Condition2MatchesPrivateCacheReplacement)
{
    VpcCapacityManager mgr({0.5, 0.5}, 4);
    std::vector<CacheLine> set = {line(0, 8), line(0, 4), line(1, 1),
                                  line(1, 2)};
    // All at quota; thread 1 requests -> its own LRU (index 2),
    // exactly what a 2-way private cache would replace.
    EXPECT_EQ(mgr.victim(set, 1), 2u);
}

TEST(VpcCapacityManager, FairnessPicksGloballyLruAmongOverQuota)
{
    // Both threads over a 1-way quota; the globally LRU over-quota
    // line goes, regardless of owner.
    VpcCapacityManager mgr({0.25, 0.25, 0.25, 0.25}, 4);
    std::vector<CacheLine> set = {line(0, 5), line(0, 9), line(1, 3),
                                  line(1, 8)};
    EXPECT_EQ(mgr.victim(set, 2), 2u);
}

TEST(VpcCapacityManager, RequesterOverQuotaReplacesItself)
{
    // Requester holds 3 of 4 ways with quota 2; other thread within
    // quota.  Condition 1 applies to the requester itself.
    VpcCapacityManager mgr({0.5, 0.25, 0.25, 0.0}, 4);
    std::vector<CacheLine> set = {line(0, 5), line(0, 1), line(0, 9),
                                  line(1, 3)};
    EXPECT_EQ(mgr.victim(set, 0), 1u);
}

TEST(VpcCapacityManager, ZeroShareThreadAlwaysOverQuota)
{
    // A thread with beta=0 occupying any way is over quota, so its
    // lines are always reclaimable.
    VpcCapacityManager mgr({1.0, 0.0}, 4);
    std::vector<CacheLine> set = {line(0, 1), line(0, 2), line(0, 3),
                                  line(1, 99)};
    EXPECT_EQ(mgr.victim(set, 0), 3u);
}

TEST(VpcCapacityManager, UnallocatedWaysDistributedByLru)
{
    // betas sum to 0.5 of 4 ways: 2 ways unallocated.  Whoever uses
    // them is over quota and competes by recency.
    VpcCapacityManager mgr({0.25, 0.25}, 4);
    std::vector<CacheLine> set = {line(0, 4), line(0, 6), line(1, 2),
                                  line(1, 8)};
    // Both over quota (2 > 1); globally LRU over-quota line is idx 2.
    EXPECT_EQ(mgr.victim(set, 0), 2u);
}

TEST(VpcCapacityManager, ShareUpdate)
{
    VpcCapacityManager mgr({0.5, 0.5}, 8);
    EXPECT_EQ(mgr.quota(0), 4u);
    mgr.setShare(0, 0.25);
    EXPECT_EQ(mgr.quota(0), 2u);
}

TEST(VpcCapacityManager, OverAllocationFatal)
{
    EXPECT_EXIT((VpcCapacityManager{{0.7, 0.7}, 8}),
                testing::ExitedWithCode(1), "over-allocated");
}

TEST(LruReplacement, PrefersInvalidThenLru)
{
    LruReplacement lru;
    std::vector<CacheLine> set = {line(0, 5), line(1, 2, false),
                                  line(0, 1)};
    EXPECT_EQ(lru.victim(set, 0), 1u);
    set[1].valid = true;
    EXPECT_EQ(lru.victim(set, 0), 2u);
}

} // namespace
} // namespace vpc
