/**
 * @file
 * Unit tests for the banked L2 wrapper: address interleaving,
 * crossbar latency, stat aggregation and share fan-out.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arbiter/vpc_arbiter.hh"
#include "cache/l2_cache.hh"
#include "sim/simulator.hh"

namespace vpc
{
namespace
{

class L2CacheTest : public ::testing::Test
{
  protected:
    explicit L2CacheTest(ArbiterPolicy policy = ArbiterPolicy::Vpc)
    {
        cfg.numProcessors = 2;
        cfg.arbiterPolicy = policy;
        cfg.validate();
        mc = std::make_unique<MemoryController>(cfg.mem, 2, 64,
                                                sim.events());
        l2 = std::make_unique<L2Cache>(cfg, sim.events(), *mc);
        l2->setResponseHandler([this](ThreadId t, Addr la) {
            responses.push_back({t, la, sim.now()});
        });
        sim.addTicking(l2.get());
        sim.addTicking(mc.get());
    }

    struct Response
    {
        ThreadId thread;
        Addr lineAddr;
        Cycle at;
    };

    void
    runToIdle(Cycle limit = 20'000)
    {
        // Let crossbar-transit events land before polling quiesced().
        Cycle end = sim.now() + limit;
        sim.run(4);
        while (sim.now() < end && !l2->quiesced())
            sim.step();
    }

    SystemConfig cfg;
    Simulator sim;
    std::unique_ptr<MemoryController> mc;
    std::unique_ptr<L2Cache> l2;
    std::vector<Response> responses;
};

TEST_F(L2CacheTest, LineInterleavesAcrossBanks)
{
    EXPECT_EQ(l2->bankOf(0x0), 0u);
    EXPECT_EQ(l2->bankOf(0x40), 1u);
    EXPECT_EQ(l2->bankOf(0x80), 0u);
    EXPECT_EQ(l2->bankOf(0x7F), 1u); // sub-line offset irrelevant
}

TEST_F(L2CacheTest, LoadsRouteToTheRightBank)
{
    l2->load(0, 0x0, sim.now());
    l2->load(0, 0x40, sim.now());
    runToIdle();
    EXPECT_EQ(l2->bank(0).readCount(0), 1u);
    EXPECT_EQ(l2->bank(1).readCount(0), 1u);
    EXPECT_EQ(l2->readCount(0), 2u); // aggregation
}

TEST_F(L2CacheTest, CrossbarAddsRequestLatency)
{
    // Warm the line, then measure a hit round trip: 2 (request
    // crossbar) + 14 (bank pipeline) = 16 cycles.
    l2->load(0, 0x1000, sim.now());
    runToIdle();
    responses.clear();
    while (sim.now() & 1)
        sim.step();
    Cycle start = sim.now();
    l2->load(0, 0x1000, start);
    runToIdle();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].at - start, 16u);
}

TEST_F(L2CacheTest, StoreBackpressurePerBankPerThread)
{
    L2Config l2cfg;
    // Fill thread 0's gathering buffer on bank 0 (line addresses all
    // map to bank 0; distinct lines so nothing gathers).
    unsigned accepted = 0;
    for (unsigned i = 0; i < 2 * l2cfg.sgbEntriesPerThread; ++i) {
        if (l2->store(0, 0x80ull * i, sim.now()))
            ++accepted;
    }
    EXPECT_EQ(accepted, l2cfg.sgbEntriesPerThread);
    // Other thread and other bank are unaffected.
    EXPECT_TRUE(l2->store(1, 0x0, sim.now()));
    EXPECT_TRUE(l2->store(0, 0x40, sim.now()));
}

TEST_F(L2CacheTest, SetBandwidthShareReachesEveryBank)
{
    l2->setBandwidthShare(0, 0.9);
    l2->setBandwidthShare(1, 0.1);
    for (unsigned b = 0; b < l2->numBanks(); ++b) {
        auto &arb = dynamic_cast<VpcArbiter &>(
            l2->bank(b).dataArray().arbiter());
        EXPECT_DOUBLE_EQ(arb.share(0), 0.9);
        EXPECT_DOUBLE_EQ(arb.share(1), 0.1);
    }
}

TEST_F(L2CacheTest, UtilizationAggregatesAcrossBanks)
{
    l2->load(0, 0x0, sim.now());
    runToIdle();
    // One miss on bank 0 only: mean tag busy = (bank0 + 0) / 2.
    EXPECT_GT(l2->tagBusyMean(), 0.0);
    EXPECT_EQ(l2->bank(1).tagArray().util().busyCycles(), 0u);
    EXPECT_DOUBLE_EQ(
        l2->tagBusyMean(),
        static_cast<double>(
            l2->bank(0).tagArray().util().busyCycles()) /
            2.0);
}

TEST_F(L2CacheTest, QuiescedOnlyWhenAllBanksIdle)
{
    EXPECT_TRUE(l2->quiesced());
    l2->load(0, 0x40, sim.now()); // bank 1
    sim.step();
    sim.step();
    sim.step();
    EXPECT_FALSE(l2->quiesced());
    runToIdle();
    EXPECT_TRUE(l2->quiesced());
}

} // namespace
} // namespace vpc
