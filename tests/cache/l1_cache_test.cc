/**
 * @file
 * Unit tests for the write-through L1 D-cache with MSHRs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/l1_cache.hh"

namespace vpc
{
namespace
{

class L1CacheTest : public ::testing::Test
{
  protected:
    L1CacheTest() : l1(L1Config{}, 0, events)
    {
        l1.setMissHandler([this](Addr line, Cycle now,
                                 bool prefetch) {
            (void)prefetch;
            fetches.push_back({line, now});
        });
    }

    EventQueue events;
    L1DCache l1;
    std::vector<std::pair<Addr, Cycle>> fetches;
};

TEST_F(L1CacheTest, HitAfterFill)
{
    bool first_done = false;
    auto res = l1.load(0x1000, 0, [&] { first_done = true; });
    EXPECT_EQ(res, L1DCache::LoadResult::Miss);
    ASSERT_EQ(fetches.size(), 1u);
    EXPECT_EQ(fetches[0].first, 0x1000u);

    l1.fill(0x1000, 50);
    EXPECT_TRUE(first_done);

    bool second_done = false;
    res = l1.load(0x1020, 100, [&] { second_done = true; });
    EXPECT_EQ(res, L1DCache::LoadResult::Hit);
    EXPECT_FALSE(second_done); // hit latency not yet elapsed
    events.runDue(100 + L1Config{}.hitLatency);
    EXPECT_TRUE(second_done);
}

TEST_F(L1CacheTest, SecondaryMissMerges)
{
    int done = 0;
    l1.load(0x1000, 0, [&] { ++done; });
    l1.load(0x1010, 0, [&] { ++done; });
    EXPECT_EQ(fetches.size(), 1u); // one L2 fetch for both
    EXPECT_EQ(l1.mergedMissCount(), 1u);
    l1.fill(0x1000, 10);
    EXPECT_EQ(done, 2);
}

TEST_F(L1CacheTest, BlocksWhenMshrsExhausted)
{
    L1Config cfg;
    for (unsigned i = 0; i < cfg.mshrs; ++i) {
        auto res = l1.load(0x10000 + 64 * i, 0, [] {});
        EXPECT_EQ(res, L1DCache::LoadResult::Miss);
    }
    EXPECT_EQ(l1.mshrsInUse(), cfg.mshrs);
    auto res = l1.load(0x90000, 0, [] {});
    EXPECT_EQ(res, L1DCache::LoadResult::Blocked);
    EXPECT_EQ(l1.blockedCount(), 1u);
    l1.fill(0x10000, 10);
    EXPECT_EQ(l1.mshrsInUse(), cfg.mshrs - 1);
}

TEST_F(L1CacheTest, StoreDoesNotAllocate)
{
    l1.store(0x2000, 0);
    auto res = l1.load(0x2000, 1, [] {});
    EXPECT_EQ(res, L1DCache::LoadResult::Miss); // no write allocate
}

TEST_F(L1CacheTest, StoreUpdatesResidentLine)
{
    l1.load(0x3000, 0, [] {});
    l1.fill(0x3000, 10);
    l1.store(0x3004, 20); // hits; keeps the line warm
    auto res = l1.load(0x3000, 30, [] {});
    EXPECT_EQ(res, L1DCache::LoadResult::Hit);
}

TEST_F(L1CacheTest, FillWithoutMshrPanics)
{
    EXPECT_DEATH(l1.fill(0x5000, 0), "no matching MSHR");
}

TEST_F(L1CacheTest, CapacityEviction)
{
    // 16KB 4-way: 64 sets.  Fill five lines mapping to the same set.
    L1Config cfg;
    std::uint64_t sets =
        cfg.sizeBytes / (cfg.ways * cfg.lineBytes);
    Addr stride = sets * cfg.lineBytes;
    for (unsigned i = 0; i < 5; ++i) {
        l1.load(stride * i, 0, [] {});
        l1.fill(stride * i, 1);
    }
    // The first line was LRU and must have been evicted.
    EXPECT_EQ(l1.load(0, 10, [] {}), L1DCache::LoadResult::Miss);
    EXPECT_EQ(l1.load(stride, 10, [] {}),
              L1DCache::LoadResult::Hit);
}

} // namespace
} // namespace vpc
