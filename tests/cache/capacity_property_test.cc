/**
 * @file
 * Randomized property tests for the VPC Capacity Manager.
 *
 * For thousands of randomly generated set states, the victim choice
 * must satisfy the Section 4.2 invariants:
 *
 *  1. invalid ways are always consumed first;
 *  2. a valid victim owned by thread j != requester implies j holds
 *     MORE than its quota in the set (taking the line cannot drop j
 *     below its allocation);
 *  3. when no thread is over quota, the victim is the requester's own
 *     LRU line (private-cache-equivalent replacement);
 *  4. among over-quota candidates the globally LRU line is chosen
 *     (the fairness refinement);
 *  5. a thread occupying at most its quota never loses a line to
 *     another thread (the capacity guarantee).
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cache/replacement.hh"
#include "sim/random.hh"

namespace vpc
{
namespace
{

struct Scenario
{
    unsigned ways;
    std::vector<double> betas;
};

class CapacitySweep : public ::testing::TestWithParam<Scenario>
{};

TEST_P(CapacitySweep, VictimSatisfiesAllInvariants)
{
    const Scenario sc = GetParam();
    const auto threads = static_cast<unsigned>(sc.betas.size());
    VpcCapacityManager mgr(sc.betas, sc.ways);
    Rng rng(0xbeef + sc.ways, threads);

    for (unsigned trial = 0; trial < 4000; ++trial) {
        std::vector<CacheLine> set(sc.ways);
        bool any_invalid = false;
        for (CacheLine &line : set) {
            line.valid = rng.chance(0.9);
            line.owner = rng.below(threads);
            line.lastUse = rng.below(1'000'000);
            any_invalid |= !line.valid;
        }
        ThreadId requester = rng.below(threads);
        // Ensure the requester owns at least one line so condition 2
        // always has a fallback (the system maintains this invariant:
        // the requester is filling, so it either finds an over-quota
        // victim or replaces itself).
        if (!any_invalid) {
            bool owns = false;
            for (const CacheLine &line : set)
                owns |= line.valid && line.owner == requester;
            if (!owns)
                set[rng.below(sc.ways)].owner = requester;
        }

        unsigned v = mgr.victim(set, requester);
        ASSERT_LT(v, sc.ways);

        // (1) invalid first.
        if (any_invalid) {
            EXPECT_FALSE(set[v].valid);
            continue;
        }

        std::vector<unsigned> occ(threads, 0);
        for (const CacheLine &line : set)
            ++occ[line.owner];
        bool any_over = false;
        for (ThreadId t = 0; t < threads; ++t)
            any_over |= occ[t] > mgr.quota(t);

        ThreadId owner = set[v].owner;
        if (owner != requester) {
            // (2) only over-quota threads lose lines to others.
            EXPECT_GT(occ[owner], mgr.quota(owner));
        }
        if (!any_over) {
            // (3) private-equivalent: requester's own LRU line.
            EXPECT_EQ(owner, requester);
            std::uint64_t own_lru =
                std::numeric_limits<std::uint64_t>::max();
            for (const CacheLine &line : set) {
                if (line.owner == requester)
                    own_lru = std::min(own_lru, line.lastUse);
            }
            EXPECT_EQ(set[v].lastUse, own_lru);
        } else {
            // (4) globally LRU among over-quota lines.
            std::uint64_t best =
                std::numeric_limits<std::uint64_t>::max();
            for (const CacheLine &line : set) {
                if (occ[line.owner] > mgr.quota(line.owner))
                    best = std::min(best, line.lastUse);
            }
            EXPECT_GT(occ[owner], mgr.quota(owner));
            EXPECT_EQ(set[v].lastUse, best);
        }
        // (5) protected threads never shrink below quota.
        if (occ[owner] <= mgr.quota(owner))
            EXPECT_EQ(owner, requester);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CapacitySweep,
    ::testing::Values(
        Scenario{4, {0.25, 0.25, 0.25, 0.25}},
        Scenario{8, {0.5, 0.5}},
        Scenario{16, {0.5, 0.25, 0.25, 0.0}},
        Scenario{32, {0.25, 0.25, 0.25, 0.25}},
        Scenario{32, {0.5, 0.1, 0.1, 0.1}},  // Figure 1b allocation
        Scenario{8, {0.125, 0.125, 0.25, 0.5}}),
    [](const auto &info) {
        return "ways" + std::to_string(info.param.ways) + "n" +
               std::to_string(info.param.betas.size()) + "c" +
               std::to_string(info.index);
    });

} // namespace
} // namespace vpc
